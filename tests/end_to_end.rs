//! Cross-crate integration tests: the full pipeline from instrumented
//! workload generation through simulation to the paper's headline claims.

use hbm::core::bounds::makespan_lower_bound;
use hbm::core::{ArbitrationKind, ReplacementKind, SimBuilder};
use hbm::traces::adversarial::{cyclic_workload, figure3_hbm_slots};
use hbm::traces::{SortAlgo, TraceOptions, WorkloadSpec};

fn run(w: &hbm::core::Workload, k: usize, q: usize, arb: ArbitrationKind) -> hbm::core::Report {
    SimBuilder::new()
        .hbm_slots(k)
        .channels(q)
        .arbitration(arb)
        .replacement(ReplacementKind::Lru)
        .seed(42)
        .run(w)
}

/// Paper result (2): at high thread counts Priority beats FIFO — on traces
/// produced by the real instrumented kernels, not hand-built sequences.
#[test]
fn instrumented_spgemm_priority_beats_fifo_under_contention() {
    let spec = WorkloadSpec::SpGemm {
        n: 80,
        density: 0.10,
    };
    let w = spec.workload(24, 42, TraceOptions::default());
    let k = 2 * w.trace(0).unique_pages();
    let fifo = run(&w, k, 1, ArbitrationKind::Fifo);
    let prio = run(&w, k, 1, ArbitrationKind::Priority);
    assert!(
        fifo.makespan as f64 > 1.3 * prio.makespan as f64,
        "fifo {} vs priority {}",
        fifo.makespan,
        prio.makespan
    );
}

/// Paper result (1): in the pre-thrash band FIFO wins on mergesort traces
/// (the Figure 2b low-thread-count anomaly).
#[test]
fn instrumented_sort_fifo_wins_in_the_band() {
    let spec = WorkloadSpec::Sort {
        algo: SortAlgo::Mergesort,
        n: 4_000,
    };
    // Find the band: sweep p at fixed k = 2 working sets and record the
    // minimum ratio.
    let probe = spec.workload(1, 42, TraceOptions::default());
    let k = 2 * probe.trace(0).unique_pages();
    let mut min_ratio = f64::MAX;
    for p in [8usize, 16, 24, 32, 40, 48] {
        let w = spec.workload(p, 42, TraceOptions::default());
        let fifo = run(&w, k, 1, ArbitrationKind::Fifo).makespan as f64;
        let prio = run(&w, k, 1, ArbitrationKind::Priority).makespan as f64;
        min_ratio = min_ratio.min(fifo / prio);
    }
    assert!(
        min_ratio < 0.97,
        "somewhere in the band FIFO should win: min ratio {min_ratio}"
    );
}

/// Figure 3's linear blow-up, generated end to end.
#[test]
fn adversarial_ratio_grows_linearly() {
    let pages = 64;
    let reps = 10;
    let ratio = |p: usize| {
        let w = cyclic_workload(p, pages, reps);
        let k = figure3_hbm_slots(p, pages, 4);
        let fifo = run(&w, k, 1, ArbitrationKind::Fifo).makespan as f64;
        let prio = run(&w, k, 1, ArbitrationKind::Priority).makespan as f64;
        fifo / prio
    };
    let (r8, r16, r32) = (ratio(8), ratio(16), ratio(32));
    assert!(r16 > 1.4 * r8, "{r8} -> {r16}");
    assert!(r32 > 1.4 * r16, "{r16} -> {r32}");
}

/// Theorem 1's O(1) competitiveness, observed: Priority stays within a
/// small constant of the information-theoretic lower bound even on the
/// adversarial workload, at every scale we try.
#[test]
fn priority_is_near_the_lower_bound() {
    for p in [8usize, 32, 64] {
        let w = cyclic_workload(p, 64, 10);
        let k = figure3_hbm_slots(p, 64, 4);
        let prio = run(&w, k, 1, ArbitrationKind::Priority);
        let bound = makespan_lower_bound(&w, k, 1);
        let ratio = prio.makespan as f64 / bound as f64;
        assert!(
            ratio < 8.0,
            "p={p}: Priority {} vs bound {bound} (ratio {ratio})",
            prio.makespan
        );
    }
}

/// Theorem 2's Ω(p) signature, observed: FIFO's distance from the best
/// achievable schedule (proxied by Priority, which is itself within O(1)
/// of optimal by Theorem 1) grows with p, while Priority's distance from
/// the information-theoretic bound stays bounded.
#[test]
fn fifo_competitive_ratio_grows_with_p() {
    let ratios = |p: usize| {
        let w = cyclic_workload(p, 64, 10);
        let k = figure3_hbm_slots(p, 64, 4);
        let fifo = run(&w, k, 1, ArbitrationKind::Fifo).makespan as f64;
        let prio = run(&w, k, 1, ArbitrationKind::Priority).makespan as f64;
        let bound = makespan_lower_bound(&w, k, 1) as f64;
        (fifo / prio, prio / bound)
    };
    let (fifo_gap8, prio_gap8) = ratios(8);
    let (fifo_gap64, prio_gap64) = ratios(64);
    assert!(
        fifo_gap64 > 3.0 * fifo_gap8,
        "FIFO's gap must grow: {fifo_gap8} -> {fifo_gap64}"
    );
    assert!(
        prio_gap8 < 10.0 && prio_gap64 < 10.0,
        "Priority stays near the bound: {prio_gap8}, {prio_gap64}"
    );
}

/// Dynamic Priority is "unambiguously better": never much worse than
/// either FIFO or Priority on makespan, with far less starvation than
/// Priority.
#[test]
fn dynamic_priority_dominates() {
    let spec = WorkloadSpec::SpGemm {
        n: 80,
        density: 0.10,
    };
    let w = spec.workload(16, 42, TraceOptions::default());
    let k = 2 * w.trace(0).unique_pages();
    let fifo = run(&w, k, 1, ArbitrationKind::Fifo);
    let prio = run(&w, k, 1, ArbitrationKind::Priority);
    let dynamic = run(
        &w,
        k,
        1,
        ArbitrationKind::DynamicPriority {
            period: 10 * k as u64,
        },
    );
    let best = fifo.makespan.min(prio.makespan);
    assert!(
        (dynamic.makespan as f64) < 1.15 * best as f64,
        "dynamic {} vs best {}",
        dynamic.makespan,
        best
    );
    assert!(dynamic.response.inconsistency < prio.response.inconsistency);
}

/// Multi-channel extension (Theorem 3): q channels speed up Priority on a
/// channel-bound instrumented workload, and never hurt.
#[test]
fn channels_scale_on_instrumented_workload() {
    let spec = WorkloadSpec::SpGemm {
        n: 80,
        density: 0.10,
    };
    let w = spec.workload(32, 42, TraceOptions::default());
    let k = w.trace(0).unique_pages(); // 1 working set: heavy contention
    let m1 = run(&w, k, 1, ArbitrationKind::Priority).makespan;
    let m4 = run(&w, k, 4, ArbitrationKind::Priority).makespan;
    let m8 = run(&w, k, 8, ArbitrationKind::Priority).makespan;
    assert!(m4 < m1, "q=4 ({m4}) should beat q=1 ({m1})");
    assert!(
        m8 <= m4 + m4 / 10,
        "q=8 ({m8}) should not regress vs q=4 ({m4})"
    );
}

/// The whole trace pipeline is deterministic end to end: same seed, same
/// workload, same simulation, same report.
#[test]
fn pipeline_is_deterministic() {
    let spec = WorkloadSpec::Sort {
        algo: SortAlgo::Introsort,
        n: 3_000,
    };
    let mk = || {
        let w = spec.workload(4, 9, TraceOptions::default());
        run(&w, 64, 2, ArbitrationKind::DynamicPriority { period: 640 })
    };
    let (a, b) = (mk(), mk());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.hits, b.hits);
    assert_eq!(a.response.inconsistency, b.response.inconsistency);
    assert_eq!(a.per_core.len(), b.per_core.len());
}

/// Trace files round-trip through the binary format and replay to the same
/// simulation outcome.
#[test]
fn trace_io_roundtrip_preserves_simulation() {
    let spec = WorkloadSpec::SpGemm {
        n: 60,
        density: 0.10,
    };
    let w = spec.workload(4, 5, TraceOptions::default());
    let mut buf = Vec::new();
    hbm::traces::io::write_workload(&w, &mut buf).unwrap();
    let w2 = hbm::traces::io::read_workload(&buf[..]).unwrap();
    let a = run(&w, 64, 1, ArbitrationKind::Priority);
    let b = run(&w2, 64, 1, ArbitrationKind::Priority);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.hits, b.hits);
}

/// The direct-mapped transformation replicates fully-associative behaviour
/// on traces from every instrumented kernel (Lemma 1 across the codebase).
#[test]
fn lemma1_holds_on_all_kernels() {
    use hbm::assoc::transform::{measure_overhead, Discipline};
    let specs = [
        WorkloadSpec::Sort {
            algo: SortAlgo::Introsort,
            n: 3_000,
        },
        WorkloadSpec::SpGemm {
            n: 60,
            density: 0.10,
        },
        WorkloadSpec::Cyclic { pages: 64, reps: 5 },
        WorkloadSpec::Zipf {
            pages: 300,
            len: 20_000,
            alpha: 1.0,
        },
    ];
    for spec in specs {
        let stream: Vec<u64> = spec
            .generate_trace(3, TraceOptions::default())
            .into_iter()
            .map(|p| p as u64)
            .collect();
        for d in [Discipline::Lru, Discipline::Fifo] {
            let o = measure_overhead(&stream, 48, d, 11);
            assert_eq!(
                o.reference_misses, o.transformed_misses,
                "{spec:?} {d:?}: transformation must be exact"
            );
            assert!(o.transfers_per_miss <= 2.0);
            assert!(o.accesses_per_access < 10.0);
        }
    }
}

/// The synthetic KNL validates the model (P1–P4), closing the §5 loop.
#[test]
fn knl_model_validates() {
    let report = hbm::knl::validate(&hbm::knl::Machine::knl());
    assert!(report.all_hold());
}
