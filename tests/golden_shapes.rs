//! Golden-shape regression tests for the Figure 2 / Figure 3 experiments
//! at `Scale::Small`.
//!
//! The full-scale sweeps in `results/*.csv` exhibit the paper's headline
//! qualitative orderings; these tests pin the same *shapes* (not exact
//! numbers) at the cheap scale so a regression in the engine, the trace
//! generators, or the sweep drivers shows up in `cargo test`:
//!
//! * Figure 2: FIFO beats (or matches) static Priority *pre-thrash* —
//!   when HBM is ample relative to the working sets — while Priority
//!   dominates decisively at high thread counts under contention
//!   (`results/figure_2a.csv` min ratio 0.82, max 37.4;
//!   `figure_2b.csv` min 0.77, max 59.6).
//! * Figure 3: on the adversarial cyclic dataset FIFO misses every page,
//!   its makespan grows linearly with `p`, and the FIFO/Priority ratio
//!   climbs without bound (`results/figure_3.csv` reaches 24× at p=128).
//!
//! Everything here is fully deterministic: fixed seed, fixed scale.

use hbm::experiments::common::Scale;
use hbm::experiments::fig2::{self, Panel};
use hbm::experiments::fig3;
use hbm::experiments::sweep::{summarize, RatioCell};

const SEED: u64 = 7;

fn cell(cells: &[RatioCell], p: usize, k: usize) -> &RatioCell {
    cells
        .iter()
        .find(|c| c.p == p && c.k == k)
        .unwrap_or_else(|| panic!("no cell at p={p}, k={k}"))
}

#[test]
fn fig2a_spgemm_shapes() {
    let cells = fig2::run_cells(Panel::SpGemm, Scale::Small, SEED);

    // Single-core: arbitration is irrelevant with one requester, so the
    // two policies are tick-for-tick identical at every HBM size.
    for c in cells.iter().filter(|c| c.p == 1) {
        assert_eq!(
            c.fifo_makespan, c.challenger_makespan,
            "p=1, k={}: arbitration must not matter with one core",
            c.k
        );
    }

    // Pre-thrash (ample HBM, k=115 covers the working sets): the two
    // policies stay within 2% of each other even at the top thread count.
    let easy = cell(&cells, 16, 115);
    let ratio = easy.ratio();
    assert!(
        (0.98..=1.02).contains(&ratio),
        "pre-thrash cell should be a near-tie, got ratio {ratio:.3}"
    );

    // Under contention (tight HBM, high p) Priority dominates — the
    // paper's "FIFO up to 3.3× worse" regime.
    assert!(
        cell(&cells, 8, 23).ratio() > 2.0,
        "p=8, k=23: expected decisive Priority win, got {:.3}",
        cell(&cells, 8, 23).ratio()
    );
    assert!(
        cell(&cells, 16, 46).ratio() > 3.0,
        "p=16, k=46: expected decisive Priority win, got {:.3}",
        cell(&cells, 16, 46).ratio()
    );

    // Shape summary: the best Priority showing is at a thread count at
    // least as high as FIFO's best showing.
    let s = summarize(&cells);
    assert!(s.max_ratio > 2.5, "max ratio {:.3}", s.max_ratio);
    assert!(s.max_ratio_p >= s.min_ratio_p);
}

#[test]
fn fig2b_sort_shapes() {
    let cells = fig2::run_cells(Panel::Sort, Scale::Small, SEED);

    // FIFO beats Priority pre-thrash: at moderate contention the static
    // pecking order starves low-rank threads for no benefit, and FIFO's
    // fairness wins outright (paper: "Priority up to 1.37× worse").
    assert!(
        cell(&cells, 8, 16).ratio() < 0.95,
        "p=8, k=16: expected FIFO to win, got ratio {:.3}",
        cell(&cells, 8, 16).ratio()
    );
    assert!(
        cell(&cells, 16, 32).ratio() < 0.95,
        "p=16, k=32: expected FIFO to win, got ratio {:.3}",
        cell(&cells, 16, 32).ratio()
    );

    // But at the highest contention cell Priority dominates anyway.
    assert!(
        cell(&cells, 16, 16).ratio() > 2.0,
        "p=16, k=16: expected Priority to dominate, got ratio {:.3}",
        cell(&cells, 16, 16).ratio()
    );

    // With ample HBM (k=80) everything is a near-tie at every p.
    for c in cells.iter().filter(|c| c.k == 80) {
        let r = c.ratio();
        assert!(
            (0.99..=1.01).contains(&r),
            "p={}, k=80: expected near-tie, got {r:.3}",
            c.p
        );
    }
}

#[test]
fn fig3_adversarial_shapes() {
    let cells = fig3::run_cells(Scale::Small, SEED);
    assert!(cells.len() >= 4, "Small sweep has at least 4 thread counts");

    for c in &cells {
        // The cyclic adversary defeats LRU under FIFO completely.
        assert_eq!(
            c.fifo_hit_rate, 0.0,
            "p={}: FIFO must miss every reference on the cycle",
            c.p
        );
        // Priority never loses on this dataset.
        assert!(
            c.priority_makespan <= c.fifo_makespan,
            "p={}: Priority must not lose on the adversarial cycle",
            c.p
        );
    }

    // FIFO makespan grows (at least) linearly in p: doubling the thread
    // count at fixed per-thread work doubles the far-channel traffic and
    // FIFO shares the pain evenly.
    for w in cells.windows(2) {
        assert!(
            w[1].fifo_makespan >= 2 * w[0].fifo_makespan - w[0].fifo_makespan / 8,
            "FIFO makespan should ~double from p={} to p={}: {} -> {}",
            w[0].p,
            w[1].p,
            w[0].fifo_makespan,
            w[1].fifo_makespan
        );
    }

    // The FIFO/Priority gap widens monotonically with p and is decisive
    // by the top of the Small sweep.
    for w in cells.windows(2) {
        assert!(
            w[1].ratio() >= w[0].ratio(),
            "ratio must be non-decreasing in p: {:.3} -> {:.3}",
            w[0].ratio(),
            w[1].ratio()
        );
    }
    let last = cells.last().unwrap();
    assert!(
        last.ratio() > 4.0,
        "p={}: expected ratio > 4, got {:.3}",
        last.p,
        last.ratio()
    );
}
