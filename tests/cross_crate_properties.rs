//! Property-based tests across crate boundaries: random kernel specs and
//! simulator configurations, checking the invariants that tie the repo
//! together.

use hbm::core::{ArbitrationKind, ReplacementKind, SimBuilder};
use hbm::traces::{SortAlgo, TraceOptions, WorkloadSpec};
use proptest::prelude::*;

fn small_specs() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        (500usize..3000).prop_map(|n| WorkloadSpec::Sort {
            algo: SortAlgo::Introsort,
            n
        }),
        (500usize..3000).prop_map(|n| WorkloadSpec::Sort {
            algo: SortAlgo::Mergesort,
            n
        }),
        (20usize..60, 0.05f64..0.3).prop_map(|(n, density)| WorkloadSpec::SpGemm { n, density }),
        (8u32..64, 2usize..6).prop_map(|(pages, reps)| WorkloadSpec::Cyclic { pages, reps }),
        (10u32..200, 100usize..2000, 0.5f64..1.5)
            .prop_map(|(pages, len, alpha)| WorkloadSpec::Zipf { pages, len, alpha }),
        (8u32..64, 1usize..4)
            .prop_map(|(pages, laps)| WorkloadSpec::PermutationWalk { pages, laps }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated workload simulates to completion under any policy,
    /// serving exactly its reference count, with a makespan at least the
    /// longest trace and at most the fully-serialized bound.
    #[test]
    fn any_kernel_any_policy_terminates_and_conserves(
        spec in small_specs(),
        p in 1usize..6,
        k_ws in 1usize..4,
        q in 1usize..3,
        arb_idx in 0usize..4,
        seed in 0u64..50,
    ) {
        let w = spec.workload(p, seed, TraceOptions::default());
        let k = (k_ws * w.trace(0).unique_pages()).max(4);
        let arb = [
            ArbitrationKind::Fifo,
            ArbitrationKind::Priority,
            ArbitrationKind::DynamicPriority { period: (k as u64).max(1) },
            ArbitrationKind::RandomPick,
        ][arb_idx];
        let r = SimBuilder::new()
            .hbm_slots(k)
            .channels(q)
            .arbitration(arb)
            .seed(seed)
            .max_ticks(200_000_000)
            .run(&w);
        prop_assert!(!r.truncated);
        prop_assert_eq!(r.served, w.total_refs() as u64);
        prop_assert!(r.makespan >= w.max_trace_len() as u64);
        // Fully-serialized upper bound: every reference a miss, one per
        // tick across all channels, plus per-core serve ticks.
        let upper = 3 * w.total_refs() as u64 + 16;
        prop_assert!(r.makespan <= upper, "makespan {} > bound {}", r.makespan, upper);
    }

    /// Replacement policy never changes *correctness*, only performance:
    /// served counts identical, makespans within the serialized bound.
    #[test]
    fn replacement_changes_performance_not_semantics(
        spec in small_specs(),
        seed in 0u64..20,
    ) {
        let w = spec.workload(3, seed, TraceOptions::default());
        let k = w.trace(0).unique_pages().max(4);
        let mut served = Vec::new();
        for rep in ReplacementKind::ALL {
            let r = SimBuilder::new()
                .hbm_slots(k)
                .arbitration(ArbitrationKind::Priority)
                .replacement(rep)
                .seed(seed)
                .run(&w);
            served.push(r.served);
        }
        prop_assert!(served.windows(2).all(|x| x[0] == x[1]));
    }

    /// The Lemma 1 transformation is exact on arbitrary generated traces.
    #[test]
    fn transformation_exact_on_generated_traces(
        spec in small_specs(),
        k in 8usize..128,
        seed in 0u64..20,
    ) {
        use hbm::assoc::transform::{measure_overhead, Discipline};
        let stream: Vec<u64> = spec
            .generate_trace(seed, TraceOptions::default())
            .into_iter()
            .map(|p| p as u64)
            .collect();
        let o = measure_overhead(&stream, k, Discipline::Lru, seed);
        prop_assert_eq!(o.reference_misses, o.transformed_misses);
        prop_assert!(o.transfers_per_miss <= 2.0);
    }

    /// Workload serialization round-trips bit-exactly for any generated
    /// workload.
    #[test]
    fn io_roundtrip(spec in small_specs(), p in 1usize..4, seed in 0u64..20) {
        let w = spec.workload(p, seed, TraceOptions::default());
        let mut buf = Vec::new();
        hbm::traces::io::write_workload(&w, &mut buf).unwrap();
        let w2 = hbm::traces::io::read_workload(&buf[..]).unwrap();
        prop_assert_eq!(w.cores(), w2.cores());
        for c in 0..w.cores() as u32 {
            prop_assert_eq!(w.trace(c).as_slice(), w2.trace(c).as_slice());
        }
    }
}
