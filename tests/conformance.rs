//! Cross-crate conformance cells: the differential Engine/OracleEngine
//! harness (`hbm_core::testkit`) driven by *real* inputs from the other
//! workspace crates rather than synthetic random traces —
//!
//! * workloads from the `hbm-traces` program generators (sort, SpGEMM,
//!   the adversarial cycle, Zipf) at miniature sizes,
//! * simulation parameters derived from the calibrated `hbm-knl-model`
//!   KNL machine description,
//! * plus the Lemma 1 direct-mapped-transformation invariants from
//!   `hbm-assoc` on the same generated streams.
//!
//! Core-only differential coverage lives in
//! `crates/core/tests/differential.rs`; this file is the cross-crate
//! layer of the same suite.

use hbm::assoc::transform::{measure_overhead, Discipline};
use hbm::core::testkit::{all_arbitrations, all_replacements, assert_conformance};
use hbm::core::{ArbitrationKind, ReplacementKind, SimConfig};
use hbm::knl::machine::Machine;
use hbm::traces::{SortAlgo, TraceOptions, WorkloadSpec};

/// Miniature versions of the paper's datasets: big enough to exercise
/// real access patterns (recursion, sparse scatter, cyclic thrash, skew),
/// small enough that the O(p + k)-per-tick oracle replays them in
/// milliseconds.
fn tiny_specs() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::Sort {
            algo: SortAlgo::Introsort,
            n: 400,
        },
        WorkloadSpec::SpGemm {
            n: 24,
            density: 0.15,
        },
        WorkloadSpec::Cyclic { pages: 12, reps: 6 },
        WorkloadSpec::Zipf {
            pages: 20,
            len: 120,
            alpha: 1.1,
        },
    ]
}

/// Every tiny dataset × a spread of policies must be bit-identical
/// between the two engines.
#[test]
fn trace_generator_workloads_conform() {
    let opts = TraceOptions::default();
    for (si, spec) in tiny_specs().iter().enumerate() {
        let workload = spec.workload(3, 0xC0FFEE + si as u64, opts);
        for arbitration in [
            ArbitrationKind::Fifo,
            ArbitrationKind::Priority,
            ArbitrationKind::DynamicPriority { period: 8 },
            ArbitrationKind::RandomPick,
        ] {
            for replacement in [ReplacementKind::Lru, ReplacementKind::Clock] {
                let config = SimConfig {
                    hbm_slots: 10,
                    channels: 2,
                    arbitration,
                    replacement,
                    far_latency: 2,
                    seed: 42 + si as u64,
                    max_ticks: 2_000_000,
                };
                let report = assert_conformance(config, &workload);
                assert!(!report.truncated, "{spec:?} must run to completion");
                assert_eq!(report.served, workload.total_refs() as u64);
            }
        }
    }
}

/// A simulation configuration derived from the calibrated KNL machine
/// model, scaled down by a fixed page-granularity factor so the oracle
/// stays cheap:
///
/// * `channels` ≈ far-channel : DRAM bandwidth ratio (≈ 2 on KNL),
/// * `far_latency` ≈ flat-DRAM : flat-HBM latency ratio rounded up,
/// * `hbm_slots` = the same fraction of the (scaled) total page universe
///   that 16 GiB MCDRAM is of a 64 GiB working set.
fn knl_scaled_config(machine: &Machine, total_pages: usize) -> SimConfig {
    let channels = (machine.far_bw_mibs / machine.dram_bw_mibs)
        .round()
        .max(1.0) as usize;
    let dram_ns = machine.dram_base_ns;
    let hbm_ns = dram_ns + machine.hbm_extra_ns;
    let far_latency = (hbm_ns / dram_ns).ceil().max(2.0) as u64;
    let working_set_bytes = 4 * machine.hbm_capacity; // paper's out-of-core regime
    let hbm_fraction = machine.hbm_capacity as f64 / working_set_bytes as f64;
    let hbm_slots = ((total_pages as f64 * hbm_fraction) as usize).max(1);
    SimConfig {
        hbm_slots,
        channels,
        arbitration: ArbitrationKind::DynamicPriority { period: 64 },
        replacement: ReplacementKind::Lru,
        far_latency,
        seed: 0x6b6e_6c21,
        max_ticks: 2_000_000,
    }
}

/// KNL-derived configurations × every arbitration/replacement pairing on
/// a shared SpGEMM workload.
#[test]
fn knl_machine_configs_conform() {
    let machine = Machine::knl();
    let spec = WorkloadSpec::Cyclic { pages: 16, reps: 5 };
    let workload = spec.workload(4, 99, TraceOptions::default());
    let total_pages: usize = 4 * 16; // p cores × pages per core
    let base = knl_scaled_config(&machine, total_pages);
    assert!(base.channels >= 2, "KNL far bandwidth implies ≥ 2 channels");
    for arbitration in all_arbitrations(32) {
        for replacement in all_replacements() {
            let config = SimConfig {
                arbitration,
                replacement,
                ..base
            };
            assert_conformance(config, &workload);
        }
    }
}

/// Lemma 1 on generated streams: the hashed direct-mapped transformation
/// replicates the fully-associative hit/miss sequence exactly, with at
/// most 2 far transfers per miss. (No ordering claim against the *plain*
/// direct-mapped baseline: on the cyclic adversary fully-associative LRU
/// misses everything while direct mapping keeps conflict-free pages
/// resident, so either can win — only the cold-miss floor is universal.)
#[test]
fn lemma1_direct_mapped_factor_on_generated_streams() {
    let opts = TraceOptions::default();
    for spec in tiny_specs() {
        let trace = spec.generate_trace(7, opts);
        let stream: Vec<u64> = trace.iter().map(|&p| p as u64).collect();
        if stream.is_empty() {
            continue;
        }
        let k = (stream.len() / 8).clamp(4, 64);
        for discipline in [Discipline::Lru, Discipline::Fifo] {
            for seed in 0..4 {
                let o = measure_overhead(&stream, k, discipline, seed);
                assert_eq!(
                    o.reference_misses, o.transformed_misses,
                    "{spec:?}: transformation must preserve the miss sequence"
                );
                assert!(
                    o.transfers_per_miss <= 2.0,
                    "{spec:?}: Lemma 1 bound violated: {} transfers/miss",
                    o.transfers_per_miss
                );
                let unique = {
                    let mut s: Vec<u64> = stream.clone();
                    s.sort_unstable();
                    s.dedup();
                    s.len() as u64
                };
                assert!(
                    o.plain_direct_misses >= unique.min(o.reference_misses),
                    "{spec:?}: every distinct page cold-misses at least once"
                );
            }
        }
    }
}
