//! # hbm — Automatic HBM Management: Models and Algorithms
//!
//! Facade crate for the reproduction of DeLayo et al., *Automatic HBM
//! Management: Models and Algorithms* (SPAA 2022). It re-exports the
//! workspace crates so downstream users can depend on a single crate:
//!
//! * [`core`] — the HBM+DRAM model simulator (tick engine, far-channel
//!   arbitration policies, block-replacement policies, metrics).
//! * [`traces`] — instrumented workload generators (GNU-sort analogue,
//!   TACO-style SpGEMM, dense matmul, adversarial and synthetic traces).
//! * [`assoc`] — the direct-mapped-cache transformation of §2 (Lemma 1).
//! * [`knl`] — the synthetic Knights Landing machine model and the
//!   pointer-chasing / GLUPS microbenchmarks of §5.
//! * [`model`] — the closed-form analytical performance model: O(1)
//!   predictions of makespan / response time / inconsistency / blocked
//!   fraction with calibrated uncertainty bands, the screening tier
//!   behind `repro explore` and `POST /estimate`.
//! * [`experiments`] — ready-made reproductions of every figure and table.
//! * [`par`] — small std::thread::scope-based parallel sweep utilities and
//!   the bounded worker pool behind the server.
//! * [`serve`] — simulation-as-a-service: an std-only HTTP/1.1 + JSON
//!   server with admission control, budget ceilings, and graceful
//!   shutdown (see README.md §"Running the server").
//!
//! ## Quickstart
//!
//! ```
//! use hbm::core::{SimBuilder, ArbitrationKind, ReplacementKind};
//! use hbm::traces::adversarial::cyclic_workload;
//!
//! // 8 cores, each cycling through 64 unique pages 10 times; HBM holds
//! // only a quarter of the total unique pages — the FIFO-killer of §3.2.
//! let workload = cyclic_workload(8, 64, 10);
//! let report = SimBuilder::new()
//!     .hbm_slots(8 * 64 / 4)
//!     .arbitration(ArbitrationKind::Priority)
//!     .replacement(ReplacementKind::Lru)
//!     .run(&workload);
//! assert!(report.makespan > 0);
//! ```

pub use hbm_assoc as assoc;
pub use hbm_core as core;
pub use hbm_experiments as experiments;
pub use hbm_knl_model as knl;
pub use hbm_model as model;
pub use hbm_par as par;
pub use hbm_serve as serve;
pub use hbm_traces as traces;
