//! Property tests for the hand-rolled JSON codec, plus hostile-input
//! cases: depth bombs, oversized inputs, trailing garbage, bad escapes.
//!
//! The central property is serialization fixed-pointedness: for any value
//! `v`, `parse(v.to_string())` succeeds and re-serializes to exactly the
//! same bytes. (Value-level equality is implied: the serializer is a
//! function of the value, so equal bytes ⇒ the reparse lost nothing the
//! serializer can see — including f64 bit patterns, which `fmt_f64`
//! prints with shortest-roundtrip precision.)

use hbm_serve::json::{fmt_f64, Json, JsonError, JsonLimits, Number};
use proptest::prelude::*;

/// Deterministic value generator: a splitmix64 stream drives a bounded
/// recursive builder. (The compat proptest has no recursive strategies;
/// driving recursion from a generated seed keeps shrinking meaningful —
/// the seed shrinks toward 0, which builds `null`.)
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn string(&mut self) -> String {
        let len = (self.next() % 12) as usize;
        (0..len)
            .map(|_| match self.next() % 6 {
                0 => '\\',
                1 => '"',
                2 => '\u{7}',     // control char: must escape as \u0007
                3 => 'é',         // multi-byte UTF-8
                4 => '\u{1F600}', // astral plane (surrogate pair in \u form)
                _ => (b'a' + (self.next() % 26) as u8) as char,
            })
            .collect()
    }

    fn value(&mut self, depth: usize) -> Json {
        let pick = if depth == 0 {
            self.next() % 6
        } else {
            self.next() % 8
        };
        match pick {
            0 => Json::Null,
            1 => Json::Bool(self.next().is_multiple_of(2)),
            2 => Json::Num(Number::U(self.next())),
            3 => Json::Num(Number::I(-((self.next() % (1 << 62)) as i64 + 1))),
            4 => {
                // Finite f64 from random bits (non-finite becomes `null`
                // on the wire, which breaks the fixed point on purpose —
                // so only finite values are generated here).
                let f = f64::from_bits(self.next());
                Json::Num(Number::F(if f.is_finite() { f } else { 0.25 }))
            }
            5 => Json::Str(self.string()),
            6 => {
                let n = (self.next() % 4) as usize;
                Json::Arr((0..n).map(|_| self.value(depth - 1)).collect())
            }
            _ => {
                let n = (self.next() % 4) as usize;
                Json::Obj(
                    (0..n)
                        .map(|_| (self.string(), self.value(depth - 1)))
                        .collect(),
                )
            }
        }
    }
}

proptest! {
    #[test]
    fn serialize_parse_serialize_is_a_fixed_point(seed in any::<u64>(), depth in 0usize..5) {
        let v = Gen(seed).value(depth);
        let wire = v.to_string();
        let reparsed = Json::parse(&wire)
            .unwrap_or_else(|e| panic!("own output must reparse: {e} in {wire}"));
        prop_assert_eq!(reparsed.to_string(), wire);
    }

    #[test]
    fn integers_round_trip_exactly(u in any::<u64>(), i in any::<i64>()) {
        let v = Json::obj(vec![("u", Json::from(u)), ("i", Json::from(i))]);
        let back = Json::parse(&v.to_string()).unwrap();
        prop_assert_eq!(back.get("u").unwrap().as_u64(), Some(u));
        let got_i = match back.get("i").unwrap() {
            Json::Num(Number::I(x)) => Some(*x),
            Json::Num(Number::U(x)) => i64::try_from(*x).ok(),
            _ => None,
        };
        prop_assert_eq!(got_i, Some(i));
    }

    #[test]
    fn finite_floats_round_trip_bit_exactly(bits in any::<u64>()) {
        let f = f64::from_bits(bits);
        if !f.is_finite() {
            return Ok(());
        }
        let wire = fmt_f64(f);
        let back = Json::parse(&wire).unwrap();
        prop_assert_eq!(back.as_f64().unwrap().to_bits(), f.to_bits(),
            "{} reparsed to a different f64", wire);
    }

    #[test]
    fn arbitrary_strings_round_trip(seed in any::<u64>()) {
        let s = Gen(seed).string();
        let v = Json::Str(s.clone());
        let back = Json::parse(&v.to_string()).unwrap();
        prop_assert_eq!(back.as_str(), Some(s.as_str()));
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(0u8..=255, 0..64)) {
        // Totality: any input yields Ok or a typed error, never a panic.
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = Json::parse(text);
        }
    }
}

// ---------------------------------------------------------------------------
// Hostile inputs
// ---------------------------------------------------------------------------

#[test]
fn depth_bomb_is_rejected_not_overflowed() {
    // 100k nested arrays would overflow the stack of a naive recursive
    // parser; the depth limit must reject it first.
    let bomb = "[".repeat(100_000) + &"]".repeat(100_000);
    match Json::parse(&bomb) {
        Err(JsonError::TooDeep { limit }) => assert_eq!(limit, JsonLimits::default().max_depth),
        other => panic!("expected TooDeep, got {other:?}"),
    }
    // Same for objects.
    let bomb = "{\"a\":".repeat(100_000) + "1" + &"}".repeat(100_000);
    assert!(matches!(Json::parse(&bomb), Err(JsonError::TooDeep { .. })));
    // Exactly at the limit is fine.
    let limits = JsonLimits {
        max_depth: 8,
        ..JsonLimits::default()
    };
    let ok = "[".repeat(8) + &"]".repeat(8);
    assert!(Json::parse_with_limits(&ok, &limits).is_ok());
    let over = "[".repeat(9) + &"]".repeat(9);
    assert!(matches!(
        Json::parse_with_limits(&over, &limits),
        Err(JsonError::TooDeep { limit: 8 })
    ));
}

#[test]
fn oversized_input_is_rejected_before_any_parsing() {
    let limits = JsonLimits {
        max_bytes: 16,
        ..JsonLimits::default()
    };
    let input = "\"aaaaaaaaaaaaaaaaaaaaaaaaaaaa\"";
    match Json::parse_with_limits(input, &limits) {
        Err(JsonError::InputTooLarge { limit, actual }) => {
            assert_eq!(limit, 16);
            assert_eq!(actual, input.len());
        }
        other => panic!("expected InputTooLarge, got {other:?}"),
    }
}

#[test]
fn trailing_garbage_is_an_error() {
    for input in ["{} x", "1 2", "null,", "[1] [2]", "\"a\"b"] {
        assert!(
            matches!(Json::parse(input), Err(JsonError::TrailingGarbage { .. })),
            "{input:?} must be TrailingGarbage"
        );
    }
    // Trailing whitespace is NOT garbage.
    assert!(Json::parse("  {}  \n").is_ok());
}

#[test]
fn malformed_escapes_are_typed_errors() {
    for input in [
        r#""\x""#,           // unknown escape
        r#""\u12""#,         // truncated \u
        r#""\uD800""#,       // lone high surrogate
        r#""\uDC00\uDC00""#, // low surrogate first
        r#""\"#,             // backslash at EOF
    ] {
        assert!(
            matches!(
                Json::parse(input),
                Err(JsonError::BadEscape { .. } | JsonError::UnexpectedEof)
            ),
            "{input:?} must be a typed escape error, got {:?}",
            Json::parse(input)
        );
    }
}

#[test]
fn malformed_numbers_and_tokens_are_rejected() {
    for input in [
        "01", "1.", ".5", "+1", "1e", "1e+", "--1", "0x10", "NaN", "Infinity",
        "1e999", // overflows to infinity: JSON has no representation for it
        "tru", "nul", "falsey",
    ] {
        assert!(
            Json::parse(input).is_err(),
            "{input:?} must be rejected, got {:?}",
            Json::parse(input)
        );
    }
    // Large magnitudes that stay finite are fine (parsed as f64).
    assert!(Json::parse("1e308").is_ok());
    assert!(Json::parse("123456789012345678901234567890").is_ok());
}

#[test]
fn truncated_documents_are_unexpected_eof() {
    for input in ["{", "[1,", "\"abc", "{\"a\":", "tr", "-"] {
        assert!(Json::parse(input).is_err(), "{input:?} must fail cleanly");
    }
    assert_eq!(Json::parse(""), Err(JsonError::UnexpectedEof));
}

#[test]
fn control_characters_in_strings_must_be_escaped() {
    // Raw control characters are invalid JSON string content.
    assert!(Json::parse("\"a\u{7}b\"").is_err());
    // Their escaped forms parse and re-serialize stably.
    let v = Json::parse(r#""a\u0007b""#).unwrap();
    assert_eq!(v.as_str(), Some("a\u{7}b"));
    assert_eq!(v.to_string(), r#""a\u0007b""#);
}

#[test]
fn duplicate_keys_keep_first_match_semantics() {
    // The parser preserves order; `get` returns the first match — the
    // deterministic choice the server relies on.
    let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
    assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
}
