//! In-process integration tests: a real [`Server`] on an ephemeral port,
//! real TCP clients, and byte-level comparison of served reports against
//! direct `SimBuilder` runs.

use hbm_core::{ArbitrationKind, SimBuilder};
use hbm_serve::http::{
    read_response, read_response_full, read_response_head, write_request, ChunkedLines,
};
use hbm_serve::json::Json;
use hbm_serve::proto::report_to_json;
use hbm_serve::server::{Server, ServerConfig, ServerStats};
use hbm_serve::shutdown::ShutdownFlag;
use hbm_traces::{TraceOptions, WorkloadSpec};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running server plus the handle to join it.
struct TestServer {
    addr: SocketAddr,
    flag: ShutdownFlag,
    handle: JoinHandle<ServerStats>,
}

fn start_server(config: ServerConfig) -> TestServer {
    let flag = ShutdownFlag::new();
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let run_flag = flag.clone();
    let handle = std::thread::spawn(move || server.run(&run_flag).expect("server run"));
    TestServer { addr, flag, handle }
}

impl TestServer {
    fn stop(self) -> ServerStats {
        self.flag.trip();
        self.handle.join().expect("server thread")
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_request(&mut stream, method, path, body).expect("write request");
    read_response(&mut stream, Instant::now() + Duration::from_secs(30)).expect("read response")
}

/// Like [`request`], but also returns the (lowercased) response headers —
/// for tests asserting on `Retry-After`.
fn request_full(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_request(&mut stream, method, path, body).expect("write request");
    read_response_full(&mut stream, Instant::now() + Duration::from_secs(30))
        .expect("read response")
}

/// Seconds from a `Retry-After` header, failing the test when absent or
/// non-numeric: every 429/503 the server emits must carry the hint.
fn retry_after_secs(headers: &HashMap<String, String>) -> u64 {
    headers
        .get("retry-after")
        .unwrap_or_else(|| panic!("429/503 must carry Retry-After, got {headers:?}"))
        .parse()
        .expect("Retry-After must be integral seconds")
}

/// A request whose last body bytes are held back, pinning the server's
/// reader mid-message (immune to idle cancellation) until
/// [`finish`](Self::finish) releases them — the deterministic way to land
/// a request on a server whose drain flag trips while it is in flight.
struct HeldRequest {
    stream: TcpStream,
    tail: Vec<u8>,
}

fn begin_request(addr: SocketAddr, path: &str, body: &[u8]) -> HeldRequest {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "POST {path} HTTP/1.1\r\nhost: localhost\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let split = body.len().saturating_sub(4);
    let mut first = head.into_bytes();
    first.extend_from_slice(&body[..split]);
    stream.write_all(&first).expect("write partial request");
    stream.flush().expect("flush partial request");
    HeldRequest {
        stream,
        tail: body[split..].to_vec(),
    }
}

impl HeldRequest {
    fn finish(mut self) -> (u16, HashMap<String, String>, Vec<u8>) {
        self.stream.write_all(&self.tail).expect("write body tail");
        self.stream.flush().expect("flush body tail");
        read_response_full(&mut self.stream, Instant::now() + Duration::from_secs(30))
            .expect("read response")
    }
}

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        enable_test_endpoints: true,
        ..ServerConfig::default()
    }
}

const SIM_BODY: &str = r#"{
    "workload": {"kind": "cyclic", "pages": 32, "reps": 4, "seed": 9},
    "p": 4, "k": 24, "q": 2,
    "arbitration": "priority",
    "seed": 7
}"#;

/// The exact report the server must serve for [`SIM_BODY`], computed
/// through the plain (unshared, unbudgeted) `SimBuilder` path.
fn direct_report_json() -> String {
    let spec = WorkloadSpec::Cyclic { pages: 32, reps: 4 };
    let workload = spec.workload(4, 9, TraceOptions::default());
    let report = SimBuilder::new()
        .hbm_slots(24)
        .channels(2)
        .arbitration(ArbitrationKind::Priority)
        .seed(7)
        .run(&workload);
    report_to_json(&report)
}

#[test]
fn served_report_is_byte_identical_to_direct_simbuilder_run() {
    let server = start_server(test_config());
    let expected = direct_report_json();
    // Twice: once cold (pool generated for this request), once warm
    // (memoized pool + flat) — the bytes must not depend on which path ran.
    for round in ["cold", "warm"] {
        let (status, body) = request(server.addr, "POST", "/simulate", SIM_BODY.as_bytes());
        assert_eq!(status, 200, "{round}: {}", String::from_utf8_lossy(&body));
        assert_eq!(
            String::from_utf8(body).unwrap(),
            expected,
            "{round} response must match the direct SimBuilder run byte for byte"
        );
    }
    let stats = server.stop();
    assert_eq!(stats.cold_runs, 1);
    assert_eq!(stats.warm_runs, 1);
}

#[test]
fn concurrent_clients_all_get_identical_correct_reports() {
    let server = start_server(test_config());
    let expected = direct_report_json();
    let addr = server.addr;
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let (status, body) = request(addr, "POST", "/simulate", SIM_BODY.as_bytes());
                assert_eq!(status, 200);
                assert_eq!(String::from_utf8(body).unwrap(), expected);
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let stats = server.stop();
    assert_eq!(stats.ok, 8);
    assert_eq!(stats.cold_runs + stats.warm_runs, 8);
}

#[test]
fn panicking_request_gets_500_and_the_server_survives() {
    let server = start_server(test_config());
    let (status, body) = request(server.addr, "POST", "/test/panic", b"");
    assert_eq!(status, 500);
    let err = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(err
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("panicked"));
    // The worker pool and every other path must still function.
    let (status, body) = request(server.addr, "POST", "/simulate", SIM_BODY.as_bytes());
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let stats = server.stop();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.ok, 1);
}

#[test]
fn over_budget_request_returns_truncated_report_not_a_hang() {
    let server = start_server(test_config());
    // A tick budget far below the workload's makespan: the run must stop
    // at the budget and say so.
    let body = r#"{
        "workload": {"kind": "cyclic", "pages": 64, "reps": 50, "seed": 1},
        "p": 8, "k": 16,
        "arbitration": "fifo",
        "max_ticks": 50
    }"#;
    let (status, resp) = request(server.addr, "POST", "/simulate", body.as_bytes());
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
    let report = Json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert_eq!(report.get("truncated").unwrap().as_bool(), Some(true));
    assert_eq!(report.get("makespan").unwrap().as_u64(), Some(50));
    server.stop();
}

#[test]
fn server_ceiling_clamps_unbudgeted_requests() {
    // The server's own ceiling applies even when the client asks for no
    // budget at all.
    let config = ServerConfig {
        budget_ceiling: hbm_serve::CellBudget {
            max_ticks: Some(25),
            max_wall: None,
        },
        ..test_config()
    };
    let server = start_server(config);
    let body = r#"{
        "workload": {"kind": "cyclic", "pages": 64, "reps": 50, "seed": 1},
        "p": 8, "k": 16,
        "arbitration": "fifo"
    }"#;
    let (status, resp) = request(server.addr, "POST", "/simulate", body.as_bytes());
    assert_eq!(status, 200);
    let report = Json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert_eq!(report.get("truncated").unwrap().as_bool(), Some(true));
    assert_eq!(report.get("makespan").unwrap().as_u64(), Some(25));
    server.stop();
}

#[test]
fn full_queue_rejects_with_429() {
    // Zero queue capacity: every submission is rejected before execution —
    // deterministic admission-control behaviour.
    let config = ServerConfig {
        queue_capacity: 0,
        ..test_config()
    };
    let server = start_server(config);
    let (status, headers, body) =
        request_full(server.addr, "POST", "/simulate", SIM_BODY.as_bytes());
    assert_eq!(status, 429, "{}", String::from_utf8_lossy(&body));
    let err = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(err
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("queue full"));
    // Retry-After is derived from queue depth; with an empty zero-capacity
    // queue the hint is the one-second floor.
    assert_eq!(retry_after_secs(&headers), 1);
    let stats = server.stop();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.ok, 0);
}

#[test]
fn malformed_and_unknown_requests_get_4xx() {
    let server = start_server(test_config());
    let (status, _) = request(server.addr, "POST", "/simulate", b"{not json");
    assert_eq!(status, 400);
    let (status, _) = request(server.addr, "POST", "/simulate", b"{\"p\": 1}");
    assert_eq!(status, 400, "missing required fields");
    let (status, _) = request(server.addr, "GET", "/nope", b"");
    assert_eq!(status, 404);
    let (status, _) = request(
        server.addr,
        "POST",
        "/simulate",
        br#"{"workload": "no-such-builtin", "p": 1, "k": 16}"#,
    );
    assert_eq!(status, 400);
    // /test/panic must 404 when test endpoints are disabled.
    let prod = start_server(ServerConfig::default());
    let (status, _) = request(prod.addr, "POST", "/test/panic", b"");
    assert_eq!(status, 404);
    prod.stop();
    server.stop();
}

#[test]
fn healthz_reports_counters_and_drain_state() {
    let server = start_server(test_config());
    let (status, body) = request(server.addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    let health = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("active_connections").unwrap().as_u64(), Some(1));
    server.stop();
}

// ---------------------------------------------------------------------------
// Analytical estimates: /estimate takes the /simulate body but answers from
// the closed-form model without touching the engine.
// ---------------------------------------------------------------------------

/// Pulls one `{lo, est, hi}` band out of an estimate response.
fn band(est: &Json, metric: &str) -> (f64, f64, f64) {
    let b = est.get(metric).unwrap();
    (
        b.get("lo").unwrap().as_f64().unwrap(),
        b.get("est").unwrap().as_f64().unwrap(),
        b.get("hi").unwrap().as_f64().unwrap(),
    )
}

#[test]
fn estimate_brackets_the_simulated_makespan_without_running_the_engine() {
    let server = start_server(test_config());
    let (status, body) = request(server.addr, "POST", "/estimate", SIM_BODY.as_bytes());
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let est = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let (lo, point, hi) = band(&est, "makespan");
    assert!(lo <= point && point <= hi, "band must bracket its estimate");
    let lb = est.get("lower_bound").unwrap().as_u64().unwrap() as f64;
    let ub = est.get("upper_bound").unwrap().as_u64().unwrap() as f64;
    assert!(
        lb <= point && point <= ub,
        "estimate {point} must respect the provable interval [{lb}, {ub}]"
    );
    for metric in ["mean_response", "inconsistency", "blocked_frac"] {
        let (lo, point, hi) = band(&est, metric);
        assert!(
            lo <= point && point <= hi,
            "{metric} band [{lo}, {hi}] must bracket its estimate {point}"
        );
    }

    // The same body through the real engine: the simulated makespan must
    // land inside the calibrated band widened by 50% each side (the band
    // is a ~90% envelope, not a guarantee; the slack keeps this a sanity
    // gate against gross model drift, not a flake).
    let (status, resp) = request(server.addr, "POST", "/simulate", SIM_BODY.as_bytes());
    assert_eq!(status, 200);
    let report = Json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    let makespan = report.get("makespan").unwrap().as_u64().unwrap() as f64;
    assert!(
        lo / 1.5 <= makespan && makespan <= hi * 1.5,
        "simulated makespan {makespan} outside the widened band [{lo}, {hi}]"
    );

    // Determinism: the same body must serve identical estimate bytes.
    let (status, again) = request(server.addr, "POST", "/estimate", SIM_BODY.as_bytes());
    assert_eq!(status, 200);
    assert_eq!(body, again, "estimates must be deterministic");

    let stats = server.stop();
    // Three 200s total, but only the /simulate call reached the engine or
    // the trace-pool registry — the estimates were purely analytical.
    assert_eq!(stats.ok, 3);
    assert_eq!(
        stats.cold_runs + stats.warm_runs,
        1,
        "/estimate must not run the engine"
    );
}

#[test]
fn malformed_estimate_requests_get_400() {
    let server = start_server(test_config());
    let (status, _) = request(server.addr, "POST", "/estimate", b"{not json");
    assert_eq!(status, 400);
    let (status, _) = request(server.addr, "POST", "/estimate", b"{\"p\": 1}");
    assert_eq!(status, 400, "missing required fields");
    // k = 0 parses but is rejected where the engine path would reject it.
    let zero_k = SIM_BODY.replace("\"k\": 24", "\"k\": 0");
    let (status, resp) = request(server.addr, "POST", "/estimate", zero_k.as_bytes());
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&resp));
    let err = Json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert!(err
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("positive"));
    let stats = server.stop();
    assert_eq!(stats.client_errors, 3);
    assert_eq!(stats.ok, 0);
}

// ---------------------------------------------------------------------------
// Batching axis: requests coalesced through the lockstep BatchEngine must be
// observationally identical to scalar execution.
// ---------------------------------------------------------------------------

fn coalescing_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        coalesce_window: Some(Duration::from_millis(200)),
        max_batch: 4,
        ..ServerConfig::default()
    }
}

#[test]
fn coalesced_concurrent_requests_are_byte_identical_to_scalar_runs() {
    // K concurrent same-(workload, p, budget) requests arrive inside one
    // coalescing window; each response must match the sequential scalar
    // baseline byte for byte, and the stats must prove batching happened.
    let server = start_server(coalescing_config());
    let expected = direct_report_json();
    let addr = server.addr;
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let (status, body) = request(addr, "POST", "/simulate", SIM_BODY.as_bytes());
                assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
                assert_eq!(
                    String::from_utf8(body).unwrap(),
                    expected,
                    "batched response must match the scalar baseline byte for byte"
                );
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let stats = server.stop();
    assert_eq!(stats.ok, 4);
    assert_eq!(
        stats.batched_requests, 4,
        "every request must have gone through the coalescer"
    );
    assert!(stats.batches >= 1 && stats.batches <= 4);
}

#[test]
fn mixed_workloads_never_cross_batch() {
    // Two different workloads submitted concurrently under coalescing:
    // each must get its own correct report (a cross-batch would run the
    // wrong settings against the wrong flat workload).
    let server = start_server(coalescing_config());
    let addr = server.addr;
    let other_body = r#"{
        "workload": {"kind": "sawtooth", "pages": 16, "reps": 3, "seed": 5},
        "p": 4, "k": 24, "q": 2,
        "arbitration": "priority",
        "seed": 7
    }"#;
    let other_expected = {
        let spec = WorkloadSpec::Sawtooth { pages: 16, reps: 3 };
        let workload = spec.workload(4, 5, TraceOptions::default());
        let report = SimBuilder::new()
            .hbm_slots(24)
            .channels(2)
            .arbitration(ArbitrationKind::Priority)
            .seed(7)
            .run(&workload);
        report_to_json(&report)
    };
    let expected = direct_report_json();
    let clients: Vec<_> = (0..6)
        .map(|i| {
            let (body, expected) = if i % 2 == 0 {
                (SIM_BODY.to_string(), expected.clone())
            } else {
                (other_body.to_string(), other_expected.clone())
            };
            std::thread::spawn(move || {
                let (status, resp) = request(addr, "POST", "/simulate", body.as_bytes());
                assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
                assert_eq!(String::from_utf8(resp).unwrap(), expected);
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let stats = server.stop();
    assert_eq!(stats.ok, 6);
    assert_eq!(stats.batched_requests, 6);
}

#[test]
fn over_budget_request_coalesces_separately_and_truncates_alone() {
    // A tick-budgeted request shares a workload with unbudgeted ones but
    // has a different batch key (the budget is part of it), so it must
    // truncate at its own budget while the others complete fully.
    let server = start_server(coalescing_config());
    let addr = server.addr;
    let expected = direct_report_json();
    let budgeted_body = r#"{
        "workload": {"kind": "cyclic", "pages": 32, "reps": 4, "seed": 9},
        "p": 4, "k": 24, "q": 2,
        "arbitration": "priority",
        "seed": 7,
        "max_ticks": 10
    }"#;
    let mut clients: Vec<_> = (0..3)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let (status, body) = request(addr, "POST", "/simulate", SIM_BODY.as_bytes());
                assert_eq!(status, 200);
                assert_eq!(String::from_utf8(body).unwrap(), expected);
            })
        })
        .collect();
    clients.push(std::thread::spawn(move || {
        let (status, body) = request(addr, "POST", "/simulate", budgeted_body.as_bytes());
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let report = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(report.get("truncated").unwrap().as_bool(), Some(true));
        assert_eq!(report.get("makespan").unwrap().as_u64(), Some(10));
    }));
    for c in clients {
        c.join().expect("client thread");
    }
    let stats = server.stop();
    assert_eq!(stats.ok, 4);
    assert_eq!(stats.batched_requests, 4);
    assert!(
        stats.batches >= 2,
        "a budgeted request must not share a batch with unbudgeted ones"
    );
}

// ---------------------------------------------------------------------------
// Sharded serving.
// ---------------------------------------------------------------------------

#[test]
fn sharded_server_serves_correctly_and_reports_per_shard_counters() {
    let config = ServerConfig {
        shards: 2,
        ..test_config()
    };
    let server = start_server(config);
    let expected = direct_report_json();
    // Separate connections round-robin across shards.
    for _ in 0..4 {
        let (status, body) = request(server.addr, "POST", "/simulate", SIM_BODY.as_bytes());
        assert_eq!(status, 200);
        assert_eq!(
            String::from_utf8(body).unwrap(),
            expected,
            "every shard must serve identical bytes"
        );
    }
    let (status, body) = request(server.addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    let health = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let shards = health.get("shards").unwrap().as_array().unwrap();
    assert_eq!(shards.len(), 2, "healthz must report each shard");
    let per_shard_ok: u64 = shards
        .iter()
        .map(|s| s.get("ok").unwrap().as_u64().unwrap())
        .sum();
    // The top-level counters are the per-shard sums (snapshotted before
    // this healthz response itself is counted).
    assert_eq!(health.get("ok").unwrap().as_u64(), Some(per_shard_ok));
    assert_eq!(per_shard_ok, 4);
    for s in shards {
        assert!(
            s.get("ok").unwrap().as_u64().unwrap() >= 1,
            "round-robin dispatch must spread requests across shards: {body:?}",
            body = String::from_utf8_lossy(&body)
        );
    }
    let stats = server.stop();
    assert_eq!(stats.ok, 5, "aggregated stats must sum across shards");
}

// ---------------------------------------------------------------------------
// Streaming sessions.
// ---------------------------------------------------------------------------

/// Opens a session and returns the parsed JSONL event lines.
fn run_session(addr: SocketAddr, body: &str) -> Vec<Json> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_request(&mut stream, "POST", "/session", body.as_bytes()).expect("write request");
    let deadline = Instant::now() + Duration::from_secs(30);
    let (head, leftover) = read_response_head(&mut stream, deadline).expect("response head");
    assert_eq!(head.status, 200, "session open must succeed");
    assert!(head.chunked, "session stream must be chunked");
    let mut lines = ChunkedLines::new(leftover);
    let mut events = Vec::new();
    while let Some(line) = lines.next_line(&mut stream, deadline).expect("read line") {
        if line.is_empty() {
            continue;
        }
        events.push(Json::parse(std::str::from_utf8(&line).unwrap()).expect("valid JSONL line"));
    }
    events
}

const SESSION_BODY: &str = r#"{
    "workload": {"kind": "cyclic", "pages": 64, "reps": 50, "seed": 1},
    "p": 8, "k": 16,
    "arbitration": "fifo",
    "faults": {"outages": [{"start": 10, "end": 20, "channels": 1}]},
    "snapshot_period_ticks": 64
}"#;

#[test]
fn session_streams_snapshots_and_faults_then_completes() {
    let server = start_server(test_config());
    // The stateless response for the same simulation is the byte baseline
    // for the session's terminal report (the simulate path ignores the
    // session-only streaming knobs).
    let (status, scalar) = request(server.addr, "POST", "/simulate", SESSION_BODY.as_bytes());
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&scalar));
    let scalar_report = String::from_utf8(scalar).unwrap();

    let events = run_session(server.addr, SESSION_BODY);
    assert!(events.len() >= 3, "expected a multi-line stream");
    assert_eq!(events[0].get("event").unwrap().as_str(), Some("open"));
    assert_eq!(events[0].get("p").unwrap().as_u64(), Some(8));
    assert_eq!(
        events[0].get("snapshot_period_ticks").unwrap().as_u64(),
        Some(64)
    );
    let snapshots: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("event").unwrap().as_str() == Some("snapshot"))
        .collect();
    assert!(
        snapshots.len() >= 3,
        "expected at least 3 snapshots, got {}",
        snapshots.len()
    );
    let mut last_tick = 0;
    for snap in &snapshots {
        let tick = snap.get("tick").unwrap().as_u64().unwrap();
        assert!(tick > last_tick, "snapshot ticks must advance");
        last_tick = tick;
        let report = snap.get("report").unwrap();
        assert_eq!(
            report.get("truncated").unwrap().as_bool(),
            Some(true),
            "mid-run snapshots are truncated by definition"
        );
    }
    let faults: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("event").unwrap().as_str() == Some("fault"))
        .collect();
    assert!(
        !faults.is_empty(),
        "the injected outage must stream a fault"
    );
    assert!(faults
        .iter()
        .any(|f| f.get("kind").unwrap().as_str() == Some("outage_start")));
    let done = events.last().unwrap();
    assert_eq!(done.get("event").unwrap().as_str(), Some("done"));
    assert_eq!(done.get("reason").unwrap().as_str(), Some("completed"));
    assert_eq!(
        done.get("report").unwrap().to_string(),
        scalar_report,
        "a completed session's final report must match /simulate byte for byte"
    );
    let stats = server.stop();
    assert_eq!(stats.sessions_opened, 1);
    assert_eq!(stats.sessions_closed, 1);
    assert_eq!(stats.sessions_reaped, 0);
}

#[test]
fn session_drains_with_a_terminal_line_on_shutdown() {
    let server = start_server(test_config());
    // Paced stream: the session would take many seconds; tripping the flag
    // mid-stream must end it promptly with a "draining" terminal line.
    let body = r#"{
        "workload": {"kind": "cyclic", "pages": 64, "reps": 50, "seed": 1},
        "p": 8, "k": 16,
        "arbitration": "fifo",
        "snapshot_period_ticks": 16,
        "pace_ms": 300
    }"#;
    let addr = server.addr;
    let flag = server.flag.clone();
    let tripper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        flag.trip();
    });
    let events = run_session(addr, body);
    tripper.join().unwrap();
    let done = events.last().expect("terminal line");
    assert_eq!(done.get("event").unwrap().as_str(), Some("done"));
    assert_eq!(done.get("reason").unwrap().as_str(), Some("draining"));
    let stats = server
        .handle
        .join()
        .expect("server drains with open session");
    assert_eq!(stats.sessions_opened, 1);
    assert_eq!(stats.sessions_closed, 1);
}

#[test]
fn session_limit_rejects_with_429_and_draining_server_rejects_with_503() {
    let config = ServerConfig {
        max_sessions: 0,
        ..test_config()
    };
    let server = start_server(config);
    // Gauge full and no paced victim to shed: explicit 429 + Retry-After.
    let (status, headers, body) =
        request_full(server.addr, "POST", "/session", SESSION_BODY.as_bytes());
    assert_eq!(status, 429, "{}", String::from_utf8_lossy(&body));
    assert_eq!(retry_after_secs(&headers), 2);

    // Requests whose body completes after the drain flag trips land on the
    // draining rejection: 503 + Retry-After, for both open and resume.
    let open_conn = begin_request(server.addr, "/session", SESSION_BODY.as_bytes());
    let resume_conn = begin_request(server.addr, "/session/resume", br#"{"token": "whatever"}"#);
    std::thread::sleep(Duration::from_millis(150));
    server.flag.trip();
    for conn in [open_conn, resume_conn] {
        let (status, headers, body) = conn.finish();
        assert_eq!(status, 503, "{}", String::from_utf8_lossy(&body));
        assert!(String::from_utf8_lossy(&body).contains("draining"));
        assert_eq!(retry_after_secs(&headers), 5);
    }
    let stats = server.handle.join().expect("server thread");
    assert_eq!(stats.rejected, 1);
    assert!(stats.shed >= 2, "both draining rejections count as shed");
    assert_eq!(stats.sessions_opened, 0);
}

#[test]
fn malformed_session_request_gets_400() {
    let server = start_server(test_config());
    let (status, _) = request(server.addr, "POST", "/session", b"{not json");
    assert_eq!(status, 400);
    let body = SESSION_BODY.replace(
        "\"snapshot_period_ticks\": 64",
        "\"snapshot_period_ticks\": 0",
    );
    let (status, _) = request(server.addr, "POST", "/session", body.as_bytes());
    assert_eq!(status, 400, "a zero snapshot period is invalid");
    server.stop();
}

#[test]
fn stalled_request_head_gets_408_and_frees_the_slot() {
    // Slowloris shape: a client sends part of a request head and goes
    // quiet. The read must be bounded by `request_timeout` and answered
    // with a typed 408, not hold a connection slot forever.
    let config = ServerConfig {
        request_timeout: Duration::from_millis(250),
        ..test_config()
    };
    let server = start_server(config);
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .write_all(b"POST /simulate HTTP/1.1\r\ncontent-")
        .expect("write partial head");
    stream.flush().unwrap();
    let (status, _headers, body) =
        read_response_full(&mut stream, Instant::now() + Duration::from_secs(10))
            .expect("408 response");
    assert_eq!(status, 408, "{}", String::from_utf8_lossy(&body));
    let err = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(err
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("incomplete"));
    // The server keeps serving; idle keep-alive clients are *not* 408'd
    // (a fresh connection may take longer than request_timeout to send
    // its first byte only once it has sent any).
    let (status, _) = request(server.addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    let stats = server.stop();
    assert!(stats.client_errors >= 1);
}

// ---------------------------------------------------------------------------
// Resume tokens, alert rules, shedding, and the fixed-pool thread bound.
// ---------------------------------------------------------------------------

/// [`SESSION_BODY`] plus alert rules: the outage rule fires once (the
/// injected 10-tick outage exceeds the 5-tick bound); the blocked-frac
/// rule never can (the fraction is ≤ 1).
const ALERT_SESSION_BODY: &str = r#"{
    "workload": {"kind": "cyclic", "pages": 64, "reps": 50, "seed": 1},
    "p": 8, "k": 16,
    "arbitration": "fifo",
    "faults": {"outages": [{"start": 10, "end": 20, "channels": 1}]},
    "snapshot_period_ticks": 64,
    "alerts": [
        {"kind": "channel_outage_longer_than", "ticks": 5},
        {"kind": "blocked_frac_above", "x": 1.5}
    ]
}"#;

/// Opens a chunked stream and returns the socket plus its line reader.
fn open_stream(addr: SocketAddr, path: &str, body: &[u8]) -> (TcpStream, ChunkedLines) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_request(&mut stream, "POST", path, body).expect("write request");
    let deadline = Instant::now() + Duration::from_secs(30);
    let (head, leftover) = read_response_head(&mut stream, deadline).expect("response head");
    assert_eq!(head.status, 200, "stream open must succeed");
    assert!(head.chunked, "stream must be chunked");
    (stream, ChunkedLines::new(leftover))
}

/// Reads a stream to its end, returning the raw JSONL lines (the unit of
/// byte-identity for resume).
fn read_all_lines(stream: &mut TcpStream, lines: &mut ChunkedLines) -> Vec<String> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut out = Vec::new();
    while let Some(line) = lines.next_line(stream, deadline).expect("read line") {
        if !line.is_empty() {
            out.push(String::from_utf8(line).expect("utf-8 line"));
        }
    }
    out
}

#[test]
fn resumed_session_replays_a_byte_identical_suffix() {
    let server = start_server(test_config());
    // Golden uninterrupted stream for the byte baseline.
    let (mut gold_stream, mut gold_lines) =
        open_stream(server.addr, "/session", ALERT_SESSION_BODY.as_bytes());
    let golden = read_all_lines(&mut gold_stream, &mut gold_lines);
    assert!(golden.last().unwrap().contains("\"event\":\"done\""));

    // Interrupted client: read through the first snapshot, then vanish.
    let (mut stream, mut lines) =
        open_stream(server.addr, "/session", ALERT_SESSION_BODY.as_bytes());
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut token = String::new();
    let acked = loop {
        let line = lines
            .next_line(&mut stream, deadline)
            .expect("read line")
            .expect("line before eof");
        if line.is_empty() {
            continue;
        }
        let event = Json::parse(std::str::from_utf8(&line).unwrap()).unwrap();
        match event.get("event").unwrap().as_str().unwrap() {
            "open" => token = event.get("token").unwrap().as_str().unwrap().to_string(),
            "snapshot" => break event.get("tick").unwrap().as_u64().unwrap(),
            _ => {}
        }
    };
    assert!(!token.is_empty(), "open line must carry a resume token");
    drop(stream); // mid-stream disconnect

    // Reattach at the acknowledged snapshot. The replayed stream after the
    // resumed open line must equal the golden stream after that snapshot
    // line, byte for byte.
    let resume_body = format!(r#"{{"token": "{token}", "last_tick": {acked}}}"#);
    let (mut stream, mut lines) =
        open_stream(server.addr, "/session/resume", resume_body.as_bytes());
    let resumed = read_all_lines(&mut stream, &mut lines);
    let reopen = Json::parse(&resumed[0]).unwrap();
    assert_eq!(reopen.get("event").unwrap().as_str(), Some("open"));
    assert_eq!(
        reopen.get("resumed_from_tick").unwrap().as_u64(),
        Some(acked)
    );

    let acked_idx = golden
        .iter()
        .position(|l| {
            let v = Json::parse(l).unwrap();
            v.get("event").unwrap().as_str() == Some("snapshot")
                && v.get("tick").unwrap().as_u64() == Some(acked)
        })
        .expect("golden stream contains the acknowledged snapshot");
    assert_eq!(
        &resumed[1..],
        &golden[acked_idx + 1..],
        "replayed suffix must be byte-identical to the uninterrupted stream"
    );
    // The suffix starts with the alert fired *at* the acknowledged
    // snapshot — alert lines follow their snapshot, so they replay.
    assert!(
        resumed[1].contains("\"event\":\"alert\""),
        "first replayed line should be the tick-{acked} alert: {}",
        resumed[1]
    );
    let stats = server.stop();
    assert_eq!(stats.sessions_resumed, 1);
    assert!(
        stats.alerts >= 3,
        "golden, interrupted, and resumed all fire"
    );
}

#[test]
fn resume_with_unknown_or_expired_token_gets_410() {
    let server = start_server(test_config());
    let (status, body) = request(
        server.addr,
        "POST",
        "/session/resume",
        br#"{"token": "no-such-token"}"#,
    );
    assert_eq!(status, 410, "{}", String::from_utf8_lossy(&body));
    let err = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(err
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("token"));
    let stats = server.stop();
    assert!(stats.client_errors >= 1);

    // With a zero TTL every minted token has expired by lookup time.
    let config = ServerConfig {
        resume_ttl: Duration::ZERO,
        ..test_config()
    };
    let server = start_server(config);
    let events = run_session(server.addr, SESSION_BODY);
    let token = events[0]
        .get("token")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let resume_body = format!(r#"{{"token": "{token}"}}"#);
    let (status, _) = request(
        server.addr,
        "POST",
        "/session/resume",
        resume_body.as_bytes(),
    );
    assert_eq!(status, 410, "an expired token is Gone, not a server error");
    server.stop();
}

#[test]
fn newest_paced_session_is_shed_to_admit_new_demand() {
    let config = ServerConfig {
        max_sessions: 1,
        session_workers: 1,
        ..test_config()
    };
    let server = start_server(config);
    // A paced session parks between rounds for 500 ms at a time — the shed
    // policy's victim pool.
    let paced_body = r#"{
        "workload": {"kind": "cyclic", "pages": 64, "reps": 50, "seed": 1},
        "p": 8, "k": 16,
        "arbitration": "fifo",
        "snapshot_period_ticks": 16,
        "pace_ms": 500
    }"#;
    let addr = server.addr;
    let paced = std::thread::spawn(move || run_session(addr, paced_body));
    std::thread::sleep(Duration::from_millis(250));
    // The gauge is full: the new session evicts the paced one (graceful
    // degradation) instead of being turned away, and completes normally.
    let events = run_session(server.addr, SESSION_BODY);
    let done = events.last().expect("terminal line");
    assert_eq!(done.get("reason").unwrap().as_str(), Some("completed"));
    let shed_events = paced.join().expect("paced client");
    let shed_done = shed_events.last().expect("terminal line");
    assert_eq!(shed_done.get("event").unwrap().as_str(), Some("done"));
    assert_eq!(
        shed_done.get("reason").unwrap().as_str(),
        Some("shed"),
        "the evicted session must end with a complete shed line"
    );
    let stats = server.stop();
    assert_eq!(stats.sessions_shed, 1);
    assert_eq!(stats.sessions_opened, 2);
    assert_eq!(stats.rejected, 0, "shedding admitted the request instead");
}

#[test]
fn alert_rules_fire_at_snapshots_and_are_counted() {
    let server = start_server(test_config());
    let events = run_session(server.addr, ALERT_SESSION_BODY);
    let alerts: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("event").unwrap().as_str() == Some("alert"))
        .collect();
    assert_eq!(alerts.len(), 1, "exactly the outage rule fires, once");
    let alert = alerts[0];
    assert_eq!(
        alert.get("kind").unwrap().as_str(),
        Some("channel_outage_longer_than")
    );
    assert_eq!(alert.get("rule").unwrap().as_u64(), Some(0));
    assert_eq!(alert.get("value").unwrap().as_f64(), Some(10.0));
    assert_eq!(alert.get("threshold").unwrap().as_f64(), Some(5.0));
    let tick = alert.get("tick").unwrap().as_u64().unwrap();
    assert!(tick >= 20, "the rule can only fire after the outage ends");
    // The alert line directly follows the snapshot that triggered it.
    let i = events
        .iter()
        .position(|e| e.get("event").unwrap().as_str() == Some("alert"))
        .unwrap();
    assert_eq!(
        events[i - 1].get("event").unwrap().as_str(),
        Some("snapshot")
    );
    assert_eq!(events[i - 1].get("tick").unwrap().as_u64(), Some(tick));
    // The firing is visible in /healthz and the final stats.
    let (status, body) = request(server.addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    let health = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(health.get("alerts").unwrap().as_u64(), Some(1));
    let stats = server.stop();
    assert_eq!(stats.alerts, 1);
}

/// Current thread count of this process (test + in-process server).
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("read /proc/self/status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads line")
        .trim()
        .parse()
        .expect("thread count")
}

#[test]
#[cfg(target_os = "linux")]
fn a_thousand_paced_sessions_run_on_a_fixed_thread_pool() {
    // The tentpole's acceptance bar: 1000 concurrent paced sessions on a
    // fixed mux pool, with OS thread count bounded by
    // session_workers + shards·workers + O(1) — not by the session count.
    const SESSIONS: usize = 1000;
    const OPENERS: usize = 8;
    let config = ServerConfig {
        shards: 1,
        workers: 1,
        session_workers: 4,
        max_sessions: SESSIONS + 8,
        max_connections: SESSIONS + 64,
        ..ServerConfig::default()
    };
    let server = start_server(config);
    let baseline = thread_count();
    // Small engine, long pace: each session lives ~seconds on wall pacing
    // alone, so opens overlap into genuine concurrency; per-session output
    // (~10 KB) fits in socket buffers, so unread streams never stall.
    let body = r#"{
        "workload": {"kind": "cyclic", "pages": 16, "reps": 8, "seed": 3},
        "p": 2, "k": 8,
        "arbitration": "fifo",
        "snapshot_period_ticks": 32,
        "pace_ms": 300
    }"#;
    let addr = server.addr;
    let streams: std::sync::Arc<std::sync::Mutex<Vec<TcpStream>>> =
        std::sync::Arc::new(std::sync::Mutex::new(Vec::with_capacity(SESSIONS)));
    let openers: Vec<_> = (0..OPENERS)
        .map(|_| {
            let streams = std::sync::Arc::clone(&streams);
            std::thread::spawn(move || {
                for _ in 0..SESSIONS / OPENERS {
                    let mut s = TcpStream::connect(addr).expect("connect");
                    write_request(&mut s, "POST", "/session", body.as_bytes())
                        .expect("write session request");
                    streams.lock().unwrap().push(s);
                }
            })
        })
        .collect();
    for o in openers {
        o.join().expect("opener thread");
    }
    // Poll /healthz until every session closed, sampling the process
    // thread count and open-session gauge at each step.
    let mut max_threads = thread_count().max(baseline);
    let mut max_active = 0u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(
            Instant::now() < deadline,
            "sessions did not complete in time"
        );
        let (status, body) = request(addr, "GET", "/healthz", b"");
        assert_eq!(status, 200);
        let health = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        max_active = max_active.max(health.get("active_sessions").unwrap().as_u64().unwrap());
        max_threads = max_threads.max(thread_count());
        let closed = health.get("sessions_closed").unwrap().as_u64().unwrap();
        let reaped = health.get("sessions_reaped").unwrap().as_u64().unwrap();
        let shed = health.get("sessions_shed").unwrap().as_u64().unwrap();
        if closed + reaped + shed >= SESSIONS as u64 {
            assert_eq!(
                closed, SESSIONS as u64,
                "every session must close cleanly (reaped {reaped}, shed {shed})"
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    // The bound: mux pool + shard workers + slack for opener/connection/
    // healthz threads. The point is the order of magnitude — 1000 open
    // sessions must not mean anywhere near 1000 threads.
    let budget = 4 + 1 + OPENERS + 16;
    assert!(
        max_threads <= baseline + budget,
        "thread count must stay fixed: baseline {baseline}, peak {max_threads}"
    );
    assert!(
        max_active >= 100,
        "sessions must genuinely overlap (peak open: {max_active})"
    );
    // Every buffered stream ends with a completed done line.
    let mut streams = streams.lock().unwrap();
    let mut completed = 0usize;
    for s in streams.iter_mut() {
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = Vec::new();
        std::io::Read::read_to_end(s, &mut buf).expect("drain stream");
        if String::from_utf8_lossy(&buf).contains("\"reason\":\"completed\"") {
            completed += 1;
        }
    }
    assert_eq!(completed, SESSIONS);
    drop(streams);
    let stats = server.stop();
    assert_eq!(stats.sessions_opened as usize, SESSIONS);
    assert_eq!(stats.sessions_closed as usize, SESSIONS);
    assert_eq!(stats.sessions_reaped, 0);
}

#[test]
fn graceful_drain_finishes_in_flight_work_then_exits() {
    let server = start_server(test_config());
    // Keep-alive connection: first request served, then the flag trips;
    // the connection must close after the in-flight exchange rather than
    // mid-response, and run() must return.
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    write_request(&mut stream, "POST", "/simulate", SIM_BODY.as_bytes()).unwrap();
    let (status, _) = read_response(&mut stream, Instant::now() + Duration::from_secs(30)).unwrap();
    assert_eq!(status, 200);
    let addr = server.addr;
    let stats = server.stop();
    assert_eq!(stats.ok, 1);
    // New connections after drain must be refused (the listener is gone).
    assert!(TcpStream::connect(addr).is_err());
}
