//! In-process integration tests: a real [`Server`] on an ephemeral port,
//! real TCP clients, and byte-level comparison of served reports against
//! direct `SimBuilder` runs.

use hbm_core::{ArbitrationKind, SimBuilder};
use hbm_serve::http::{read_response, write_request};
use hbm_serve::json::Json;
use hbm_serve::proto::report_to_json;
use hbm_serve::server::{Server, ServerConfig, ServerStats};
use hbm_serve::shutdown::ShutdownFlag;
use hbm_traces::{TraceOptions, WorkloadSpec};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running server plus the handle to join it.
struct TestServer {
    addr: SocketAddr,
    flag: ShutdownFlag,
    handle: JoinHandle<ServerStats>,
}

fn start_server(config: ServerConfig) -> TestServer {
    let flag = ShutdownFlag::new();
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let run_flag = flag.clone();
    let handle = std::thread::spawn(move || server.run(&run_flag).expect("server run"));
    TestServer { addr, flag, handle }
}

impl TestServer {
    fn stop(self) -> ServerStats {
        self.flag.trip();
        self.handle.join().expect("server thread")
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_request(&mut stream, method, path, body).expect("write request");
    read_response(&mut stream, Instant::now() + Duration::from_secs(30)).expect("read response")
}

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        enable_test_endpoints: true,
        ..ServerConfig::default()
    }
}

const SIM_BODY: &str = r#"{
    "workload": {"kind": "cyclic", "pages": 32, "reps": 4, "seed": 9},
    "p": 4, "k": 24, "q": 2,
    "arbitration": "priority",
    "seed": 7
}"#;

/// The exact report the server must serve for [`SIM_BODY`], computed
/// through the plain (unshared, unbudgeted) `SimBuilder` path.
fn direct_report_json() -> String {
    let spec = WorkloadSpec::Cyclic { pages: 32, reps: 4 };
    let workload = spec.workload(4, 9, TraceOptions::default());
    let report = SimBuilder::new()
        .hbm_slots(24)
        .channels(2)
        .arbitration(ArbitrationKind::Priority)
        .seed(7)
        .run(&workload);
    report_to_json(&report)
}

#[test]
fn served_report_is_byte_identical_to_direct_simbuilder_run() {
    let server = start_server(test_config());
    let expected = direct_report_json();
    // Twice: once cold (pool generated for this request), once warm
    // (memoized pool + flat) — the bytes must not depend on which path ran.
    for round in ["cold", "warm"] {
        let (status, body) = request(server.addr, "POST", "/simulate", SIM_BODY.as_bytes());
        assert_eq!(status, 200, "{round}: {}", String::from_utf8_lossy(&body));
        assert_eq!(
            String::from_utf8(body).unwrap(),
            expected,
            "{round} response must match the direct SimBuilder run byte for byte"
        );
    }
    let stats = server.stop();
    assert_eq!(stats.cold_runs, 1);
    assert_eq!(stats.warm_runs, 1);
}

#[test]
fn concurrent_clients_all_get_identical_correct_reports() {
    let server = start_server(test_config());
    let expected = direct_report_json();
    let addr = server.addr;
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let (status, body) = request(addr, "POST", "/simulate", SIM_BODY.as_bytes());
                assert_eq!(status, 200);
                assert_eq!(String::from_utf8(body).unwrap(), expected);
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let stats = server.stop();
    assert_eq!(stats.ok, 8);
    assert_eq!(stats.cold_runs + stats.warm_runs, 8);
}

#[test]
fn panicking_request_gets_500_and_the_server_survives() {
    let server = start_server(test_config());
    let (status, body) = request(server.addr, "POST", "/test/panic", b"");
    assert_eq!(status, 500);
    let err = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(err
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("panicked"));
    // The worker pool and every other path must still function.
    let (status, body) = request(server.addr, "POST", "/simulate", SIM_BODY.as_bytes());
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let stats = server.stop();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.ok, 1);
}

#[test]
fn over_budget_request_returns_truncated_report_not_a_hang() {
    let server = start_server(test_config());
    // A tick budget far below the workload's makespan: the run must stop
    // at the budget and say so.
    let body = r#"{
        "workload": {"kind": "cyclic", "pages": 64, "reps": 50, "seed": 1},
        "p": 8, "k": 16,
        "arbitration": "fifo",
        "max_ticks": 50
    }"#;
    let (status, resp) = request(server.addr, "POST", "/simulate", body.as_bytes());
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
    let report = Json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert_eq!(report.get("truncated").unwrap().as_bool(), Some(true));
    assert_eq!(report.get("makespan").unwrap().as_u64(), Some(50));
    server.stop();
}

#[test]
fn server_ceiling_clamps_unbudgeted_requests() {
    // The server's own ceiling applies even when the client asks for no
    // budget at all.
    let config = ServerConfig {
        budget_ceiling: hbm_serve::CellBudget {
            max_ticks: Some(25),
            max_wall: None,
        },
        ..test_config()
    };
    let server = start_server(config);
    let body = r#"{
        "workload": {"kind": "cyclic", "pages": 64, "reps": 50, "seed": 1},
        "p": 8, "k": 16,
        "arbitration": "fifo"
    }"#;
    let (status, resp) = request(server.addr, "POST", "/simulate", body.as_bytes());
    assert_eq!(status, 200);
    let report = Json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert_eq!(report.get("truncated").unwrap().as_bool(), Some(true));
    assert_eq!(report.get("makespan").unwrap().as_u64(), Some(25));
    server.stop();
}

#[test]
fn full_queue_rejects_with_429() {
    // Zero queue capacity: every submission is rejected before execution —
    // deterministic admission-control behaviour.
    let config = ServerConfig {
        queue_capacity: 0,
        ..test_config()
    };
    let server = start_server(config);
    let (status, body) = request(server.addr, "POST", "/simulate", SIM_BODY.as_bytes());
    assert_eq!(status, 429, "{}", String::from_utf8_lossy(&body));
    let err = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(err
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("queue full"));
    let stats = server.stop();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.ok, 0);
}

#[test]
fn malformed_and_unknown_requests_get_4xx() {
    let server = start_server(test_config());
    let (status, _) = request(server.addr, "POST", "/simulate", b"{not json");
    assert_eq!(status, 400);
    let (status, _) = request(server.addr, "POST", "/simulate", b"{\"p\": 1}");
    assert_eq!(status, 400, "missing required fields");
    let (status, _) = request(server.addr, "GET", "/nope", b"");
    assert_eq!(status, 404);
    let (status, _) = request(
        server.addr,
        "POST",
        "/simulate",
        br#"{"workload": "no-such-builtin", "p": 1, "k": 16}"#,
    );
    assert_eq!(status, 400);
    // /test/panic must 404 when test endpoints are disabled.
    let prod = start_server(ServerConfig::default());
    let (status, _) = request(prod.addr, "POST", "/test/panic", b"");
    assert_eq!(status, 404);
    prod.stop();
    server.stop();
}

#[test]
fn healthz_reports_counters_and_drain_state() {
    let server = start_server(test_config());
    let (status, body) = request(server.addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    let health = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("active_connections").unwrap().as_u64(), Some(1));
    server.stop();
}

#[test]
fn graceful_drain_finishes_in_flight_work_then_exits() {
    let server = start_server(test_config());
    // Keep-alive connection: first request served, then the flag trips;
    // the connection must close after the in-flight exchange rather than
    // mid-response, and run() must return.
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    write_request(&mut stream, "POST", "/simulate", SIM_BODY.as_bytes()).unwrap();
    let (status, _) = read_response(&mut stream, Instant::now() + Duration::from_secs(30)).unwrap();
    assert_eq!(status, 200);
    let addr = server.addr;
    let stats = server.stop();
    assert_eq!(stats.ok, 1);
    // New connections after drain must be refused (the listener is gone).
    assert!(TcpStream::connect(addr).is_err());
}
