//! A minimal, dependency-free JSON codec.
//!
//! The workspace's `serde` is an offline no-op stand-in, so every crate
//! that needs real JSON has hand-rolled it — `hbm-experiments::journal`
//! writes JSONL with `format!` and re-reads it with ad-hoc field scanners.
//! This module factors that encoding into one shared codec used by the
//! journal, the HTTP server's request/response wire format, and the
//! benchmark documents.
//!
//! Design constraints, in order:
//!
//! 1. **Byte determinism.** Serialization is a pure function of the value:
//!    objects keep insertion order ([`Json::Obj`] is a `Vec`, not a map),
//!    floats use Rust's shortest-roundtrip formatter (via [`fmt_f64`]),
//!    and there is no configurable whitespace. Two equal values always
//!    serialize to identical bytes — the property the journal's
//!    resume-byte-identity and the server's report byte-compare tests sit
//!    on.
//! 2. **Integer exactness.** Tick counts are `u64` and must survive a
//!    round trip bit for bit, so numbers are *not* uniformly `f64`:
//!    [`Number`] keeps unsigned/signed integers exact and only falls back
//!    to `f64` for genuine fractions and out-of-range magnitudes.
//! 3. **Hostile-input hygiene** (mirroring `hbm_traces::io::TraceIoError`):
//!    parsing is bounded — input size and nesting depth are capped by
//!    [`JsonLimits`], allocation is proportional to input actually read
//!    (JSON has no length prefixes to lie with, and we never `reserve`
//!    from parsed data), trailing garbage is an error, and every failure
//!    is a typed [`JsonError`] with a byte offset, never a panic.

use std::fmt;

/// Parser resource limits. Defaults are generous for trusted inputs; the
/// HTTP server tightens them per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonLimits {
    /// Maximum input length in bytes.
    pub max_bytes: usize,
    /// Maximum container nesting depth (arrays + objects).
    pub max_depth: usize,
}

impl Default for JsonLimits {
    fn default() -> Self {
        JsonLimits {
            max_bytes: 16 << 20,
            max_depth: 64,
        }
    }
}

/// A typed JSON parse failure. Offsets are byte positions into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Input exceeds [`JsonLimits::max_bytes`].
    InputTooLarge {
        /// The configured limit.
        limit: usize,
        /// The offered input length.
        actual: usize,
    },
    /// Nesting exceeds [`JsonLimits::max_depth`].
    TooDeep {
        /// The configured limit.
        limit: usize,
    },
    /// Input ended mid-value.
    UnexpectedEof,
    /// A byte that cannot start or continue the expected token.
    UnexpectedChar {
        /// Byte offset of the offending character.
        at: usize,
    },
    /// A malformed number token.
    BadNumber {
        /// Byte offset where the number started.
        at: usize,
    },
    /// A malformed string escape (`\x`, truncated `\u`, bad surrogate).
    BadEscape {
        /// Byte offset of the backslash.
        at: usize,
    },
    /// Bytes left over after the top-level value.
    TrailingGarbage {
        /// Byte offset of the first trailing byte.
        at: usize,
    },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::InputTooLarge { limit, actual } => {
                write!(f, "json input of {actual} bytes exceeds limit {limit}")
            }
            JsonError::TooDeep { limit } => {
                write!(f, "json nesting exceeds depth limit {limit}")
            }
            JsonError::UnexpectedEof => write!(f, "json input ended mid-value"),
            JsonError::UnexpectedChar { at } => {
                write!(f, "unexpected character at byte {at}")
            }
            JsonError::BadNumber { at } => write!(f, "malformed number at byte {at}"),
            JsonError::BadEscape { at } => write!(f, "malformed string escape at byte {at}"),
            JsonError::TrailingGarbage { at } => {
                write!(f, "trailing garbage after json value at byte {at}")
            }
        }
    }
}

impl std::error::Error for JsonError {}

/// A JSON number, kept exact where the wire text was exact.
///
/// Integer-looking tokens (no `.`, no exponent) parse to [`Number::U`] /
/// [`Number::I`] and serialize back as bare digits; everything else is an
/// [`Number::F`] formatted by [`fmt_f64`] (shortest roundtrip, so a parsed
/// float re-serializes to the same bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer that fits `u64`.
    U(u64),
    /// A negative integer that fits `i64`.
    I(i64),
    /// Everything else.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy above 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as `u64`, if it is exactly a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) => {
                if v.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&v) {
                    Some(v as u64)
                } else {
                    None
                }
            }
        }
    }

    /// The value as `i64`, if it is exactly an in-range integer.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v) => {
                if v.fract() == 0.0
                    && (-9.007_199_254_740_992e15..=9.007_199_254_740_992e15).contains(&v)
                {
                    Some(v as i64)
                } else {
                    None
                }
            }
        }
    }
}

/// A parsed JSON value. Objects preserve insertion order so serialization
/// is deterministic; duplicate keys are kept as-is and [`Json::get`]
/// returns the first.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `input` with [`JsonLimits::default`].
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        Json::parse_with_limits(input, &JsonLimits::default())
    }

    /// Parses `input` under explicit resource limits.
    pub fn parse_with_limits(input: &str, limits: &JsonLimits) -> Result<Json, JsonError> {
        if input.len() > limits.max_bytes {
            return Err(JsonError::InputTooLarge {
                limit: limits.max_bytes,
                actual: input.len(),
            });
        }
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            max_depth: limits.max_depth,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::TrailingGarbage { at: p.pos });
        }
        Ok(v)
    }

    /// Appends the compact serialization to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(Number::U(v)) => out.push_str(&v.to_string()),
            Json::Num(Number::I(v)) => out.push_str(&v.to_string()),
            Json::Num(Number::F(v)) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The first value under `key`, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, when this is an exactly-integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `usize`, when this is an exactly-integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The number as `f64`, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The pairs, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Builder shorthand for an object from owned pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

/// Compact, deterministic serialization — `to_string()` yields exactly
/// the bytes [`Json::parse`] round-trips.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(Number::U(v))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(Number::U(v as u64))
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        if v >= 0 {
            Json::Num(Number::U(v as u64))
        } else {
            Json::Num(Number::I(v))
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(Number::F(v))
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// JSON-safe `f64` formatting: finite values via Rust's shortest-roundtrip
/// formatter, forced to contain a `.`/`e`/`-` so the token is unambiguously
/// a float; non-finite values as `null` (JSON has no NaN/Infinity). This is
/// the formatter behind the sweep journal's byte-identical artifacts —
/// moved here from `hbm-experiments::journal` so the server and the
/// journal share one float encoding.
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        if s.contains('.') || s.contains('e') || s.contains('-') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".into()
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(found) if found == b => {
                self.pos += 1;
                Ok(())
            }
            Some(_) => Err(JsonError::UnexpectedChar { at: self.pos }),
            None => Err(JsonError::UnexpectedEof),
        }
    }

    fn literal(&mut self, text: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(())
        } else if self.pos >= self.bytes.len() {
            Err(JsonError::UnexpectedEof)
        } else {
            Err(JsonError::UnexpectedChar { at: self.pos })
        }
    }

    /// Parses one value. `depth` is the nesting level already entered;
    /// opening a container at `depth == max_depth` is the rejection point,
    /// so `max_depth` counts *containers*, not values ( `max_depth: 2`
    /// admits `[[1]]` and rejects `[[[1]]]` ).
    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(JsonError::UnexpectedEof),
            Some(b'n') => self.literal("null").map(|_| Json::Null),
            Some(b't') => self.literal("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                if depth >= self.max_depth {
                    return Err(JsonError::TooDeep {
                        limit: self.max_depth,
                    });
                }
                self.array(depth + 1)
            }
            Some(b'{') => {
                if depth >= self.max_depth {
                    return Err(JsonError::TooDeep {
                        limit: self.max_depth,
                    });
                }
                self.object(depth + 1)
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(JsonError::UnexpectedChar { at: self.pos }),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                Some(_) => return Err(JsonError::UnexpectedChar { at: self.pos }),
                None => return Err(JsonError::UnexpectedEof),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                Some(_) => return Err(JsonError::UnexpectedChar { at: self.pos }),
                None => return Err(JsonError::UnexpectedEof),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::UnexpectedEof),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(JsonError::UnexpectedEof)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4(start)?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require a \uXXXX low half.
                                if self.literal("\\u").is_err() {
                                    return Err(JsonError::BadEscape { at: start });
                                }
                                let lo = self.hex4(start)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(JsonError::BadEscape { at: start });
                                }
                                let code =
                                    0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32;
                                char::from_u32(code).ok_or(JsonError::BadEscape { at: start })?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or(JsonError::BadEscape { at: start })?
                            };
                            out.push(c);
                        }
                        _ => return Err(JsonError::BadEscape { at: start }),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::UnexpectedChar { at: self.pos });
                }
                Some(_) => {
                    // Copy a run of plain bytes (input is valid UTF-8, so
                    // byte boundaries of multibyte chars are safe to carry
                    // through unchanged).
                    let mut end = self.pos;
                    while let Some(&b) = self.bytes.get(end) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[self.pos..end])
                            .expect("input str slices on char boundaries"),
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self, escape_start: usize) -> Result<u16, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::UnexpectedEof);
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::BadEscape { at: escape_start })?;
        let v =
            u16::from_str_radix(s, 16).map_err(|_| JsonError::BadEscape { at: escape_start })?;
        self.pos += 4;
        Ok(v)
    }

    /// Consumes `[0-9]+`, returning how many digits were taken.
    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }

    /// Strict JSON number grammar:
    /// `-? (0 | [1-9][0-9]*) (\.[0-9]+)? ([eE][+-]?[0-9]+)?` — leading
    /// zeros, bare trailing dots, and empty exponents are all rejected,
    /// so every accepted token reparses identically after re-serialization.
    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(JsonError::BadNumber { at: start });
                }
            }
            Some(b'1'..=b'9') => {
                self.digits();
            }
            _ => return Err(JsonError::BadNumber { at: start }),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if self.digits() == 0 {
                return Err(JsonError::BadNumber { at: start });
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(JsonError::BadNumber { at: start });
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number tokens are ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Num(Number::U(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Num(Number::I(v)));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(Number::F(v))),
            _ => Err(JsonError::BadNumber { at: start }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(Number::U(42)));
        assert_eq!(Json::parse("-7").unwrap(), Json::Num(Number::I(-7)));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Num(Number::F(1.5)));
        assert_eq!(
            Json::parse("\"hi\\n\\u0041\"").unwrap(),
            Json::Str("hi\nA".into())
        );
    }

    #[test]
    fn u64_values_round_trip_exactly() {
        let max = u64::MAX.to_string();
        let v = Json::parse(&max).unwrap();
        assert_eq!(v, Json::Num(Number::U(u64::MAX)));
        assert_eq!(v.to_string(), max);
        let min = i64::MIN.to_string();
        let v = Json::parse(&min).unwrap();
        assert_eq!(v, Json::Num(Number::I(i64::MIN)));
        assert_eq!(v.to_string(), min);
    }

    #[test]
    fn floats_serialize_shortest_roundtrip() {
        let v = Json::from(0.1 + 0.2);
        let s = v.to_string();
        assert_eq!(s, "0.30000000000000004");
        assert_eq!(Json::parse(&s).unwrap().to_string(), s);
        assert_eq!(Json::from(1.0).to_string(), "1.0");
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
    }

    #[test]
    fn fmt_f64_edge_cases() {
        assert_eq!(fmt_f64(1.0), "1.0");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(-3.0), "-3");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn objects_preserve_order_and_get_returns_first() {
        let v = Json::parse("{\"b\":1,\"a\":2,\"b\":3}").unwrap();
        assert_eq!(v.to_string(), "{\"b\":1,\"a\":2,\"b\":3}");
        assert_eq!(v.get("b").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));
        assert!(v.get("c").is_none());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert_eq!(
            Json::parse("{} x"),
            Err(JsonError::TrailingGarbage { at: 3 })
        );
        assert_eq!(
            Json::parse("1 2"),
            Err(JsonError::TrailingGarbage { at: 2 })
        );
    }

    #[test]
    fn depth_limit_is_enforced() {
        let limits = JsonLimits {
            max_bytes: 1 << 20,
            max_depth: 4,
        };
        let ok = "[[[[1]]]]";
        assert!(Json::parse_with_limits(ok, &limits).is_ok());
        let too_deep = "[[[[[1]]]]]";
        assert_eq!(
            Json::parse_with_limits(too_deep, &limits),
            Err(JsonError::TooDeep { limit: 4 })
        );
    }

    #[test]
    fn size_limit_is_enforced() {
        let limits = JsonLimits {
            max_bytes: 8,
            max_depth: 64,
        };
        assert_eq!(
            Json::parse_with_limits("\"0123456789\"", &limits),
            Err(JsonError::InputTooLarge {
                limit: 8,
                actual: 12
            })
        );
    }

    #[test]
    fn truncated_inputs_fail_cleanly() {
        for s in ["{", "[1,", "\"abc", "{\"a\":", "tru", "-", "1e", "\"\\u00"] {
            let err = Json::parse(s).unwrap_err();
            // Any typed error is fine; the point is no panic and no Ok.
            let _ = err.to_string();
        }
    }

    #[test]
    fn bad_escapes_are_rejected() {
        assert!(matches!(
            Json::parse("\"\\x\""),
            Err(JsonError::BadEscape { .. })
        ));
        assert!(matches!(
            Json::parse("\"\\ud800\""),
            Err(JsonError::BadEscape { .. })
        ));
        // A valid surrogate pair parses.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".into())
        );
    }

    #[test]
    fn control_chars_must_be_escaped() {
        assert!(Json::parse("\"a\nb\"").is_err());
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let v = Json::Str("a\u{01}b".into());
        assert_eq!(v.to_string(), "\"a\\u0001b\"");
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn nan_and_infinity_are_rejected_on_parse() {
        for s in ["NaN", "Infinity", "-Infinity", "1e999"] {
            assert!(Json::parse(s).is_err(), "{s} must not parse");
        }
    }

    #[test]
    fn nested_value_round_trips() {
        let v = Json::obj(vec![
            ("name", Json::from("dataset3")),
            ("p", Json::from(16u64)),
            ("ratio", Json::from(1.375)),
            ("flags", Json::from(vec![Json::from(true), Json::Null])),
            (
                "inner",
                Json::obj(vec![
                    ("empty", Json::Arr(vec![])),
                    ("neg", Json::from(-3i64)),
                ]),
            ),
        ]);
        let s = v.to_string();
        assert_eq!(Json::parse(&s).unwrap(), v);
        assert_eq!(Json::parse(&s).unwrap().to_string(), s);
    }
}
