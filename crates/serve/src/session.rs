//! Streaming simulation sessions (DESIGN.md §16).
//!
//! A client POSTs `/session` with the `/simulate` schema plus streaming
//! knobs; the server answers with a chunked-HTTP JSONL stream and runs the
//! engine *incrementally on the connection thread* — sessions are
//! long-lived and must not occupy a worker-pool slot that stateless
//! requests need. Lifecycle:
//!
//! 1. `{"event":"open", ...}` — the accepted streaming parameters.
//! 2. `{"event":"fault", ...}` — each injected-fault occurrence, as the
//!    stepping loop crosses it.
//! 3. `{"event":"snapshot","tick":T,"report":{...}}` — at least every
//!    `snapshot_period_ticks` simulated ticks; the embedded report is the
//!    canonical serialization with `truncated: true` (the run is mid-way
//!    by definition).
//! 4. `{"event":"done","reason":...,"report":{...}}` — terminal line:
//!    `completed` (workload finished), `truncated` (tick/wall budget), or
//!    `draining` (server shutdown). A completed session's final report is
//!    byte-identical to the stateless `/simulate` response body.
//!
//! Backpressure doubles as idle reaping: every chunk is written under the
//! configured write-stall timeout, so a client that disconnects *or*
//! simply stops reading gets its session reaped (`sessions_reaped`) —
//! there is no server-side buffering of an unread stream. Shutdown is
//! polled between stepping slices and between paced waits, so SIGTERM
//! with an open session drains in at most one slice + one pace slice.

use crate::http::{
    write_chunk, write_chunked_head, write_last_chunk, write_response, HttpRequest, HttpResponse,
};
use crate::pool::build_session_engine;
use crate::proto::{
    parse_session_request, session_done_json, session_fault_json, session_open_json,
    session_snapshot_json, ProtoError,
};
use crate::server::{error_body, ServerState};
use crate::shard::ShardState;
use crate::shutdown::ShutdownFlag;
use hbm_core::{FaultEvent, SimObserver, Tick};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Steps between flag / wall-budget polls inside one snapshot round, so a
/// huge `snapshot_period_ticks` cannot delay drain or overrun the wall
/// budget by more than a slice.
const POLL_SLICE_STEPS: u32 = 512;

/// Collects fault callbacks from the stepping loop for flushing as stream
/// lines between slices.
#[derive(Default)]
struct FaultTap {
    events: Vec<(Tick, FaultEvent)>,
}

impl SimObserver for FaultTap {
    fn on_fault(&mut self, tick: Tick, event: FaultEvent) {
        self.events.push((tick, event));
    }
}

/// Decrements the live-session gauge however the session ends.
struct SessionGuard<'a> {
    state: &'a ServerState,
}

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.state.active_sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Serves one streaming session on the connection thread, consuming the
/// connection (the stream is `connection: close` by construction).
pub(crate) fn serve_session(
    stream: &mut TcpStream,
    req: &HttpRequest,
    state: &Arc<ServerState>,
    shard: &ShardState,
    flag: &ShutdownFlag,
) {
    shard.stats.requests.fetch_add(1, Ordering::Relaxed);
    let session = match parse_session_request(&req.body, &state.config.json_limits) {
        Ok(session) => session,
        Err(e) => {
            shard.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            let status = match e {
                ProtoError::TooLarge { .. } => 413,
                _ => 400,
            };
            let resp = HttpResponse {
                close: true,
                ..HttpResponse::json(status, error_body(&e.to_string()))
            };
            let _ = write_response(stream, &resp);
            return;
        }
    };
    if flag.is_set() {
        shard.stats.shed.fetch_add(1, Ordering::Relaxed);
        let resp = HttpResponse {
            close: true,
            ..HttpResponse::json(503, error_body("server is draining"))
        };
        let _ = write_response(stream, &resp);
        return;
    }
    // Session admission is a global gauge: sessions hold connection
    // threads, so the cap protects the same resource on every shard.
    let prior = state.active_sessions.fetch_add(1, Ordering::Relaxed);
    let _guard = SessionGuard { state };
    if prior >= state.config.max_sessions {
        shard.stats.rejected.fetch_add(1, Ordering::Relaxed);
        let resp = HttpResponse {
            close: true,
            ..HttpResponse::json(429, error_body("session limit reached; retry later"))
        };
        let _ = write_response(stream, &resp);
        return;
    }

    let budget = session.sim.budget.min(state.config.budget_ceiling);
    let (pool, was_warm) = shard.registry.get(&session.sim.workload, session.sim.p);
    if was_warm {
        shard.stats.warm_runs.fetch_add(1, Ordering::Relaxed);
    } else {
        shard.stats.cold_runs.fetch_add(1, Ordering::Relaxed);
    }
    let flat = pool.flat(session.sim.p);
    let (mut engine, tick_cap) = match build_session_engine(&flat, &session.sim.settings, budget) {
        Ok(built) => built,
        Err(e) => {
            shard.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            let resp = HttpResponse {
                close: true,
                ..HttpResponse::json(400, error_body(&format!("invalid configuration: {e}")))
            };
            let _ = write_response(stream, &resp);
            return;
        }
    };

    // From here on the response is a stream; any write failure means the
    // client disconnected or stalled past the write-stall timeout → reap.
    let _ = stream.set_write_timeout(Some(state.config.session_write_stall));
    let reap = |shard: &ShardState| {
        shard.stats.sessions_reaped.fetch_add(1, Ordering::Relaxed);
    };
    if write_chunked_head(stream, 200, "application/jsonl").is_err() {
        reap(shard);
        return;
    }
    shard.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
    let open = session_open_json(session.sim.p, session.snapshot_period);
    if write_line(stream, &open).is_err() {
        reap(shard);
        return;
    }

    let start = Instant::now();
    let mut tap = FaultTap::default();
    let reason = loop {
        // One snapshot round: step until the next snapshot tick, the tick
        // cap, completion, drain, or wall-budget exhaustion.
        let target = engine.tick().saturating_add(session.snapshot_period);
        let mut steps = 0u32;
        let mut over_wall = false;
        let mut draining = false;
        while !engine.is_done() && engine.tick() < target && engine.tick() < tick_cap {
            engine.step(&mut tap);
            steps = steps.wrapping_add(1);
            if steps.is_multiple_of(POLL_SLICE_STEPS) {
                if flag.is_set() {
                    draining = true;
                    break;
                }
                if budget.max_wall.is_some_and(|wall| start.elapsed() >= wall) {
                    over_wall = true;
                    break;
                }
            }
        }
        // Flush fault events crossed during this round.
        for (tick, event) in tap.events.drain(..) {
            if write_line(stream, &session_fault_json(tick, &event)).is_err() {
                reap(shard);
                return;
            }
        }
        if engine.is_done() {
            break "completed";
        }
        if engine.tick() >= tick_cap || over_wall {
            break "truncated";
        }
        if draining || flag.is_set() {
            break "draining";
        }
        if budget.max_wall.is_some_and(|wall| start.elapsed() >= wall) {
            break "truncated";
        }
        let snapshot = session_snapshot_json(engine.tick(), &engine.report_snapshot());
        if write_line(stream, &snapshot).is_err() {
            reap(shard);
            return;
        }
        if let Some(pace) = session.pace {
            if flag.sleep_interruptibly(pace) {
                break "draining";
            }
        }
    };

    let done = session_done_json(engine.tick(), reason, &engine.report_snapshot());
    if write_line(stream, &done).is_err() || write_last_chunk(stream).is_err() {
        reap(shard);
        return;
    }
    shard.stats.sessions_closed.fetch_add(1, Ordering::Relaxed);
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    let mut bytes = Vec::with_capacity(line.len() + 1);
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    write_chunk(stream, &bytes)
}
