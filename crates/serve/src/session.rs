//! Streaming simulation sessions (DESIGN.md §16–§17).
//!
//! A client POSTs `/session` with the `/simulate` schema plus streaming
//! knobs; the server answers with a chunked-HTTP JSONL stream. Lifecycle:
//!
//! 1. `{"event":"open", ..., "token":"..."}` — the accepted streaming
//!    parameters plus an opaque resume token.
//! 2. `{"event":"fault", ...}` — each injected-fault occurrence, as the
//!    stepping loop crosses it.
//! 3. `{"event":"snapshot","tick":T,"report":{...}}` — at least every
//!    `snapshot_period_ticks` simulated ticks; the embedded report is the
//!    canonical serialization with `truncated: true` (the run is mid-way
//!    by definition).
//! 4. `{"event":"alert", ...}` — any client-declared [`alert
//!    rules`](crate::alerts) that fired at that snapshot, immediately
//!    after the snapshot line.
//! 5. `{"event":"done","reason":...,"report":{...}}` — terminal line:
//!    `completed` (workload finished), `truncated` (tick/wall budget),
//!    `draining` (server shutdown), or `shed` (evicted under session
//!    pressure). A completed session's final report is byte-identical to
//!    the stateless `/simulate` response body.
//!
//! Unlike PR 7, the connection thread only *admits* the session: it
//! parses, builds the engine, writes the stream head and `open` line, and
//! hands a [`SessionState`] to the [`mux`](crate::mux) — the fixed
//! `session_workers` pool owns all further stepping and writing, so open
//! sessions cost memory, not threads. The socket is non-blocking from the
//! handoff on: output is queued as whole encoded chunks in `pending` and
//! flushed opportunistically; a client that stops reading stalls its own
//! session (stepping is gated on an empty buffer) and is reaped once the
//! stall exceeds `session_write_stall`. There is no server-side buffering
//! of an unread stream beyond one round's lines.
//!
//! **Resume**: the `open` token keys a [`ResumeTable`] entry holding the
//! validated request. Because the engine is deterministic, `POST
//! /session/resume {token, last_tick}` just re-runs the same
//! configuration with output muted up to and including the acknowledged
//! snapshot; every line after it is byte-identical to the uninterrupted
//! stream. Entries outlive the session (success or reap) until
//! `resume_ttl`, so a client can even re-fetch a completed run's suffix.
//! The wall-clock budget is the one caveat: a `max_wall_ms` truncation is
//! not deterministic, so only tick-budgeted or unbudgeted sessions get
//! the byte-identity guarantee.

use crate::alerts::AlertEngine;
use crate::http::{
    chunk_bytes, write_chunk, write_chunked_head, write_response, HttpRequest, HttpResponse,
    LAST_CHUNK,
};
use crate::pool::build_session_engine;
use crate::proto::{
    parse_resume_request, parse_session_request, session_alert_json, session_done_json,
    session_fault_json, session_open_json, session_snapshot_json, ProtoError, SessionRequest,
};
use crate::server::{error_body, ServerState, RETRY_AFTER_DRAIN_SECS};
use crate::shard::ShardState;
use crate::shutdown::ShutdownFlag;
use hbm_core::{Engine, FaultEvent, SimObserver, Tick};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{ErrorKind, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Steps between slice-boundary checks, so a huge `snapshot_period_ticks`
/// cannot monopolize a mux worker or delay drain by more than a slice.
const POLL_SLICE_STEPS: u32 = 512;

/// Reschedule delay after a `WouldBlock` write — short enough that a
/// briefly-full socket buffer barely dents throughput, long enough not to
/// spin a worker against a stalled client.
const WRITE_RETRY: Duration = Duration::from_millis(10);

/// How long a terminal slice (drain/shed) keeps retrying the final flush
/// before giving up and reaping. Bounds drain time even when every client
/// has stopped reading.
const FINAL_FLUSH_GRACE: Duration = Duration::from_millis(100);

/// `Retry-After` hint on a 429 when the session gauge is full and no
/// paced victim could be shed.
const RETRY_AFTER_SESSIONS_SECS: u64 = 2;

/// Collects fault callbacks from the stepping loop for flushing as stream
/// lines between slices.
#[derive(Default)]
struct FaultTap {
    events: Vec<(Tick, FaultEvent)>,
}

impl SimObserver for FaultTap {
    fn on_fault(&mut self, tick: Tick, event: FaultEvent) {
        self.events.push((tick, event));
    }
}

/// Decrements the live-session gauge however the session ends. Owns the
/// server state because a [`SessionState`] outlives its connection thread.
struct SessionGuard {
    state: Arc<ServerState>,
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.state.active_sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Maps resume tokens to their validated session requests. Bounded two
/// ways: entries expire `ttl` after minting, and beyond `capacity` the
/// oldest entry is evicted at the next mint. Tokens are *not*
/// cryptographically secure — they gate replay of a request the holder
/// already made, not any new capability.
pub(crate) struct ResumeTable {
    entries: Mutex<HashMap<String, ResumeEntry>>,
    nonce: AtomicU64,
    ttl: Duration,
    capacity: usize,
}

struct ResumeEntry {
    session: SessionRequest,
    created: Instant,
}

impl ResumeTable {
    pub(crate) fn new(ttl: Duration, capacity: usize) -> ResumeTable {
        ResumeTable {
            entries: Mutex::new(HashMap::new()),
            nonce: AtomicU64::new(0),
            ttl,
            capacity: capacity.max(1),
        }
    }

    /// Mints a token for `session` and registers it. The token is
    /// `config-hash ‖ seed ‖ nonce`: opaque to clients, self-describing
    /// in server logs.
    fn mint(&self, session: &SessionRequest) -> String {
        let mut h = DefaultHasher::new();
        session.sim.workload.cache_key().hash(&mut h);
        format!("{:?}", session.sim.settings).hash(&mut h);
        session.sim.p.hash(&mut h);
        session.snapshot_period.hash(&mut h);
        let token = format!(
            "{:016x}-{:016x}-{:08x}",
            h.finish(),
            session.sim.settings.seed,
            self.nonce.fetch_add(1, Ordering::Relaxed)
        );
        let now = Instant::now();
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.retain(|_, e| now.duration_since(e.created) < self.ttl);
        while entries.len() >= self.capacity {
            let oldest = entries
                .iter()
                .min_by_key(|(_, e)| e.created)
                .map(|(k, _)| k.clone())
                .expect("non-empty over-capacity table");
            entries.remove(&oldest);
        }
        entries.insert(
            token.clone(),
            ResumeEntry {
                session: session.clone(),
                created: now,
            },
        );
        token
    }

    /// Looks up a token, expiring it if past TTL. The entry stays
    /// registered on a hit so a client can resume repeatedly.
    fn lookup(&self, token: &str) -> Option<SessionRequest> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        match entries.get(token) {
            Some(e) if e.created.elapsed() < self.ttl => Some(e.session.clone()),
            Some(_) => {
                entries.remove(token);
                None
            }
            None => None,
        }
    }
}

/// What a slice tells the mux to do next.
pub(crate) enum SliceOutcome {
    /// Re-queue the session; run the next slice at `wake_at`.
    Continue {
        /// The next wakeup deadline (pace boundary, write retry, or "now").
        wake_at: Instant,
    },
    /// The session ended (closed, reaped, drained, or shed); drop it.
    Finished,
}

/// How far a flush attempt got.
enum Flush {
    /// `pending` is empty.
    Drained,
    /// The socket buffer is full; bytes remain.
    Blocked,
    /// The client is gone (EOF or a hard error).
    Gone,
}

/// One streaming session as a state machine owned by the mux: engine,
/// socket, write buffer, alert state, and pacing deadline. All stepping
/// and writing happens inside [`run_slice`](Self::run_slice) on a mux
/// worker; the socket is non-blocking throughout.
pub(crate) struct SessionState {
    /// Mux-assigned id; monotonic, so larger = newer (shed order).
    pub(crate) id: u64,
    /// Current wakeup deadline; the matching heap entry's key. The mux
    /// treats a heap entry as live only while it equals this.
    pub(crate) wake_at: Instant,
    /// Set by the shed policy; the next slice emits `done`/`shed`.
    pub(crate) shed: bool,
    stream: TcpStream,
    engine: Engine,
    tap: FaultTap,
    alerts: AlertEngine,
    /// Encoded chunk bytes not yet accepted by the socket. Always whole
    /// lines — a client never observes a torn snapshot.
    pending: Vec<u8>,
    /// When the current uninterrupted write stall began.
    stall_since: Option<Instant>,
    write_stall: Duration,
    snapshot_period: u64,
    pace: Option<Duration>,
    /// Earliest time the next stepping round may start (pace boundary).
    next_step_at: Instant,
    /// Tick the current round runs to (next snapshot boundary).
    next_target: Tick,
    tick_cap: u64,
    max_wall: Option<Duration>,
    started: Instant,
    /// Resume replay mute: suppress output up to and including the
    /// snapshot at this tick (alert lines *at* that tick replay, since
    /// they follow the acknowledged snapshot line in the stream).
    mute_until: Option<Tick>,
    /// The `done` line (and last-chunk) has been queued.
    finished: bool,
    shard: Arc<ShardState>,
    _guard: SessionGuard,
}

impl SessionState {
    /// Whether this session paces between snapshot rounds (the shed
    /// policy's victim pool).
    pub(crate) fn paced(&self) -> bool {
        self.pace.is_some()
    }

    /// Runs one bounded slice: flush leftover bytes, step at most
    /// [`POLL_SLICE_STEPS`] engine steps toward the round target, queue
    /// any round-boundary lines, and flush again. Never blocks on the
    /// socket (terminal slices get a short bounded grace instead).
    pub(crate) fn run_slice(&mut self, draining: bool) -> SliceOutcome {
        if draining {
            let reason = if self.finished {
                None
            } else {
                Some("draining")
            };
            return self.finish_with(reason);
        }
        if self.shed && !self.finished {
            return self.finish_with(Some("shed"));
        }
        // Flush before stepping: output is gated on an empty buffer, so a
        // non-reading client stalls its own session instead of growing a
        // server-side queue.
        if !self.pending.is_empty() {
            match self.try_flush() {
                Flush::Drained => {}
                Flush::Blocked => return self.blocked_outcome(),
                Flush::Gone => return self.reap(),
            }
        }
        self.stall_since = None;
        if self.finished {
            self.shard
                .stats
                .sessions_closed
                .fetch_add(1, Ordering::Relaxed);
            return SliceOutcome::Finished;
        }
        if Instant::now() < self.next_step_at {
            // Woken early (shed probe or spurious); go back to sleep.
            return SliceOutcome::Continue {
                wake_at: self.next_step_at,
            };
        }
        self.step_round_slice();
        match self.try_flush() {
            Flush::Drained => {
                self.stall_since = None;
                if self.finished {
                    self.shard
                        .stats
                        .sessions_closed
                        .fetch_add(1, Ordering::Relaxed);
                    SliceOutcome::Finished
                } else {
                    SliceOutcome::Continue {
                        wake_at: self.next_step_at,
                    }
                }
            }
            Flush::Blocked => self.blocked_outcome(),
            Flush::Gone => self.reap(),
        }
    }

    /// Steps at most one slice of the current round and queues whatever
    /// lines the reached state calls for (faults, snapshot + alerts, or
    /// the terminal `done`).
    fn step_round_slice(&mut self) {
        let mut steps = 0u32;
        while !self.engine.is_done()
            && self.engine.tick() < self.next_target
            && self.engine.tick() < self.tick_cap
            && steps < POLL_SLICE_STEPS
        {
            self.engine.step(&mut self.tap);
            steps += 1;
        }
        let muted = self.mute_until.is_some();
        let events = std::mem::take(&mut self.tap.events);
        for (tick, event) in events {
            // Alert state always advances (replay must fire identically);
            // the line itself is mute-gated.
            self.alerts.observe_fault(tick, &event);
            if !muted {
                let line = session_fault_json(tick, &event);
                self.queue_line(&line);
            }
        }
        let done = self.engine.is_done();
        let capped = self.engine.tick() >= self.tick_cap;
        let over_wall = self
            .max_wall
            .is_some_and(|wall| self.started.elapsed() >= wall);
        if done || capped || over_wall {
            let reason = if done { "completed" } else { "truncated" };
            let report = self.engine.report_snapshot();
            let line = session_done_json(self.engine.tick(), reason, &report);
            self.queue_line(&line);
            self.pending.extend_from_slice(LAST_CHUNK);
            self.finished = true;
            return;
        }
        if self.engine.tick() >= self.next_target {
            let tick = self.engine.tick();
            let report = self.engine.report_snapshot();
            let fires = self.alerts.evaluate(tick, &report);
            let muted = match self.mute_until {
                Some(acked) if tick >= acked => {
                    // This is the acknowledged snapshot: suppress the
                    // line itself, replay everything after it (starting
                    // with its alert lines).
                    self.mute_until = None;
                    true
                }
                Some(_) => true,
                None => false,
            };
            if !muted {
                let line = session_snapshot_json(tick, &report);
                self.queue_line(&line);
            }
            if self.mute_until.is_none() {
                for fire in &fires {
                    let line = session_alert_json(fire);
                    self.queue_line(&line);
                }
                if !fires.is_empty() {
                    self.shard
                        .stats
                        .alerts
                        .fetch_add(fires.len() as u64, Ordering::Relaxed);
                }
            }
            self.next_target = tick.saturating_add(self.snapshot_period);
            if self.mute_until.is_none() {
                // Muted replay skips pacing: catch up to the client's
                // acknowledged position as fast as the engine steps.
                if let Some(pace) = self.pace {
                    self.next_step_at = Instant::now() + pace;
                }
            }
        }
    }

    /// Terminal slice for drain/shed: queue the `done` line (unless
    /// already queued), then retry the flush under a short grace before
    /// giving up. Only called between rounds, so the stream never ends on
    /// a torn line.
    fn finish_with(&mut self, reason: Option<&str>) -> SliceOutcome {
        if let Some(reason) = reason {
            if reason == "shed" {
                self.shard
                    .stats
                    .sessions_shed
                    .fetch_add(1, Ordering::Relaxed);
            }
            let report = self.engine.report_snapshot();
            let line = session_done_json(self.engine.tick(), reason, &report);
            self.queue_line(&line);
            self.pending.extend_from_slice(LAST_CHUNK);
            self.finished = true;
        }
        let deadline = Instant::now() + FINAL_FLUSH_GRACE;
        loop {
            match self.try_flush() {
                Flush::Drained => {
                    self.shard
                        .stats
                        .sessions_closed
                        .fetch_add(1, Ordering::Relaxed);
                    return SliceOutcome::Finished;
                }
                Flush::Gone => return self.reap(),
                Flush::Blocked => {
                    if Instant::now() >= deadline {
                        return self.reap();
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }

    fn blocked_outcome(&mut self) -> SliceOutcome {
        let now = Instant::now();
        let since = *self.stall_since.get_or_insert(now);
        if now.duration_since(since) >= self.write_stall {
            return self.reap();
        }
        SliceOutcome::Continue {
            wake_at: now + WRITE_RETRY,
        }
    }

    fn reap(&mut self) -> SliceOutcome {
        self.shard
            .stats
            .sessions_reaped
            .fetch_add(1, Ordering::Relaxed);
        SliceOutcome::Finished
    }

    /// Appends one JSONL line to `pending` as an encoded chunk.
    fn queue_line(&mut self, line: &str) {
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        self.pending.extend_from_slice(&chunk_bytes(&bytes));
    }

    /// Writes as much of `pending` as the socket accepts right now.
    fn try_flush(&mut self) -> Flush {
        let mut written = 0usize;
        let result = loop {
            if written == self.pending.len() {
                break Flush::Drained;
            }
            match self.stream.write(&self.pending[written..]) {
                Ok(0) => break Flush::Gone,
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break Flush::Blocked,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break Flush::Gone,
            }
        };
        if written > 0 {
            self.pending.drain(..written);
        }
        result
    }
}

/// Admits one streaming session, consuming the connection: parse,
/// register a resume token, and hand off to the mux.
pub(crate) fn serve_session(
    mut stream: TcpStream,
    req: &HttpRequest,
    state: &Arc<ServerState>,
    shard: &Arc<ShardState>,
    flag: &ShutdownFlag,
) {
    shard.stats.requests.fetch_add(1, Ordering::Relaxed);
    let session = match parse_session_request(&req.body, &state.config.json_limits) {
        Ok(session) => session,
        Err(e) => {
            reject_proto(&mut stream, shard, &e);
            return;
        }
    };
    if flag.is_set() {
        reject_draining(&mut stream, shard);
        return;
    }
    let token = state.resume.mint(&session);
    start_stream(stream, session, token, None, state, shard);
}

/// Reattaches a dropped client to its session via the resume token,
/// consuming the connection. Determinism does the heavy lifting: the
/// stored request is simply re-run with output muted through the
/// acknowledged snapshot.
pub(crate) fn serve_resume(
    mut stream: TcpStream,
    req: &HttpRequest,
    state: &Arc<ServerState>,
    shard: &Arc<ShardState>,
    flag: &ShutdownFlag,
) {
    shard.stats.requests.fetch_add(1, Ordering::Relaxed);
    let resume = match parse_resume_request(&req.body, &state.config.json_limits) {
        Ok(resume) => resume,
        Err(e) => {
            reject_proto(&mut stream, shard, &e);
            return;
        }
    };
    if flag.is_set() {
        reject_draining(&mut stream, shard);
        return;
    }
    let Some(session) = state.resume.lookup(&resume.token) else {
        shard.stats.client_errors.fetch_add(1, Ordering::Relaxed);
        let resp = HttpResponse {
            close: true,
            ..HttpResponse::json(410, error_body("unknown or expired resume token"))
        };
        let _ = write_response(&mut stream, &resp);
        return;
    };
    let from = resume.last_tick.unwrap_or(0);
    start_stream(stream, session, resume.token, Some(from), state, shard);
}

/// Shared tail of `/session` and `/session/resume`: admission against the
/// session gauge (shedding the newest paced session under pressure),
/// engine construction, stream head + `open` line, then mux handoff.
fn start_stream(
    mut stream: TcpStream,
    session: SessionRequest,
    token: String,
    resumed_from: Option<u64>,
    state: &Arc<ServerState>,
    shard: &Arc<ShardState>,
) {
    // Session admission is a global gauge: the mux pool and its memory
    // are shared, so the cap protects the same resource on every shard.
    let prior = state.active_sessions.fetch_add(1, Ordering::Relaxed);
    let guard = SessionGuard {
        state: Arc::clone(state),
    };
    if prior >= state.config.max_sessions {
        // Graceful degradation: evict the newest paced session (it has
        // the least sunk work and a resume token to come back with)
        // rather than turning away fresh demand. The gauge may briefly
        // overshoot while the victim writes its `shed` line.
        if !state.mux.shed_newest_paced() {
            shard.stats.rejected.fetch_add(1, Ordering::Relaxed);
            let resp = HttpResponse {
                close: true,
                ..HttpResponse::json(429, error_body("session limit reached; retry later"))
                    .with_retry_after(RETRY_AFTER_SESSIONS_SECS)
            };
            let _ = write_response(&mut stream, &resp);
            return;
        }
    }

    let budget = session.sim.budget.min(state.config.budget_ceiling);
    let (pool, was_warm) = shard.registry.get(&session.sim.workload, session.sim.p);
    if was_warm {
        shard.stats.warm_runs.fetch_add(1, Ordering::Relaxed);
    } else {
        shard.stats.cold_runs.fetch_add(1, Ordering::Relaxed);
    }
    let flat = pool.flat(session.sim.p);
    let (engine, tick_cap) = match build_session_engine(&flat, &session.sim.settings, budget) {
        Ok(built) => built,
        Err(e) => {
            shard.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            let resp = HttpResponse {
                close: true,
                ..HttpResponse::json(400, error_body(&format!("invalid configuration: {e}")))
            };
            let _ = write_response(&mut stream, &resp);
            return;
        }
    };

    // Head and `open` line go out blocking (under the write-stall
    // timeout) on the connection thread; everything after is the mux's.
    let reap = || {
        shard.stats.sessions_reaped.fetch_add(1, Ordering::Relaxed);
    };
    let _ = stream.set_write_timeout(Some(state.config.session_write_stall));
    if write_chunked_head(&mut stream, 200, "application/jsonl").is_err() {
        reap();
        return;
    }
    shard.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
    if resumed_from.is_some() {
        shard.stats.sessions_resumed.fetch_add(1, Ordering::Relaxed);
    }
    let open = session_open_json(session.sim.p, session.snapshot_period, &token, resumed_from);
    let mut open_line = Vec::with_capacity(open.len() + 1);
    open_line.extend_from_slice(open.as_bytes());
    open_line.push(b'\n');
    if write_chunk(&mut stream, &open_line).is_err() || stream.set_nonblocking(true).is_err() {
        reap();
        return;
    }

    let now = Instant::now();
    let first_target = engine.tick().saturating_add(session.snapshot_period);
    state.mux.submit(SessionState {
        id: 0, // assigned by the mux
        wake_at: now,
        shed: false,
        stream,
        engine,
        tap: FaultTap::default(),
        alerts: AlertEngine::new(session.alerts.clone(), session.sim.p),
        pending: Vec::new(),
        stall_since: None,
        write_stall: state.config.session_write_stall,
        snapshot_period: session.snapshot_period,
        pace: session.pace,
        next_step_at: now,
        next_target: first_target,
        tick_cap,
        max_wall: budget.max_wall,
        started: now,
        // `last_tick: 0` means "nothing acknowledged": replay in full.
        mute_until: resumed_from.filter(|&t| t > 0),
        finished: false,
        shard: Arc::clone(shard),
        _guard: guard,
    });
}

fn reject_proto(stream: &mut TcpStream, shard: &ShardState, e: &ProtoError) {
    shard.stats.client_errors.fetch_add(1, Ordering::Relaxed);
    let status = match e {
        ProtoError::TooLarge { .. } => 413,
        _ => 400,
    };
    let resp = HttpResponse {
        close: true,
        ..HttpResponse::json(status, error_body(&e.to_string()))
    };
    let _ = write_response(stream, &resp);
}

fn reject_draining(stream: &mut TcpStream, shard: &ShardState) {
    shard.stats.shed.fetch_add(1, Ordering::Relaxed);
    let resp = HttpResponse {
        close: true,
        ..HttpResponse::json(503, error_body("server is draining"))
            .with_retry_after(RETRY_AFTER_DRAIN_SECS)
    };
    let _ = write_response(stream, &resp);
}
