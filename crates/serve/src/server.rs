//! The simulation server: accept loop, routing, admission control, warm
//! pools, and graceful drain.
//!
//! Request lifecycle (DESIGN.md §14):
//!
//! 1. The accept loop (nonblocking listener, 5 ms poll) takes a
//!    connection, or sheds it with **503** when `max_connections` threads
//!    are already serving.
//! 2. The connection thread parses HTTP/1.1 requests (keep-alive) under
//!    per-message deadlines and routes them. Framing or JSON errors are
//!    **400**; oversized requests are **413**.
//! 3. `/simulate` bodies become [`SimRequest`]s and are submitted to the
//!    shared [`WorkerPool`] — *non-blocking*: a full queue is an immediate
//!    **429**, the explicit admission-control signal.
//! 4. The worker executes through the warm path — a per-workload
//!    [`TracePool`] (memoized traces + flats) and the shared
//!    [`ScratchPool`] — under the request's [`CellBudget`] clamped to the
//!    server ceiling; budget exhaustion yields **200** with
//!    `"truncated": true` rather than a hung connection. A panicking
//!    request is caught in the worker and surfaces as that request's
//!    **500**; the worker thread and every other connection survive.
//! 5. Shutdown (SIGTERM/ctrl-c or [`ShutdownFlag::trip`]) stops the accept
//!    loop, lets idle connections close, finishes in-flight requests,
//!    drains the worker queue, and joins everything — then returns the
//!    final [`ServerStats`].

use crate::http::{read_request, write_response, HttpError, HttpRequest, HttpResponse};
use crate::json::{Json, JsonLimits};
use crate::pool::{run_sim_budgeted_flat, CellBudget, ScratchPool, TracePool};
use crate::proto::{parse_sim_request, report_to_json, ProtoError, SimRequest, WorkloadKey};
use crate::shutdown::ShutdownFlag;
use hbm_par::{SubmitError, WorkerPool};
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs. The defaults suit tests and small deployments;
/// the binary exposes the load-bearing ones as flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Simulation worker threads.
    pub workers: usize,
    /// Pending-request queue capacity; a full queue rejects with 429.
    pub queue_capacity: usize,
    /// Maximum concurrent connections; excess connections get 503.
    pub max_connections: usize,
    /// Per-message read deadline (head + body).
    pub request_timeout: Duration,
    /// Ceiling clamped onto every request's budget. The default caps wall
    /// time so no request can hold a worker indefinitely.
    pub budget_ceiling: CellBudget,
    /// Maximum distinct workload pools kept warm (LRU beyond this).
    pub max_pools: usize,
    /// Per-pool cap on memoized flats (`None` = unbounded).
    pub flat_capacity: Option<usize>,
    /// Idle period after which warm memory (memoized flats, scratch
    /// buffers) is released. `None` disables idle shrinking.
    pub idle_shrink_after: Option<Duration>,
    /// JSON parser limits applied to request bodies.
    pub json_limits: JsonLimits,
    /// Enables `POST /test/panic` (a deliberately panicking request) so
    /// tests can prove panic isolation end-to-end. Off in production.
    pub enable_test_endpoints: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: hbm_par::default_threads(),
            queue_capacity: 64,
            max_connections: 64,
            request_timeout: Duration::from_secs(10),
            budget_ceiling: CellBudget {
                max_ticks: None,
                max_wall: Some(Duration::from_secs(10)),
            },
            max_pools: 8,
            flat_capacity: Some(8),
            idle_shrink_after: Some(Duration::from_secs(30)),
            json_limits: JsonLimits::default(),
            enable_test_endpoints: false,
        }
    }
}

/// Counters the server maintains while running; a snapshot is returned by
/// [`Server::run`] and served live at `GET /healthz`.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Requests that reached routing (any method/path).
    pub requests: u64,
    /// 200 responses.
    pub ok: u64,
    /// 429 rejections (queue full).
    pub rejected: u64,
    /// 503 rejections (connection cap, or submit-after-shutdown races).
    pub shed: u64,
    /// 4xx protocol/validation errors.
    pub client_errors: u64,
    /// 500s (request panics).
    pub panics: u64,
    /// Cold `/simulate` executions (trace pool generated on this request).
    pub cold_runs: u64,
    /// Warm `/simulate` executions (served from a pooled workload).
    pub warm_runs: u64,
}

#[derive(Default)]
struct StatCells {
    requests: AtomicU64,
    ok: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    client_errors: AtomicU64,
    panics: AtomicU64,
    cold_runs: AtomicU64,
    warm_runs: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            client_errors: self.client_errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            cold_runs: self.cold_runs.load(Ordering::Relaxed),
            warm_runs: self.warm_runs.load(Ordering::Relaxed),
        }
    }
}

/// Warm workload pools keyed by the canonical description of a
/// [`WorkloadKey`], LRU-bounded at `max_pools`.
struct PoolRegistry {
    pools: Mutex<HashMap<String, (Arc<TracePool>, u64)>>,
    clock: AtomicU64,
    max_pools: usize,
    flat_capacity: Option<usize>,
}

impl PoolRegistry {
    fn new(max_pools: usize, flat_capacity: Option<usize>) -> Self {
        PoolRegistry {
            pools: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            max_pools: max_pools.max(1),
            flat_capacity,
        }
    }

    fn key_of(key: &WorkloadKey) -> String {
        // Debug formatting of the spec is stable and injective enough to
        // key on (distinct f64 parameters print distinctly).
        format!(
            "{:?}|seed={}|page_bytes={}|collapse={}",
            key.spec, key.trace_seed, key.opts.page_bytes, key.opts.collapse
        )
    }

    /// Fetches (or generates) the pool for `key` with at least `p` traces.
    /// Returns `(pool, was_warm)`; `was_warm` is false when this request
    /// paid trace generation (a cold start).
    fn get(&self, key: &WorkloadKey, p: usize) -> (Arc<TracePool>, bool) {
        let map_key = Self::key_of(key);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
            if let Some((pool, at)) = pools.get_mut(&map_key) {
                if pool.max_p() >= p {
                    *at = stamp;
                    return (Arc::clone(pool), true);
                }
                // Too small: fall through and regenerate larger. The trace
                // prefix property keeps results identical for smaller p.
            }
        }
        // Generate outside the lock: trace generation can take tens of
        // milliseconds and must not serialize warm requests behind it.
        let pool = Arc::new(TracePool::generate(key.spec, p, key.trace_seed, key.opts));
        pool.set_flat_capacity(self.flat_capacity);
        let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        // Another thread may have raced us here with an even bigger pool;
        // keep whichever covers more threads.
        let entry = pools
            .entry(map_key)
            .and_modify(|(existing, at)| {
                if existing.max_p() < pool.max_p() {
                    *existing = Arc::clone(&pool);
                }
                *at = stamp;
            })
            .or_insert_with(|| (Arc::clone(&pool), stamp));
        let result = Arc::clone(&entry.0);
        while pools.len() > self.max_pools {
            let oldest = pools
                .iter()
                .min_by_key(|(_, (_, at))| *at)
                .map(|(k, _)| k.clone())
                .expect("non-empty registry has an oldest entry");
            pools.remove(&oldest);
        }
        (result, false)
    }

    /// Releases every pool's memoized flats (the idle path). Pools
    /// themselves stay registered; their traces are cheap relative to the
    /// flats and keep the next request warm-ish.
    fn shrink(&self) {
        let pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        for (pool, _) in pools.values() {
            pool.shrink();
        }
    }
}

struct ServerState {
    config: ServerConfig,
    worker_pool: WorkerPool,
    registry: PoolRegistry,
    scratch: ScratchPool,
    stats: StatCells,
    active_connections: AtomicUsize,
}

/// The simulation-as-a-service server. Bind, then [`run`](Self::run).
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port in tests).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState {
            worker_pool: WorkerPool::new(config.workers, config.queue_capacity),
            registry: PoolRegistry::new(config.max_pools, config.flat_capacity),
            scratch: ScratchPool::new(),
            stats: StatCells::default(),
            active_connections: AtomicUsize::new(0),
            config,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `flag` trips, then drains: no new connections, idle
    /// connections close, in-flight requests finish, the worker queue
    /// empties, every thread is joined. Returns the final statistics.
    pub fn run(self, flag: &ShutdownFlag) -> io::Result<ServerStats> {
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        let mut last_activity = Instant::now();
        let mut last_executed = 0u64;
        let mut shrunk_while_idle = false;
        while !flag.is_set() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    last_activity = Instant::now();
                    shrunk_while_idle = false;
                    // Keep-alive request/response exchanges are small;
                    // leaving Nagle on would serialize them against the
                    // peer's delayed ACKs.
                    let _ = stream.set_nodelay(true);
                    let active = &self.state.active_connections;
                    if active.load(Ordering::Relaxed) >= self.state.config.max_connections {
                        self.state.stats.shed.fetch_add(1, Ordering::Relaxed);
                        let _ = shed_connection(stream);
                        continue;
                    }
                    active.fetch_add(1, Ordering::Relaxed);
                    let state = Arc::clone(&self.state);
                    let conn_flag = flag.clone();
                    let handle = std::thread::Builder::new()
                        .name("hbm-serve-conn".into())
                        .spawn(move || {
                            serve_connection(stream, &state, &conn_flag);
                            state.active_connections.fetch_sub(1, Ordering::Relaxed);
                        })
                        .expect("spawn connection thread");
                    connections.push(handle);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            connections.retain(|h| !h.is_finished());
            // Idle-path memory release: when no request has executed for
            // the configured window, drop memoized flats and idle scratch.
            let executed = self.state.worker_pool.executed();
            if executed != last_executed {
                last_executed = executed;
                last_activity = Instant::now();
                shrunk_while_idle = false;
            }
            if let Some(window) = self.state.config.idle_shrink_after {
                if !shrunk_while_idle && last_activity.elapsed() >= window {
                    self.state.registry.shrink();
                    self.state.scratch.clear();
                    shrunk_while_idle = true;
                }
            }
        }
        // Drain: connection threads see the flag (idle reads cancel,
        // in-flight requests complete), then the worker queue empties.
        drop(self.listener);
        for handle in connections {
            let _ = handle.join();
        }
        self.state.worker_pool.shutdown();
        Ok(self.state.stats.snapshot())
    }
}

/// Best-effort 503 for connections over the concurrency cap.
fn shed_connection(mut stream: TcpStream) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_write_timeout(Some(Duration::from_millis(250)))?;
    let resp = HttpResponse {
        close: true,
        ..HttpResponse::json(503, "{\"error\":\"connection limit reached\"}")
    };
    write_response(&mut stream, &resp)
}

fn serve_connection(mut stream: TcpStream, state: &Arc<ServerState>, flag: &ShutdownFlag) {
    if stream.set_nonblocking(false).is_err()
        || stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .is_err()
    {
        return;
    }
    let idle_cancel = || flag.is_set();
    loop {
        // A fresh deadline per message: the connection may idle between
        // requests (keep-alive) for as long as the client likes — idleness
        // is interrupted by shutdown via `idle_cancel`, while an in-flight
        // message gets `request_timeout` to complete.
        let deadline = Instant::now() + state.config.request_timeout;
        let req = match read_request(&mut stream, deadline, &idle_cancel) {
            Ok(Some(req)) => req,
            Ok(None) => return,                  // client closed cleanly
            Err(HttpError::Cancelled) => return, // shutdown while idle
            Err(HttpError::TimedOut) => {
                // Idle keep-alive wait: just re-arm the deadline. (A
                // *mid-message* stall also lands here after request_timeout
                // of silence; the subsequent read then fails fast as
                // malformed, which is an acceptable fate for a stalled
                // sender.)
                if flag.is_set() {
                    return;
                }
                continue;
            }
            Err(e) => {
                let (status, msg) = match &e {
                    HttpError::HeadTooLarge => (413, e.to_string()),
                    HttpError::BodyTooLarge { .. } => (413, e.to_string()),
                    _ => (400, e.to_string()),
                };
                state.stats.client_errors.fetch_add(1, Ordering::Relaxed);
                let _ = respond_error(&mut stream, status, &msg, true);
                return;
            }
        };
        let close_after = req
            .headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let mut resp = route(&req, state, flag);
        resp.close = close_after;
        if write_response(&mut stream, &resp).is_err() {
            return;
        }
        if close_after {
            return;
        }
        if flag.is_set() {
            // In-flight request finished (drain guarantee); now stop
            // taking new ones on this connection.
            return;
        }
    }
}

fn respond_error(
    stream: &mut TcpStream,
    status: u16,
    message: &str,
    close: bool,
) -> io::Result<()> {
    let body = Json::obj(vec![("error", Json::from(message))]).to_string();
    let resp = HttpResponse {
        close,
        ..HttpResponse::json(status, body)
    };
    write_response(stream, &resp)
}

fn error_body(message: &str) -> String {
    Json::obj(vec![("error", Json::from(message))]).to_string()
}

fn route(req: &HttpRequest, state: &Arc<ServerState>, flag: &ShutdownFlag) -> HttpResponse {
    state.stats.requests.fetch_add(1, Ordering::Relaxed);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(state, flag),
        ("POST", "/simulate") => simulate(req, state),
        ("POST", "/test/panic") if state.config.enable_test_endpoints => {
            submit_job(state, || panic!("deliberate test panic"))
        }
        ("POST", _) | ("GET", _) => {
            state.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            HttpResponse::json(404, error_body("no such endpoint"))
        }
        _ => {
            state.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            HttpResponse::json(405, error_body("method not allowed"))
        }
    }
}

fn healthz(state: &ServerState, flag: &ShutdownFlag) -> HttpResponse {
    let s = state.stats.snapshot();
    let body = Json::obj(vec![
        (
            "status",
            Json::from(if flag.is_set() { "draining" } else { "ok" }),
        ),
        ("requests", Json::from(s.requests)),
        ("ok", Json::from(s.ok)),
        ("rejected", Json::from(s.rejected)),
        ("shed", Json::from(s.shed)),
        ("client_errors", Json::from(s.client_errors)),
        ("panics", Json::from(s.panics)),
        ("cold_runs", Json::from(s.cold_runs)),
        ("warm_runs", Json::from(s.warm_runs)),
        ("queued", Json::from(state.worker_pool.queued())),
        ("running", Json::from(state.worker_pool.running())),
        (
            "active_connections",
            Json::from(state.active_connections.load(Ordering::Relaxed)),
        ),
    ])
    .to_string();
    state.stats.ok.fetch_add(1, Ordering::Relaxed);
    HttpResponse::json(200, body)
}

fn simulate(req: &HttpRequest, state: &Arc<ServerState>) -> HttpResponse {
    let sim = match parse_sim_request(&req.body, &state.config.json_limits) {
        Ok(sim) => sim,
        Err(e) => {
            state.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            let status = match e {
                ProtoError::TooLarge { .. } => 413,
                _ => 400,
            };
            return HttpResponse::json(status, error_body(&e.to_string()));
        }
    };
    let budget = sim.budget.min(state.config.budget_ceiling);
    let job_state = Arc::clone(state);
    submit_job(state, move || execute_sim(&job_state, &sim, budget))
}

/// Worker-side execution of one validated request through the warm path.
fn execute_sim(state: &ServerState, sim: &SimRequest, budget: CellBudget) -> HttpResponse {
    let (pool, was_warm) = state.registry.get(&sim.workload, sim.p);
    if was_warm {
        state.stats.warm_runs.fetch_add(1, Ordering::Relaxed);
    } else {
        state.stats.cold_runs.fetch_add(1, Ordering::Relaxed);
    }
    let flat = pool.flat(sim.p);
    let result = state
        .scratch
        .with(|scratch| run_sim_budgeted_flat(&flat, &sim.settings, budget, scratch));
    match result {
        Ok(report) => HttpResponse::json(200, report_to_json(&report)),
        Err(e) => HttpResponse::json(400, error_body(&format!("invalid configuration: {e}"))),
    }
}

/// Submits a closure to the worker pool and synchronously awaits its
/// response, mapping admission failures to 429/503 and panics to 500.
fn submit_job(
    state: &ServerState,
    job: impl FnOnce() -> HttpResponse + Send + 'static,
) -> HttpResponse {
    let (tx, rx) = mpsc::channel::<HttpResponse>();
    let submitted = state.worker_pool.try_submit(move || {
        // Catch here (under the pool's own backstop) so the panic message
        // reaches the client as a 500 body.
        let resp = match catch_unwind(AssertUnwindSafe(job)) {
            Ok(resp) => resp,
            Err(payload) => {
                let msg = panic_message(&payload);
                HttpResponse::json(500, error_body(&format!("request panicked: {msg}")))
            }
        };
        let _ = tx.send(resp);
    });
    match submitted {
        Ok(()) => match rx.recv() {
            Ok(resp) => {
                match resp.status {
                    200 => state.stats.ok.fetch_add(1, Ordering::Relaxed),
                    500 => state.stats.panics.fetch_add(1, Ordering::Relaxed),
                    _ => state.stats.client_errors.fetch_add(1, Ordering::Relaxed),
                };
                resp
            }
            // The sender can only drop without sending if the job was lost
            // to something the in-job catch_unwind could not see.
            Err(_) => {
                state.stats.panics.fetch_add(1, Ordering::Relaxed);
                HttpResponse::json(500, error_body("request execution lost"))
            }
        },
        Err(SubmitError::Full { capacity }) => {
            state.stats.rejected.fetch_add(1, Ordering::Relaxed);
            HttpResponse::json(
                429,
                error_body(&format!(
                    "request queue full (capacity {capacity}); retry later"
                )),
            )
        }
        Err(SubmitError::ShutDown) => {
            state.stats.shed.fetch_add(1, Ordering::Relaxed);
            HttpResponse::json(503, error_body("server is draining"))
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}
