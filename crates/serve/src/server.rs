//! The simulation server: sharded accept path, routing, admission
//! control, warm pools, request coalescing, streaming sessions, and
//! graceful drain.
//!
//! Request lifecycle (DESIGN.md §14, §16):
//!
//! 1. The accept loop (nonblocking listener, 5 ms poll) takes a
//!    connection, or sheds it with **503** when `max_connections` threads
//!    are already serving. Accepted connections are handed to one of
//!    `shards` [`ShardState`]s round-robin — each shard owns its own
//!    [`WorkerPool`](hbm_par::WorkerPool), pool registry, scratch, and
//!    counters, so the request path shares no locks across shards.
//! 2. The connection thread parses HTTP/1.1 requests (keep-alive) under
//!    per-message deadlines and routes them. Framing or JSON errors are
//!    **400**; oversized requests are **413**.
//! 3. `/simulate` bodies become [`SimRequest`]s and are submitted to the
//!    shard's worker pool — *non-blocking*: a full queue is an immediate
//!    **429**, the explicit admission-control signal. With a coalescing
//!    window configured, same-(workload, p, budget) requests arriving
//!    within the window run as one batched engine call (see
//!    [`shard`](crate::shard)); responses are byte-identical either way.
//! 4. The worker executes through the warm path — a per-workload
//!    [`TracePool`](crate::pool::TracePool) (memoized traces + flats) and
//!    the shard's [`ScratchPool`](crate::pool::ScratchPool) — under the
//!    request's [`CellBudget`] clamped to the server ceiling; budget
//!    exhaustion yields **200** with `"truncated": true` rather than a
//!    hung connection. A panicking request is caught in the worker and
//!    surfaces as that request's **500**; the worker thread and every
//!    other connection survive.
//! 5. `POST /session` upgrades the connection to a chunked-JSONL
//!    streaming session run on the connection thread (see
//!    [`session`](crate::session)).
//! 6. Shutdown (SIGTERM/ctrl-c or [`ShutdownFlag::trip`]) stops the accept
//!    loop, lets idle connections close, finishes in-flight requests and
//!    sessions (sessions end with a `"draining"` line), drains every
//!    shard's worker queue, and joins everything — then returns the final
//!    aggregated [`ServerStats`].

use crate::http::{read_request, write_response, HttpError, HttpRequest, HttpResponse};
use crate::json::{Json, JsonLimits};
use crate::mux::SessionMux;
use crate::pool::{run_sim_budgeted_flat, CellBudget};
use crate::proto::{estimate_to_json, parse_sim_request, report_to_json, ProtoError, SimRequest};
use crate::session::{serve_resume, serve_session, ResumeTable};
use crate::shard::{coalesced_submit, ShardState};
use crate::shutdown::ShutdownFlag;
use hbm_par::SubmitError;
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs. The defaults suit tests and small deployments;
/// the binary exposes the load-bearing ones as flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listener shards. Each shard gets its own worker pool, pool
    /// registry, scratch pool, and counters; connections are dispatched
    /// round-robin.
    pub shards: usize,
    /// Simulation worker threads **per shard**.
    pub workers: usize,
    /// Pending-request queue capacity **per shard**; a full queue rejects
    /// with 429.
    pub queue_capacity: usize,
    /// Maximum concurrent connections (global); excess connections get 503.
    pub max_connections: usize,
    /// Per-message read deadline (head + body).
    pub request_timeout: Duration,
    /// Ceiling clamped onto every request's budget. The default caps wall
    /// time so no request can hold a worker indefinitely.
    pub budget_ceiling: CellBudget,
    /// Maximum distinct workload pools kept warm per shard (LRU beyond
    /// this).
    pub max_pools: usize,
    /// Per-pool cap on memoized flats (`None` = unbounded).
    pub flat_capacity: Option<usize>,
    /// Idle period after which warm memory (memoized flats, scratch
    /// buffers) is released. `None` disables idle shrinking.
    pub idle_shrink_after: Option<Duration>,
    /// Same-(workload, p, budget) requests arriving within this window
    /// coalesce into one batched engine call. `None` disables coalescing
    /// (every request runs scalar).
    pub coalesce_window: Option<Duration>,
    /// Maximum requests per coalesced batch; a batch reaching this size
    /// flushes before the window closes.
    pub max_batch: usize,
    /// Maximum concurrently open streaming sessions (global); excess
    /// session opens get 429.
    pub max_sessions: usize,
    /// A session chunk write stalling longer than this (client gone or not
    /// reading) reaps the session.
    pub session_write_stall: Duration,
    /// Threads in the session multiplexer pool — the *total* OS-thread
    /// cost of all open streaming sessions (see [`crate::mux`]).
    pub session_workers: usize,
    /// How long a resume token stays valid after the session opens.
    pub resume_ttl: Duration,
    /// Maximum registered resume tokens; beyond this the oldest is
    /// evicted at the next mint.
    pub max_resume_tokens: usize,
    /// JSON parser limits applied to request bodies.
    pub json_limits: JsonLimits,
    /// Enables `POST /test/panic` (a deliberately panicking request) so
    /// tests can prove panic isolation end-to-end. Off in production.
    pub enable_test_endpoints: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 1,
            workers: hbm_par::default_threads(),
            queue_capacity: 64,
            max_connections: 64,
            request_timeout: Duration::from_secs(10),
            budget_ceiling: CellBudget {
                max_ticks: None,
                max_wall: Some(Duration::from_secs(10)),
            },
            max_pools: 8,
            flat_capacity: Some(8),
            idle_shrink_after: Some(Duration::from_secs(30)),
            coalesce_window: None,
            max_batch: 16,
            max_sessions: 32,
            session_write_stall: Duration::from_secs(5),
            session_workers: 2,
            resume_ttl: Duration::from_secs(300),
            max_resume_tokens: 1024,
            json_limits: JsonLimits::default(),
            enable_test_endpoints: false,
        }
    }
}

/// Counters the server maintains while running; per-shard snapshots are
/// aggregated into the totals returned by [`Server::run`] and served live
/// at `GET /healthz` (which also reports each shard separately).
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Requests that reached routing (any method/path).
    pub requests: u64,
    /// 200 responses.
    pub ok: u64,
    /// 429 rejections (queue full, or session limit).
    pub rejected: u64,
    /// 503 rejections (connection cap, or submit-after-shutdown races).
    pub shed: u64,
    /// 4xx protocol/validation errors.
    pub client_errors: u64,
    /// 500s (request panics).
    pub panics: u64,
    /// Cold `/simulate` executions (trace pool generated on this request).
    pub cold_runs: u64,
    /// Warm `/simulate` executions (served from a pooled workload).
    pub warm_runs: u64,
    /// Coalesced batches flushed to worker pools.
    pub batches: u64,
    /// Requests that ran inside a coalesced batch.
    pub batched_requests: u64,
    /// Streaming sessions opened (stream head written).
    pub sessions_opened: u64,
    /// Sessions that ended with a terminal `done` line.
    pub sessions_closed: u64,
    /// Sessions reaped mid-stream (client disconnected or stalled).
    pub sessions_reaped: u64,
    /// Sessions reattached through `/session/resume`.
    pub sessions_resumed: u64,
    /// Sessions evicted by the shed policy to admit newer requests.
    pub sessions_shed: u64,
    /// Alert lines emitted across all sessions.
    pub alerts: u64,
}

impl ServerStats {
    fn accumulate(&mut self, other: &ServerStats) {
        self.requests += other.requests;
        self.ok += other.ok;
        self.rejected += other.rejected;
        self.shed += other.shed;
        self.client_errors += other.client_errors;
        self.panics += other.panics;
        self.cold_runs += other.cold_runs;
        self.warm_runs += other.warm_runs;
        self.batches += other.batches;
        self.batched_requests += other.batched_requests;
        self.sessions_opened += other.sessions_opened;
        self.sessions_closed += other.sessions_closed;
        self.sessions_reaped += other.sessions_reaped;
        self.sessions_resumed += other.sessions_resumed;
        self.sessions_shed += other.sessions_shed;
        self.alerts += other.alerts;
    }
}

pub(crate) struct ServerState {
    pub(crate) config: ServerConfig,
    pub(crate) shards: Vec<Arc<ShardState>>,
    pub(crate) active_connections: AtomicUsize,
    pub(crate) active_sessions: AtomicUsize,
    pub(crate) mux: Arc<SessionMux>,
    pub(crate) resume: ResumeTable,
}

/// `Retry-After` hint (seconds) on 503s caused by drain: long enough for
/// a typical drain to finish, short enough that clients re-find a
/// restarted server quickly.
pub(crate) const RETRY_AFTER_DRAIN_SECS: u64 = 5;

/// `Retry-After` hint on the connection-cap 503: connections turn over
/// quickly, so retry almost immediately.
const RETRY_AFTER_CONNECTIONS_SECS: u64 = 1;

/// The simulation-as-a-service server. Bind, then [`run`](Self::run).
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port in tests).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let shards = (0..config.shards.max(1))
            .map(|id| {
                Arc::new(ShardState::new(
                    id,
                    config.workers,
                    config.queue_capacity,
                    config.max_pools,
                    config.flat_capacity,
                    config.max_batch,
                ))
            })
            .collect();
        let state = Arc::new(ServerState {
            shards,
            active_connections: AtomicUsize::new(0),
            active_sessions: AtomicUsize::new(0),
            mux: Arc::new(SessionMux::new()),
            resume: ResumeTable::new(config.resume_ttl, config.max_resume_tokens),
            config,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `flag` trips, then drains: no new connections, idle
    /// connections close, in-flight requests and sessions finish, every
    /// shard's worker queue empties, every thread is joined. Returns the
    /// final statistics aggregated across shards.
    pub fn run(self, flag: &ShutdownFlag) -> io::Result<ServerStats> {
        let mux_workers = self
            .state
            .mux
            .spawn_workers(self.state.config.session_workers, flag);
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        let mut next_shard = 0usize;
        let mut last_activity = Instant::now();
        let mut last_executed = 0u64;
        let mut shrunk_while_idle = false;
        while !flag.is_set() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    last_activity = Instant::now();
                    shrunk_while_idle = false;
                    // Keep-alive request/response exchanges are small;
                    // leaving Nagle on would serialize them against the
                    // peer's delayed ACKs.
                    let _ = stream.set_nodelay(true);
                    let active = &self.state.active_connections;
                    if active.load(Ordering::Relaxed) >= self.state.config.max_connections {
                        let shard = &self.state.shards[next_shard % self.state.shards.len()];
                        shard.stats.shed.fetch_add(1, Ordering::Relaxed);
                        let _ = shed_connection(stream);
                        continue;
                    }
                    active.fetch_add(1, Ordering::Relaxed);
                    // Round-robin dispatch: with the workspace's
                    // no-unsafe-outside-shutdown rule, SO_REUSEPORT (a
                    // setsockopt FFI) is off-limits, so one accept loop
                    // plays dispatcher for all shards.
                    let shard =
                        Arc::clone(&self.state.shards[next_shard % self.state.shards.len()]);
                    next_shard = next_shard.wrapping_add(1);
                    let state = Arc::clone(&self.state);
                    let conn_flag = flag.clone();
                    let handle = std::thread::Builder::new()
                        .name(format!("hbm-serve-conn-s{}", shard.id))
                        .spawn(move || {
                            serve_connection(stream, &state, &shard, &conn_flag);
                            state.active_connections.fetch_sub(1, Ordering::Relaxed);
                        })
                        .expect("spawn connection thread");
                    connections.push(handle);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            connections.retain(|h| !h.is_finished());
            // Idle-path memory release: when no request has executed for
            // the configured window, drop memoized flats and idle scratch.
            let executed: u64 = self
                .state
                .shards
                .iter()
                .map(|s| s.worker_pool.executed())
                .sum();
            if executed != last_executed {
                last_executed = executed;
                last_activity = Instant::now();
                shrunk_while_idle = false;
            }
            if let Some(window) = self.state.config.idle_shrink_after {
                if !shrunk_while_idle && last_activity.elapsed() >= window {
                    for shard in &self.state.shards {
                        shard.registry.shrink();
                        shard.scratch.clear();
                    }
                    shrunk_while_idle = true;
                }
            }
        }
        // Drain: connection threads see the flag (idle reads cancel,
        // in-flight requests complete), then the mux finishes every open
        // session with a `draining` line, then every shard's worker queue
        // empties. Connection threads are the only session submitters, so
        // joining them before `begin_drain` closes the
        // submit-after-drain race.
        drop(self.listener);
        for handle in connections {
            let _ = handle.join();
        }
        self.state.mux.begin_drain();
        for handle in mux_workers {
            let _ = handle.join();
        }
        let mut totals = ServerStats::default();
        for shard in &self.state.shards {
            shard.worker_pool.shutdown();
            totals.accumulate(&shard.stats.snapshot());
        }
        Ok(totals)
    }
}

/// Best-effort 503 for connections over the concurrency cap.
fn shed_connection(mut stream: TcpStream) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_write_timeout(Some(Duration::from_millis(250)))?;
    let resp = HttpResponse {
        close: true,
        ..HttpResponse::json(503, "{\"error\":\"connection limit reached\"}")
            .with_retry_after(RETRY_AFTER_CONNECTIONS_SECS)
    };
    write_response(&mut stream, &resp)
}

fn serve_connection(
    mut stream: TcpStream,
    state: &Arc<ServerState>,
    shard: &Arc<ShardState>,
    flag: &ShutdownFlag,
) {
    if stream.set_nonblocking(false).is_err()
        || stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .is_err()
    {
        return;
    }
    let idle_cancel = || flag.is_set();
    loop {
        // A fresh deadline per message: the connection may idle between
        // requests (keep-alive) for as long as the client likes — idleness
        // is interrupted by shutdown via `idle_cancel`, while an in-flight
        // message gets `request_timeout` to complete.
        let deadline = Instant::now() + state.config.request_timeout;
        let req = match read_request(&mut stream, deadline, &idle_cancel) {
            Ok(Some(req)) => req,
            Ok(None) => return,                  // client closed cleanly
            Err(HttpError::Cancelled) => return, // shutdown while idle
            Err(HttpError::IdleTimedOut) => {
                // Idle keep-alive wait: just re-arm the deadline. The
                // client may idle between requests as long as it likes.
                if flag.is_set() {
                    return;
                }
                continue;
            }
            Err(HttpError::TimedOut) => {
                // Mid-message stall: the client sent part of a head or
                // body and then went quiet past `request_timeout` —
                // slowloris shape. 408 and drop the connection so the
                // slot frees.
                shard.stats.client_errors.fetch_add(1, Ordering::Relaxed);
                let _ = respond_error(
                    &mut stream,
                    408,
                    "request head/body incomplete after request timeout",
                    true,
                );
                return;
            }
            Err(e) => {
                let (status, msg) = match &e {
                    HttpError::HeadTooLarge => (413, e.to_string()),
                    HttpError::BodyTooLarge { .. } => (413, e.to_string()),
                    _ => (400, e.to_string()),
                };
                shard.stats.client_errors.fetch_add(1, Ordering::Relaxed);
                let _ = respond_error(&mut stream, status, &msg, true);
                return;
            }
        };
        if req.method == "POST" && (req.path == "/session" || req.path == "/session/resume") {
            // The session consumes the rest of the connection (the stream
            // head advertises `connection: close`); ownership of the
            // socket moves to the mux on successful admission.
            if req.path == "/session" {
                serve_session(stream, &req, state, shard, flag);
            } else {
                serve_resume(stream, &req, state, shard, flag);
            }
            return;
        }
        let close_after = req
            .headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let mut resp = route(&req, state, shard, flag);
        resp.close = close_after;
        if write_response(&mut stream, &resp).is_err() {
            return;
        }
        if close_after {
            return;
        }
        if flag.is_set() {
            // In-flight request finished (drain guarantee); now stop
            // taking new ones on this connection.
            return;
        }
    }
}

fn respond_error(
    stream: &mut TcpStream,
    status: u16,
    message: &str,
    close: bool,
) -> io::Result<()> {
    let body = Json::obj(vec![("error", Json::from(message))]).to_string();
    let resp = HttpResponse {
        close,
        ..HttpResponse::json(status, body)
    };
    write_response(stream, &resp)
}

pub(crate) fn error_body(message: &str) -> String {
    Json::obj(vec![("error", Json::from(message))]).to_string()
}

fn route(
    req: &HttpRequest,
    state: &Arc<ServerState>,
    shard: &Arc<ShardState>,
    flag: &ShutdownFlag,
) -> HttpResponse {
    shard.stats.requests.fetch_add(1, Ordering::Relaxed);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(state, shard, flag),
        ("POST", "/simulate") => simulate(req, state, shard),
        ("POST", "/estimate") => estimate(req, state, shard),
        ("POST", "/test/panic") if state.config.enable_test_endpoints => {
            submit_job(shard, || panic!("deliberate test panic"))
        }
        ("POST", _) | ("GET", _) => {
            shard.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            HttpResponse::json(404, error_body("no such endpoint"))
        }
        _ => {
            shard.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            HttpResponse::json(405, error_body("method not allowed"))
        }
    }
}

fn healthz(state: &ServerState, shard: &ShardState, flag: &ShutdownFlag) -> HttpResponse {
    let mut totals = ServerStats::default();
    let mut queued = 0usize;
    let mut running = 0usize;
    let mut per_shard = Vec::with_capacity(state.shards.len());
    for s in &state.shards {
        let snap = s.stats.snapshot();
        let s_queued = s.worker_pool.queued();
        let s_running = s.worker_pool.running();
        per_shard.push(Json::obj(vec![
            ("shard", Json::from(s.id)),
            ("requests", Json::from(snap.requests)),
            ("ok", Json::from(snap.ok)),
            ("rejected", Json::from(snap.rejected)),
            ("shed", Json::from(snap.shed)),
            ("client_errors", Json::from(snap.client_errors)),
            ("panics", Json::from(snap.panics)),
            ("cold_runs", Json::from(snap.cold_runs)),
            ("warm_runs", Json::from(snap.warm_runs)),
            ("batches", Json::from(snap.batches)),
            ("batched_requests", Json::from(snap.batched_requests)),
            ("sessions_opened", Json::from(snap.sessions_opened)),
            ("sessions_closed", Json::from(snap.sessions_closed)),
            ("sessions_reaped", Json::from(snap.sessions_reaped)),
            ("sessions_resumed", Json::from(snap.sessions_resumed)),
            ("sessions_shed", Json::from(snap.sessions_shed)),
            ("alerts", Json::from(snap.alerts)),
            ("queued", Json::from(s_queued)),
            ("running", Json::from(s_running)),
        ]));
        totals.accumulate(&snap);
        queued += s_queued;
        running += s_running;
    }
    let body = Json::obj(vec![
        (
            "status",
            Json::from(if flag.is_set() { "draining" } else { "ok" }),
        ),
        ("requests", Json::from(totals.requests)),
        ("ok", Json::from(totals.ok)),
        ("rejected", Json::from(totals.rejected)),
        ("shed", Json::from(totals.shed)),
        ("client_errors", Json::from(totals.client_errors)),
        ("panics", Json::from(totals.panics)),
        ("cold_runs", Json::from(totals.cold_runs)),
        ("warm_runs", Json::from(totals.warm_runs)),
        ("batches", Json::from(totals.batches)),
        ("batched_requests", Json::from(totals.batched_requests)),
        ("sessions_opened", Json::from(totals.sessions_opened)),
        ("sessions_closed", Json::from(totals.sessions_closed)),
        ("sessions_reaped", Json::from(totals.sessions_reaped)),
        ("sessions_resumed", Json::from(totals.sessions_resumed)),
        ("sessions_shed", Json::from(totals.sessions_shed)),
        ("alerts", Json::from(totals.alerts)),
        ("queued", Json::from(queued)),
        ("running", Json::from(running)),
        (
            "active_connections",
            Json::from(state.active_connections.load(Ordering::Relaxed)),
        ),
        (
            "active_sessions",
            Json::from(state.active_sessions.load(Ordering::Relaxed)),
        ),
        ("shards", Json::Arr(per_shard)),
    ])
    .to_string();
    shard.stats.ok.fetch_add(1, Ordering::Relaxed);
    HttpResponse::json(200, body)
}

fn simulate(req: &HttpRequest, state: &Arc<ServerState>, shard: &Arc<ShardState>) -> HttpResponse {
    let sim = match parse_sim_request(&req.body, &state.config.json_limits) {
        Ok(sim) => sim,
        Err(e) => {
            shard.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            let status = match e {
                ProtoError::TooLarge { .. } => 413,
                _ => 400,
            };
            return HttpResponse::json(status, error_body(&e.to_string()));
        }
    };
    let budget = sim.budget.min(state.config.budget_ceiling);
    if let Some(window) = state.config.coalesce_window {
        let resp = coalesced_submit(shard, &sim.workload, sim.p, sim.settings, budget, window);
        shard.stats.count_response(&resp);
        return resp;
    }
    let job_shard = Arc::clone(shard);
    submit_job(shard, move || execute_sim(&job_shard, &sim, budget))
}

/// Worker-side execution of one validated request through the warm path.
fn execute_sim(shard: &ShardState, sim: &SimRequest, budget: CellBudget) -> HttpResponse {
    let (pool, was_warm) = shard.registry.get(&sim.workload, sim.p);
    if was_warm {
        shard.stats.warm_runs.fetch_add(1, Ordering::Relaxed);
    } else {
        shard.stats.cold_runs.fetch_add(1, Ordering::Relaxed);
    }
    let flat = pool.flat(sim.p);
    let result = shard
        .scratch
        .with(|scratch| run_sim_budgeted_flat(&flat, &sim.settings, budget, scratch.scalar_mut()));
    match result {
        Ok(report) => HttpResponse::json(200, report_to_json(&report)),
        Err(e) => HttpResponse::json(400, error_body(&format!("invalid configuration: {e}"))),
    }
}

/// `POST /estimate`: the analytical fast path. Accepts the *exact*
/// `/simulate` body, but answers from the closed-form model — no engine
/// run, no worker-pool submission, no trace-pool registry traffic. The
/// only real work is summarizing the workload (one streaming pass per
/// core, bounded by the same admission limits as `/simulate`), so the
/// request runs to completion on the connection thread and can never be
/// queued behind simulations.
fn estimate(req: &HttpRequest, state: &Arc<ServerState>, shard: &Arc<ShardState>) -> HttpResponse {
    let sim = match parse_sim_request(&req.body, &state.config.json_limits) {
        Ok(sim) => sim,
        Err(e) => {
            shard.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            let status = match e {
                ProtoError::TooLarge { .. } => 413,
                _ => 400,
            };
            return HttpResponse::json(status, error_body(&e.to_string()));
        }
    };
    // Same 500-with-message contract as pooled jobs: a panic in the model
    // must reach the client, not kill the connection thread silently.
    let resp = match catch_unwind(AssertUnwindSafe(|| execute_estimate(&sim))) {
        Ok(resp) => resp,
        Err(payload) => {
            let msg = panic_message(&payload);
            HttpResponse::json(500, error_body(&format!("request panicked: {msg}")))
        }
    };
    shard.stats.count_response(&resp);
    resp
}

/// Validated-request half of [`estimate`]: summary → prediction → JSON.
fn execute_estimate(sim: &SimRequest) -> HttpResponse {
    let s = &sim.settings;
    // The engine path rejects these at `SimConfig::validate`; the model
    // would divide by them. Mirror the wording of the simulate path.
    if sim.p == 0 || s.k == 0 || s.q == 0 {
        return HttpResponse::json(
            400,
            error_body("invalid configuration: p, k, and q must be positive"),
        );
    }
    let summary = hbm_traces::analysis::WorkloadSummary::from_spec_opts(
        sim.workload.spec,
        sim.workload.trace_seed,
        sim.p,
        sim.workload.opts,
    );
    let mut cfg = hbm_model::ModelConfig::new(s.k, s.q, s.arbitration, s.replacement)
        .far_latency(s.far_latency.unwrap_or(1));
    if !s.faults.is_empty() {
        cfg = cfg.faults(hbm_model::FaultSummary::from_plan(&s.faults, s.q));
    }
    let pred = hbm_model::predict::predict(&summary, &cfg);
    HttpResponse::json(200, estimate_to_json(&pred))
}

/// Submits a closure to the shard's worker pool and synchronously awaits
/// its response, mapping admission failures to 429/503 and panics to 500.
fn submit_job(
    shard: &ShardState,
    job: impl FnOnce() -> HttpResponse + Send + 'static,
) -> HttpResponse {
    let (tx, rx) = mpsc::channel::<HttpResponse>();
    let submitted = shard.worker_pool.try_submit(move || {
        // Catch here (under the pool's own backstop) so the panic message
        // reaches the client as a 500 body.
        let resp = match catch_unwind(AssertUnwindSafe(job)) {
            Ok(resp) => resp,
            Err(payload) => {
                let msg = panic_message(&payload);
                HttpResponse::json(500, error_body(&format!("request panicked: {msg}")))
            }
        };
        let _ = tx.send(resp);
    });
    let resp = match submitted {
        Ok(()) => match rx.recv() {
            Ok(resp) => resp,
            // The sender can only drop without sending if the job was lost
            // to something the in-job catch_unwind could not see.
            Err(_) => HttpResponse::json(500, error_body("request execution lost")),
        },
        Err(SubmitError::Full { capacity }) => HttpResponse::json(
            429,
            error_body(&format!(
                "request queue full (capacity {capacity}); retry later"
            )),
        )
        .with_retry_after(crate::shard::queue_retry_after(shard)),
        Err(SubmitError::ShutDown) => HttpResponse::json(503, error_body("server is draining"))
            .with_retry_after(RETRY_AFTER_DRAIN_SECS),
    };
    shard.stats.count_response(&resp);
    resp
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}
