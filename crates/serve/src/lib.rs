//! `hbm-serve`: simulation-as-a-service over the §3.1 tick engine.
//!
//! The ROADMAP's north star is a system that "serves heavy traffic from
//! millions of users"; this crate is the serving layer over the simulator
//! the previous PRs built — an std-only HTTP/1.1 + JSON service (the
//! workspace's `serde` is an offline no-op stand-in, so the codec in
//! [`json`] is hand-rolled and shared with the experiment harness's
//! journal) with:
//!
//! * **Warm-path execution** ([`pool`]): requests run through memoized
//!   [`TracePool`](pool::TracePool)s and recycled
//!   [`ScratchPool`](pool::ScratchPool) buffers, so steady-state setup
//!   costs microseconds, not the milliseconds of cold trace generation.
//!   These types moved here from `hbm-experiments` (which re-exports
//!   them) and gained bounded retention — LRU flat-cache capacity and
//!   explicit [`shrink`](pool::TracePool::shrink) for idle release.
//! * **Admission control** ([`server`]): a bounded worker queue
//!   (`hbm_par::WorkerPool`) that rejects overload with 429 instead of
//!   building unbounded backlog, per-request
//!   [`CellBudget`](pool::CellBudget)s clamped to a server ceiling so no
//!   request hangs a worker (over-budget runs return `"truncated": true`),
//!   and per-request panic isolation.
//! * **Sharded serving & batching** ([`server`]): the accept loop
//!   dispatches connections round-robin across N shards, each with its
//!   own worker pool, warm-pool registry, and counters; with a coalescing
//!   window enabled, same-(workload, p, budget) requests batch through
//!   the lockstep `BatchEngine` with byte-identical responses.
//! * **Multiplexed streaming sessions** ([`mux`](crate), [`alerts`]):
//!   `POST /session` upgrades the connection to a chunked-HTTP JSONL
//!   stream of periodic metric snapshots, fault events, and alert-rule
//!   firings. Sessions are state machines scheduled off a deadline
//!   min-heap onto a fixed `session_workers` pool — thousands of paced
//!   sessions cost memory, not OS threads — and every `open` line
//!   carries a resume token: a dropped client POSTs `/session/resume`
//!   and the deterministic engine replays its suffix byte-identically.
//! * **Graceful shutdown** ([`shutdown`]): SIGTERM/ctrl-c trips a
//!   [`ShutdownFlag`](shutdown::ShutdownFlag) observed by the accept loop,
//!   every connection, and `repro sweep` alike — in-flight work finishes,
//!   new work is refused, and the process exits cleanly.
//!
//! The request protocol lives in [`proto`]; the HTTP/1.1 framing (server
//! and client halves) in [`http`].

#![deny(unsafe_code)] // `shutdown` holds the one allowed exception
#![warn(missing_docs)]

pub mod alerts;
pub mod http;
pub mod json;
mod mux;
pub mod pool;
pub mod proto;
pub mod server;
mod session;
mod shard;
#[allow(unsafe_code)]
pub mod shutdown;

pub use json::{fmt_f64, Json, JsonError, JsonLimits, Number};
pub use pool::{
    run_cell, run_cell_budgeted, run_cell_budgeted_flat, run_cell_flat, run_sim_budgeted,
    run_sim_budgeted_flat, CellBudget, ScratchPool, SimSettings, TracePool,
};
pub use proto::{builtin_workload, parse_sim_request, report_to_json, ProtoError, SimRequest};
pub use server::{Server, ServerConfig, ServerStats};
pub use shutdown::ShutdownFlag;
