//! The service wire protocol: JSON → [`SimRequest`] and
//! [`Report`] → JSON.
//!
//! A `/simulate` request body looks like:
//!
//! ```json
//! {
//!   "workload": {"kind": "cyclic", "pages": 64, "reps": 10},
//!   "p": 8,
//!   "k": 128,
//!   "q": 2,
//!   "arbitration": {"kind": "dynamic_priority", "period": 256},
//!   "replacement": "lru",
//!   "seed": 42,
//!   "max_ticks": 1000000,
//!   "max_wall_ms": 2000,
//!   "faults": {
//!     "outages": [{"start": 10, "end": 20, "channels": 1}],
//!     "degradations": [{"start": 30, "end": 40, "extra_latency": 3}],
//!     "transient": {"fail_prob": 0.25, "max_retries": 4, "seed": 7}
//!   }
//! }
//! ```
//!
//! `workload` is either an inline spec (`kind` + parameters) or a named
//! built-in (`{"name": "dataset3-small"}`) resolved by
//! [`builtin_workload`]; named workloads flow through the server's shared
//! [`TracePool`](crate::pool::TracePool)s and are the warm path.
//! Everything except `workload`, `p`, and `k` is optional.
//!
//! Parsing is strict where it matters for safety (size bounds, unknown
//! policy names) and lenient where it doesn't (unknown top-level keys are
//! ignored so clients can annotate requests). Every rejection is a typed
//! [`ProtoError`] that the server maps to a 400 with the message in the
//! body.
//!
//! [`report_to_json`] is the single serialization of [`Report`] in the
//! workspace; the integration suite byte-compares server responses against
//! direct `SimBuilder` runs through this same function, so any drift
//! between the service path and the library path is a test failure.

use crate::alerts::{AlertRule, MAX_ALERT_RULES};
use crate::json::{Json, JsonError, JsonLimits};
use crate::pool::{CellBudget, SimSettings};
use hbm_core::{ArbitrationKind, FaultEvent, FaultPlan, ReplacementKind, Report};
use hbm_traces::{SortAlgo, TraceOptions, WorkloadSpec};
use std::fmt;
use std::time::Duration;

/// Ceiling on `p` (cores) a request may ask for.
pub const MAX_P: usize = 512;
/// Ceiling on the total reference count a generated workload may have,
/// approximated per-spec before generation (`p × per-core length bound`).
pub const MAX_TOTAL_REFS: u64 = 50_000_000;
/// Default session snapshot cadence in simulated ticks.
pub const DEFAULT_SNAPSHOT_PERIOD: u64 = 1024;
/// Ceiling on a session's `pace_ms` — pacing is a streaming convenience,
/// not a way to park a connection thread for minutes per snapshot.
pub const MAX_PACE_MS: u64 = 1_000;

/// A validated simulation request.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// The workload to simulate.
    pub workload: WorkloadKey,
    /// Thread count `p`.
    pub p: usize,
    /// Simulation parameters (k, q, policies, seed, faults).
    pub settings: SimSettings,
    /// Client-requested budget (the server clamps it against its ceiling).
    pub budget: CellBudget,
}

/// A workload identity the server can pool on: the spec plus the trace
/// seed and options. Two requests with equal keys share one `TracePool`.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadKey {
    /// The generator spec.
    pub spec: WorkloadSpec,
    /// Trace-generation seed (independent of the policy seed).
    pub trace_seed: u64,
    /// Generation options.
    pub opts: TraceOptions,
}

impl WorkloadKey {
    /// The canonical string form of this key — what the pool registry maps
    /// on and the coalescer batches on. Debug formatting of the spec is
    /// stable and injective enough to key on (distinct f64 parameters
    /// print distinctly).
    pub fn cache_key(&self) -> String {
        format!(
            "{:?}|seed={}|page_bytes={}|collapse={}",
            self.spec, self.trace_seed, self.opts.page_bytes, self.opts.collapse
        )
    }
}

/// A validated streaming-session request: a full [`SimRequest`] plus the
/// streaming knobs (`snapshot_period_ticks`, `pace_ms`, `alerts`).
#[derive(Debug, Clone)]
pub struct SessionRequest {
    /// The simulation to run incrementally.
    pub sim: SimRequest,
    /// Emit a metrics snapshot at least every this many simulated ticks.
    pub snapshot_period: u64,
    /// Optional wall-clock pause between snapshot rounds (paced
    /// streaming). `None` streams as fast as the engine steps.
    pub pace: Option<Duration>,
    /// Server-side alert rules evaluated at every snapshot (bounded by
    /// [`MAX_ALERT_RULES`]).
    pub alerts: Vec<AlertRule>,
}

/// A validated `/session/resume` request: the token from a prior
/// session's `open` line plus the tick of the last snapshot the client
/// acknowledges having received (`None` replays from the beginning).
#[derive(Debug, Clone)]
pub struct ResumeRequest {
    /// The opaque resume token.
    pub token: String,
    /// Tick of the last received snapshot; the replay is muted up to and
    /// including the snapshot line at this tick.
    pub last_tick: Option<u64>,
}

/// Why a request body was rejected.
#[derive(Debug)]
pub enum ProtoError {
    /// The body was not valid JSON.
    Json(JsonError),
    /// A required field is missing.
    MissingField(&'static str),
    /// A field exists but has the wrong type or an unknown value.
    BadField {
        /// The offending field.
        field: &'static str,
        /// What was wrong with it.
        why: String,
    },
    /// The request is structurally valid but too large to admit.
    TooLarge {
        /// Human-readable description of the violated bound.
        why: String,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Json(e) => write!(f, "invalid json: {e}"),
            ProtoError::MissingField(field) => write!(f, "missing required field '{field}'"),
            ProtoError::BadField { field, why } => write!(f, "bad field '{field}': {why}"),
            ProtoError::TooLarge { why } => write!(f, "request too large: {why}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<JsonError> for ProtoError {
    fn from(e: JsonError) -> ProtoError {
        ProtoError::Json(e)
    }
}

fn bad(field: &'static str, why: impl Into<String>) -> ProtoError {
    ProtoError::BadField {
        field,
        why: why.into(),
    }
}

fn req_usize(v: &Json, field: &'static str) -> Result<usize, ProtoError> {
    v.as_usize()
        .ok_or_else(|| bad(field, "expected a non-negative integer"))
}

fn req_u64(v: &Json, field: &'static str) -> Result<u64, ProtoError> {
    v.as_u64()
        .ok_or_else(|| bad(field, "expected a non-negative integer"))
}

fn req_f64(v: &Json, field: &'static str) -> Result<f64, ProtoError> {
    v.as_f64().ok_or_else(|| bad(field, "expected a number"))
}

fn opt_u64(obj: &Json, field: &'static str) -> Result<Option<u64>, ProtoError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => req_u64(v, field).map(Some),
    }
}

/// Resolves a named built-in workload. Names cover the repro datasets at
/// CI-friendly and default scales so clients (and the CI smoke job) don't
/// re-specify generator parameters.
pub fn builtin_workload(name: &str) -> Option<WorkloadSpec> {
    Some(match name {
        // Dataset 3 (the FIFO-killer cycle) at Scale::Small / Default.
        "dataset3-small" => WorkloadSpec::Cyclic {
            pages: 64,
            reps: 10,
        },
        "dataset3" => WorkloadSpec::Cyclic {
            pages: 256,
            reps: 30,
        },
        // Dataset 1 (mergesort) at Scale::Small / Default.
        "sort-small" => WorkloadSpec::Sort {
            algo: SortAlgo::Mergesort,
            n: 4_000,
        },
        "sort" => WorkloadSpec::Sort {
            algo: SortAlgo::Mergesort,
            n: 10_000,
        },
        // Dataset 2 (SpGEMM) at Scale::Small / Default.
        "spgemm-small" => WorkloadSpec::SpGemm {
            n: 80,
            density: 0.10,
        },
        "spgemm" => WorkloadSpec::SpGemm {
            n: 150,
            density: 0.10,
        },
        // Cheap synthetic shapes for load generation.
        "uniform-small" => WorkloadSpec::Uniform {
            pages: 256,
            len: 2_000,
        },
        "zipf-small" => WorkloadSpec::Zipf {
            pages: 256,
            len: 2_000,
            alpha: 1.1,
        },
        _ => return None,
    })
}

/// Names accepted by [`builtin_workload`], for error messages and docs.
pub const BUILTIN_NAMES: [&str; 8] = [
    "dataset3-small",
    "dataset3",
    "sort-small",
    "sort",
    "spgemm-small",
    "spgemm",
    "uniform-small",
    "zipf-small",
];

/// Parses the `/simulate` workload grammar: `{"name": "<builtin>"}` or
/// `{"kind": "...", ...generator parameters}`. Public so offline tools
/// (the `repro explore` grid-spec loader) accept exactly the grammar the
/// server does — one vocabulary for workloads everywhere.
pub fn parse_workload(v: &Json) -> Result<WorkloadSpec, ProtoError> {
    if let Some(name) = v.get("name") {
        let name = name
            .as_str()
            .ok_or_else(|| bad("workload.name", "expected a string"))?;
        return builtin_workload(name).ok_or_else(|| {
            bad(
                "workload.name",
                format!(
                    "unknown builtin '{name}' (known: {})",
                    BUILTIN_NAMES.join(", ")
                ),
            )
        });
    }
    let kind = v
        .get("kind")
        .ok_or(ProtoError::MissingField("workload.kind"))?
        .as_str()
        .ok_or_else(|| bad("workload.kind", "expected a string"))?;
    let field_usize = |f: &'static str| -> Result<usize, ProtoError> {
        req_usize(v.get(f).ok_or(ProtoError::MissingField(f))?, f)
    };
    let field_u32 = |f: &'static str| -> Result<u32, ProtoError> {
        let raw = req_u64(v.get(f).ok_or(ProtoError::MissingField(f))?, f)?;
        u32::try_from(raw).map_err(|_| bad(f, "out of u32 range"))
    };
    let field_f64 = |f: &'static str| -> Result<f64, ProtoError> {
        req_f64(v.get(f).ok_or(ProtoError::MissingField(f))?, f)
    };
    Ok(match kind {
        "sort" => {
            let algo = match v.get("algo").and_then(Json::as_str).unwrap_or("mergesort") {
                "mergesort" => SortAlgo::Mergesort,
                "introsort" => SortAlgo::Introsort,
                "quicksort" => SortAlgo::Quicksort,
                "heapsort" => SortAlgo::Heapsort,
                other => return Err(bad("workload.algo", format!("unknown sort algo '{other}'"))),
            };
            WorkloadSpec::Sort {
                algo,
                n: field_usize("n")?,
            }
        }
        "spgemm" => WorkloadSpec::SpGemm {
            n: field_usize("n")?,
            density: field_f64("density")?,
        },
        "spmv" => WorkloadSpec::SpMv {
            n: field_usize("n")?,
            density: field_f64("density")?,
            reps: field_usize("reps")?,
        },
        "cyclic" => WorkloadSpec::Cyclic {
            pages: field_u32("pages")?,
            reps: field_usize("reps")?,
        },
        "sawtooth" => WorkloadSpec::Sawtooth {
            pages: field_u32("pages")?,
            reps: field_usize("reps")?,
        },
        "uniform" => WorkloadSpec::Uniform {
            pages: field_u32("pages")?,
            len: field_usize("len")?,
        },
        "zipf" => WorkloadSpec::Zipf {
            pages: field_u32("pages")?,
            len: field_usize("len")?,
            alpha: field_f64("alpha")?,
        },
        "permutation_walk" => WorkloadSpec::PermutationWalk {
            pages: field_u32("pages")?,
            laps: field_usize("laps")?,
        },
        "bfs" => WorkloadSpec::Bfs {
            n: field_usize("n")?,
            degree: field_usize("degree")?,
        },
        "pagerank" => WorkloadSpec::PageRank {
            n: field_usize("n")?,
            degree: field_usize("degree")?,
            iters: field_usize("iters")?,
        },
        other => {
            return Err(bad(
                "workload.kind",
                format!("unknown workload kind '{other}'"),
            ))
        }
    })
}

/// Parses the arbitration grammar: a bare policy name (`"fifo"`) or an
/// object with parameters (`{"kind": "dynamic_priority", "period": 100}`).
/// Shared with the `repro explore` grid-spec loader.
pub fn parse_arbitration(v: &Json) -> Result<ArbitrationKind, ProtoError> {
    // Accept both a bare string ("fifo") and an object with parameters
    // ({"kind": "dynamic_priority", "period": 100}).
    let (kind, obj) = match v {
        Json::Str(s) => (s.as_str(), None),
        Json::Obj(_) => (
            v.get("kind")
                .ok_or(ProtoError::MissingField("arbitration.kind"))?
                .as_str()
                .ok_or_else(|| bad("arbitration.kind", "expected a string"))?,
            Some(v),
        ),
        _ => return Err(bad("arbitration", "expected a string or object")),
    };
    let period = || -> Result<u64, ProtoError> {
        let obj = obj.ok_or(ProtoError::MissingField("arbitration.period"))?;
        req_u64(
            obj.get("period")
                .ok_or(ProtoError::MissingField("arbitration.period"))?,
            "arbitration.period",
        )
    };
    Ok(match kind {
        "fifo" => ArbitrationKind::Fifo,
        "priority" => ArbitrationKind::Priority,
        "dynamic_priority" => ArbitrationKind::DynamicPriority { period: period()? },
        "cycle_priority" => ArbitrationKind::CyclePriority { period: period()? },
        "cycle_reverse_priority" => ArbitrationKind::CycleReversePriority { period: period()? },
        "interleave_priority" => ArbitrationKind::InterleavePriority { period: period()? },
        "sweep_priority" => ArbitrationKind::SweepPriority { period: period()? },
        "random_pick" => ArbitrationKind::RandomPick,
        "fr_fcfs" => {
            let obj = obj.ok_or(ProtoError::MissingField("arbitration.row_shift"))?;
            let raw = req_u64(
                obj.get("row_shift")
                    .ok_or(ProtoError::MissingField("arbitration.row_shift"))?,
                "arbitration.row_shift",
            )?;
            ArbitrationKind::FrFcfs {
                row_shift: u8::try_from(raw)
                    .map_err(|_| bad("arbitration.row_shift", "out of u8 range"))?,
            }
        }
        other => {
            return Err(bad(
                "arbitration.kind",
                format!("unknown arbitration kind '{other}'"),
            ))
        }
    })
}

/// Parses a replacement-policy name (`"lru"`, `"fifo"`, `"clock"`,
/// `"random"`). Shared with the `repro explore` grid-spec loader.
pub fn parse_replacement(v: &Json) -> Result<ReplacementKind, ProtoError> {
    let s = v
        .as_str()
        .ok_or_else(|| bad("replacement", "expected a string"))?;
    Ok(match s {
        "lru" => ReplacementKind::Lru,
        "fifo" => ReplacementKind::Fifo,
        "clock" => ReplacementKind::Clock,
        "random" => ReplacementKind::Random,
        other => {
            return Err(bad(
                "replacement",
                format!("unknown replacement policy '{other}'"),
            ))
        }
    })
}

fn parse_faults(v: &Json) -> Result<FaultPlan, ProtoError> {
    let mut plan = FaultPlan::new();
    if let Some(outages) = v.get("outages") {
        let arr = outages
            .as_array()
            .ok_or_else(|| bad("faults.outages", "expected an array"))?;
        for w in arr {
            plan = plan.outage(
                req_u64(
                    w.get("start")
                        .ok_or(ProtoError::MissingField("faults.outages.start"))?,
                    "faults.outages.start",
                )?,
                req_u64(
                    w.get("end")
                        .ok_or(ProtoError::MissingField("faults.outages.end"))?,
                    "faults.outages.end",
                )?,
                req_usize(
                    w.get("channels")
                        .ok_or(ProtoError::MissingField("faults.outages.channels"))?,
                    "faults.outages.channels",
                )?,
            );
        }
    }
    if let Some(degs) = v.get("degradations") {
        let arr = degs
            .as_array()
            .ok_or_else(|| bad("faults.degradations", "expected an array"))?;
        for w in arr {
            plan = plan.degradation(
                req_u64(
                    w.get("start")
                        .ok_or(ProtoError::MissingField("faults.degradations.start"))?,
                    "faults.degradations.start",
                )?,
                req_u64(
                    w.get("end")
                        .ok_or(ProtoError::MissingField("faults.degradations.end"))?,
                    "faults.degradations.end",
                )?,
                req_u64(
                    w.get("extra_latency").ok_or(ProtoError::MissingField(
                        "faults.degradations.extra_latency",
                    ))?,
                    "faults.degradations.extra_latency",
                )?,
            );
        }
    }
    if let Some(t) = v.get("transient") {
        if !matches!(t, Json::Null) {
            plan = plan.transient(
                req_f64(
                    t.get("fail_prob")
                        .ok_or(ProtoError::MissingField("faults.transient.fail_prob"))?,
                    "faults.transient.fail_prob",
                )?,
                u32::try_from(req_u64(
                    t.get("max_retries")
                        .ok_or(ProtoError::MissingField("faults.transient.max_retries"))?,
                    "faults.transient.max_retries",
                )?)
                .map_err(|_| bad("faults.transient.max_retries", "out of u32 range"))?,
                req_u64(
                    t.get("seed")
                        .ok_or(ProtoError::MissingField("faults.transient.seed"))?,
                    "faults.transient.seed",
                )?,
            );
        }
    }
    Ok(plan)
}

/// A conservative upper bound on one core's reference count for `spec`,
/// used to reject absurd requests *before* generating anything. Bounds are
/// deliberately loose (generation may produce fewer); the point is that
/// `p × bound` caps the memory a request can make the server allocate.
fn per_core_ref_bound(spec: &WorkloadSpec) -> u64 {
    match *spec {
        // Mergesort: ~n log2(n) element touches; introsort similar order.
        WorkloadSpec::Sort { n, .. } => {
            let n = n as u64;
            n.saturating_mul(64)
        }
        // SpGEMM flops ≈ n · (n·density)²; give a generous constant.
        WorkloadSpec::SpGemm { n, density } => {
            let nnz_per_row = ((n as f64) * density).ceil().max(1.0) as u64;
            (n as u64)
                .saturating_mul(nnz_per_row)
                .saturating_mul(nnz_per_row)
                .saturating_mul(4)
        }
        WorkloadSpec::SpMv { n, density, reps } => {
            let nnz = ((n as f64) * (n as f64) * density).ceil().max(1.0) as u64;
            nnz.saturating_mul(4).saturating_mul(reps as u64)
        }
        WorkloadSpec::Dense { n, .. } => (n as u64).saturating_pow(3).saturating_mul(4),
        WorkloadSpec::Cyclic { pages, reps } | WorkloadSpec::Sawtooth { pages, reps } => {
            (pages as u64).saturating_mul(reps as u64)
        }
        WorkloadSpec::Uniform { len, .. } | WorkloadSpec::Zipf { len, .. } => len as u64,
        WorkloadSpec::PermutationWalk { pages, laps } => (pages as u64).saturating_mul(laps as u64),
        WorkloadSpec::Bfs { n, degree } => (n as u64).saturating_mul(degree as u64 + 2),
        WorkloadSpec::PageRank { n, degree, iters } => (n as u64)
            .saturating_mul(degree as u64 + 2)
            .saturating_mul(iters as u64),
    }
}

/// Parses and validates a `/simulate` request body.
pub fn parse_sim_request(body: &[u8], limits: &JsonLimits) -> Result<SimRequest, ProtoError> {
    sim_from_json(&parse_body(body, limits)?)
}

/// Parses and validates a `/session` request body — the `/simulate`
/// schema plus `snapshot_period_ticks` and `pace_ms`.
pub fn parse_session_request(
    body: &[u8],
    limits: &JsonLimits,
) -> Result<SessionRequest, ProtoError> {
    let v = parse_body(body, limits)?;
    let sim = sim_from_json(&v)?;
    let snapshot_period = opt_u64(&v, "snapshot_period_ticks")?.unwrap_or(DEFAULT_SNAPSHOT_PERIOD);
    if snapshot_period == 0 {
        return Err(bad("snapshot_period_ticks", "must be at least 1"));
    }
    let pace = match opt_u64(&v, "pace_ms")? {
        Some(ms) if ms > MAX_PACE_MS => {
            return Err(bad(
                "pace_ms",
                format!("exceeds the server limit of {MAX_PACE_MS}"),
            ));
        }
        Some(ms) => Some(Duration::from_millis(ms)),
        None => None,
    };
    let alerts = match v.get("alerts") {
        None | Some(Json::Null) => Vec::new(),
        Some(a) => parse_alert_rules(a)?,
    };
    Ok(SessionRequest {
        sim,
        snapshot_period,
        pace,
        alerts,
    })
}

fn parse_alert_rules(v: &Json) -> Result<Vec<AlertRule>, ProtoError> {
    let arr = v
        .as_array()
        .ok_or_else(|| bad("alerts", "expected an array of rule objects"))?;
    if arr.len() > MAX_ALERT_RULES {
        return Err(ProtoError::TooLarge {
            why: format!(
                "{} alert rules exceed the server limit of {MAX_ALERT_RULES}",
                arr.len()
            ),
        });
    }
    let mut rules = Vec::with_capacity(arr.len());
    for rule in arr {
        let kind = rule
            .get("kind")
            .ok_or(ProtoError::MissingField("alerts.kind"))?
            .as_str()
            .ok_or_else(|| bad("alerts.kind", "expected a string"))?;
        let x = || -> Result<f64, ProtoError> {
            let raw = req_f64(
                rule.get("x").ok_or(ProtoError::MissingField("alerts.x"))?,
                "alerts.x",
            )?;
            if !raw.is_finite() || raw < 0.0 {
                return Err(bad("alerts.x", "must be a finite non-negative number"));
            }
            Ok(raw)
        };
        let for_n = || -> Result<u32, ProtoError> {
            match opt_u64(rule, "for_n")? {
                None => Ok(1),
                Some(0) => Err(bad("alerts.for_n", "must be at least 1")),
                Some(raw) => {
                    u32::try_from(raw).map_err(|_| bad("alerts.for_n", "out of u32 range"))
                }
            }
        };
        rules.push(match kind {
            "inconsistency_above" => AlertRule::InconsistencyAbove {
                x: x()?,
                for_n: for_n()?,
            },
            "channel_outage_longer_than" => AlertRule::ChannelOutageLongerThan {
                ticks: req_u64(
                    rule.get("ticks")
                        .ok_or(ProtoError::MissingField("alerts.ticks"))?,
                    "alerts.ticks",
                )?,
            },
            "blocked_frac_above" => AlertRule::BlockedFracAbove {
                x: x()?,
                for_n: for_n()?,
            },
            other => {
                return Err(bad(
                    "alerts.kind",
                    format!(
                        "unknown alert rule '{other}' (known: inconsistency_above, \
                         channel_outage_longer_than, blocked_frac_above)"
                    ),
                ))
            }
        });
    }
    Ok(rules)
}

/// Parses and validates a `/session/resume` request body.
pub fn parse_resume_request(body: &[u8], limits: &JsonLimits) -> Result<ResumeRequest, ProtoError> {
    let v = parse_body(body, limits)?;
    let token = v
        .get("token")
        .ok_or(ProtoError::MissingField("token"))?
        .as_str()
        .ok_or_else(|| bad("token", "expected a string"))?
        .to_string();
    if token.is_empty() || token.len() > 128 {
        return Err(bad("token", "must be 1..=128 characters"));
    }
    let last_tick = opt_u64(&v, "last_tick")?;
    Ok(ResumeRequest { token, last_tick })
}

fn parse_body(body: &[u8], limits: &JsonLimits) -> Result<Json, ProtoError> {
    let text = std::str::from_utf8(body).map_err(|_| ProtoError::BadField {
        field: "body",
        why: "not valid utf-8".into(),
    })?;
    Ok(Json::parse_with_limits(text, limits)?)
}

fn sim_from_json(v: &Json) -> Result<SimRequest, ProtoError> {
    let workload_v = v
        .get("workload")
        .ok_or(ProtoError::MissingField("workload"))?;
    let spec = parse_workload(workload_v)?;
    let trace_seed = opt_u64(workload_v, "seed")?.unwrap_or(1);
    let mut opts = TraceOptions::default();
    if let Some(pb) = opt_u64(workload_v, "page_bytes")? {
        if pb == 0 {
            return Err(bad("workload.page_bytes", "must be positive"));
        }
        opts.page_bytes = pb;
    }
    if let Some(c) = workload_v.get("collapse") {
        opts.collapse = c
            .as_bool()
            .ok_or_else(|| bad("workload.collapse", "expected a boolean"))?;
    }

    let p = req_usize(v.get("p").ok_or(ProtoError::MissingField("p"))?, "p")?;
    if p == 0 {
        return Err(bad("p", "must be at least 1"));
    }
    if p > MAX_P {
        return Err(ProtoError::TooLarge {
            why: format!("p = {p} exceeds the server limit of {MAX_P}"),
        });
    }
    let total = per_core_ref_bound(&spec).saturating_mul(p as u64);
    if total > MAX_TOTAL_REFS {
        return Err(ProtoError::TooLarge {
            why: format!(
                "workload may generate ~{total} references, over the {MAX_TOTAL_REFS} cap"
            ),
        });
    }

    let k = req_usize(v.get("k").ok_or(ProtoError::MissingField("k"))?, "k")?;
    let q = match v.get("q") {
        None | Some(Json::Null) => 1,
        Some(qv) => req_usize(qv, "q")?,
    };
    let mut settings = SimSettings::new(
        k,
        q,
        match v.get("arbitration") {
            None | Some(Json::Null) => ArbitrationKind::Fifo,
            Some(a) => parse_arbitration(a)?,
        },
        opt_u64(v, "seed")?.unwrap_or(0),
    );
    if let Some(r) = v.get("replacement") {
        if !matches!(r, Json::Null) {
            settings.replacement = parse_replacement(r)?;
        }
    }
    settings.far_latency = opt_u64(v, "far_latency")?;
    if let Some(f) = v.get("faults") {
        if !matches!(f, Json::Null) {
            settings.faults = parse_faults(f)?;
            settings
                .faults
                .validate()
                .map_err(|e| ProtoError::BadField {
                    field: "faults",
                    why: e.to_string(),
                })?;
        }
    }

    let budget = CellBudget {
        max_ticks: opt_u64(v, "max_ticks")?,
        max_wall: opt_u64(v, "max_wall_ms")?.map(Duration::from_millis),
    };

    Ok(SimRequest {
        workload: WorkloadKey {
            spec,
            trace_seed,
            opts,
        },
        p,
        settings,
        budget,
    })
}

/// Serializes a [`Report`] to the canonical compact JSON — field order
/// fixed to the struct declaration, floats via
/// [`fmt_f64`](crate::json::fmt_f64). This is the byte-compare anchor for
/// the integration suite.
pub fn report_to_json(r: &Report) -> String {
    report_json(r).to_string()
}

/// The [`Json`] value form of [`report_to_json`], for embedding a report
/// inside a larger message (session snapshots) without re-serializing —
/// the embedded object is byte-identical to the stateless response body.
pub fn report_json(r: &Report) -> Json {
    let per_core: Vec<Json> = r
        .per_core
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("served", Json::from(c.served)),
                ("hits", Json::from(c.hits)),
                ("finish_tick", Json::from(c.finish_tick)),
                ("mean_response", Json::from(c.mean_response)),
                ("max_response", Json::from(c.max_response)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("makespan", Json::from(r.makespan)),
        ("served", Json::from(r.served)),
        ("hits", Json::from(r.hits)),
        ("misses", Json::from(r.misses)),
        ("fetches", Json::from(r.fetches)),
        ("evictions", Json::from(r.evictions)),
        ("remaps", Json::from(r.remaps)),
        ("hit_rate", Json::from(r.hit_rate)),
        (
            "response",
            Json::obj(vec![
                ("count", Json::from(r.response.count)),
                ("mean", Json::from(r.response.mean)),
                ("inconsistency", Json::from(r.response.inconsistency)),
                ("min", Json::from(r.response.min)),
                ("max", Json::from(r.response.max)),
                ("p99_upper_bound", Json::from(r.response.p99_upper_bound)),
            ]),
        ),
        ("mean_queue_len", Json::from(r.mean_queue_len)),
        ("max_queue_len", Json::from(r.max_queue_len)),
        ("per_core", Json::Arr(per_core)),
        (
            "faults",
            Json::obj(vec![
                (
                    "outage_blocked_ticks",
                    Json::from(r.faults.outage_blocked_ticks),
                ),
                ("degraded_fetches", Json::from(r.faults.degraded_fetches)),
                ("transient_faults", Json::from(r.faults.transient_faults)),
            ]),
        ),
        ("truncated", Json::from(r.truncated)),
    ])
}

/// One calibrated uncertainty band as `{lo, est, hi}` — the band brackets
/// the point estimate by the committed envelope's signed-error quantiles.
fn band_json(b: &hbm_model::Band) -> Json {
    Json::obj(vec![
        ("lo", Json::from(b.lo)),
        ("est", Json::from(b.est)),
        ("hi", Json::from(b.hi)),
    ])
}

/// Serializes a [`Prediction`](hbm_model::Prediction) to the canonical
/// compact JSON the `/estimate` endpoint serves — field order fixed,
/// floats via [`fmt_f64`](crate::json::fmt_f64), deterministic for a
/// given request body. Every metric is a `{lo, est, hi}` band; the
/// provable `[lower_bound, upper_bound]` makespan interval and the
/// dimensionless `uncertainty` (relative band half-width) ride along so
/// clients can decide when a prediction is trustworthy without a second
/// round trip.
pub fn estimate_to_json(pred: &hbm_model::Prediction) -> String {
    Json::obj(vec![
        ("makespan", band_json(&pred.makespan)),
        ("mean_response", band_json(&pred.mean_response)),
        ("inconsistency", band_json(&pred.inconsistency)),
        ("blocked_frac", band_json(&pred.blocked_frac)),
        ("miss_ratio", Json::from(pred.miss_ratio)),
        ("lower_bound", Json::from(pred.lower_bound)),
        ("upper_bound", Json::from(pred.upper_bound)),
        ("uncertainty", Json::from(pred.uncertainty)),
        ("clamped", Json::from(pred.clamped)),
    ])
    .to_string()
}

/// The first line of a session stream: the accepted streaming parameters
/// plus the opaque resume token. A resumed stream's `open` line carries
/// the extra `resumed_from_tick` field (the acknowledged snapshot tick);
/// every line *after* it is byte-identical to the uninterrupted stream.
pub fn session_open_json(
    p: usize,
    snapshot_period: u64,
    token: &str,
    resumed_from: Option<u64>,
) -> String {
    let mut fields = vec![
        ("event", Json::from("open")),
        ("p", Json::from(p)),
        ("snapshot_period_ticks", Json::from(snapshot_period)),
        ("token", Json::from(token)),
    ];
    if let Some(tick) = resumed_from {
        fields.push(("resumed_from_tick", Json::from(tick)));
    }
    Json::obj(fields).to_string()
}

/// One alert line of a session stream: a rule firing at a snapshot
/// boundary (always emitted after the triggering snapshot line).
pub fn session_alert_json(fire: &crate::alerts::AlertFire) -> String {
    Json::obj(vec![
        ("event", Json::from("alert")),
        ("rule", Json::from(fire.rule)),
        ("kind", Json::from(fire.kind)),
        ("tick", Json::from(fire.tick)),
        ("value", Json::from(fire.value)),
        ("threshold", Json::from(fire.threshold)),
    ])
    .to_string()
}

/// One periodic metrics line of a session stream. The embedded `report`
/// object is the canonical [`report_json`] serialization.
pub fn session_snapshot_json(tick: u64, report: &Report) -> String {
    Json::obj(vec![
        ("event", Json::from("snapshot")),
        ("tick", Json::from(tick)),
        ("report", report_json(report)),
    ])
    .to_string()
}

/// One fault-event line of a session stream.
pub fn session_fault_json(tick: u64, event: &FaultEvent) -> String {
    let mut fields = vec![("event", Json::from("fault")), ("tick", Json::from(tick))];
    match *event {
        FaultEvent::OutageStart { down } => {
            fields.push(("kind", Json::from("outage_start")));
            fields.push(("down", Json::from(down)));
        }
        FaultEvent::OutageEnd { restored } => {
            fields.push(("kind", Json::from("outage_end")));
            fields.push(("restored", Json::from(restored)));
        }
        FaultEvent::DegradedFetch {
            core,
            page,
            extra_latency,
        } => {
            fields.push(("kind", Json::from("degraded_fetch")));
            fields.push(("core", Json::from(u64::from(core))));
            fields.push(("page", Json::from(page.0)));
            fields.push(("extra_latency", Json::from(extra_latency)));
        }
        FaultEvent::TransientFailure {
            core,
            page,
            failures,
        } => {
            fields.push(("kind", Json::from("transient_failure")));
            fields.push(("core", Json::from(u64::from(core))));
            fields.push(("page", Json::from(page.0)));
            fields.push(("failures", Json::from(u64::from(failures))));
        }
    }
    Json::obj(fields).to_string()
}

/// The final line of a session stream. `reason` is `"completed"`,
/// `"truncated"` (budget), `"draining"` (server shutdown), or `"shed"`
/// (evicted under session pressure to admit a newer request); the embedded
/// final report uses the canonical [`report_json`] serialization, so a
/// completed session's final report is byte-identical to the stateless
/// `/simulate` response for the same request.
pub fn session_done_json(tick: u64, reason: &str, report: &Report) -> String {
    Json::obj(vec![
        ("event", Json::from("done")),
        ("reason", Json::from(reason)),
        ("tick", Json::from(tick)),
        ("report", report_json(report)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> Result<SimRequest, ProtoError> {
        parse_sim_request(body.as_bytes(), &JsonLimits::default())
    }

    #[test]
    fn minimal_request_defaults() {
        let req =
            parse(r#"{"workload": {"kind": "uniform", "pages": 16, "len": 100}, "p": 4, "k": 32}"#)
                .unwrap();
        assert_eq!(req.p, 4);
        assert_eq!(req.settings.k, 32);
        assert_eq!(req.settings.q, 1);
        assert_eq!(req.settings.arbitration, ArbitrationKind::Fifo);
        assert_eq!(req.settings.replacement, ReplacementKind::Lru);
        assert_eq!(req.settings.seed, 0);
        assert!(req.settings.faults.is_empty());
        assert_eq!(req.budget, CellBudget::UNLIMITED);
        assert_eq!(req.workload.trace_seed, 1);
    }

    #[test]
    fn full_request_parses() {
        let req = parse(
            r#"{
                "workload": {"kind": "cyclic", "pages": 64, "reps": 10, "seed": 9, "collapse": false},
                "p": 8, "k": 128, "q": 2,
                "arbitration": {"kind": "dynamic_priority", "period": 256},
                "replacement": "clock",
                "seed": 42,
                "max_ticks": 1000000,
                "max_wall_ms": 2000,
                "faults": {
                    "outages": [{"start": 10, "end": 20, "channels": 1}],
                    "degradations": [{"start": 30, "end": 40, "extra_latency": 3}],
                    "transient": {"fail_prob": 0.25, "max_retries": 4, "seed": 7}
                }
            }"#,
        )
        .unwrap();
        assert_eq!(
            req.workload.spec,
            WorkloadSpec::Cyclic {
                pages: 64,
                reps: 10
            }
        );
        assert_eq!(req.workload.trace_seed, 9);
        assert!(!req.workload.opts.collapse);
        assert_eq!(
            req.settings.arbitration,
            ArbitrationKind::DynamicPriority { period: 256 }
        );
        assert_eq!(req.settings.replacement, ReplacementKind::Clock);
        assert_eq!(req.settings.seed, 42);
        assert_eq!(req.settings.faults.outages.len(), 1);
        assert_eq!(req.settings.faults.degradations.len(), 1);
        assert!(req.settings.faults.transient.is_some());
        assert_eq!(req.budget.max_ticks, Some(1_000_000));
        assert_eq!(req.budget.max_wall, Some(Duration::from_millis(2000)));
    }

    #[test]
    fn named_builtin_resolves() {
        let req = parse(r#"{"workload": {"name": "dataset3-small"}, "p": 4, "k": 64}"#).unwrap();
        assert_eq!(
            req.workload.spec,
            WorkloadSpec::Cyclic {
                pages: 64,
                reps: 10
            }
        );
        for name in BUILTIN_NAMES {
            assert!(builtin_workload(name).is_some(), "{name} must resolve");
        }
    }

    #[test]
    fn unknown_builtin_is_a_bad_field() {
        let err = parse(r#"{"workload": {"name": "nope"}, "p": 1, "k": 4}"#).unwrap_err();
        assert!(
            matches!(
                err,
                ProtoError::BadField {
                    field: "workload.name",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn bare_string_arbitration_works() {
        let req = parse(
            r#"{"workload": {"name": "uniform-small"}, "p": 2, "k": 16, "arbitration": "priority"}"#,
        )
        .unwrap();
        assert_eq!(req.settings.arbitration, ArbitrationKind::Priority);
    }

    #[test]
    fn parameterized_arbitration_requires_its_parameter() {
        let err = parse(
            r#"{"workload": {"name": "uniform-small"}, "p": 2, "k": 16,
                "arbitration": {"kind": "cycle_priority"}}"#,
        )
        .unwrap_err();
        assert!(
            matches!(err, ProtoError::MissingField("arbitration.period")),
            "{err}"
        );
    }

    #[test]
    fn oversized_p_is_rejected() {
        let err =
            parse(r#"{"workload": {"name": "uniform-small"}, "p": 100000, "k": 16}"#).unwrap_err();
        assert!(matches!(err, ProtoError::TooLarge { .. }), "{err}");
    }

    #[test]
    fn oversized_workload_is_rejected_before_generation() {
        let err = parse(
            r#"{"workload": {"kind": "cyclic", "pages": 4000000, "reps": 100000}, "p": 500, "k": 16}"#,
        )
        .unwrap_err();
        assert!(matches!(err, ProtoError::TooLarge { .. }), "{err}");
    }

    #[test]
    fn missing_required_fields_are_named() {
        assert!(matches!(
            parse(r#"{"p": 1, "k": 4}"#).unwrap_err(),
            ProtoError::MissingField("workload")
        ));
        assert!(matches!(
            parse(r#"{"workload": {"name": "uniform-small"}, "k": 4}"#).unwrap_err(),
            ProtoError::MissingField("p")
        ));
        assert!(matches!(
            parse(r#"{"workload": {"name": "uniform-small"}, "p": 1}"#).unwrap_err(),
            ProtoError::MissingField("k")
        ));
    }

    #[test]
    fn invalid_fault_plan_is_rejected() {
        // start >= end is structurally invalid per FaultPlan::validate.
        let err = parse(
            r#"{"workload": {"name": "uniform-small"}, "p": 1, "k": 4,
                "faults": {"outages": [{"start": 20, "end": 10, "channels": 1}]}}"#,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                ProtoError::BadField {
                    field: "faults",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn report_json_matches_field_order_and_float_format() {
        let w = hbm_core::Workload::from_refs(vec![vec![0, 1, 2, 0, 1, 2]; 2]);
        let r = crate::pool::run_cell(&w, 4, 1, ArbitrationKind::Priority, 7);
        let s = report_to_json(&r);
        let v = Json::parse(&s).unwrap();
        assert_eq!(v.get("makespan").unwrap().as_u64(), Some(r.makespan));
        assert_eq!(v.get("served").unwrap().as_u64(), Some(r.served));
        assert_eq!(v.get("truncated").unwrap().as_bool(), Some(false));
        assert_eq!(
            v.get("per_core").unwrap().as_array().unwrap().len(),
            r.per_core.len()
        );
        // Deterministic: serializing twice is byte-identical.
        assert_eq!(s, report_to_json(&r));
        // Field order is the struct declaration order.
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            keys,
            [
                "makespan",
                "served",
                "hits",
                "misses",
                "fetches",
                "evictions",
                "remaps",
                "hit_rate",
                "response",
                "mean_queue_len",
                "max_queue_len",
                "per_core",
                "faults",
                "truncated"
            ]
        );
    }
}
