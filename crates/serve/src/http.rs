//! Minimal HTTP/1.1 framing over `std::net` — just enough protocol for a
//! JSON request/response service and its load generator, with the same
//! hostile-input hygiene as the JSON codec: every length is bounded before
//! allocation, reads run under socket timeouts so connection threads can
//! observe the shutdown flag, and malformed framing yields a typed error,
//! never a panic.
//!
//! Both directions live here — [`read_request`]/[`write_response`] for the
//! server, [`write_request`]/[`read_response`] for the bench client and
//! the integration tests — so a framing bug cannot hide by being mirrored
//! in two private copies.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Maximum bytes of request/status line + headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Maximum accepted `Content-Length`.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A malformed or oversized HTTP message.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket error (including read timeouts).
    Io(io::Error),
    /// The peer closed the connection before a complete message.
    ConnectionClosed,
    /// Head section exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// `Content-Length` exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge {
        /// The declared length.
        declared: usize,
    },
    /// Request/status line or a header line failed to parse.
    Malformed(&'static str),
    /// The wall deadline passed *mid-message*: some bytes of the message
    /// had arrived, then the sender stalled. The server answers this with
    /// a 408 — a half-sent head must not hold a connection slot.
    TimedOut,
    /// The wall deadline passed while the connection was idle (no byte of
    /// a next message received). Keep-alive connections may idle freely;
    /// callers re-arm the deadline and keep waiting.
    IdleTimedOut,
    /// The caller's cancel predicate fired while the connection was idle
    /// (no bytes of a next message received). In-flight messages are never
    /// cancelled — that is the drain guarantee.
    Cancelled,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::ConnectionClosed => write!(f, "connection closed mid-message"),
            HttpError::HeadTooLarge => {
                write!(f, "header section exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::BodyTooLarge { declared } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds {MAX_BODY_BYTES}"
                )
            }
            HttpError::Malformed(what) => write!(f, "malformed http message: {what}"),
            HttpError::TimedOut => write!(f, "timed out mid-message waiting for the rest"),
            HttpError::IdleTimedOut => write!(f, "timed out while idle"),
            HttpError::Cancelled => write!(f, "cancelled while idle"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// A parsed request head plus its body.
#[derive(Debug)]
pub struct HttpRequest {
    /// Request method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query), e.g. `/simulate`.
    pub path: String,
    /// Headers with lowercased names; duplicate names keep the last value.
    pub headers: HashMap<String, String>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// An HTTP response under construction.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code (200, 400, 404, 429, 500, 503).
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Whether to advertise and honour `Connection: close`.
    pub close: bool,
    /// Optional `Retry-After` header value in seconds. Every 429/503 the
    /// server emits carries one, derived from queue depth or drain state.
    pub retry_after: Option<u64>,
}

impl HttpResponse {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status,
            body: body.into(),
            content_type: "application/json",
            close: false,
            retry_after: None,
        }
    }

    /// Attaches a `Retry-After` hint (seconds).
    pub fn with_retry_after(mut self, secs: u64) -> HttpResponse {
        self.retry_after = Some(secs);
        self
    }

    /// The standard reason phrase for the statuses this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            410 => "Gone",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Reads until `buf` contains the head terminator (`\r\n\r\n`), returning
/// the terminator's end offset. Honours the stream's read timeout by
/// re-polling `deadline_hit` between reads.
fn read_head(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    deadline: Instant,
    idle_cancel: &dyn Fn() -> bool,
) -> Result<usize, HttpError> {
    loop {
        if let Some(end) = find_head_end(buf) {
            return Ok(end);
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        if buf.is_empty() && idle_cancel() {
            return Err(HttpError::Cancelled);
        }
        if Instant::now() >= deadline {
            // Distinguish a stalled sender (bytes arrived, then silence —
            // the slowloris shape, answered with 408) from a connection
            // that is simply idle between keep-alive requests.
            return Err(if buf.is_empty() {
                HttpError::IdleTimedOut
            } else {
                HttpError::TimedOut
            });
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if buf.is_empty() {
                    HttpError::ConnectionClosed
                } else {
                    HttpError::Malformed("eof inside header section")
                });
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Socket read timeout: loop to re-check the deadline (and
                // let the caller's shutdown flag get a look-in between
                // requests via the deadline it chose).
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Reads one request from `stream`. `deadline` bounds the whole message;
/// the stream should already carry a short read timeout so this function
/// returns to its caller's poll loop regularly. `idle_cancel` is polled
/// between reads *only while no byte of the message has arrived* — once a
/// message is in flight it is read to completion (the server's drain
/// guarantee) — and aborts the wait with [`HttpError::Cancelled`].
///
/// Returns `Ok(None)` when the peer cleanly closed the connection before
/// sending another request (the keep-alive end-of-session case).
pub fn read_request(
    stream: &mut TcpStream,
    deadline: Instant,
    idle_cancel: &dyn Fn() -> bool,
) -> Result<Option<HttpRequest>, HttpError> {
    let mut buf = Vec::new();
    let head_end = match read_head(stream, &mut buf, deadline, idle_cancel) {
        Ok(end) => end,
        Err(HttpError::ConnectionClosed) => return Ok(None),
        Err(e) => return Err(e),
    };
    let head = std::str::from_utf8(&buf[..head_end - 4])
        .map_err(|_| HttpError::Malformed("non-utf8 header section"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let path = parts
        .next()
        .filter(|p| !p.is_empty())
        .ok_or(HttpError::Malformed("missing request target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported http version"));
    }
    let mut headers = HashMap::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header line without colon"))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    let content_length = match headers.get("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("bad content-length"))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
        });
    }
    // `100-continue` clients wait for permission before sending the body.
    if headers
        .get("expect")
        .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
    {
        stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
    }

    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        if Instant::now() >= deadline {
            return Err(HttpError::TimedOut);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Malformed("eof inside body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    if body.len() > content_length {
        // Pipelined extra bytes; this minimal server handles one request
        // per read cycle, so surplus framing is a protocol error here.
        return Err(HttpError::Malformed("body longer than content-length"));
    }
    Ok(Some(HttpRequest {
        method,
        path,
        headers,
        body,
    }))
}

/// Writes `resp` to `stream` as an HTTP/1.1 message.
///
/// Head and body go out in one `write_all`: two small writes on a
/// keep-alive socket trip the Nagle/delayed-ACK interaction (the second
/// write sits in the kernel until the peer ACKs the first, ~40 ms per
/// exchange), which would dominate every warm request's latency.
pub fn write_response(stream: &mut TcpStream, resp: &HttpResponse) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        resp.status,
        HttpResponse::reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("retry-after: {secs}\r\n"));
    }
    if resp.close {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    let mut message = head.into_bytes();
    message.extend_from_slice(&resp.body);
    stream.write_all(&message)?;
    stream.flush()
}

/// Client side: writes a request with an optional body (single write, for
/// the same Nagle reason as [`write_response`]).
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let mut message = head.into_bytes();
    message.extend_from_slice(body);
    stream.write_all(&message)?;
    stream.flush()
}

/// Client side: reads one response, returning `(status, body)`.
pub fn read_response(
    stream: &mut TcpStream,
    deadline: Instant,
) -> Result<(u16, Vec<u8>), HttpError> {
    read_response_full(stream, deadline).map(|(status, _headers, body)| (status, body))
}

/// A fully-read client response: `(status, headers, body)`, headers with
/// lowercased names.
pub type FullResponse = (u16, HashMap<String, String>, Vec<u8>);

/// Client side: reads one response, returning `(status, headers, body)` —
/// headers with lowercased names, for tests asserting on `Retry-After`.
pub fn read_response_full(
    stream: &mut TcpStream,
    deadline: Instant,
) -> Result<FullResponse, HttpError> {
    let mut buf = Vec::new();
    let head_end = read_head(stream, &mut buf, deadline, &|| false)?;
    let head = std::str::from_utf8(&buf[..head_end - 4])
        .map_err(|_| HttpError::Malformed("non-utf8 header section"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or(HttpError::Malformed("bad status line"))?;
    let mut content_length = 0usize;
    let mut headers = HashMap::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header line without colon"))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(HttpError::BodyTooLarge {
                    declared: content_length,
                });
            }
        }
    }
    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        if Instant::now() >= deadline {
            return Err(HttpError::TimedOut);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Malformed("eof inside body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    body.truncate(content_length);
    Ok((status, headers, body))
}

/// Applies the short per-read timeout every server/client socket uses so
/// blocking reads return to their poll loops.
pub fn set_poll_timeout(stream: &TcpStream, timeout: Duration) -> io::Result<()> {
    stream.set_read_timeout(Some(timeout))
}

/// Maximum bytes of a single chunk-size line (hex digits + CRLF). Chunk
/// extensions are not produced by this server and not accepted by this
/// client.
const MAX_CHUNK_SIZE_LINE: usize = 32;

/// Server side: writes the head of a `Transfer-Encoding: chunked`
/// streaming response. Streams always close the connection when done —
/// a session owns its connection for its whole lifetime.
pub fn write_chunked_head(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
        status,
        HttpResponse::reason(status),
        content_type,
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Encodes one chunk (size line + payload + CRLF) without writing it —
/// the session multiplexer appends encoded chunks to a per-session buffer
/// and flushes them with non-blocking writes. Empty payloads encode to
/// nothing (a zero-size chunk is the terminator).
pub fn chunk_bytes(data: &[u8]) -> Vec<u8> {
    if data.is_empty() {
        return Vec::new();
    }
    let mut message = format!("{:x}\r\n", data.len()).into_bytes();
    message.extend_from_slice(data);
    message.extend_from_slice(b"\r\n");
    message
}

/// The zero-size terminator chunk ending a chunked stream.
pub const LAST_CHUNK: &[u8] = b"0\r\n\r\n";

/// Server side: writes one chunk as a single `write_all`, for the same
/// Nagle reason as [`write_response`]. Empty payloads are skipped — a
/// zero-size chunk is the terminator and must only come from
/// [`write_last_chunk`].
pub fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    stream.write_all(&chunk_bytes(data))?;
    stream.flush()
}

/// Server side: writes the zero-size terminator chunk ending the stream.
pub fn write_last_chunk(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(LAST_CHUNK)?;
    stream.flush()
}

/// A parsed response status line + framing headers, for clients that need
/// to distinguish chunked streams from content-length bodies.
#[derive(Debug)]
pub struct ResponseHead {
    /// Status code from the status line.
    pub status: u16,
    /// True when the response advertised `Transfer-Encoding: chunked`.
    pub chunked: bool,
    /// Declared `Content-Length` (0 when absent or chunked).
    pub content_length: usize,
}

/// Client side: reads a response head only, returning the parsed head and
/// any body bytes that arrived with it (hand these to [`ChunkReader::new`]
/// for chunked streams).
pub fn read_response_head(
    stream: &mut TcpStream,
    deadline: Instant,
) -> Result<(ResponseHead, Vec<u8>), HttpError> {
    let mut buf = Vec::new();
    let head_end = read_head(stream, &mut buf, deadline, &|| false)?;
    let head = std::str::from_utf8(&buf[..head_end - 4])
        .map_err(|_| HttpError::Malformed("non-utf8 header section"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or(HttpError::Malformed("bad status line"))?;
    let mut chunked = false;
    let mut content_length = 0usize;
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header line without colon"))?;
        let name = name.trim();
        if name.eq_ignore_ascii_case("transfer-encoding") {
            chunked = value.trim().eq_ignore_ascii_case("chunked");
        } else if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(HttpError::BodyTooLarge {
                    declared: content_length,
                });
            }
        }
    }
    Ok((
        ResponseHead {
            status,
            chunked,
            content_length,
        },
        buf[head_end..].to_vec(),
    ))
}

/// Client side: incremental chunked-body reader. Feed it the leftover
/// bytes from [`read_response_head`], then call
/// [`next_chunk`](Self::next_chunk) until it returns `Ok(None)` (the
/// zero-size terminator).
#[derive(Debug)]
pub struct ChunkReader {
    buf: Vec<u8>,
    done: bool,
}

impl ChunkReader {
    /// Starts a reader over `leftover` bytes already pulled off the wire.
    pub fn new(leftover: Vec<u8>) -> ChunkReader {
        ChunkReader {
            buf: leftover,
            done: false,
        }
    }

    fn fill(&mut self, stream: &mut TcpStream, deadline: Instant) -> Result<(), HttpError> {
        loop {
            if Instant::now() >= deadline {
                return Err(HttpError::TimedOut);
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => return Err(HttpError::ConnectionClosed),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted =>
                {
                    continue;
                }
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
    }

    /// Reads the next chunk payload, or `Ok(None)` once the terminator
    /// chunk has been consumed (subsequent calls keep returning `None`).
    pub fn next_chunk(
        &mut self,
        stream: &mut TcpStream,
        deadline: Instant,
    ) -> Result<Option<Vec<u8>>, HttpError> {
        if self.done {
            return Ok(None);
        }
        // Parse the size line, pulling more bytes as needed.
        let size = loop {
            if let Some(pos) = self.buf.windows(2).position(|w| w == b"\r\n") {
                let line = std::str::from_utf8(&self.buf[..pos])
                    .map_err(|_| HttpError::Malformed("non-utf8 chunk size"))?;
                let size = usize::from_str_radix(line.trim(), 16)
                    .map_err(|_| HttpError::Malformed("bad chunk size"))?;
                if size > MAX_BODY_BYTES {
                    return Err(HttpError::BodyTooLarge { declared: size });
                }
                self.buf.drain(..pos + 2);
                break size;
            }
            if self.buf.len() > MAX_CHUNK_SIZE_LINE {
                return Err(HttpError::Malformed("oversized chunk size line"));
            }
            self.fill(stream, deadline)?;
        };
        // Payload + trailing CRLF.
        while self.buf.len() < size + 2 {
            self.fill(stream, deadline)?;
        }
        if &self.buf[size..size + 2] != b"\r\n" {
            return Err(HttpError::Malformed("chunk missing trailing crlf"));
        }
        let data: Vec<u8> = self.buf.drain(..size + 2).take(size).collect();
        if size == 0 {
            self.done = true;
            return Ok(None);
        }
        Ok(Some(data))
    }
}

/// Client side: JSONL line splitter over a chunked stream. Lines may span
/// chunk boundaries; this yields complete `\n`-terminated lines (without
/// the terminator) until the stream ends.
#[derive(Debug)]
pub struct ChunkedLines {
    reader: ChunkReader,
    pending: Vec<u8>,
    eof: bool,
}

impl ChunkedLines {
    /// Starts a line splitter over the leftover bytes from
    /// [`read_response_head`].
    pub fn new(leftover: Vec<u8>) -> ChunkedLines {
        ChunkedLines {
            reader: ChunkReader::new(leftover),
            pending: Vec::new(),
            eof: false,
        }
    }

    /// Reads the next complete line, or `Ok(None)` at end of stream. A
    /// final unterminated line (no trailing `\n` before the terminator
    /// chunk) is yielded as-is.
    pub fn next_line(
        &mut self,
        stream: &mut TcpStream,
        deadline: Instant,
    ) -> Result<Option<Vec<u8>>, HttpError> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.pending.drain(..pos + 1).take(pos).collect();
                return Ok(Some(line));
            }
            if self.eof {
                if self.pending.is_empty() {
                    return Ok(None);
                }
                return Ok(Some(std::mem::take(&mut self.pending)));
            }
            match self.reader.next_chunk(stream, deadline)? {
                Some(data) => self.pending.extend_from_slice(&data),
                None => self.eof = true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        set_poll_timeout(&client, Duration::from_millis(20)).unwrap();
        set_poll_timeout(&server, Duration::from_millis(20)).unwrap();
        (client, server)
    }

    fn soon() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn round_trips_a_request() {
        let (mut client, mut server) = pair();
        write_request(&mut client, "POST", "/simulate", b"{\"k\":4}").unwrap();
        let req = read_request(&mut server, soon(), &|| false)
            .unwrap()
            .expect("request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/simulate");
        assert_eq!(req.body, b"{\"k\":4}");
        assert_eq!(
            req.headers.get("content-type").map(String::as_str),
            Some("application/json")
        );
    }

    #[test]
    fn round_trips_a_response() {
        let (mut client, mut server) = pair();
        write_response(&mut server, &HttpResponse::json(200, "{\"ok\":true}")).unwrap();
        let (status, body) = read_response(&mut client, soon()).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"ok\":true}");
    }

    #[test]
    fn clean_close_reads_as_none() {
        let (client, mut server) = pair();
        drop(client);
        let req = read_request(&mut server, soon(), &|| false).unwrap();
        assert!(req.is_none(), "clean close is end-of-session, not an error");
    }

    #[test]
    fn oversized_body_is_rejected_before_allocation() {
        let (mut client, mut server) = pair();
        let head = format!(
            "POST /simulate HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        client.write_all(head.as_bytes()).unwrap();
        let err = read_request(&mut server, soon(), &|| false).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { .. }), "{err}");
    }

    #[test]
    fn oversized_head_is_rejected() {
        let (mut client, mut server) = pair();
        let mut head = String::from("GET / HTTP/1.1\r\n");
        while head.len() <= MAX_HEAD_BYTES {
            head.push_str("x-filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        client.write_all(head.as_bytes()).unwrap();
        let err = read_request(&mut server, soon(), &|| false).unwrap_err();
        assert!(matches!(err, HttpError::HeadTooLarge), "{err}");
    }

    #[test]
    fn malformed_request_line_is_a_typed_error() {
        let (mut client, mut server) = pair();
        client.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let err = read_request(&mut server, soon(), &|| false).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
    }

    #[test]
    fn deadline_bounds_a_stalled_request() {
        let (mut client, mut server) = pair();
        // Send a head promising a body that never arrives.
        client
            .write_all(b"POST /simulate HTTP/1.1\r\ncontent-length: 10\r\n\r\n")
            .unwrap();
        let err = read_request(
            &mut server,
            Instant::now() + Duration::from_millis(60),
            &|| false,
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::TimedOut), "{err}");
    }

    #[test]
    fn chunked_stream_round_trips_lines_across_chunk_boundaries() {
        let (mut client, mut server) = pair();
        let writer = std::thread::spawn(move || {
            write_chunked_head(&mut server, 200, "application/jsonl").unwrap();
            // One line split across two chunks, then two lines in one chunk.
            write_chunk(&mut server, b"{\"event\":").unwrap();
            write_chunk(&mut server, b"\"open\"}\n").unwrap();
            write_chunk(&mut server, b"{\"a\":1}\n{\"b\":2}\n").unwrap();
            write_last_chunk(&mut server).unwrap();
        });
        let (head, leftover) = read_response_head(&mut client, soon()).unwrap();
        assert_eq!(head.status, 200);
        assert!(head.chunked);
        let mut lines = ChunkedLines::new(leftover);
        let mut got = Vec::new();
        while let Some(line) = lines.next_line(&mut client, soon()).unwrap() {
            got.push(String::from_utf8(line).unwrap());
        }
        assert_eq!(got, ["{\"event\":\"open\"}", "{\"a\":1}", "{\"b\":2}"]);
        writer.join().unwrap();
    }

    #[test]
    fn oversized_chunk_is_rejected_before_allocation() {
        let (mut client, mut server) = pair();
        server
            .write_all(format!("{:x}\r\n", MAX_BODY_BYTES + 1).as_bytes())
            .unwrap();
        let mut reader = ChunkReader::new(Vec::new());
        let err = reader.next_chunk(&mut client, soon()).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { .. }), "{err}");
    }

    #[test]
    fn malformed_chunk_size_is_a_typed_error() {
        let (mut client, mut server) = pair();
        server.write_all(b"zzz\r\n").unwrap();
        let mut reader = ChunkReader::new(Vec::new());
        let err = reader.next_chunk(&mut client, soon()).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
    }

    #[test]
    fn expect_continue_is_acknowledged() {
        let (mut client, mut server) = pair();
        client
            .write_all(
                b"POST /simulate HTTP/1.1\r\ncontent-length: 2\r\nexpect: 100-continue\r\n\r\n",
            )
            .unwrap();
        let handle = std::thread::spawn(move || {
            let req = read_request(&mut server, soon(), &|| false)
                .unwrap()
                .unwrap();
            (req, server)
        });
        // Wait for the interim response, then send the body.
        let mut interim = [0u8; 25];
        client.read_exact(&mut interim).unwrap();
        assert_eq!(&interim, b"HTTP/1.1 100 Continue\r\n\r\n");
        client.write_all(b"{}").unwrap();
        let (req, _server) = handle.join().unwrap();
        assert_eq!(req.body, b"{}");
    }
}
