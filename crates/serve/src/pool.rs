//! Warm-path execution substrate: memoized trace pools, recycled engine
//! scratch, and budgeted cell runners.
//!
//! This module is the sharing layer DESIGN.md §13 describes, moved here
//! from `hbm-experiments::common` so the HTTP server (which sits *below*
//! the experiment harness in the dependency graph) can execute requests
//! through exactly the same pools the sweep drivers use.
//! `hbm_experiments::common` re-exports every item, so harness call sites
//! are unchanged.
//!
//! New over the PR 4 version: [`TracePool`] bounds its retained memory.
//! PR 4 measured ~322 MB of memoized [`FlatWorkload`]s at medium scale
//! with no eviction path; pools now take an optional flat-cache capacity
//! (least-recently-used eviction) and expose [`TracePool::shrink`] for
//! explicit release on a server's idle path.

use hbm_core::{
    ArbitrationKind, BatchCell, BatchEngine, BatchScratch, EngineScratch, FaultPlan, FlatWorkload,
    NoopObserver, Report, SimBuilder, SimError, Trace, Workload,
};
use hbm_traces::{TraceOptions, WorkloadSpec};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Builds per-core traces for the largest thread count once; sweep cells
/// and server requests take prefixes. "Each trace is generated from the
/// same program with different randomness" (§3.2).
///
/// Beyond the traces themselves the pool memoizes two derived artifacts so
/// no caller ever regenerates or re-indexes workload data (DESIGN.md §13):
///
/// * a lazily generated **probe trace** — `spec.generate_trace(seed,
///   TraceOptions::default())`, exactly the trace `hbm_sizes_for` and
///   `contended_config` historically regenerated from scratch on every
///   call (it is *not* pool trace 0: `WorkloadSpec::workload` derives
///   per-core seeds, so trace 0 uses a different stream);
/// * one immutable [`FlatWorkload`] per requested prefix length `p`,
///   shared via `Arc` across every cell of a sweep grid or every request
///   hitting the same configuration.
///
/// The flat cache is unbounded by default (sweeps touch each `p` exactly
/// once per grid row and want them all resident); long-lived servers call
/// [`set_flat_capacity`](Self::set_flat_capacity) to cap it with LRU
/// eviction, or [`shrink`](Self::shrink) to drop the memoization outright.
pub struct TracePool {
    spec: WorkloadSpec,
    seed: u64,
    traces: Vec<Trace>,
    probe: OnceLock<Trace>,
    flats: Mutex<FlatCache>,
}

/// LRU-evicting memo of `p → Arc<FlatWorkload>`. Recency is a monotonic
/// counter stamped on access; eviction scans for the minimum — the cache
/// holds at most a handful of entries (one per distinct thread count), so
/// a scan beats the bookkeeping of a linked structure.
#[derive(Default)]
struct FlatCache {
    entries: HashMap<usize, (Arc<FlatWorkload>, u64)>,
    clock: u64,
    capacity: Option<usize>,
}

impl FlatCache {
    fn get_or_insert(
        &mut self,
        p: usize,
        build: impl FnOnce() -> FlatWorkload,
    ) -> Arc<FlatWorkload> {
        self.clock += 1;
        let clock = self.clock;
        if let Some((flat, stamp)) = self.entries.get_mut(&p) {
            *stamp = clock;
            return Arc::clone(flat);
        }
        let flat = Arc::new(build());
        if let Some(cap) = self.capacity {
            while self.entries.len() >= cap.max(1) {
                let oldest = self
                    .entries
                    .iter()
                    .min_by_key(|(_, (_, stamp))| *stamp)
                    .map(|(&k, _)| k)
                    .expect("non-empty cache has an oldest entry");
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(p, (Arc::clone(&flat), clock));
        flat
    }
}

impl TracePool {
    /// Generates `max_p` traces for `spec` (parallelized inside).
    pub fn generate(spec: WorkloadSpec, max_p: usize, seed: u64, opts: TraceOptions) -> Self {
        let w = spec.workload(max_p, seed, opts);
        TracePool {
            spec,
            seed,
            traces: w.traces().to_vec(),
            probe: OnceLock::new(),
            flats: Mutex::new(FlatCache::default()),
        }
    }

    /// The workload made of the first `p` traces (cheap: traces are
    /// `Arc`-backed, so this clones handles, not page data).
    pub fn workload(&self, p: usize) -> Workload {
        assert!(p <= self.traces.len());
        let mut w = Workload::new();
        for t in &self.traces[..p] {
            w.push(t.clone());
        }
        w
    }

    /// The shared pre-indexed form of [`workload(p)`](Self::workload),
    /// built once per distinct `p` and memoized (subject to the flat-cache
    /// capacity). Every caller at the same thread count gets the same
    /// `Arc` — flattening and page-index construction happen once, not
    /// once per cell or per request.
    pub fn flat(&self, p: usize) -> Arc<FlatWorkload> {
        self.flats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_or_insert(p, || FlatWorkload::new(&self.workload(p)))
    }

    /// Caps the memoized-flat cache at `capacity` entries with
    /// least-recently-used eviction, applying it immediately. `None`
    /// restores the unbounded default. Eviction drops the pool's `Arc`;
    /// in-flight holders keep theirs alive until they finish.
    pub fn set_flat_capacity(&self, capacity: Option<usize>) {
        let mut flats = self.flats.lock().unwrap_or_else(|e| e.into_inner());
        flats.capacity = capacity;
        if let Some(cap) = capacity {
            while flats.entries.len() > cap.max(1) {
                let oldest = flats
                    .entries
                    .iter()
                    .min_by_key(|(_, (_, stamp))| *stamp)
                    .map(|(&k, _)| k)
                    .expect("non-empty cache has an oldest entry");
                flats.entries.remove(&oldest);
            }
        }
    }

    /// Drops every memoized [`FlatWorkload`] (the dominant retained
    /// allocation — ~322 MB at medium scale before bounding). The base
    /// traces stay; the next [`flat`](Self::flat) call rebuilds on demand.
    /// This is the server's idle-path release.
    pub fn shrink(&self) {
        self.flats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .clear();
    }

    /// Number of memoized flats currently retained.
    pub fn flat_count(&self) -> usize {
        self.flats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// Largest available thread count.
    pub fn max_p(&self) -> usize {
        self.traces.len()
    }

    /// One core's working set (unique pages) measured on the memoized
    /// probe trace — generated at most once per pool, with
    /// `TraceOptions::default()` regardless of the pool's own options so
    /// derived HBM sizes stay identical across e.g. collapse ablations.
    pub fn working_set(&self) -> usize {
        self.probe
            .get_or_init(|| {
                Trace::new(self.spec.generate_trace(self.seed, TraceOptions::default()))
            })
            .unique_pages()
    }
}

/// Per-cell execution budget for sweeps over untrusted or adversarial
/// parameter grids — and for server requests, where it is the admission
/// contract: exceeding either bound stops the run cooperatively and
/// reports `Report::truncated = true`. The cell fails *soft* (its partial
/// metrics are still returned) instead of hanging the sweep or the
/// connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct CellBudget {
    /// Maximum simulated ticks (sets the engine's `max_ticks`).
    pub max_ticks: Option<u64>,
    /// Maximum wall-clock time, checked every 1024 engine steps.
    pub max_wall: Option<Duration>,
}

impl CellBudget {
    /// No limits — identical behaviour to [`run_cell`].
    pub const UNLIMITED: CellBudget = CellBudget {
        max_ticks: None,
        max_wall: None,
    };

    /// The tighter of two budgets, field by field. The server clamps
    /// client-supplied budgets against its own ceiling with this.
    pub fn min(self, other: CellBudget) -> CellBudget {
        fn tighter<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (x, None) | (None, x) => x,
            }
        }
        CellBudget {
            max_ticks: tighter(self.max_ticks, other.max_ticks),
            max_wall: tighter(self.max_wall, other.max_wall),
        }
    }
}

/// The full simulation parameter space a server request can specify,
/// bundled so runner signatures stop growing one argument per PR.
/// [`Default`] matches `SimBuilder::new()`'s defaults.
#[derive(Debug, Clone)]
pub struct SimSettings {
    /// HBM capacity in page slots (`k`).
    pub k: usize,
    /// Parallel fetch channels (`q`).
    pub q: usize,
    /// Queue arbitration policy.
    pub arbitration: ArbitrationKind,
    /// HBM replacement policy.
    pub replacement: hbm_core::ReplacementKind,
    /// Far-memory fetch latency in ticks (`None` keeps the builder default).
    pub far_latency: Option<u64>,
    /// RNG seed for stochastic policies.
    pub seed: u64,
    /// Fault injection plan.
    pub faults: FaultPlan,
}

impl Default for SimSettings {
    fn default() -> Self {
        let defaults = SimBuilder::new();
        let c = defaults.config();
        SimSettings {
            k: c.hbm_slots,
            q: c.channels,
            arbitration: c.arbitration,
            replacement: c.replacement,
            far_latency: None,
            seed: c.seed,
            faults: FaultPlan::default(),
        }
    }
}

impl SimSettings {
    /// A settings bundle with the given core parameters and builder
    /// defaults elsewhere.
    pub fn new(k: usize, q: usize, arbitration: ArbitrationKind, seed: u64) -> SimSettings {
        SimSettings {
            k,
            q,
            arbitration,
            seed,
            ..SimSettings::default()
        }
    }

    /// The [`BatchCell`] these settings submit under `budget` — exactly
    /// what [`run_batch_budgeted_flat`] builds internally. Public so
    /// differential tests and the bench harness's divergence triage can
    /// reconstruct a batch from its settings.
    pub fn to_batch_cell(&self, budget: CellBudget) -> BatchCell {
        let builder = self.builder(budget);
        BatchCell {
            config: *builder.config(),
            faults: builder.faults().clone(),
        }
    }

    fn builder(&self, budget: CellBudget) -> SimBuilder {
        let mut b = SimBuilder::new()
            .hbm_slots(self.k)
            .channels(self.q)
            .arbitration(self.arbitration)
            .replacement(self.replacement)
            .seed(self.seed)
            .fault_plan(self.faults.clone());
        if let Some(lat) = self.far_latency {
            b = b.far_latency(lat);
        }
        if let Some(max_ticks) = budget.max_ticks {
            b = b.max_ticks(max_ticks);
        }
        b
    }
}

/// Runs one simulation cell.
pub fn run_cell(
    workload: &Workload,
    k: usize,
    q: usize,
    arb: ArbitrationKind,
    seed: u64,
) -> Report {
    SimBuilder::new()
        .hbm_slots(k)
        .channels(q)
        .arbitration(arb)
        .seed(seed)
        .run(workload)
}

/// Runs one simulation cell against a shared [`FlatWorkload`], recycling
/// `scratch`'s buffers for the engine's mutable state. Bit-identical to
/// [`run_cell`] on the equivalent owned workload (enforced by the sharing
/// differential suite), but performs no per-cell trace copies and O(1)
/// heap allocations once the scratch is warm.
pub fn run_cell_flat(
    flat: &Arc<FlatWorkload>,
    k: usize,
    q: usize,
    arb: ArbitrationKind,
    seed: u64,
    scratch: &mut EngineScratch,
) -> Report {
    let engine = SimBuilder::new()
        .hbm_slots(k)
        .channels(q)
        .arbitration(arb)
        .seed(seed)
        .try_build_flat_reusing(flat, scratch)
        .expect("invalid simulation config");
    engine.run_reusing(&mut NoopObserver, scratch)
}

/// Runs one simulation cell under a [`CellBudget`], returning a typed
/// error (never panicking) on invalid configuration. Budget-truncated
/// cells return `Ok` with `Report::truncated = true`.
pub fn run_cell_budgeted(
    workload: &Workload,
    k: usize,
    q: usize,
    arb: ArbitrationKind,
    seed: u64,
    budget: CellBudget,
) -> Result<Report, SimError> {
    run_sim_budgeted(workload, &SimSettings::new(k, q, arb, seed), budget)
}

/// [`run_cell_budgeted`] generalized over the full [`SimSettings`] space —
/// the server's owned-workload execution path.
pub fn run_sim_budgeted(
    workload: &Workload,
    settings: &SimSettings,
    budget: CellBudget,
) -> Result<Report, SimError> {
    let builder = settings.builder(budget);
    let tick_cap = builder.config().max_ticks;
    let mut engine = builder.try_build(workload)?;
    let Some(wall) = budget.max_wall else {
        return Ok(engine.run(&mut NoopObserver));
    };
    let start = Instant::now();
    let mut steps = 0u32;
    while !engine.is_done() && engine.tick() < tick_cap {
        engine.step(&mut NoopObserver);
        steps = steps.wrapping_add(1);
        // Instant::now() costs a vDSO call; amortize it over a batch of
        // steps (a step is at least one tick, usually far more).
        if steps & 1023 == 0 && start.elapsed() >= wall {
            break;
        }
    }
    Ok(engine.into_report())
}

/// [`run_cell_budgeted`] over a shared [`FlatWorkload`] with recycled
/// scratch buffers — the journaled-sweep worker path. Same soft-failure
/// semantics; same results bit for bit.
pub fn run_cell_budgeted_flat(
    flat: &Arc<FlatWorkload>,
    k: usize,
    q: usize,
    arb: ArbitrationKind,
    seed: u64,
    budget: CellBudget,
    scratch: &mut EngineScratch,
) -> Result<Report, SimError> {
    run_sim_budgeted_flat(flat, &SimSettings::new(k, q, arb, seed), budget, scratch)
}

/// [`run_sim_budgeted`] over a shared [`FlatWorkload`] with recycled
/// scratch buffers — the server's warm path. Bit-identical to the owned
/// path for the same settings.
pub fn run_sim_budgeted_flat(
    flat: &Arc<FlatWorkload>,
    settings: &SimSettings,
    budget: CellBudget,
    scratch: &mut EngineScratch,
) -> Result<Report, SimError> {
    let builder = settings.builder(budget);
    let tick_cap = builder.config().max_ticks;
    let mut engine = builder.try_build_flat_reusing(flat, scratch)?;
    let Some(wall) = budget.max_wall else {
        return Ok(engine.run_reusing(&mut NoopObserver, scratch));
    };
    let start = Instant::now();
    let mut steps = 0u32;
    while !engine.is_done() && engine.tick() < tick_cap {
        engine.step(&mut NoopObserver);
        steps = steps.wrapping_add(1);
        if steps & 1023 == 0 && start.elapsed() >= wall {
            break;
        }
    }
    Ok(engine.into_report_reusing(scratch))
}

/// Builds an owned incremental [`Engine`](hbm_core::Engine) over a shared
/// [`FlatWorkload`] under a [`CellBudget`]'s tick bound — the streaming
/// session's substrate. The caller owns the stepping loop (pacing,
/// snapshots, wall-budget checks, shutdown polling); the returned tick cap
/// is the engine's configured `max_ticks`, so a session loop stepping
/// `while !done && tick < cap` finalizes with exactly the same truncation
/// semantics as [`run_sim_budgeted_flat`].
pub fn build_session_engine(
    flat: &Arc<FlatWorkload>,
    settings: &SimSettings,
    budget: CellBudget,
) -> Result<(hbm_core::Engine, u64), SimError> {
    let builder = settings.builder(budget);
    let tick_cap = builder.config().max_ticks;
    let engine = builder.try_build_flat(flat)?;
    Ok((engine, tick_cap))
}

/// Runs a batch of cells over one shared [`FlatWorkload`] through the
/// lockstep [`BatchEngine`], recycling `scratch`'s column arena. Each
/// cell's report is bit-identical to [`run_cell_flat`] with the same
/// settings (enforced by the lockstep differential suite). Panics on
/// invalid settings — the batched analogue of [`run_cell_flat`].
pub fn run_batch_flat(
    flat: &Arc<FlatWorkload>,
    settings: &[SimSettings],
    scratch: &mut BatchScratch,
) -> Vec<Report> {
    run_batch_budgeted_flat(flat, settings, CellBudget::UNLIMITED, scratch)
        .expect("invalid simulation config")
}

/// [`run_batch_flat`] under a [`CellBudget`] applied to every cell: the
/// tick budget becomes each cell's `max_ticks` (cells exceeding it report
/// `truncated`, cells finishing within it don't), while the wall budget
/// truncates at batch granularity — when it expires, every still-running
/// cell stops cooperatively with partial metrics.
///
/// Batches of one skip columnization and run through the scalar
/// [`run_sim_budgeted_flat`] path on the scratch's embedded
/// [`EngineScratch`] — bit-identical either way, so callers can batch
/// unconditionally.
pub fn run_batch_budgeted_flat(
    flat: &Arc<FlatWorkload>,
    settings: &[SimSettings],
    budget: CellBudget,
    scratch: &mut BatchScratch,
) -> Result<Vec<Report>, SimError> {
    if settings.len() == 1 {
        let report = run_sim_budgeted_flat(flat, &settings[0], budget, scratch.scalar_mut())?;
        return Ok(vec![report]);
    }
    let cells: Vec<BatchCell> = settings.iter().map(|s| s.to_batch_cell(budget)).collect();
    let mut engine = BatchEngine::try_with_scratch(Arc::clone(flat), &cells, scratch)?;
    let Some(wall) = budget.max_wall else {
        return Ok(engine.run_quiet_reusing(scratch));
    };
    // Phase-major run with a cooperative wall-budget poll: the engine
    // polls every 64 rounds (vDSO-call amortization — a round steps every
    // live cell once), the budget policy stays here.
    let start = Instant::now();
    engine.run_quiet_while(|| start.elapsed() < wall);
    Ok(engine.into_reports_reusing(scratch))
}

/// A pool of engine scratches shared by sweep workers and server request
/// handlers — [`EngineScratch`] for scalar cells (the default parameter),
/// [`BatchScratch`] for lockstep batches.
///
/// `hbm_par`'s closures are `Fn(&T)` — they cannot hold `&mut` worker
/// state — so per-cell scratch reuse goes through this pool: each cell
/// pops a scratch (or starts a fresh one), runs, and returns it. With `n`
/// workers the pool converges to `n` scratches regardless of grid size.
///
/// **Panic safety:** the scratch is returned by a drop guard, so a cell
/// that panics mid-run still recycles its buffers. That is sound because
/// engine construction fully overwrites every scratch buffer
/// (`clear()` + `resize`) — a panic-abandoned scratch is indistinguishable
/// from a fresh one to the next cell (see the `EngineScratch` /
/// `BatchScratch` docs and the sharing / batch scratch-panic suites).
#[derive(Default)]
pub struct ScratchPool<S = EngineScratch> {
    free: Mutex<Vec<S>>,
}

impl<S: Default> ScratchPool<S> {
    /// An empty pool; scratches are created on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with a pooled scratch, returning it afterwards — including
    /// on unwind.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        struct Guard<'a, S> {
            pool: &'a ScratchPool<S>,
            scratch: Option<S>,
        }
        impl<S> Drop for Guard<'_, S> {
            fn drop(&mut self) {
                if let Some(s) = self.scratch.take() {
                    self.pool
                        .free
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(s);
                }
            }
        }
        let scratch = self
            .free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        let mut guard = Guard {
            pool: self,
            scratch: Some(scratch),
        };
        f(guard.scratch.as_mut().expect("scratch present until drop"))
    }

    /// Number of idle scratches currently pooled (for tests/diagnostics).
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Frees every idle scratch — the idle-path companion to
    /// [`TracePool::shrink`]. Scratches checked out by in-flight work are
    /// unaffected and return to the pool as usual.
    pub fn clear(&self) {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Weak;

    fn small_pool() -> TracePool {
        let spec = WorkloadSpec::Uniform { pages: 10, len: 50 };
        TracePool::generate(spec, 4, 1, TraceOptions::default())
    }

    #[test]
    fn trace_pool_prefixes() {
        let pool = small_pool();
        assert_eq!(pool.max_p(), 4);
        let w2 = pool.workload(2);
        let w4 = pool.workload(4);
        assert_eq!(w2.cores(), 2);
        // Prefix property: w2's traces are w4's first two.
        assert_eq!(w2.trace(0).as_slice(), w4.trace(0).as_slice());
        assert_eq!(w2.trace(1).as_slice(), w4.trace(1).as_slice());
    }

    #[test]
    fn flat_memoization_shares_one_arc() {
        let pool = small_pool();
        let a = pool.flat(3);
        let b = pool.flat(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(pool.flat_count(), 1);
    }

    #[test]
    fn shrink_actually_drops_memoized_flats() {
        let pool = small_pool();
        let weak: Weak<FlatWorkload> = Arc::downgrade(&pool.flat(4));
        assert!(weak.upgrade().is_some(), "memoized while retained");
        pool.shrink();
        assert_eq!(pool.flat_count(), 0);
        assert!(
            weak.upgrade().is_none(),
            "shrink() must release the flat's memory, not just the map slot"
        );
        // The pool still works after shrinking: flats rebuild on demand.
        let rebuilt = pool.flat(4);
        assert_eq!(rebuilt.cores(), 4);
        assert_eq!(pool.flat_count(), 1);
    }

    #[test]
    fn flat_capacity_evicts_least_recently_used() {
        let pool = small_pool();
        pool.set_flat_capacity(Some(2));
        let f1 = pool.flat(1);
        let _f2 = pool.flat(2);
        let _ = pool.flat(1); // touch 1 so 2 is now the oldest
        let w2 = Arc::downgrade(&pool.flat(2)); // p=2 now most recent
        let w1 = Arc::downgrade(&f1);
        drop(f1);
        let _f3 = pool.flat(3);
        assert_eq!(pool.flat_count(), 2);
        assert!(w1.upgrade().is_none(), "LRU entry evicted");
        assert!(w2.upgrade().is_some(), "recent entry survives");
    }

    #[test]
    fn set_capacity_trims_immediately() {
        let pool = small_pool();
        for p in 1..=4 {
            let _ = pool.flat(p);
        }
        assert_eq!(pool.flat_count(), 4);
        pool.set_flat_capacity(Some(1));
        assert_eq!(pool.flat_count(), 1);
        pool.set_flat_capacity(None);
        for p in 1..=4 {
            let _ = pool.flat(p);
        }
        assert_eq!(pool.flat_count(), 4, "unbounded again after reset");
    }

    #[test]
    fn evicted_flat_rebuilds_identically() {
        let pool = small_pool();
        let before = pool.flat(2);
        pool.shrink();
        let after = pool.flat(2);
        assert!(!Arc::ptr_eq(&before, &after));
        let r1 = run_cell_flat(
            &before,
            16,
            1,
            ArbitrationKind::Fifo,
            0,
            &mut EngineScratch::default(),
        );
        let r2 = run_cell_flat(
            &after,
            16,
            1,
            ArbitrationKind::Fifo,
            0,
            &mut EngineScratch::default(),
        );
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.hits, r2.hits);
    }

    #[test]
    fn budgeted_run_matches_unbudgeted_when_unlimited() {
        let w = Workload::from_refs(vec![vec![0, 1, 2, 0, 1, 2]; 3]);
        let plain = run_cell(&w, 4, 1, ArbitrationKind::Priority, 7);
        let budgeted = run_cell_budgeted(
            &w,
            4,
            1,
            ArbitrationKind::Priority,
            7,
            CellBudget::UNLIMITED,
        )
        .unwrap();
        assert_eq!(plain.makespan, budgeted.makespan);
        assert_eq!(plain.hits, budgeted.hits);
        assert!(!budgeted.truncated);
    }

    #[test]
    fn budgeted_run_wall_limit_matches_plain_run_when_generous() {
        let w = Workload::from_refs(vec![vec![0, 1, 2]; 2]);
        let budget = CellBudget {
            max_ticks: None,
            max_wall: Some(Duration::from_secs(60)),
        };
        let r = run_cell_budgeted(&w, 4, 1, ArbitrationKind::Fifo, 0, budget).unwrap();
        assert!(!r.truncated);
        assert_eq!(r.served, 6);
    }

    #[test]
    fn budgeted_run_tick_limit_truncates() {
        let w = Workload::from_refs(vec![(0..200u32).collect(); 4]);
        let budget = CellBudget {
            max_ticks: Some(10),
            max_wall: None,
        };
        let r = run_cell_budgeted(&w, 16, 1, ArbitrationKind::Fifo, 0, budget).unwrap();
        assert!(r.truncated, "tick budget must truncate");
        assert_eq!(r.makespan, 10);
    }

    #[test]
    fn budgeted_run_zero_wall_truncates_not_hangs() {
        // A zero wall budget must stop promptly with partial metrics.
        let w = Workload::from_refs(vec![(0..2000u32).collect(); 8]);
        let budget = CellBudget {
            max_ticks: None,
            max_wall: Some(Duration::ZERO),
        };
        let r = run_cell_budgeted(&w, 16, 1, ArbitrationKind::Fifo, 0, budget).unwrap();
        assert!(r.truncated, "zero wall budget must truncate");
    }

    #[test]
    fn budgeted_run_surfaces_config_errors() {
        let w = Workload::from_refs(vec![vec![0]]);
        let err = run_cell_budgeted(&w, 0, 1, ArbitrationKind::Fifo, 0, CellBudget::UNLIMITED);
        assert!(err.is_err(), "k = 0 must be a typed error, not a panic");
    }

    #[test]
    fn budget_min_takes_the_tighter_bound() {
        let a = CellBudget {
            max_ticks: Some(100),
            max_wall: None,
        };
        let b = CellBudget {
            max_ticks: Some(50),
            max_wall: Some(Duration::from_secs(1)),
        };
        let m = a.min(b);
        assert_eq!(m.max_ticks, Some(50));
        assert_eq!(m.max_wall, Some(Duration::from_secs(1)));
        assert_eq!(CellBudget::UNLIMITED.min(b), b);
    }

    #[test]
    fn sim_settings_path_matches_run_cell() {
        let w = Workload::from_refs(vec![vec![0, 1, 2, 0, 1, 2]; 3]);
        let plain = run_cell(&w, 4, 2, ArbitrationKind::Priority, 9);
        let via_settings = run_sim_budgeted(
            &w,
            &SimSettings::new(4, 2, ArbitrationKind::Priority, 9),
            CellBudget::UNLIMITED,
        )
        .unwrap();
        assert_eq!(plain.makespan, via_settings.makespan);
        assert_eq!(plain.hits, via_settings.hits);
        assert_eq!(plain.fetches, via_settings.fetches);
    }

    #[test]
    fn batch_runner_matches_scalar_cells() {
        let pool = small_pool();
        let flat = pool.flat(3);
        let settings = vec![
            SimSettings::new(4, 1, ArbitrationKind::Fifo, 7),
            SimSettings::new(16, 2, ArbitrationKind::Priority, 7),
            SimSettings::new(8, 1, ArbitrationKind::DynamicPriority { period: 16 }, 9),
        ];
        let mut batch_scratch = BatchScratch::default();
        let batched = run_batch_flat(&flat, &settings, &mut batch_scratch);
        let mut scratch = EngineScratch::default();
        for (i, s) in settings.iter().enumerate() {
            let scalar = run_cell_flat(&flat, s.k, s.q, s.arbitration, s.seed, &mut scratch);
            assert_eq!(batched[i].makespan, scalar.makespan, "cell {i}");
            assert_eq!(batched[i].hits, scalar.hits, "cell {i}");
            assert_eq!(
                batched[i].mean_queue_len.to_bits(),
                scalar.mean_queue_len.to_bits(),
                "cell {i}"
            );
        }
    }

    #[test]
    fn batch_singleton_fallback_matches_batched_pair() {
        // A batch of one takes the scalar fallback; the same settings in a
        // batch of two take the lockstep path. Results must agree.
        let pool = small_pool();
        let flat = pool.flat(2);
        let s = SimSettings::new(6, 1, ArbitrationKind::Priority, 3);
        let mut scratch = BatchScratch::default();
        let singleton = run_batch_flat(&flat, std::slice::from_ref(&s), &mut scratch);
        assert_eq!(singleton.len(), 1);
        let pair = run_batch_flat(&flat, &[s.clone(), s.clone()], &mut scratch);
        assert_eq!(singleton[0].makespan, pair[0].makespan);
        assert_eq!(pair[0].makespan, pair[1].makespan);
        assert_eq!(singleton[0].hits, pair[0].hits);
    }

    #[test]
    fn batch_tick_budget_truncates_exactly_the_over_budget_cells() {
        let w = Workload::from_refs(vec![(0..300u32).collect(); 3]);
        let flat = Arc::new(FlatWorkload::new(&w));
        // Tiny HBM thrashes (slow); huge HBM streams (fast).
        let settings = vec![
            SimSettings::new(512, 4, ArbitrationKind::Fifo, 0),
            SimSettings::new(2, 1, ArbitrationKind::Fifo, 0),
        ];
        let fast_alone = run_batch_budgeted_flat(
            &flat,
            &settings[..1],
            CellBudget::UNLIMITED,
            &mut BatchScratch::default(),
        )
        .unwrap()[0]
            .makespan;
        let budget = CellBudget {
            max_ticks: Some(fast_alone + 10),
            max_wall: None,
        };
        let reports =
            run_batch_budgeted_flat(&flat, &settings, budget, &mut BatchScratch::default())
                .unwrap();
        assert!(!reports[0].truncated, "fast cell finishes within budget");
        assert!(reports[1].truncated, "thrashing cell exceeds the budget");
        assert_eq!(reports[1].makespan, fast_alone + 10);
    }

    #[test]
    fn batch_zero_wall_budget_truncates_not_hangs() {
        let w = Workload::from_refs(vec![(0..3000u32).collect(); 8]);
        let flat = Arc::new(FlatWorkload::new(&w));
        let settings = vec![
            SimSettings::new(16, 1, ArbitrationKind::Fifo, 0),
            SimSettings::new(16, 1, ArbitrationKind::Priority, 0),
        ];
        let budget = CellBudget {
            max_ticks: None,
            max_wall: Some(Duration::ZERO),
        };
        let reports =
            run_batch_budgeted_flat(&flat, &settings, budget, &mut BatchScratch::default())
                .unwrap();
        assert!(reports.iter().all(|r| r.truncated));
    }

    #[test]
    fn batch_runner_surfaces_config_errors() {
        let pool = small_pool();
        let flat = pool.flat(2);
        let settings = vec![
            SimSettings::new(4, 1, ArbitrationKind::Fifo, 0),
            SimSettings::new(4, 0, ArbitrationKind::Fifo, 0), // q = 0
        ];
        let err = run_batch_budgeted_flat(
            &flat,
            &settings,
            CellBudget::UNLIMITED,
            &mut BatchScratch::default(),
        );
        assert!(err.is_err(), "q = 0 must be a typed error, not a panic");
    }

    #[test]
    fn batch_scratch_pool_recycles() {
        let pool: ScratchPool<BatchScratch> = ScratchPool::new();
        let traces = small_pool();
        let flat = traces.flat(2);
        let settings = vec![
            SimSettings::new(4, 1, ArbitrationKind::Fifo, 1),
            SimSettings::new(8, 1, ArbitrationKind::Priority, 1),
        ];
        let a = pool.with(|s| run_batch_flat(&flat, &settings, s));
        assert_eq!(pool.idle(), 1, "scratch returned to the pool");
        let b = pool.with(|s| run_batch_flat(&flat, &settings, s));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.makespan, y.makespan);
            assert_eq!(x.hits, y.hits);
        }
    }

    #[test]
    fn scratch_pool_clear_frees_idle_buffers() {
        let pool: ScratchPool = ScratchPool::new();
        pool.with(|_| {});
        pool.with(|_| {});
        assert_eq!(pool.idle(), 1);
        pool.clear();
        assert_eq!(pool.idle(), 0);
        // Still usable after clearing.
        pool.with(|_| {});
        assert_eq!(pool.idle(), 1);
    }
}
