//! Server-side alert rules for streaming sessions (DESIGN.md §17).
//!
//! A `SessionRequest` may declare rules the server evaluates at every
//! snapshot boundary against a bounded in-memory history of the session's
//! own metrics; each firing becomes an `{"event":"alert",...}` JSONL line
//! immediately after the snapshot that triggered it, and bumps the shard's
//! `alerts` counter surfaced at `/healthz`. Evaluation is a pure function
//! of (rules, snapshot history, fault events) — no wall clock — so a
//! resumed session replays byte-identical alert lines (see
//! [`mux`](crate::mux)).
//!
//! The grammar (parsed in [`proto`](crate::proto)):
//!
//! * `inconsistency_above {x, for_n}` — fires when the report's
//!   `response.inconsistency` (max/mean response ratio, the paper's
//!   fairness metric) exceeds `x` at `for_n` consecutive snapshots.
//! * `channel_outage_longer_than {ticks}` — fires once per injected
//!   outage whose observed duration exceeds `ticks` (either when it ends,
//!   or at the first snapshot where it is still open past the bound).
//! * `blocked_frac_above {x, for_n}` — fires when the fraction of
//!   core-ticks spent blocked on outaged channels within the snapshot
//!   window (`Δ outage_blocked_ticks / (p · Δ tick)`) exceeds `x` at
//!   `for_n` consecutive snapshots.
//!
//! `for_n`-style rules reset their streak after firing, so a persistently
//! bad metric re-fires every `for_n` snapshots rather than every snapshot.

use hbm_core::{FaultEvent, Report, Tick};
use std::collections::VecDeque;

/// Maximum alert rules one session may declare.
pub const MAX_ALERT_RULES: usize = 16;

/// Snapshot points of history kept per session for rule evaluation.
/// Rules today need at most the previous point (deltas) plus streak
/// counters, but the bound is what matters: a session's alert state is
/// O(rules + history), never O(run length).
pub const HISTORY_CAP: usize = 64;

/// One client-declared alert rule.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertRule {
    /// `response.inconsistency > x` at `for_n` consecutive snapshots.
    InconsistencyAbove {
        /// Threshold on the inconsistency ratio.
        x: f64,
        /// Consecutive snapshots required before firing.
        for_n: u32,
    },
    /// An injected channel outage lasted more than `ticks` ticks.
    ChannelOutageLongerThan {
        /// Duration bound in simulated ticks.
        ticks: u64,
    },
    /// Blocked core-tick fraction over the snapshot window exceeds `x` at
    /// `for_n` consecutive snapshots.
    BlockedFracAbove {
        /// Threshold on the blocked fraction (0.0 ..).
        x: f64,
        /// Consecutive snapshots required before firing.
        for_n: u32,
    },
}

impl AlertRule {
    /// The rule's `kind` string on the wire (request and alert lines).
    pub fn kind(&self) -> &'static str {
        match self {
            AlertRule::InconsistencyAbove { .. } => "inconsistency_above",
            AlertRule::ChannelOutageLongerThan { .. } => "channel_outage_longer_than",
            AlertRule::BlockedFracAbove { .. } => "blocked_frac_above",
        }
    }
}

/// One rule firing, ready to serialize as an `alert` stream line.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertFire {
    /// Index of the firing rule in the request's `alerts` array.
    pub rule: usize,
    /// The rule's `kind` string.
    pub kind: &'static str,
    /// Snapshot tick at which the rule fired.
    pub tick: Tick,
    /// The observed value that crossed the threshold (inconsistency,
    /// outage duration in ticks, or blocked fraction).
    pub value: f64,
    /// The rule's threshold, echoed for self-contained alert lines.
    pub threshold: f64,
}

/// One point of bounded history: what the rules need from a snapshot.
#[derive(Debug, Clone, Copy)]
struct SnapshotPoint {
    tick: Tick,
    outage_blocked_ticks: u64,
}

/// An outage currently open (or ended but not yet evaluated).
#[derive(Debug, Clone, Copy)]
struct OutageSpan {
    start: Tick,
    /// `None` while the outage is still open.
    end: Option<Tick>,
    /// Rules that already fired for this span (bitmask by rule index),
    /// so a long outage alerts once per rule, not once per snapshot.
    fired: u32,
}

/// Per-session alert evaluator: rules plus bounded state.
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    /// Per-rule consecutive-snapshot streaks (for `for_n` rules).
    streaks: Vec<u32>,
    history: VecDeque<SnapshotPoint>,
    /// Open/recently-ended outage spans awaiting evaluation. Bounded:
    /// evaluated-and-closed spans are dropped each snapshot.
    outages: Vec<OutageSpan>,
    /// Cores, for the blocked-fraction denominator.
    p: usize,
    /// Total fires so far (reported in the session's done accounting and
    /// aggregated into shard counters by the caller).
    fired: u64,
}

impl AlertEngine {
    /// Builds an evaluator for `rules` on a `p`-core session.
    pub fn new(rules: Vec<AlertRule>, p: usize) -> AlertEngine {
        let streaks = vec![0; rules.len()];
        AlertEngine {
            rules,
            streaks,
            history: VecDeque::new(),
            outages: Vec::new(),
            p: p.max(1),
            fired: 0,
        }
    }

    /// True when the session declared no rules (evaluation can be
    /// skipped entirely).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Total rule firings so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Feeds one fault event from the stepping loop. Only outage edges
    /// are tracked; other fault kinds stream as their own `fault` lines.
    pub fn observe_fault(&mut self, tick: Tick, event: &FaultEvent) {
        if self.rules.is_empty() {
            return;
        }
        match event {
            FaultEvent::OutageStart { .. } => self.outages.push(OutageSpan {
                start: tick,
                end: None,
                fired: 0,
            }),
            FaultEvent::OutageEnd { .. } => {
                if let Some(span) = self.outages.iter_mut().rev().find(|s| s.end.is_none()) {
                    span.end = Some(tick);
                }
            }
            _ => {}
        }
    }

    /// Evaluates every rule against the snapshot at `tick`, returning the
    /// firings in rule order. Deterministic: depends only on prior
    /// `observe_fault`/`evaluate` calls, never the wall clock.
    pub fn evaluate(&mut self, tick: Tick, report: &Report) -> Vec<AlertFire> {
        if self.rules.is_empty() {
            return Vec::new();
        }
        let prev = self.history.back().copied();
        let point = SnapshotPoint {
            tick,
            outage_blocked_ticks: report.faults.outage_blocked_ticks,
        };
        let mut fires = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            match *rule {
                AlertRule::InconsistencyAbove { x, for_n } => {
                    let value = report.response.inconsistency;
                    if streak_fires(&mut self.streaks[i], value > x, for_n) {
                        fires.push(AlertFire {
                            rule: i,
                            kind: rule.kind(),
                            tick,
                            value,
                            threshold: x,
                        });
                    }
                }
                AlertRule::BlockedFracAbove { x, for_n } => {
                    let (prev_tick, prev_blocked) =
                        prev.map_or((0, 0), |p| (p.tick, p.outage_blocked_ticks));
                    let d_tick = tick.saturating_sub(prev_tick);
                    let d_blocked = point.outage_blocked_ticks.saturating_sub(prev_blocked);
                    let denom = (d_tick as f64) * (self.p as f64);
                    let value = if denom > 0.0 {
                        (d_blocked as f64) / denom
                    } else {
                        0.0
                    };
                    if streak_fires(&mut self.streaks[i], value > x, for_n) {
                        fires.push(AlertFire {
                            rule: i,
                            kind: rule.kind(),
                            tick,
                            value,
                            threshold: x,
                        });
                    }
                }
                AlertRule::ChannelOutageLongerThan { ticks } => {
                    let bit = 1u32 << (i % 32);
                    for span in &mut self.outages {
                        if span.fired & bit != 0 {
                            continue;
                        }
                        let duration = span.end.unwrap_or(tick).saturating_sub(span.start);
                        if duration > ticks {
                            span.fired |= bit;
                            fires.push(AlertFire {
                                rule: i,
                                kind: rule.kind(),
                                tick,
                                value: duration as f64,
                                threshold: ticks as f64,
                            });
                        }
                    }
                }
            }
        }
        // Ended spans have a fixed duration and every rule just evaluated
        // them, so they can never fire again — drop them. The list stays
        // bounded by the number of concurrently *open* outages.
        self.outages.retain(|s| s.end.is_none());
        self.history.push_back(point);
        while self.history.len() > HISTORY_CAP {
            self.history.pop_front();
        }
        self.fired += fires.len() as u64;
        fires
    }
}

/// Streak bookkeeping for `for_n` rules: bump on hold, reset on miss or
/// fire; returns true exactly when the streak reaches `for_n`.
fn streak_fires(streak: &mut u32, holds: bool, for_n: u32) -> bool {
    if !holds {
        *streak = 0;
        return false;
    }
    *streak += 1;
    if *streak >= for_n.max(1) {
        *streak = 0;
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_core::Workload;

    fn report_with(inconsistency: f64, blocked: u64) -> Report {
        // Cheapest way to a structurally-complete Report: run a tiny cell,
        // then overwrite the fields under test.
        let w = Workload::from_refs(vec![vec![0, 1, 0, 1]]);
        let mut r = crate::pool::run_cell(&w, 2, 1, hbm_core::ArbitrationKind::Fifo, 0);
        r.response.inconsistency = inconsistency;
        r.faults.outage_blocked_ticks = blocked;
        r
    }

    #[test]
    fn inconsistency_rule_needs_consecutive_snapshots() {
        let mut eng = AlertEngine::new(vec![AlertRule::InconsistencyAbove { x: 2.0, for_n: 2 }], 4);
        assert!(eng.evaluate(100, &report_with(3.0, 0)).is_empty());
        let fires = eng.evaluate(200, &report_with(3.0, 0));
        assert_eq!(fires.len(), 1);
        assert_eq!(fires[0].kind, "inconsistency_above");
        assert_eq!(fires[0].tick, 200);
        // Streak reset after firing: the next breach starts over.
        assert!(eng.evaluate(300, &report_with(3.0, 0)).is_empty());
        assert_eq!(eng.evaluate(400, &report_with(3.0, 0)).len(), 1);
        // A dip resets the streak without firing.
        assert!(eng.evaluate(500, &report_with(1.0, 0)).is_empty());
        assert!(eng.evaluate(600, &report_with(3.0, 0)).is_empty());
        assert_eq!(eng.fired(), 2);
    }

    #[test]
    fn outage_rule_fires_once_per_span_even_while_open() {
        let mut eng = AlertEngine::new(vec![AlertRule::ChannelOutageLongerThan { ticks: 50 }], 4);
        eng.observe_fault(10, &FaultEvent::OutageStart { down: 1 });
        // Open 40 ticks at the first snapshot: under the bound, no fire.
        assert!(eng.evaluate(50, &report_with(0.0, 0)).is_empty());
        // Still open past the bound: fires once with the open duration.
        let fires = eng.evaluate(100, &report_with(0.0, 0));
        assert_eq!(fires.len(), 1);
        assert_eq!(fires[0].value, 90.0);
        // Still open at later snapshots: no re-fire for the same span.
        assert!(eng.evaluate(150, &report_with(0.0, 0)).is_empty());
        eng.observe_fault(160, &FaultEvent::OutageEnd { restored: 1 });
        assert!(eng.evaluate(200, &report_with(0.0, 0)).is_empty());
        // A fresh short outage never fires.
        eng.observe_fault(210, &FaultEvent::OutageStart { down: 1 });
        eng.observe_fault(220, &FaultEvent::OutageEnd { restored: 1 });
        assert!(eng.evaluate(250, &report_with(0.0, 0)).is_empty());
    }

    #[test]
    fn outage_ending_between_snapshots_still_fires() {
        let mut eng = AlertEngine::new(vec![AlertRule::ChannelOutageLongerThan { ticks: 20 }], 4);
        eng.observe_fault(10, &FaultEvent::OutageStart { down: 2 });
        eng.observe_fault(60, &FaultEvent::OutageEnd { restored: 2 });
        let fires = eng.evaluate(100, &report_with(0.0, 0));
        assert_eq!(fires.len(), 1);
        assert_eq!(fires[0].value, 50.0);
    }

    #[test]
    fn blocked_frac_uses_window_deltas() {
        let mut eng = AlertEngine::new(vec![AlertRule::BlockedFracAbove { x: 0.5, for_n: 1 }], 2);
        // Window [0, 100] on 2 cores = 200 core-ticks; 150 blocked = 0.75.
        let fires = eng.evaluate(100, &report_with(0.0, 150));
        assert_eq!(fires.len(), 1);
        assert_eq!(fires[0].value, 0.75);
        // Next window [100, 200]: no *new* blocked ticks → 0.0, no fire.
        assert!(eng.evaluate(200, &report_with(0.0, 150)).is_empty());
    }

    #[test]
    fn history_stays_bounded() {
        let mut eng = AlertEngine::new(vec![AlertRule::BlockedFracAbove { x: 0.5, for_n: 1 }], 1);
        for i in 1..(HISTORY_CAP as u64 * 3) {
            let _ = eng.evaluate(i * 10, &report_with(0.0, 0));
        }
        assert!(eng.history.len() <= HISTORY_CAP);
    }

    #[test]
    fn no_rules_is_free() {
        let mut eng = AlertEngine::new(Vec::new(), 8);
        assert!(eng.is_empty());
        eng.observe_fault(1, &FaultEvent::OutageStart { down: 1 });
        assert!(eng.evaluate(10, &report_with(9.0, 9)).is_empty());
        assert_eq!(eng.fired(), 0);
    }
}
