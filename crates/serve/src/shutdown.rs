//! Cooperative shutdown signalling, with optional SIGINT/SIGTERM hookup.
//!
//! The workspace has no `libc` (offline, std-only), and std exposes no
//! signal API — so this module carries the crate's only `unsafe`: a raw
//! FFI declaration of POSIX `signal(2)` used to install a handler that
//! does exactly one async-signal-safe thing, a relaxed store to a
//! process-global `AtomicBool`. Everything else polls.
//!
//! A [`ShutdownFlag`] is two bits OR-ed together: a *local* flag (an
//! `Arc<AtomicBool>` tests and callers can trip directly) and, when
//! constructed via [`ShutdownFlag::with_signal_handlers`], the *global*
//! signal bit. The server's accept loop, its connection threads, and
//! `repro sweep`'s journal workers all poll the same flag type, so one
//! drain-and-flush discipline covers both binaries.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};

/// Set by the signal handler; never cleared (signal-triggered shutdown is
/// one-way for the life of the process).
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// A pollable, cloneable shutdown request.
///
/// Clones share state: tripping any clone (or receiving SIGINT/SIGTERM,
/// for flags created by [`with_signal_handlers`](Self::with_signal_handlers))
/// makes every clone's [`is_set`](Self::is_set) return `true`.
#[derive(Clone)]
pub struct ShutdownFlag {
    local: Arc<AtomicBool>,
    with_signals: bool,
}

impl Default for ShutdownFlag {
    fn default() -> Self {
        ShutdownFlag::new()
    }
}

impl ShutdownFlag {
    /// A flag with no signal hookup — tripped only by [`trip`](Self::trip).
    /// This is what tests use to exercise shutdown paths deterministically.
    pub fn new() -> ShutdownFlag {
        ShutdownFlag {
            local: Arc::new(AtomicBool::new(false)),
            with_signals: false,
        }
    }

    /// A flag that also observes SIGINT (ctrl-c) and SIGTERM. Handler
    /// installation happens once per process; later calls share it.
    /// On non-Unix platforms this is identical to [`new`](Self::new).
    pub fn with_signal_handlers() -> ShutdownFlag {
        install_handlers();
        ShutdownFlag {
            local: Arc::new(AtomicBool::new(false)),
            with_signals: true,
        }
    }

    /// Requests shutdown.
    pub fn trip(&self) {
        self.local.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested — locally or, for
    /// signal-observing flags, by SIGINT/SIGTERM.
    pub fn is_set(&self) -> bool {
        self.local.load(Ordering::Acquire)
            || (self.with_signals && SIGNALLED.load(Ordering::Acquire))
    }

    /// Sleeps for up to `dur`, polling the flag in short slices so a
    /// drain request interrupts the wait. Returns `true` when the sleep
    /// was cut short by shutdown. This is how paced session loops wait
    /// between snapshots without delaying drain by a full pace interval.
    pub fn sleep_interruptibly(&self, dur: std::time::Duration) -> bool {
        const SLICE: std::time::Duration = std::time::Duration::from_millis(25);
        let deadline = std::time::Instant::now() + dur;
        loop {
            if self.is_set() {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            std::thread::sleep((deadline - now).min(SLICE));
        }
    }
}

#[cfg(unix)]
fn install_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // The handler performs only an atomic store — async-signal-safe.
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::Release);
    }

    extern "C" {
        // POSIX signal(2). We use it instead of sigaction to avoid
        // declaring the platform-specific sigaction struct layout by hand;
        // the semantics difference (SA_RESTART) is irrelevant because every
        // read in this crate runs under a timeout and re-polls the flag.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    });
}

#[cfg(not(unix))]
fn install_handlers() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_flag_trips_and_shares_across_clones() {
        let flag = ShutdownFlag::new();
        let clone = flag.clone();
        assert!(!flag.is_set());
        assert!(!clone.is_set());
        clone.trip();
        assert!(flag.is_set(), "clones share the local bit");
    }

    #[test]
    fn independent_flags_do_not_interfere() {
        let a = ShutdownFlag::new();
        let b = ShutdownFlag::new();
        a.trip();
        assert!(a.is_set());
        assert!(!b.is_set());
    }

    #[test]
    fn signal_flag_installs_without_breaking_local_semantics() {
        // We can't safely raise a real signal inside the test harness, but
        // installation must succeed and local tripping must still work.
        let flag = ShutdownFlag::with_signal_handlers();
        assert!(!flag.is_set());
        flag.trip();
        assert!(flag.is_set());
    }
}
