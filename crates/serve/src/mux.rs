//! The session multiplexer: thousands of paced sessions on a fixed-size
//! worker pool (DESIGN.md §17).
//!
//! PR 7 ran every streaming session on its own connection thread, so a
//! thousand slow-paced sessions meant a thousand OS threads, most of them
//! asleep in a pace wait. This module replaces that with a timer wheel in
//! miniature: each session is a [`SessionState`] state machine owning its
//! engine, socket, and write buffer; a min-heap orders sessions by wakeup
//! deadline (`wake_at`); and `session_workers` threads pop due sessions,
//! run one bounded slice each (see [`SessionState::run_slice`]), and
//! re-queue them with their next deadline. A session's socket is
//! non-blocking — a slice never sleeps in a write — so the pool's wall
//! clock is spent stepping engines, and OS thread count stays
//! `session_workers + shards·workers + O(1)` regardless of how many
//! sessions are open.
//!
//! Scheduling invariants:
//!
//! * A session is either in the map (idle, heap-addressable) or checked
//!   out by exactly one worker (`running`), never both — no session runs
//!   two slices concurrently.
//! * Heap entries are lazily invalidated: `(deadline, id)` is live only
//!   while the session's current `wake_at` equals the entry's deadline;
//!   stale entries (rescheduled or finished sessions) pop and drop.
//! * Drain ([`begin_drain`](SessionMux::begin_drain)) makes every session
//!   immediately due; workers run each one final slice (which writes the
//!   `done`/`draining` line) and exit once the map and running set are
//!   empty. The server only calls it after the last submitter is joined.
//! * Shedding ([`shed_newest_paced`](SessionMux::shed_newest_paced))
//!   marks the newest idle *paced* session and makes it due; its next
//!   slice emits a complete `done`/`shed` line — never a torn snapshot.

use crate::session::{SessionState, SliceOutcome};
use crate::shutdown::ShutdownFlag;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on a worker's condvar wait, so a worker that missed a
/// notification (or is waiting out a long pace) still re-checks drain
/// state promptly.
const MAX_PARK: Duration = Duration::from_millis(100);

/// The shared scheduler. One per server, sized by `session_workers`.
pub(crate) struct SessionMux {
    inner: Mutex<MuxInner>,
    cv: Condvar,
}

struct MuxInner {
    /// Idle sessions by id. A session checked out for a slice is absent.
    sessions: HashMap<u64, SessionState>,
    /// Min-heap of `(wake_at, id)` wakeups (lazily invalidated).
    heap: BinaryHeap<Reverse<(Instant, u64)>>,
    /// Monotonic session ids; larger = newer (the shed policy's order).
    next_id: u64,
    /// Sessions currently checked out by workers.
    running: usize,
    /// Set once at drain; workers finish every session and exit.
    draining: bool,
}

impl SessionMux {
    pub(crate) fn new() -> SessionMux {
        SessionMux {
            inner: Mutex::new(MuxInner {
                sessions: HashMap::new(),
                heap: BinaryHeap::new(),
                next_id: 0,
                running: 0,
                draining: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, MuxInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Takes ownership of a freshly-opened session (head and `open` line
    /// already written) and schedules its first slice immediately.
    pub(crate) fn submit(&self, mut state: SessionState) {
        let now = Instant::now();
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        state.id = id;
        state.wake_at = now;
        inner.heap.push(Reverse((now, id)));
        inner.sessions.insert(id, state);
        drop(inner);
        self.cv.notify_one();
    }

    /// Shed policy: mark the newest idle paced session for eviction and
    /// make it due, returning true when a victim was found. Paced
    /// sessions are the long-lived luxury tier; newest-first keeps the
    /// least sunk work. Returns false when no idle paced session exists
    /// (the caller then rejects the incoming request instead).
    pub(crate) fn shed_newest_paced(&self) -> bool {
        let now = Instant::now();
        let mut inner = self.lock();
        let victim = inner
            .sessions
            .iter()
            .filter(|(_, s)| s.paced() && !s.shed)
            .map(|(&id, _)| id)
            .max();
        let Some(id) = victim else {
            return false;
        };
        let state = inner.sessions.get_mut(&id).expect("victim just found");
        state.shed = true;
        state.wake_at = now;
        inner.heap.push(Reverse((now, id)));
        drop(inner);
        self.cv.notify_one();
        true
    }

    /// Flips the mux into drain mode: every session becomes due, runs one
    /// final slice (emitting its `draining` line), and the workers exit
    /// once nothing is left. Callers must ensure no further
    /// [`submit`](Self::submit) can race this (the server joins every
    /// connection thread first).
    pub(crate) fn begin_drain(&self) {
        let mut inner = self.lock();
        inner.draining = true;
        drop(inner);
        self.cv.notify_all();
    }

    /// Spawns the fixed worker pool. Handles are joined by the server
    /// after [`begin_drain`](Self::begin_drain).
    pub(crate) fn spawn_workers(
        self: &Arc<Self>,
        workers: usize,
        flag: &ShutdownFlag,
    ) -> Vec<JoinHandle<()>> {
        (0..workers.max(1))
            .map(|i| {
                let mux = Arc::clone(self);
                let flag = flag.clone();
                std::thread::Builder::new()
                    .name(format!("hbm-serve-mux-{i}"))
                    .spawn(move || worker_loop(&mux, &flag))
                    .expect("spawn mux worker thread")
            })
            .collect()
    }
}

/// What a worker found at the top of the heap.
enum Next {
    /// A session is due (or drain makes everything due).
    Run(u64),
    /// The earliest live deadline is in the future.
    Park(Option<Instant>),
}

fn worker_loop(mux: &SessionMux, flag: &ShutdownFlag) {
    let mut inner = mux.lock();
    loop {
        if inner.draining && inner.sessions.is_empty() && inner.running == 0 {
            // Wake siblings parked without a deadline so they observe the
            // same exit condition.
            drop(inner);
            mux.cv.notify_all();
            return;
        }
        let now = Instant::now();
        let next = loop {
            match inner.heap.peek() {
                None => break Next::Park(None),
                Some(&Reverse((t, id))) => {
                    let live = inner.sessions.get(&id).is_some_and(|s| s.wake_at == t);
                    if !live {
                        inner.heap.pop();
                        continue;
                    }
                    if inner.draining || t <= now {
                        inner.heap.pop();
                        break Next::Run(id);
                    }
                    break Next::Park(Some(t));
                }
            }
        };
        match next {
            Next::Run(id) => {
                let mut state = inner.sessions.remove(&id).expect("live heap entry");
                inner.running += 1;
                let draining = inner.draining || flag.is_set();
                drop(inner);
                let outcome = state.run_slice(draining);
                inner = mux.lock();
                inner.running -= 1;
                match outcome {
                    SliceOutcome::Continue { wake_at } => {
                        state.wake_at = wake_at;
                        inner.heap.push(Reverse((wake_at, id)));
                        inner.sessions.insert(id, state);
                        // A sibling may be parked on a later deadline.
                        mux.cv.notify_one();
                    }
                    SliceOutcome::Finished => drop(state),
                }
            }
            Next::Park(until) => {
                let wait = until
                    .map(|t| t.saturating_duration_since(now))
                    .unwrap_or(MAX_PARK)
                    .min(MAX_PARK);
                let (guard, _) = mux
                    .cv
                    .wait_timeout(inner, wait)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }
    }
}
