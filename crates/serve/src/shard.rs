//! Per-shard serving state and the same-workload request coalescer.
//!
//! The server's accept loop (DESIGN.md §16) is a dispatcher: it hands
//! accepted connections to `N` shards round-robin. Each shard owns a full
//! serving stack — its own [`WorkerPool`], [`PoolRegistry`], scratch pool,
//! counters, and coalescer — so shards share no locks on the request path;
//! the only cross-shard state is the listener, the shutdown flag, and the
//! global connection/session gauges.
//!
//! The **coalescer** batches concurrent same-configuration requests
//! through one [`run_batch_budgeted_flat`] call. The batch key is
//! `(workload cache key, p, clamped budget)` — budget included, so every
//! request in a batch provably runs under its own (identical) budget. The
//! first request to open a key becomes the *leader*: it sleeps the
//! coalescing window, then flushes whatever accumulated. A request that
//! fills the batch to `max_batch` flushes immediately (the leader finds
//! its batch gone and does nothing). Followers just wait on their response
//! channel. Batch-split invariance (the PR 6 lockstep proptests) makes the
//! whole scheme byte-transparent: a coalesced response is identical to the
//! scalar response for the same request.

use crate::http::HttpResponse;
use crate::pool::{
    run_batch_budgeted_flat, run_sim_budgeted_flat, CellBudget, ScratchPool, SimSettings, TracePool,
};
use crate::proto::{report_to_json, WorkloadKey};
use crate::server::{error_body, panic_message, ServerStats};
use hbm_core::BatchScratch;
use hbm_par::{SubmitError, WorkerPool};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Per-shard counters (the shard-local half of [`ServerStats`]).
#[derive(Default)]
pub(crate) struct StatCells {
    pub(crate) requests: AtomicU64,
    pub(crate) ok: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) client_errors: AtomicU64,
    pub(crate) panics: AtomicU64,
    pub(crate) cold_runs: AtomicU64,
    pub(crate) warm_runs: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_requests: AtomicU64,
    pub(crate) sessions_opened: AtomicU64,
    pub(crate) sessions_closed: AtomicU64,
    pub(crate) sessions_reaped: AtomicU64,
    pub(crate) sessions_resumed: AtomicU64,
    pub(crate) sessions_shed: AtomicU64,
    pub(crate) alerts: AtomicU64,
}

impl StatCells {
    pub(crate) fn snapshot(&self) -> ServerStats {
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            client_errors: self.client_errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            cold_runs: self.cold_runs.load(Ordering::Relaxed),
            warm_runs: self.warm_runs.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            sessions_reaped: self.sessions_reaped.load(Ordering::Relaxed),
            sessions_resumed: self.sessions_resumed.load(Ordering::Relaxed),
            sessions_shed: self.sessions_shed.load(Ordering::Relaxed),
            alerts: self.alerts.load(Ordering::Relaxed),
        }
    }

    /// Maps a finished response's status onto the admission-taxonomy
    /// counters — the single place the status→counter mapping lives.
    pub(crate) fn count_response(&self, resp: &HttpResponse) {
        match resp.status {
            200 => self.ok.fetch_add(1, Ordering::Relaxed),
            429 => self.rejected.fetch_add(1, Ordering::Relaxed),
            500 => self.panics.fetch_add(1, Ordering::Relaxed),
            503 => self.shed.fetch_add(1, Ordering::Relaxed),
            _ => self.client_errors.fetch_add(1, Ordering::Relaxed),
        };
    }
}

/// Warm workload pools keyed by [`WorkloadKey::cache_key`], LRU-bounded at
/// `max_pools`. One registry per shard: registry contention never crosses
/// shard boundaries.
pub(crate) struct PoolRegistry {
    pools: Mutex<HashMap<String, (Arc<TracePool>, u64)>>,
    clock: AtomicU64,
    max_pools: usize,
    flat_capacity: Option<usize>,
}

impl PoolRegistry {
    pub(crate) fn new(max_pools: usize, flat_capacity: Option<usize>) -> Self {
        PoolRegistry {
            pools: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            max_pools: max_pools.max(1),
            flat_capacity,
        }
    }

    /// Fetches (or generates) the pool for `key` with at least `p` traces.
    /// Returns `(pool, was_warm)`; `was_warm` is false when this request
    /// paid trace generation (a cold start).
    pub(crate) fn get(&self, key: &WorkloadKey, p: usize) -> (Arc<TracePool>, bool) {
        let map_key = key.cache_key();
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
            if let Some((pool, at)) = pools.get_mut(&map_key) {
                if pool.max_p() >= p {
                    *at = stamp;
                    return (Arc::clone(pool), true);
                }
                // Too small: fall through and regenerate larger. The trace
                // prefix property keeps results identical for smaller p.
            }
        }
        // Generate outside the lock: trace generation can take tens of
        // milliseconds and must not serialize warm requests behind it.
        let pool = Arc::new(TracePool::generate(key.spec, p, key.trace_seed, key.opts));
        pool.set_flat_capacity(self.flat_capacity);
        let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        // Another thread may have raced us here with an even bigger pool;
        // keep whichever covers more threads.
        let entry = pools
            .entry(map_key)
            .and_modify(|(existing, at)| {
                if existing.max_p() < pool.max_p() {
                    *existing = Arc::clone(&pool);
                }
                *at = stamp;
            })
            .or_insert_with(|| (Arc::clone(&pool), stamp));
        let result = Arc::clone(&entry.0);
        while pools.len() > self.max_pools {
            let oldest = pools
                .iter()
                .min_by_key(|(_, (_, at))| *at)
                .map(|(k, _)| k.clone())
                .expect("non-empty registry has an oldest entry");
            pools.remove(&oldest);
        }
        (result, false)
    }

    /// Releases every pool's memoized flats (the idle path). Pools
    /// themselves stay registered; their traces are cheap relative to the
    /// flats and keep the next request warm-ish.
    pub(crate) fn shrink(&self) {
        let pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        for (pool, _) in pools.values() {
            pool.shrink();
        }
    }
}

/// Everything one shard owns. Connection threads hold an `Arc` to their
/// assigned shard and never touch another's.
pub(crate) struct ShardState {
    pub(crate) id: usize,
    /// Worker-thread count, kept alongside the pool so `Retry-After`
    /// hints can be derived from queue depth per worker.
    pub(crate) workers: usize,
    pub(crate) worker_pool: WorkerPool,
    pub(crate) registry: PoolRegistry,
    pub(crate) scratch: ScratchPool<BatchScratch>,
    pub(crate) stats: StatCells,
    pub(crate) coalescer: Coalescer,
}

/// `Retry-After` hint (seconds) for a full-queue 429 on this shard:
/// roughly how many queue "generations" are ahead of the client, assuming
/// each worker clears about one queued request per second of simulation
/// budget. Clamped so a pathological backlog never tells a client to go
/// away for minutes.
pub(crate) fn queue_retry_after(shard: &ShardState) -> u64 {
    let depth = shard.worker_pool.queued() as u64;
    (1 + depth / shard.workers as u64).min(30)
}

impl ShardState {
    pub(crate) fn new(
        id: usize,
        workers: usize,
        queue_capacity: usize,
        max_pools: usize,
        flat_capacity: Option<usize>,
        max_batch: usize,
    ) -> ShardState {
        ShardState {
            id,
            workers: workers.max(1),
            worker_pool: WorkerPool::new(workers, queue_capacity),
            registry: PoolRegistry::new(max_pools, flat_capacity),
            scratch: ScratchPool::new(),
            stats: StatCells::default(),
            coalescer: Coalescer::new(max_batch),
        }
    }
}

/// Requests batch together only when *everything* execution-relevant
/// besides per-cell [`SimSettings`] matches: the workload (pool identity),
/// the thread count, and the clamped budget.
type BatchKey = (String, usize, CellBudget);

/// One coalesced request: its settings and the channel its connection
/// thread is blocked on.
struct BatchEntry {
    settings: SimSettings,
    tx: mpsc::Sender<HttpResponse>,
}

struct PendingBatch {
    /// Generation id guarding the leader's flush: if a max-batch flush
    /// already took this batch, a *new* batch under the same key gets a
    /// new id and the woken leader leaves it for its own leader.
    id: u64,
    entries: Vec<BatchEntry>,
}

/// The per-shard coalescing table.
pub(crate) struct Coalescer {
    pending: Mutex<HashMap<BatchKey, PendingBatch>>,
    next_id: AtomicU64,
    max_batch: usize,
}

impl Coalescer {
    pub(crate) fn new(max_batch: usize) -> Coalescer {
        Coalescer {
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            max_batch: max_batch.max(1),
        }
    }
}

enum Role {
    /// First request on this key: sleep the window, then flush.
    Leader(u64),
    /// Joined an open batch: just wait for the response.
    Follower,
    /// Filled the batch to `max_batch`: flush immediately.
    Flush(Vec<BatchEntry>),
}

/// Submits `sim` through the shard's coalescer and synchronously awaits
/// the response. `budget` must already be clamped to the server ceiling
/// (it is part of the batch key). The caller counts the response.
pub(crate) fn coalesced_submit(
    shard: &Arc<ShardState>,
    workload: &WorkloadKey,
    p: usize,
    settings: SimSettings,
    budget: CellBudget,
    window: Duration,
) -> HttpResponse {
    let (tx, rx) = mpsc::channel::<HttpResponse>();
    let key: BatchKey = (workload.cache_key(), p, budget);
    let entry = BatchEntry { settings, tx };
    let role = {
        let mut pending = shard
            .coalescer
            .pending
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match pending.entry(key.clone()) {
            Entry::Vacant(vacant) => {
                let id = shard.coalescer.next_id.fetch_add(1, Ordering::Relaxed);
                vacant.insert(PendingBatch {
                    id,
                    entries: vec![entry],
                });
                Role::Leader(id)
            }
            Entry::Occupied(mut occupied) => {
                occupied.get_mut().entries.push(entry);
                if occupied.get().entries.len() >= shard.coalescer.max_batch {
                    Role::Flush(occupied.remove().entries)
                } else {
                    Role::Follower
                }
            }
        }
    };
    match role {
        Role::Flush(entries) => submit_batch(shard, workload, p, budget, entries),
        Role::Leader(id) => {
            std::thread::sleep(window);
            let batch = {
                let mut pending = shard
                    .coalescer
                    .pending
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                match pending.entry(key) {
                    Entry::Occupied(occupied) if occupied.get().id == id => {
                        Some(occupied.remove().entries)
                    }
                    _ => None, // a max-batch flush already took this batch
                }
            };
            if let Some(entries) = batch {
                submit_batch(shard, workload, p, budget, entries);
            }
        }
        Role::Follower => {}
    }
    match rx.recv() {
        Ok(resp) => resp,
        // The worker dropped the sender without sending — lost to
        // something the in-job catch_unwind could not see.
        Err(_) => HttpResponse::json(500, error_body("request execution lost")),
    }
}

/// Hands a flushed batch to the shard's worker pool as ONE job. Admission
/// failures fan the 429/503 out to every waiting request.
fn submit_batch(
    shard: &Arc<ShardState>,
    workload: &WorkloadKey,
    p: usize,
    budget: CellBudget,
    entries: Vec<BatchEntry>,
) {
    let n = entries.len() as u64;
    // `try_submit` consumes its closure even on failure; park the entries
    // in a shared slot so a rejected submit can take them back and answer
    // every waiter.
    let slot = Arc::new(Mutex::new(Some(entries)));
    let job_slot = Arc::clone(&slot);
    let job_shard = Arc::clone(shard);
    let job_workload = workload.clone();
    let submitted = shard.worker_pool.try_submit(move || {
        let entries = job_slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("batch entries taken exactly once");
        run_coalesced_batch(&job_shard, &job_workload, p, budget, &entries);
    });
    match submitted {
        Ok(()) => {
            shard.stats.batches.fetch_add(1, Ordering::Relaxed);
            shard.stats.batched_requests.fetch_add(n, Ordering::Relaxed);
        }
        Err(err) => {
            let entries = slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("rejected batch entries still parked");
            let (status, msg, retry_after) = match err {
                SubmitError::Full { capacity } => (
                    429,
                    format!("request queue full (capacity {capacity}); retry later"),
                    queue_retry_after(shard),
                ),
                SubmitError::ShutDown => (
                    503,
                    "server is draining".to_string(),
                    crate::server::RETRY_AFTER_DRAIN_SECS,
                ),
            };
            for entry in entries {
                let _ = entry.tx.send(
                    HttpResponse::json(status, error_body(&msg)).with_retry_after(retry_after),
                );
            }
        }
    }
}

/// Worker-side execution of one flushed batch through
/// [`run_batch_budgeted_flat`]. A config error or panic anywhere in the
/// batch falls back to per-request scalar runs (each under its own
/// `catch_unwind`) so only the offending request fails — batching never
/// widens a failure's blast radius.
fn run_coalesced_batch(
    shard: &ShardState,
    workload: &WorkloadKey,
    p: usize,
    budget: CellBudget,
    entries: &[BatchEntry],
) {
    let (pool, was_warm) = shard.registry.get(workload, p);
    let n = entries.len() as u64;
    if was_warm {
        shard.stats.warm_runs.fetch_add(n, Ordering::Relaxed);
    } else {
        // One request paid generation; the rest of the batch rides warm.
        shard.stats.cold_runs.fetch_add(1, Ordering::Relaxed);
        shard
            .stats
            .warm_runs
            .fetch_add(n.saturating_sub(1), Ordering::Relaxed);
    }
    let flat = pool.flat(p);
    let settings: Vec<SimSettings> = entries.iter().map(|e| e.settings.clone()).collect();
    let batched = catch_unwind(AssertUnwindSafe(|| {
        shard
            .scratch
            .with(|scratch| run_batch_budgeted_flat(&flat, &settings, budget, scratch))
    }));
    if let Ok(Ok(reports)) = batched {
        for (entry, report) in entries.iter().zip(&reports) {
            let _ = entry
                .tx
                .send(HttpResponse::json(200, report_to_json(report)));
        }
        return;
    }
    // Isolation fallback: re-run each cell alone on the scalar path. The
    // lockstep suites prove scalar == batched bytes, so healthy requests
    // get exactly the response they would have gotten either way.
    for entry in entries {
        let result = catch_unwind(AssertUnwindSafe(|| {
            shard.scratch.with(|scratch| {
                run_sim_budgeted_flat(&flat, &entry.settings, budget, scratch.scalar_mut())
            })
        }));
        let resp = match result {
            Ok(Ok(report)) => HttpResponse::json(200, report_to_json(&report)),
            Ok(Err(e)) => {
                HttpResponse::json(400, error_body(&format!("invalid configuration: {e}")))
            }
            Err(payload) => HttpResponse::json(
                500,
                error_body(&format!("request panicked: {}", panic_message(&payload))),
            ),
        };
        let _ = entry.tx.send(resp);
    }
}
