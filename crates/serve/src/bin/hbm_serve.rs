//! `hbm-serve` — the simulation server binary.
//!
//! ```text
//! hbm-serve [--addr HOST:PORT] [--shards N] [--workers N] [--queue N]
//!           [--max-wall-ms MS] [--max-ticks N] [--idle-shrink-secs S]
//!           [--coalesce-us US] [--max-batch N] [--max-sessions N]
//!           [--session-workers N] [--resume-ttl-secs S]
//! ```
//!
//! Binds, prints the listening address on stdout (`listening on ...`, the
//! line the CI smoke job and the load generator's `--spawn` mode wait
//! for), and serves until SIGTERM/SIGINT — which drains in-flight
//! requests, rejects new ones, and exits 0 with a stats summary on
//! stderr.

use hbm_serve::pool::CellBudget;
use hbm_serve::server::{Server, ServerConfig};
use hbm_serve::shutdown::ShutdownFlag;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: hbm-serve [--addr HOST:PORT] [--shards N] [--workers N] [--queue N]\n\
         \x20                [--max-wall-ms MS] [--max-ticks N] [--idle-shrink-secs S]\n\
         \x20                [--coalesce-us US] [--max-batch N] [--max-sessions N]\n\
         \x20                [--session-workers N] [--resume-ttl-secs S]\n\
         \x20                [--enable-test-endpoints]\n\
         \n\
         POST /simulate with a JSON body; POST /session for a streaming\n\
         JSONL session; POST /session/resume {{token, last_tick}} to\n\
         reattach a dropped session; GET /healthz for stats (totals +\n\
         per-shard). --shards N runs N independent listener shards\n\
         (round-robin dispatch); --coalesce-us enables same-workload\n\
         request batching; --session-workers N sizes the fixed session\n\
         multiplexer pool (all open sessions share its threads).\n\
         See README.md 'Running the server' for the request format."
    );
    std::process::exit(2)
}

fn parse_flag<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    match args.next().map(|v| v.parse::<T>()) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("error: {flag} needs a valid value");
            usage()
        }
    }
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse_flag(&mut args, "--addr"),
            "--shards" => {
                config.shards = parse_flag(&mut args, "--shards");
                if config.shards == 0 {
                    eprintln!("error: --shards must be at least 1");
                    usage()
                }
            }
            "--workers" => config.workers = parse_flag(&mut args, "--workers"),
            "--coalesce-us" => {
                config.coalesce_window = Some(Duration::from_micros(parse_flag(
                    &mut args,
                    "--coalesce-us",
                )))
            }
            "--max-batch" => config.max_batch = parse_flag(&mut args, "--max-batch"),
            "--max-sessions" => config.max_sessions = parse_flag(&mut args, "--max-sessions"),
            "--session-workers" => {
                config.session_workers = parse_flag(&mut args, "--session-workers");
                if config.session_workers == 0 {
                    eprintln!("error: --session-workers must be at least 1");
                    usage()
                }
            }
            "--resume-ttl-secs" => {
                config.resume_ttl = Duration::from_secs(parse_flag(&mut args, "--resume-ttl-secs"))
            }
            "--queue" => config.queue_capacity = parse_flag(&mut args, "--queue"),
            "--max-wall-ms" => {
                config.budget_ceiling = CellBudget {
                    max_wall: Some(Duration::from_millis(parse_flag(
                        &mut args,
                        "--max-wall-ms",
                    ))),
                    ..config.budget_ceiling
                }
            }
            "--max-ticks" => {
                config.budget_ceiling = CellBudget {
                    max_ticks: Some(parse_flag(&mut args, "--max-ticks")),
                    ..config.budget_ceiling
                }
            }
            "--idle-shrink-secs" => {
                config.idle_shrink_after = Some(Duration::from_secs(parse_flag(
                    &mut args,
                    "--idle-shrink-secs",
                )))
            }
            "--enable-test-endpoints" => config.enable_test_endpoints = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument '{other}'");
                usage()
            }
        }
    }

    let flag = ShutdownFlag::with_signal_handlers();
    let server = match Server::bind(addr.as_str(), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to bind {addr}: {e}");
            std::process::exit(1)
        }
    };
    match server.local_addr() {
        Ok(local) => println!("listening on {local}"),
        Err(e) => {
            eprintln!("error: no local address: {e}");
            std::process::exit(1)
        }
    }
    match server.run(&flag) {
        Ok(stats) => {
            eprintln!(
                "drained cleanly: {} requests ({} ok, {} rejected, {} shed, {} client errors, \
                 {} panics; {} cold / {} warm runs; {} batches / {} batched; \
                 {} sessions opened / {} closed / {} reaped / {} resumed / {} shed; \
                 {} alerts)",
                stats.requests,
                stats.ok,
                stats.rejected,
                stats.shed,
                stats.client_errors,
                stats.panics,
                stats.cold_runs,
                stats.warm_runs,
                stats.batches,
                stats.batched_requests,
                stats.sessions_opened,
                stats.sessions_closed,
                stats.sessions_reaped,
                stats.sessions_resumed,
                stats.sessions_shed,
                stats.alerts
            );
        }
        Err(e) => {
            eprintln!("error: server loop failed: {e}");
            std::process::exit(1)
        }
    }
}
