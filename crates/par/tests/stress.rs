//! Stress tests for the scoped-thread sweep executor: a panicking worker
//! must never deadlock the sweep or leak synchronization state, and
//! results must come back in input order at every thread count.

use hbm_par::{parallel_map, parallel_map_with};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const THREAD_COUNTS: [usize; 6] = [2, 4, 8, 16, 32, 64];

/// A worker that panics part-way through the sweep must surface as a
/// single `"sweep worker panicked"` panic — after all surviving workers
/// are joined — at every thread count. If the executor dropped a worker's
/// results on the floor without joining, or parked on a channel nobody
/// closes, this test would hang rather than fail.
#[test]
fn panicking_worker_terminates_at_every_thread_count() {
    let items: Vec<u32> = (0..500).collect();
    for &threads in &THREAD_COUNTS {
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_with(&items, threads, |&x| {
                if x == 250 {
                    panic!("injected worker failure");
                }
                x * 2
            })
        }));
        let err = result.expect_err("sweep must propagate the worker panic");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(
            msg, "sweep worker panicked",
            "threads={threads}: unexpected panic payload"
        );
    }
}

/// Even when *every* item panics, the sweep terminates and panics once.
#[test]
fn all_workers_panicking_still_terminates() {
    let items: Vec<u32> = (0..64).collect();
    for &threads in &THREAD_COUNTS {
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_with(&items, threads, |_: &u32| -> u32 {
                panic!("everything fails")
            })
        }));
        assert!(result.is_err(), "threads={threads}");
    }
}

/// Repeated panicking sweeps do not leak: each scope joins all of its
/// threads before returning, so hundreds of failed sweeps in a row
/// neither deadlock nor exhaust thread/channel resources.
#[test]
fn repeated_panicking_sweeps_do_not_leak() {
    let items: Vec<u32> = (0..32).collect();
    for round in 0..200 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_with(&items, 8, |&x| {
                if x == round % 32 {
                    panic!("round {round}");
                }
                x
            })
        }));
        assert!(result.is_err(), "round {round} must panic");
    }
    // And a clean sweep still works afterwards.
    let ok = parallel_map_with(&items, 8, |&x| x + 1);
    assert_eq!(ok, (1..33).collect::<Vec<u32>>());
}

/// Results are input-ordered at every thread count, even with wildly
/// heterogeneous item costs (self-scheduling means fast workers steal
/// ahead — the order of *completion* is scrambled, the order of *results*
/// must not be).
#[test]
fn results_are_input_ordered_under_skewed_costs() {
    let items: Vec<u64> = (0..300).collect();
    for &threads in &THREAD_COUNTS {
        let completion_rank = AtomicUsize::new(0);
        let out = parallel_map_with(&items, threads, |&x| {
            // Every 17th item is slow; the rest race past it.
            if x % 17 == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            let rank = completion_rank.fetch_add(1, Ordering::Relaxed);
            (x * 3, rank)
        });
        let values: Vec<u64> = out.iter().map(|&(v, _)| v).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        assert_eq!(values, expected, "threads={threads}: results out of order");
        // Sanity: completion really was concurrent/scrambled for threads>1
        // (every rank used exactly once regardless).
        let mut ranks: Vec<usize> = out.iter().map(|&(_, r)| r).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..items.len()).collect::<Vec<_>>());
    }
}

/// The sweep agrees with a plain sequential map at every thread count —
/// including counts far above the item count (workers beyond `n` must
/// exit cleanly without claiming work).
#[test]
fn matches_sequential_map_at_every_thread_count() {
    let items: Vec<i64> = (0..97).map(|x| x * x - 31).collect();
    let expected: Vec<i64> = items.iter().map(|&x| x.wrapping_mul(7) ^ 0x55).collect();
    for &threads in &THREAD_COUNTS {
        let got = parallel_map_with(&items, threads, |&x| x.wrapping_mul(7) ^ 0x55);
        assert_eq!(got, expected, "threads={threads}");
    }
    // More workers than items.
    let tiny = [1u8, 2, 3];
    assert_eq!(parallel_map_with(&tiny, 64, |&x| x + 1), vec![2, 3, 4]);
}

/// Deterministic across repeated runs: same inputs, same outputs, every
/// time — the executor introduces no ordering nondeterminism.
#[test]
fn repeated_runs_are_identical() {
    let items: Vec<u32> = (0..256).collect();
    let baseline = parallel_map(&items, |&x| x.rotate_left(5) ^ 0xdead_beef);
    for _ in 0..20 {
        let again = parallel_map_with(&items, 16, |&x| x.rotate_left(5) ^ 0xdead_beef);
        assert_eq!(again, baseline);
    }
}
