//! # hbm-par — scoped parallel sweep utilities
//!
//! The paper's evaluation sweeps thread counts × HBM sizes × policies ×
//! remap intervals; each cell is an independent, deterministic simulation.
//! This crate provides the small data-parallel layer that runs those cells
//! across OS threads: a self-scheduling parallel map built on
//! [`std::thread::scope`] (dynamic load balancing via an atomic cursor —
//! simulation cells have wildly different costs, so static chunking would
//! straggle).
//!
//! Determinism: results are returned in input order regardless of which
//! worker computed them, so parallel sweeps produce byte-identical output
//! to sequential ones.
//!
//! Panic safety: every worker is joined before `parallel_map_with` returns,
//! so a panicking closure can neither deadlock the sweep nor leak threads —
//! the panic surfaces as a single `"sweep worker panicked"` panic after all
//! workers have stopped.
//!
//! ```
//! let squares = hbm_par::parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod pool;

pub use pool::{SubmitError, WorkerPool};

use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One sweep cell's closure panicked. Carries the input index and the
/// panic payload (when it was a string, the common case) so a harness can
/// report exactly which cell failed without losing the rest of the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPanic {
    /// Index of the input item whose closure panicked.
    pub index: usize,
    /// The panic message, or `"<non-string panic payload>"`.
    pub message: String,
}

impl fmt::Display for CellPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for CellPanic {}

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Number of worker threads to use by default: the machine's available
/// parallelism, capped at 64 (sweeps beyond that are disk/memory bound).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(64)
}

/// Parallel map preserving input order, using [`default_threads`] workers.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, default_threads(), f)
}

/// Parallel map preserving input order with an explicit worker count.
///
/// Workers self-schedule one item at a time off an atomic cursor, so
/// heterogeneous item costs balance automatically. With `threads <= 1` the
/// map runs inline (no thread spawn), which keeps small sweeps cheap and
/// stack traces simple.
///
/// # Panics
/// If any worker closure panics, all remaining workers are drained and
/// joined first, then this function panics with `"sweep worker panicked"`.
pub fn parallel_map_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(n);
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut panicked = false;
        for h in handles {
            match h.join() {
                Ok(local) => {
                    for (i, r) in local {
                        debug_assert!(slots[i].is_none());
                        slots[i] = Some(r);
                    }
                }
                Err(_) => panicked = true,
            }
        }
        if panicked {
            panic!("sweep worker panicked");
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index computed exactly once"))
            .collect()
    })
}

/// Panic-isolating parallel map with [`default_threads`] workers: a cell
/// whose closure panics yields `Err(CellPanic)` in its slot while every
/// other cell still computes. See [`try_parallel_map_with`].
pub fn try_parallel_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, CellPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_parallel_map_with(items, default_threads(), f)
}

/// Panic-isolating parallel map preserving input order with an explicit
/// worker count.
///
/// Unlike [`parallel_map_with`] — which drains the sweep and then panics
/// wholesale — each cell runs under [`std::panic::catch_unwind`], so one
/// poisoned configuration fails *only itself*: its slot carries the
/// [`CellPanic`] (index + payload message) and all other cells return
/// `Ok`. `AssertUnwindSafe` is sound here because a panicked cell's
/// result is never read — each closure invocation owns its cell's state,
/// and shared captures are only read (`F: Fn + Sync`).
///
/// This function itself never panics on a closure panic.
pub fn try_parallel_map_with<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> Vec<Result<R, CellPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let indices: Vec<usize> = (0..items.len()).collect();
    parallel_map_with(&indices, threads, |&index| {
        catch_unwind(AssertUnwindSafe(|| f(&items[index]))).map_err(|payload| CellPanic {
            index,
            message: payload_message(payload),
        })
    })
}

/// Runs `f` once per index `0..n` in parallel, returning results in index
/// order. Convenience wrapper for sweeps parameterized by position.
pub fn parallel_map_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    parallel_map(&indices, |&i| f(i))
}

/// Fold the results of a parallel map: `map` runs in parallel, `fold` runs
/// sequentially in input order (so the fold stays deterministic).
pub fn parallel_map_fold<T, R, A, M, F>(items: &[T], init: A, map: M, mut fold: F) -> A
where
    T: Sync,
    R: Send,
    M: Fn(&T) -> R + Sync,
    F: FnMut(A, R) -> A,
{
    let mut acc = init;
    for r in parallel_map(items, map) {
        acc = fold(acc, r);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order() {
        let input: Vec<u64> = (0..500).collect();
        let out = parallel_map_with(&input, 8, |&x| x * 3);
        assert_eq!(out, input.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = parallel_map_with(&[1, 2, 3], 1, |&x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map_with(&[1, 2], 32, |&x| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn every_item_computed_exactly_once() {
        let calls = AtomicU64::new(0);
        let input: Vec<u64> = (0..1000).collect();
        let out = parallel_map_with(&input, 16, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn unbalanced_work_balances() {
        // Items with wildly different costs: correctness (not speed) check.
        let input: Vec<u64> = (0..64).collect();
        let out = parallel_map_with(&input, 8, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * x * 100) {
                acc = acc.wrapping_add(i);
            }
            let _ = acc;
            x
        });
        assert_eq!(out, input);
    }

    #[test]
    fn map_indices() {
        assert_eq!(parallel_map_indices(4, |i| i * i), vec![0, 1, 4, 9]);
    }

    #[test]
    fn map_fold_is_deterministic() {
        let input: Vec<u64> = (0..100).collect();
        let s = parallel_map_fold(
            &input,
            String::new(),
            |&x| x % 10,
            |mut acc, r| {
                acc.push_str(&r.to_string());
                acc
            },
        );
        let expect: String = (0..100u64).map(|x| (x % 10).to_string()).collect();
        assert_eq!(s, expect);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn worker_panic_propagates() {
        let input = vec![1u32, 2, 3];
        let _ = parallel_map_with(&input, 2, |&x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    /// Silence the default panic hook for tests that panic on purpose in
    /// many cells. Serialized by a mutex: the hook is process-global and
    /// tests run concurrently.
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn try_map_isolates_a_panicking_cell() {
        let input = vec![1u32, 2, 3, 4, 5];
        let out = with_quiet_panics(|| {
            try_parallel_map_with(&input, 3, |&x| {
                if x == 3 {
                    panic!("cell {x} is poisoned");
                }
                x * 10
            })
        });
        assert_eq!(out.len(), 5);
        assert_eq!(out[0], Ok(10));
        assert_eq!(out[1], Ok(20));
        let err = out[2].as_ref().unwrap_err();
        assert_eq!(err.index, 2);
        assert_eq!(err.message, "cell 3 is poisoned");
        assert_eq!(out[3], Ok(40));
        assert_eq!(out[4], Ok(50));
    }

    #[test]
    fn try_map_survives_every_cell_panicking() {
        let input: Vec<u32> = (0..40).collect();
        let out = with_quiet_panics(|| {
            try_parallel_map_with(&input, 8, |&x| -> u32 { panic!("boom {x}") })
        });
        assert_eq!(out.len(), 40);
        for (i, r) in out.iter().enumerate() {
            let err = r.as_ref().unwrap_err();
            assert_eq!(err.index, i);
            assert_eq!(err.message, format!("boom {i}"));
        }
    }

    #[test]
    fn try_map_formats_non_string_payloads() {
        let out = with_quiet_panics(|| {
            try_parallel_map_with(&[0u32], 1, |_| -> u32 {
                std::panic::panic_any(1234i64);
            })
        });
        assert_eq!(
            out[0].as_ref().unwrap_err().message,
            "<non-string panic payload>"
        );
    }

    #[test]
    fn try_map_all_ok_matches_plain_map() {
        let input: Vec<u64> = (0..200).collect();
        let plain = parallel_map_with(&input, 8, |&x| x * x);
        let tried = try_parallel_map(&input, |&x| x * x);
        assert_eq!(
            tried.into_iter().collect::<Result<Vec<_>, _>>().unwrap(),
            plain
        );
    }

    #[test]
    fn cell_panic_displays_index_and_message() {
        let e = CellPanic {
            index: 7,
            message: "overflow".into(),
        };
        assert_eq!(e.to_string(), "cell 7 panicked: overflow");
    }
}
