//! A long-lived, bounded-queue worker pool with per-job panic isolation.
//!
//! [`parallel_map_with`](crate::parallel_map_with) is batch-shaped: it owns
//! its input slice, spawns scoped workers, and joins them before returning.
//! A *service* needs the dual shape — workers that outlive any one job,
//! pulling work from a queue as requests arrive. [`WorkerPool`] is that
//! extraction, with the same two properties the sweep maps guarantee:
//!
//! * **Panic isolation**: every job runs under
//!   [`std::panic::catch_unwind`], so one poisoned job cannot kill its
//!   worker thread or wedge the pool ([`WorkerPool::panicked`] counts
//!   them). Callers that need the panic *payload* should catch inside the
//!   job themselves; the pool-level guard is the backstop that keeps the
//!   worker alive.
//! * **Bounded admission**: the pending queue has a hard capacity, and
//!   [`WorkerPool::try_submit`] refuses — immediately, without blocking —
//!   when it is full. That refusal is the mechanism behind the HTTP
//!   server's 429 responses: load the machine cannot absorb is rejected at
//!   the door instead of growing an unbounded backlog.
//!
//! Shutdown is *draining*: [`WorkerPool::shutdown`] stops admission, lets
//! the workers finish every job already queued, and joins them. Dropping
//! the pool does the same.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`WorkerPool::try_submit`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending queue is at capacity; the job was not enqueued.
    Full {
        /// The pool's queue capacity at the time of rejection.
        capacity: usize,
    },
    /// The pool is shutting down and admits no new work.
    ShutDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Full { capacity } => {
                write!(f, "worker pool queue full (capacity {capacity})")
            }
            SubmitError::ShutDown => write!(f, "worker pool is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
    running: AtomicUsize,
    executed: AtomicU64,
    panicked: AtomicU64,
}

/// A fixed set of worker threads draining a bounded job queue.
///
/// ```
/// use hbm_par::pool::WorkerPool;
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new(2, 8);
/// let done = Arc::new(AtomicU32::new(0));
/// for _ in 0..4 {
///     let done = Arc::clone(&done);
///     pool.try_submit(move || {
///         done.fetch_add(1, Ordering::Relaxed);
///     })
///     .unwrap();
/// }
/// pool.shutdown();
/// assert_eq!(done.load(Ordering::Relaxed), 4);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (floored at 1) sharing a pending queue of
    /// at most `queue_capacity` jobs. A capacity of 0 is legal and makes
    /// every [`try_submit`](Self::try_submit) fail with
    /// [`SubmitError::Full`] — useful for testing rejection paths.
    pub fn new(workers: usize, queue_capacity: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            capacity: queue_capacity,
            running: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hbm-pool-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueues `job` if there is room, never blocking. Returns
    /// [`SubmitError::Full`] when the pending queue is at capacity (the
    /// caller decides whether to retry, shed load, or report 429) and
    /// [`SubmitError::ShutDown`] once shutdown has begun.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.shutdown {
            return Err(SubmitError::ShutDown);
        }
        if state.jobs.len() >= self.shared.capacity {
            return Err(SubmitError::Full {
                capacity: self.shared.capacity,
            });
        }
        state.jobs.push_back(Box::new(job));
        drop(state);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Jobs currently queued (admitted but not yet started).
    pub fn queued(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .len()
    }

    /// Jobs currently executing on a worker.
    pub fn running(&self) -> usize {
        self.shared.running.load(Ordering::Relaxed)
    }

    /// Jobs completed (including panicked ones) since the pool started.
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Jobs whose closure panicked. The workers survived every one.
    pub fn panicked(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// The pending-queue capacity this pool was built with.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Stops admission, drains every queued job, and joins the workers.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.shutdown = true;
        }
        self.shared.available.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .available
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        shared.running.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(job));
        shared.running.fetch_sub(1, Ordering::Relaxed);
        shared.executed.fetch_add(1, Ordering::Relaxed);
        if outcome.is_err() {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_all_submitted_jobs() {
        let pool = WorkerPool::new(4, 64);
        let done = Arc::new(AtomicU32::new(0));
        for _ in 0..50 {
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 50);
        assert_eq!(pool.executed(), 50);
        assert_eq!(pool.panicked(), 0);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let pool = WorkerPool::new(1, 0);
        let err = pool.try_submit(|| {}).unwrap_err();
        assert_eq!(err, SubmitError::Full { capacity: 0 });
        assert_eq!(err.to_string(), "worker pool queue full (capacity 0)");
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let pool = WorkerPool::new(1, 1);
        // Gate the single worker so the queue cannot drain.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_submit(move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .unwrap();
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("gate job started");
        // Worker busy; the 1-slot queue takes exactly one more job.
        pool.try_submit(|| {}).unwrap();
        assert_eq!(
            pool.try_submit(|| {}),
            Err(SubmitError::Full { capacity: 1 })
        );
        gate_tx.send(()).unwrap();
        pool.shutdown();
        assert_eq!(pool.executed(), 2);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let pool = WorkerPool::new(1, 8);
        let done = Arc::new(AtomicU32::new(0));
        pool.try_submit(|| panic!("poisoned job")).unwrap();
        for _ in 0..3 {
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        std::panic::set_hook(prev);
        assert_eq!(done.load(Ordering::Relaxed), 3);
        assert_eq!(pool.panicked(), 1);
        assert_eq!(pool.executed(), 4);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = WorkerPool::new(2, 64);
        let done = Arc::new(AtomicU32::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                std::thread::sleep(Duration::from_millis(1));
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 32, "drain ran every job");
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let pool = WorkerPool::new(1, 8);
        pool.shutdown();
        assert_eq!(pool.try_submit(|| {}), Err(SubmitError::ShutDown));
    }

    #[test]
    fn shutdown_is_idempotent() {
        let pool = WorkerPool::new(2, 4);
        pool.try_submit(|| {}).unwrap();
        pool.shutdown();
        pool.shutdown();
        assert_eq!(pool.executed(), 1);
    }
}
