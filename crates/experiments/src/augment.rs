//! Theorem 2's resource-augmentation claim, measured.
//!
//! The paper: "There exists p block request sequences such that even with d
//! memory augmentation and s bandwidth augmentation the makespan of
//! FCFS+LRU is Θ(p/ds)-factor away from that of the optimal policy." We
//! give FIFO `d×` the HBM and `s×` the channels while Priority keeps the
//! base resources (standing in for the optimum, which it approximates
//! within O(1) by Theorem 1). The theorem's sequence is constructed
//! *against* the augmented capacity, so we size Dataset 3 to defeat the
//! largest `d` in the grid (`union = 4·d_max·k`): then memory augmentation
//! cannot rescue FIFO at all (every access still misses — the "even with d
//! memory augmentation" clause), while bandwidth augmentation divides the
//! gap by exactly `s` — together, the `Θ(p/ds)` shape.

use crate::common::{f3, run_cell_flat, ResultTable, Scale, ScratchPool};
use hbm_core::{ArbitrationKind, EngineScratch, FlatWorkload};
use hbm_traces::adversarial::{cyclic_workload, figure3_hbm_slots};
use serde::Serialize;
use std::sync::Arc;

/// One augmentation cell.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct AugmentCell {
    /// Memory augmentation factor `d` (FIFO gets `d·k`).
    pub d: usize,
    /// Bandwidth augmentation factor `s` (FIFO gets `s·q`).
    pub s: usize,
    /// Augmented FIFO makespan.
    pub fifo_makespan: u64,
    /// Un-augmented Priority makespan (the optimum proxy).
    pub priority_makespan: u64,
}

impl AugmentCell {
    /// The measured gap: augmented FIFO vs base Priority.
    pub fn gap(&self) -> f64 {
        self.fifo_makespan as f64 / self.priority_makespan.max(1) as f64
    }
}

/// Thread count and Dataset 3 shape per scale.
fn params(scale: Scale) -> (usize, u32, usize) {
    match scale {
        Scale::Small => (128, 64, 10),
        Scale::Default => (128, 256, 30),
        Scale::Full => (256, 256, 100),
    }
}

/// Runs the d × s augmentation grid.
pub fn run_cells(scale: Scale, seed: u64) -> Vec<AugmentCell> {
    let (p, pages, reps) = params(scale);
    let flat = Arc::new(FlatWorkload::new(&cyclic_workload(p, pages, reps)));
    // Defeat up to d = 4: the base HBM holds 1/16 of the union.
    let k = figure3_hbm_slots(p, pages, 16);
    let prio = run_cell_flat(
        &flat,
        k,
        1,
        ArbitrationKind::Priority,
        seed,
        &mut EngineScratch::default(),
    )
    .makespan;
    let grid: Vec<(usize, usize)> = [1usize, 2, 4]
        .iter()
        .flat_map(|&d| [1usize, 2, 4].iter().map(move |&s| (d, s)))
        .collect();
    let scratches = ScratchPool::new();
    hbm_par::parallel_map(&grid, |&(d, s)| AugmentCell {
        d,
        s,
        fifo_makespan: scratches
            .with(|scratch| run_cell_flat(&flat, d * k, s, ArbitrationKind::Fifo, seed, scratch))
            .makespan,
        priority_makespan: prio,
    })
}

/// Runs and renders.
pub fn run(scale: Scale, seed: u64) -> ResultTable {
    let (p, pages, _) = params(scale);
    let cells = run_cells(scale, seed);
    let mut t = ResultTable::new(
        format!(
            "Theorem 2 — FIFO under d·memory / s·bandwidth augmentation vs base Priority \
             (Dataset 3, p={p}, pages={pages})"
        ),
        &[
            "d",
            "s",
            "fifo_makespan",
            "priority_makespan",
            "gap",
            "gap_times_ds",
        ],
    );
    for c in &cells {
        t.push_row(vec![
            c.d.to_string(),
            c.s.to_string(),
            c.fifo_makespan.to_string(),
            c.priority_makespan.to_string(),
            f3(c.gap()),
            f3(c.gap() * (c.d * c.s) as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(cells: &[AugmentCell], d: usize, s: usize) -> AugmentCell {
        *cells.iter().find(|c| c.d == d && c.s == s).unwrap()
    }

    #[test]
    fn augmentation_shrinks_but_does_not_close_the_gap() {
        let cells = run_cells(Scale::Small, 1);
        assert_eq!(cells.len(), 9);
        let base = cell(&cells, 1, 1);
        assert!(
            base.gap() > 3.0,
            "un-augmented FIFO loses big: {}",
            base.gap()
        );
        // Un-augmented FIFO never hits on this adversary, so its makespan
        // is exactly the serialized reference stream.

        // Bandwidth augmentation divides the gap ~linearly.
        let s2 = cell(&cells, 1, 2);
        let s4 = cell(&cells, 1, 4);
        assert!(s2.gap() < base.gap());
        assert!(s4.gap() < s2.gap());
        let ratio = base.gap() / s4.gap();
        assert!(
            (2.0..8.0).contains(&ratio),
            "s=4 should cut the gap ~4x: {ratio}"
        );
        // Memory augmentation alone cannot rescue FIFO: at d = 4 the
        // adversary still exceeds the augmented HBM, so the gap barely
        // moves (the theorem's "even with d memory augmentation").
        let d4 = cell(&cells, 4, 1);
        assert!(
            d4.gap() > 0.75 * base.gap(),
            "d=4 should not rescue FIFO: {} vs base {}",
            d4.gap(),
            base.gap()
        );
        // Even with both augmented the gap persists above ~p/(16·d·s).
        let both = cell(&cells, 4, 4);
        assert!(
            both.gap() > 0.4,
            "Theorem 2: a residual gap persists, measured {}",
            both.gap()
        );
    }

    #[test]
    fn memory_augmentation_alone_barely_helps_fifo() {
        // The FIFO pathology is channel serialization, not capacity: with
        // d·k still below the full working set, every access still misses.
        let cells = run_cells(Scale::Small, 1);
        let base = cell(&cells, 1, 1);
        let d2 = cell(&cells, 2, 1);
        assert!(
            d2.fifo_makespan as f64 > 0.5 * base.fifo_makespan as f64,
            "doubling memory should not halve FIFO's makespan here"
        );
    }

    #[test]
    fn renders() {
        let t = run(Scale::Small, 1);
        assert_eq!(t.rows.len(), 9);
    }
}
