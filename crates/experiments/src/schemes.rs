//! Permutation-scheme comparison on balanced and asymmetric work.
//!
//! §4 observes that for balanced workloads Cycle Priority behaves like
//! Dynamic Priority, but "when the work is asymmetric, Cycle Priority
//! continuously places the same thread behind the most demanding thread,
//! causing small amounts of starvation". This experiment runs every
//! permutation scheme (Dynamic, Cycle, Cycle-Reverse, Interleave) under
//! balanced and skewed work and reports makespan and starvation metrics.

use crate::common::{contended_config_for, f3, run_cell_flat, ResultTable, Scale, ScratchPool};
use hbm_core::{ArbitrationKind, FlatWorkload};
use hbm_traces::{TraceOptions, WorkSkew};
use serde::Serialize;
use std::sync::Arc;

/// One (scheme, skew) outcome.
#[derive(Debug, Clone, Serialize)]
pub struct SchemeCell {
    /// Scheme label.
    pub scheme: String,
    /// Work distribution label.
    pub skew: String,
    /// Makespan.
    pub makespan: u64,
    /// Inconsistency.
    pub inconsistency: f64,
    /// Worst single response time.
    pub max_response: u64,
}

/// Runs the comparison.
pub fn run_cells(scale: Scale, seed: u64) -> Vec<SchemeCell> {
    let (p, k) = contended_config_for(scale.spgemm_spec(), scale, seed);
    let period = 10 * k as u64;
    let schemes: Vec<(&str, ArbitrationKind)> = vec![
        ("Dynamic", ArbitrationKind::DynamicPriority { period }),
        ("Cycle", ArbitrationKind::CyclePriority { period }),
        (
            "CycleReverse",
            ArbitrationKind::CycleReversePriority { period },
        ),
        ("Interleave", ArbitrationKind::InterleavePriority { period }),
        ("Sweep", ArbitrationKind::SweepPriority { period }),
        ("Static", ArbitrationKind::Priority),
        ("RandomPick", ArbitrationKind::RandomPick),
    ];
    let skews = [
        ("balanced", WorkSkew::Balanced),
        ("one-heavy", WorkSkew::OneHeavy(4)),
    ];

    let mut jobs = Vec::new();
    for (skew_name, skew) in skews {
        let spec = scale.spgemm_spec();
        // One flatten per skew variant, shared across every scheme cell.
        let flat = Arc::new(FlatWorkload::new(&spec.workload_skewed(
            p,
            seed,
            TraceOptions::default(),
            skew,
        )));
        for (scheme_name, arb) in &schemes {
            jobs.push((
                scheme_name.to_string(),
                skew_name.to_string(),
                Arc::clone(&flat),
                *arb,
            ));
        }
    }
    let scratches = ScratchPool::new();
    hbm_par::parallel_map(&jobs, |(scheme, skew, flat, arb)| {
        let r = scratches.with(|scratch| run_cell_flat(flat, k, 1, *arb, seed, scratch));
        SchemeCell {
            scheme: scheme.clone(),
            skew: skew.clone(),
            makespan: r.makespan,
            inconsistency: r.response.inconsistency,
            max_response: r.worst_response(),
        }
    })
}

/// Runs and renders.
pub fn run(scale: Scale, seed: u64) -> ResultTable {
    let cells = run_cells(scale, seed);
    let mut t = ResultTable::new(
        "Permutation schemes × work distribution (T = 10k)",
        &[
            "scheme",
            "work",
            "makespan",
            "inconsistency",
            "max_response",
        ],
    );
    for c in &cells {
        t.push_row(vec![
            c.scheme.clone(),
            c.skew.clone(),
            c.makespan.to_string(),
            f3(c.inconsistency),
            c.max_response.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_and_skews_present() {
        let cells = run_cells(Scale::Small, 4);
        assert_eq!(cells.len(), 14);
        let dynamic_balanced = cells
            .iter()
            .find(|c| c.scheme == "Dynamic" && c.skew == "balanced")
            .unwrap();
        let static_balanced = cells
            .iter()
            .find(|c| c.scheme == "Static" && c.skew == "balanced")
            .unwrap();
        // Remapping reduces starvation relative to static priority.
        assert!(
            dynamic_balanced.max_response <= static_balanced.max_response,
            "dynamic {} vs static {}",
            dynamic_balanced.max_response,
            static_balanced.max_response
        );
    }

    #[test]
    fn renders() {
        let t = run(Scale::Small, 4);
        assert_eq!(t.rows.len(), 14);
    }
}
