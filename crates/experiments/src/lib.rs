//! # hbm-experiments — reproductions of every figure and table
//!
//! Each module regenerates one artifact of *Automatic HBM Management*
//! (SPAA 2022); the `repro` binary exposes them as subcommands. All
//! experiments are deterministic given a seed, run their cells in parallel
//! via `hbm-par`, and render [`common::ResultTable`]s (markdown or CSV).
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`fig2`] | Figure 2a/2b — FIFO vs Priority ratio sweep |
//! | [`fig3`] | Figure 3 — the Dataset 3 FIFO-killer |
//! | [`fig4`] | Figure 4a/4b — FIFO vs Dynamic Priority |
//! | [`tradeoff`] | Figure 5a/5b and Table 1a/1b — T sweep |
//! | [`knl_exp`] | Figure 6, Table 2a/2b, §5 property checks |
//! | [`channels`] | Theorem 3 — q ∈ 1..10 sweep |
//! | [`assoc_exp`] | Lemma 1 — direct-mapped overhead |
//! | [`schemes`] | §4 — permutation schemes × work skew |
//! | [`ablations`] | replacement / granularity / FR-FCFS ablations |
//! | [`augment`] | Theorem 2 — d/s resource augmentation |
//! | [`plot`] | ASCII charts for the figure commands (`--plot`) |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod assoc_exp;
pub mod augment;
pub mod calibrate;
pub mod channels;
pub mod common;
pub mod explore;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod journal;
pub mod knl_exp;
pub mod mrc;
pub mod plot;
pub mod schemes;
pub mod sweep;
pub mod tradeoff;

pub use common::{ResultTable, Scale};
