//! Miss-ratio curves of the paper's workloads — the measurement behind the
//! working-set-multiplier methodology (DESIGN.md §9).
//!
//! The sweeps express HBM sizes as multiples of a per-core working set;
//! this experiment shows those working sets directly: for each workload,
//! the LRU miss ratio of one core's trace as the cache grows, its knee, and
//! the all-or-nothing step of the Dataset 3 adversary.

use crate::common::{f3, ResultTable, Scale};
use hbm_traces::analysis::mrc_for;
use hbm_traces::WorkloadSpec;

/// Runs the MRC characterization and renders it.
pub fn run(scale: Scale, seed: u64) -> ResultTable {
    let (pages, reps) = scale.cyclic_params();
    let specs: Vec<(&str, WorkloadSpec)> = vec![
        ("sort", scale.sort_spec()),
        ("spgemm", scale.spgemm_spec()),
        ("cyclic", WorkloadSpec::Cyclic { pages, reps }),
    ];
    let rows = hbm_par::parallel_map(&specs, |(name, spec)| {
        let mrc = mrc_for(*spec, seed);
        let ws = mrc.working_set();
        (
            name.to_string(),
            mrc.total,
            mrc.unique_pages(),
            ws,
            mrc.miss_ratio_at(ws / 2),
            mrc.miss_ratio_at(ws),
            mrc.size_for_miss_ratio(0.05),
        )
    });
    let mut t = ResultTable::new(
        "Workload characterization — LRU miss-ratio curves (one core's trace)",
        &[
            "workload",
            "refs",
            "unique_pages",
            "working_set",
            "miss_ratio_at_ws/2",
            "miss_ratio_at_ws",
            "k_for_5pct_miss",
        ],
    );
    for (name, refs, uniq, ws, half, full, knee) in rows {
        t.push_row(vec![
            name,
            refs.to_string(),
            uniq.to_string(),
            ws.to_string(),
            f3(half),
            f3(full),
            knee.map_or("-".into(), |k| k.to_string()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterization_matches_expectations() {
        let t = run(Scale::Small, 7);
        assert_eq!(t.rows.len(), 3);
        let cyclic = t.rows.iter().find(|r| r[0] == "cyclic").unwrap();
        let (pages, _) = Scale::Small.cyclic_params();
        // The adversary's working set is exactly its page count, and at
        // half that size the trace thrashes completely.
        assert_eq!(cyclic[3], pages.to_string());
        let half: f64 = cyclic[4].parse().unwrap();
        assert!(half > 0.9, "cyclic at ws/2 must thrash: {half}");
        let full: f64 = cyclic[5].parse().unwrap();
        assert!(full < 0.2, "cyclic at ws has only cold misses: {full}");
    }
}
