//! The thread-count × HBM-size ratio sweep behind Figures 2 and 4.
//!
//! Both figures plot `makespan(FIFO) / makespan(challenger)` against the
//! thread count for several HBM sizes — the challenger is static Priority
//! in Figure 2 and Dynamic Priority (T = 10k) in Figure 4. Values above 1.0
//! favour the challenger.

use crate::common::{run_batch_flat, ScratchPool, SimSettings, TracePool};
use crate::plot::{AsciiPlot, Series};
use hbm_core::{ArbitrationKind, BatchScratch};
use serde::Serialize;

/// One sweep cell: a (p, k) pair with both policies' outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RatioCell {
    /// Thread count.
    pub p: usize,
    /// HBM slots.
    pub k: usize,
    /// FIFO makespan.
    pub fifo_makespan: u64,
    /// Challenger makespan.
    pub challenger_makespan: u64,
    /// FIFO hit rate.
    pub fifo_hit_rate: f64,
    /// Challenger hit rate.
    pub challenger_hit_rate: f64,
    /// True when either run hit a tick/wall budget before completing —
    /// the cell's makespans are then lower bounds, not results.
    pub truncated: bool,
}

impl RatioCell {
    /// `makespan(FIFO) / makespan(challenger)` — Figure 2/4's y-axis.
    /// `None` when the challenger makespan is 0 (an empty-workload cell),
    /// where the ratio is undefined.
    pub fn try_ratio(&self) -> Option<f64> {
        if self.challenger_makespan == 0 {
            return None;
        }
        Some(self.fifo_makespan as f64 / self.challenger_makespan as f64)
    }

    /// Panicking form of [`try_ratio`](Self::try_ratio) for contexts that
    /// guarantee non-empty workloads.
    ///
    /// # Panics
    /// Panics when the challenger makespan is 0 — previously this was
    /// silently clamped to 1, which turned an empty-workload cell into a
    /// bogus ratio of `fifo_makespan`.
    pub fn ratio(&self) -> f64 {
        self.try_ratio().unwrap_or_else(|| {
            panic!(
                "ratio undefined: challenger makespan is 0 at p={}, k={} (empty workload cell?)",
                self.p, self.k
            )
        })
    }
}

/// Runs the sweep. `challenger(k)` maps the HBM size to the challenger's
/// arbitration kind (Dynamic Priority's period depends on k). Cells run in
/// parallel; output order is deterministic (p-major, then k).
pub fn ratio_sweep(
    pool: &TracePool,
    threads: &[usize],
    hbm_sizes: &[usize],
    challenger: impl Fn(usize) -> ArbitrationKind + Sync,
    q: usize,
    seed: u64,
) -> Vec<RatioCell> {
    // All cells at one thread count replay the same memoized flat
    // workload, so each p runs as one lockstep batch (FIFO and challenger
    // interleaved, k-major within the batch) through the SoA engine —
    // bit-identical to the scalar per-cell path by the lockstep
    // differential suite. Mutable column state comes from the scratch
    // pool, so a warm sweep allocates O(workers), not O(cells).
    let scratches: ScratchPool<BatchScratch> = ScratchPool::new();
    let rows = hbm_par::parallel_map(threads, |&p| {
        let flat = pool.flat(p);
        let settings: Vec<SimSettings> = hbm_sizes
            .iter()
            .flat_map(|&k| {
                [
                    SimSettings::new(k, q, ArbitrationKind::Fifo, seed),
                    SimSettings::new(k, q, challenger(k), seed),
                ]
            })
            .collect();
        let reports = scratches.with(|scratch| run_batch_flat(&flat, &settings, scratch));
        reports
            .chunks_exact(2)
            .zip(hbm_sizes)
            .map(|(pair, &k)| RatioCell {
                p,
                k,
                fifo_makespan: pair[0].makespan,
                challenger_makespan: pair[1].makespan,
                fifo_hit_rate: pair[0].hit_rate,
                challenger_hit_rate: pair[1].hit_rate,
                truncated: pair[0].truncated || pair[1].truncated,
            })
            .collect::<Vec<_>>()
    });
    rows.into_iter().flatten().collect()
}

/// Renders a Figure 2/4-style chart from sweep cells: one series per HBM
/// size, x = thread count (log), y = FIFO/challenger makespan ratio (log).
pub fn plot_cells(cells: &[RatioCell], title: &str, challenger: &str) -> AsciiPlot {
    let mut ks: Vec<usize> = cells.iter().map(|c| c.k).collect();
    ks.sort_unstable();
    ks.dedup();
    let markers = ['o', '+', 'x', '#', '@', '%'];
    let mut plot = AsciiPlot::new(
        title,
        "threads p",
        format!("makespan(FIFO) / makespan({challenger})"),
    )
    .log_x()
    .log_y();
    for (i, &k) in ks.iter().enumerate() {
        let pts: Vec<(f64, f64)> = cells
            .iter()
            .filter(|c| c.k == k)
            .filter_map(|c| c.try_ratio().map(|r| (c.p as f64, r)))
            .collect();
        plot = plot.series(Series::new(
            format!("k = {k}"),
            markers[i % markers.len()],
            pts,
        ));
    }
    plot
}

/// Summary statistics the paper quotes from a sweep: the worst case for
/// the challenger (min ratio) and the best (max ratio).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SweepSummary {
    /// Smallest FIFO/challenger ratio (challenger's worst cell).
    pub min_ratio: f64,
    /// Largest ratio (challenger's best cell).
    pub max_ratio: f64,
    /// Thread count where the max ratio occurred.
    pub max_ratio_p: usize,
    /// Thread count where the min ratio occurred.
    pub min_ratio_p: usize,
}

/// Summarizes a sweep.
pub fn summarize(cells: &[RatioCell]) -> SweepSummary {
    assert!(!cells.is_empty());
    let mut min = cells[0];
    let mut max = cells[0];
    for c in cells {
        if c.ratio() < min.ratio() {
            min = *c;
        }
        if c.ratio() > max.ratio() {
            max = *c;
        }
    }
    SweepSummary {
        min_ratio: min.ratio(),
        max_ratio: max.ratio(),
        max_ratio_p: max.p,
        min_ratio_p: min.p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_traces::{TraceOptions, WorkloadSpec};

    fn tiny_pool() -> TracePool {
        TracePool::generate(
            WorkloadSpec::Cyclic { pages: 32, reps: 6 },
            8,
            1,
            TraceOptions::default(),
        )
    }

    #[test]
    fn sweep_covers_all_cells_in_order() {
        let pool = tiny_pool();
        let cells = ratio_sweep(
            &pool,
            &[2, 4],
            &[16, 64],
            |_| ArbitrationKind::Priority,
            1,
            0,
        );
        assert_eq!(cells.len(), 4);
        assert_eq!(
            cells.iter().map(|c| (c.p, c.k)).collect::<Vec<_>>(),
            vec![(2, 16), (2, 64), (4, 16), (4, 64)]
        );
    }

    #[test]
    fn identical_policies_ratio_one() {
        let pool = tiny_pool();
        let cells = ratio_sweep(&pool, &[4], &[32], |_| ArbitrationKind::Fifo, 1, 0);
        assert!((cells[0].ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_finds_extremes() {
        let pool = tiny_pool();
        // k = 64: two of the eight 32-page working sets fit — the regime
        // where Priority protects working sets and FIFO thrashes.
        let cells = ratio_sweep(&pool, &[1, 8], &[64], |_| ArbitrationKind::Priority, 1, 0);
        let s = summarize(&cells);
        assert!(s.min_ratio <= s.max_ratio);
        // At p=1 the policies coincide: ratio exactly 1.
        let p1 = cells.iter().find(|c| c.p == 1).unwrap();
        assert!((p1.ratio() - 1.0).abs() < 1e-12);
        // At p=8 with k = 1/4 of pages, Priority must win (ratio > 1).
        let p8 = cells.iter().find(|c| c.p == 8).unwrap();
        assert!(p8.ratio() > 1.0, "ratio {}", p8.ratio());
    }

    #[test]
    #[should_panic]
    fn summary_of_empty_panics() {
        summarize(&[]);
    }

    fn zero_cell() -> RatioCell {
        RatioCell {
            p: 3,
            k: 16,
            fifo_makespan: 500,
            challenger_makespan: 0,
            fifo_hit_rate: 0.0,
            challenger_hit_rate: 0.0,
            truncated: false,
        }
    }

    #[test]
    fn zero_challenger_makespan_is_surfaced_not_clamped() {
        // The old implementation clamped the denominator to 1 and reported
        // a "ratio" of 500 here; now the undefined case is explicit.
        assert_eq!(zero_cell().try_ratio(), None);
    }

    #[test]
    #[should_panic(expected = "ratio undefined")]
    fn ratio_panics_on_zero_challenger_makespan() {
        let _ = zero_cell().ratio();
    }

    #[test]
    fn plot_skips_undefined_ratios() {
        // A plot over only-undefined cells renders without panicking.
        let plot = plot_cells(&[zero_cell()], "t", "c");
        let _ = plot.render();
    }
}
