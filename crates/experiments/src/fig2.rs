//! Figure 2: FIFO vs static Priority on SpGEMM (2a) and GNU sort (2b).
//!
//! Paper's findings this experiment reproduces: "FIFO can dominate at low
//! processor counts (Priority up to 1.37× worse) but priority always
//! dominates at high processor counts (FIFO up to 3.3× worse)."

use crate::common::{f3, hbm_sizes_for, ResultTable, Scale, TracePool};
use crate::sweep::{ratio_sweep, summarize, RatioCell};
use hbm_core::ArbitrationKind;
use hbm_traces::TraceOptions;

/// Which panel of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Panel {
    /// 2a: SpGEMM.
    SpGemm,
    /// 2b: GNU sort.
    Sort,
}

/// Runs one panel and returns the raw cells.
pub fn run_cells(panel: Panel, scale: Scale, seed: u64) -> Vec<RatioCell> {
    let spec = match panel {
        Panel::SpGemm => scale.spgemm_spec(),
        Panel::Sort => scale.sort_spec(),
    };
    let threads = scale.thread_counts();
    let max_p = *threads.iter().max().expect("nonempty");
    let pool = TracePool::generate(spec, max_p, seed, TraceOptions::default());
    let hbm_sizes = hbm_sizes_for(&pool, scale);
    ratio_sweep(
        &pool,
        &threads,
        &hbm_sizes,
        |_| ArbitrationKind::Priority,
        1,
        seed,
    )
}

/// Runs one panel and renders the Figure 2 table (one row per (p, k)).
pub fn run(panel: Panel, scale: Scale, seed: u64) -> ResultTable {
    render(panel, &run_cells(panel, scale, seed))
}

/// Renders the Figure 2 table from precomputed cells.
pub fn render(panel: Panel, cells: &[crate::sweep::RatioCell]) -> ResultTable {
    let name = match panel {
        Panel::SpGemm => "Figure 2a — SpGEMM: FIFO/Priority makespan ratio (>1 favours Priority)",
        Panel::Sort => "Figure 2b — GNU sort: FIFO/Priority makespan ratio (>1 favours Priority)",
    };
    let mut t = ResultTable::new(
        name,
        &[
            "p",
            "k",
            "fifo_makespan",
            "priority_makespan",
            "ratio",
            "fifo_hit_rate",
            "priority_hit_rate",
        ],
    );
    for c in cells {
        t.push_row(vec![
            c.p.to_string(),
            c.k.to_string(),
            c.fifo_makespan.to_string(),
            c.challenger_makespan.to_string(),
            f3(c.ratio()),
            f3(c.fifo_hit_rate),
            f3(c.challenger_hit_rate),
        ]);
    }
    let s = summarize(cells);
    t.push_row(vec![
        "summary".into(),
        "-".into(),
        format!("max ratio {:.2} at p={}", s.max_ratio, s.max_ratio_p),
        format!("min ratio {:.2} at p={}", s.min_ratio, s.min_ratio_p),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::summarize;

    #[test]
    fn small_scale_shows_priority_dominance_at_high_p() {
        // The paper's headline: at high thread counts Priority wins.
        let cells = run_cells(Panel::SpGemm, Scale::Small, 7);
        let s = summarize(&cells);
        assert!(
            s.max_ratio > 1.1,
            "Priority should win somewhere: max ratio {}",
            s.max_ratio
        );
        // The max ratio occurs at a higher thread count than the min.
        assert!(s.max_ratio_p >= s.min_ratio_p);
    }

    #[test]
    fn table_renders_with_summary_row() {
        let t = run(Panel::Sort, Scale::Small, 3);
        assert!(t.title.contains("Figure 2b"));
        assert!(t.rows.len() > 5);
        assert!(t.rows.last().unwrap()[0] == "summary");
    }
}
