//! `repro` — regenerate the figures and tables of *Automatic HBM
//! Management: Models and Algorithms* (SPAA 2022).
//!
//! ```text
//! repro <command> [--scale small|default|full] [--seed N] [--out DIR]
//!
//! commands:
//!   fig2       Figure 2a/2b  FIFO vs Priority ratio sweep
//!   fig3       Figure 3      adversarial Dataset 3
//!   fig4       Figure 4a/4b  FIFO vs Dynamic Priority
//!   fig5       Figure 5a/5b  makespan/inconsistency trade-off
//!   table1     Table 1a/1b   inconsistency & response time
//!   fig6       Figure 6      pointer chasing (synthetic KNL)
//!   table2     Table 2a/2b   latency & GLUPS bandwidth
//!   validate   §5            property checks P1-P4
//!   channels   Theorem 3     q = 1..10 sweep
//!   augment    Theorem 2     d/s resource augmentation grid
//!   mrc        methodology   LRU miss-ratio curves of the workloads
//!   assoc      Lemma 1       direct-mapped transformation overhead
//!   schemes    §4            permutation schemes × work skew
//!   ablate     ablations     replacement / granularity / FR-FCFS
//!   all        everything above
//! ```
//!
//! Tables print as markdown on stdout; with `--out DIR` each table is also
//! written as a CSV named after its title. `--plot` additionally renders
//! fig2/fig3/fig4/fig5 as ASCII charts (the paper's artifacts are plots —
//! the crossovers and frontiers are easier to see than in the tables).

use hbm_experiments::common::{ResultTable, Scale};
use hbm_experiments::fig2::Panel;
use hbm_experiments::{
    ablations, assoc_exp, augment, channels, fig2, fig3, fig4, knl_exp, mrc, schemes, tradeoff,
};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    command: String,
    scale: Scale,
    seed: u64,
    out: Option<PathBuf>,
    plot: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut scale = Scale::Default;
    let mut seed = 42u64;
    let mut out = None;
    let mut plot = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&v).ok_or(format!("unknown scale '{v}'"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(args.next().ok_or("--out needs a value")?));
            }
            "--plot" => plot = true,
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(Args {
        command,
        scale,
        seed,
        out,
        plot,
    })
}

fn usage() -> String {
    "usage: repro <fig2|fig3|fig4|fig5|table1|fig6|table2|validate|channels|augment|mrc|assoc|schemes|ablate|all> [--scale small|default|full] [--seed N] [--out DIR] [--plot]".into()
}

fn slug(title: &str) -> String {
    title
        .chars()
        .take_while(|&c| c != '—')
        .collect::<String>()
        .trim()
        .to_lowercase()
        .replace([' ', '/'], "_")
        .replace(|c: char| !c.is_alphanumeric() && c != '_', "")
}

fn emit(tables: Vec<ResultTable>, out: &Option<PathBuf>) {
    for t in tables {
        println!("{}", t.to_markdown());
        if let Some(dir) = out {
            std::fs::create_dir_all(dir).expect("create --out dir");
            let path = dir.join(format!("{}.csv", slug(&t.title)));
            std::fs::write(&path, t.to_csv()).expect("write CSV");
            eprintln!("wrote {}", path.display());
        }
    }
}

fn run_command(cmd: &str, scale: Scale, seed: u64) -> Result<Vec<ResultTable>, String> {
    // Monte Carlo budgets for the KNL microbenchmarks per scale.
    let (ops, blocks) = match scale {
        Scale::Small => (20_000, 20_000),
        Scale::Default => (500_000, 500_000),
        Scale::Full => (1 << 27, 4_000_000),
    };
    Ok(match cmd {
        "fig2" => vec![
            fig2::run(Panel::SpGemm, scale, seed),
            fig2::run(Panel::Sort, scale, seed),
        ],
        "fig3" => vec![fig3::run(scale, seed)],
        "fig4" => vec![
            fig4::run(Panel::SpGemm, scale, seed),
            fig4::run(Panel::Sort, scale, seed),
        ],
        "fig5" => vec![
            tradeoff::run_fig5(Panel::SpGemm, scale, seed),
            tradeoff::run_fig5(Panel::Sort, scale, seed),
        ],
        "table1" => vec![
            tradeoff::run_table1(Panel::SpGemm, scale, seed),
            tradeoff::run_table1(Panel::Sort, scale, seed),
        ],
        "fig6" => vec![knl_exp::run_fig6(ops, seed)],
        "table2" => vec![
            knl_exp::run_table2a(ops, seed),
            knl_exp::run_table2b(blocks, seed),
        ],
        "validate" => vec![knl_exp::run_validation()],
        "channels" => vec![channels::run(scale, seed)],
        "augment" => vec![augment::run(scale, seed)],
        "mrc" => vec![mrc::run(scale, seed)],
        "assoc" => vec![assoc_exp::run(scale, seed)],
        "schemes" => vec![schemes::run(scale, seed)],
        "ablate" => vec![
            ablations::replacement(scale, seed),
            ablations::collapse(scale, seed),
            ablations::frfcfs(scale, seed),
        ],
        "all" => {
            let cmds = [
                "fig2", "fig3", "fig4", "fig5", "table1", "fig6", "table2", "validate", "channels",
                "augment", "mrc", "assoc", "schemes", "ablate",
            ];
            let mut all = Vec::new();
            for c in cmds {
                eprintln!("[repro] running {c} (scale {scale}) ...");
                let t0 = Instant::now();
                all.extend(run_command(c, scale, seed)?);
                eprintln!("[repro] {c} done in {:.1}s", t0.elapsed().as_secs_f64());
            }
            all
        }
        other => return Err(format!("unknown command '{other}'\n{}", usage())),
    })
}

/// Plot-capable commands: computes cells once, returns (tables, charts).
fn run_with_plots(cmd: &str, scale: Scale, seed: u64) -> Option<(Vec<ResultTable>, Vec<String>)> {
    use hbm_experiments::sweep::plot_cells;
    match cmd {
        "fig2" => {
            let a = fig2::run_cells(Panel::SpGemm, scale, seed);
            let b = fig2::run_cells(Panel::Sort, scale, seed);
            Some((
                vec![
                    fig2::render(Panel::SpGemm, &a),
                    fig2::render(Panel::Sort, &b),
                ],
                vec![
                    plot_cells(&a, "Figure 2a — SpGEMM", "Priority").render(),
                    plot_cells(&b, "Figure 2b — GNU sort", "Priority").render(),
                ],
            ))
        }
        "fig3" => {
            let cells = fig3::run_cells(scale, seed);
            Some((
                vec![fig3::render(&cells)],
                vec![fig3::plot_cells(&cells).render()],
            ))
        }
        "fig4" => {
            let a = fig4::run_cells(Panel::SpGemm, scale, seed);
            let b = fig4::run_cells(Panel::Sort, scale, seed);
            Some((
                vec![
                    fig4::render(Panel::SpGemm, &a),
                    fig4::render(Panel::Sort, &b),
                ],
                vec![
                    plot_cells(&a, "Figure 4a — SpGEMM", "Dynamic").render(),
                    plot_cells(&b, "Figure 4b — GNU sort", "Dynamic").render(),
                ],
            ))
        }
        "fig5" => {
            let a = tradeoff::run_points(Panel::SpGemm, scale, seed);
            let b = tradeoff::run_points(Panel::Sort, scale, seed);
            Some((
                vec![
                    tradeoff::run_fig5(Panel::SpGemm, scale, seed),
                    tradeoff::run_fig5(Panel::Sort, scale, seed),
                ],
                vec![
                    tradeoff::plot_points(&a, "Figure 5a — SpGEMM").render(),
                    tradeoff::plot_points(&b, "Figure 5b — GNU sort").render(),
                ],
            ))
        }
        _ => None,
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let t0 = Instant::now();
    if args.plot {
        if let Some((tables, charts)) = run_with_plots(&args.command, args.scale, args.seed) {
            emit(tables, &args.out);
            for c in charts {
                println!("{c}");
            }
            eprintln!(
                "[repro] {} finished in {:.1}s (scale {}, seed {})",
                args.command,
                t0.elapsed().as_secs_f64(),
                args.scale,
                args.seed
            );
            return;
        }
        eprintln!(
            "[repro] --plot not supported for '{}'; showing tables",
            args.command
        );
    }
    match run_command(&args.command, args.scale, args.seed) {
        Ok(tables) => {
            emit(tables, &args.out);
            eprintln!(
                "[repro] {} finished in {:.1}s (scale {}, seed {})",
                args.command,
                t0.elapsed().as_secs_f64(),
                args.scale,
                args.seed
            );
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
