//! `repro` — regenerate the figures and tables of *Automatic HBM
//! Management: Models and Algorithms* (SPAA 2022).
//!
//! ```text
//! repro <command> [--scale small|default|full] [--seed N] [--out DIR]
//!
//! commands:
//!   fig2       Figure 2a/2b  FIFO vs Priority ratio sweep
//!   fig3       Figure 3      adversarial Dataset 3
//!   fig4       Figure 4a/4b  FIFO vs Dynamic Priority
//!   fig5       Figure 5a/5b  makespan/inconsistency trade-off
//!   table1     Table 1a/1b   inconsistency & response time
//!   fig6       Figure 6      pointer chasing (synthetic KNL)
//!   table2     Table 2a/2b   latency & GLUPS bandwidth
//!   validate   §5            property checks P1-P4
//!   channels   Theorem 3     q = 1..10 sweep
//!   augment    Theorem 2     d/s resource augmentation grid
//!   mrc        methodology   LRU miss-ratio curves of the workloads
//!   assoc      Lemma 1       direct-mapped transformation overhead
//!   schemes    §4            permutation schemes × work skew
//!   ablate     ablations     replacement / granularity / FR-FCFS
//!   sweep      harness       crash-safe journaled ratio sweep
//!   all        everything above
//! ```
//!
//! `sweep` runs the Dataset 3 FIFO-vs-Priority ratio grid with a
//! checkpoint/resume journal: `--journal PATH` appends each completed
//! cell as it finishes, so a killed run resumes where it stopped, and
//! `--json PATH` writes a deterministic artifact that is byte-identical
//! whether the run was interrupted or not. `--throttle-ms N` delays each
//! cell (makes mid-run kills deterministic in CI) and `--threads N` caps
//! worker threads.
//!
//! Tables print as markdown on stdout; with `--out DIR` each table is also
//! written as a CSV named after its title. `--plot` additionally renders
//! fig2/fig3/fig4/fig5 as ASCII charts (the paper's artifacts are plots —
//! the crossovers and frontiers are easier to see than in the tables).

use hbm_experiments::common::{f3, hbm_sizes_for, CellBudget, ResultTable, Scale, TracePool};
use hbm_experiments::fig2::Panel;
use hbm_experiments::journal::{cells_to_json, run_journaled_sweep, SweepJournal, SweepRunOptions};
use hbm_experiments::{
    ablations, assoc_exp, augment, channels, fig2, fig3, fig4, knl_exp, mrc, schemes, tradeoff,
};
use hbm_traces::{TraceOptions, WorkloadSpec};
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Args {
    command: String,
    scale: Scale,
    seed: u64,
    out: Option<PathBuf>,
    plot: bool,
    journal: Option<PathBuf>,
    json: Option<PathBuf>,
    throttle_ms: u64,
    threads: usize,
    grid: Option<PathBuf>,
    sim_cells: usize,
    rank_only: bool,
    top: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut scale = Scale::Default;
    let mut seed = 42u64;
    let mut out = None;
    let mut plot = false;
    let mut journal = None;
    let mut json = None;
    let mut throttle_ms = 0u64;
    let mut threads = 0usize;
    let mut grid = None;
    let mut sim_cells = 32usize;
    let mut rank_only = false;
    let mut top = 20usize;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&v).ok_or(format!("unknown scale '{v}'"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(args.next().ok_or("--out needs a value")?));
            }
            "--plot" => plot = true,
            "--journal" => {
                journal = Some(PathBuf::from(args.next().ok_or("--journal needs a value")?));
            }
            "--json" => {
                json = Some(PathBuf::from(args.next().ok_or("--json needs a value")?));
            }
            "--throttle-ms" => {
                let v = args.next().ok_or("--throttle-ms needs a value")?;
                throttle_ms = v.parse().map_err(|_| format!("bad throttle '{v}'"))?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                threads = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
            }
            "--grid" => {
                grid = Some(PathBuf::from(args.next().ok_or("--grid needs a value")?));
            }
            "--sim-cells" => {
                let v = args.next().ok_or("--sim-cells needs a value")?;
                sim_cells = v.parse().map_err(|_| format!("bad cell count '{v}'"))?;
            }
            "--rank-only" => rank_only = true,
            "--top" => {
                let v = args.next().ok_or("--top needs a value")?;
                top = v.parse().map_err(|_| format!("bad top count '{v}'"))?;
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(Args {
        command,
        scale,
        seed,
        out,
        plot,
        journal,
        json,
        throttle_ms,
        threads,
        grid,
        sim_cells,
        rank_only,
        top,
    })
}

fn usage() -> String {
    "usage: repro <fig2|fig3|fig4|fig5|table1|fig6|table2|validate|channels|augment|mrc|assoc|schemes|ablate|sweep|calibrate|explore|all> [--scale small|default|full] [--seed N] [--out DIR] [--plot]\n       repro sweep [--journal PATH] [--json PATH] [--throttle-ms N] [--threads N]\n       repro calibrate [--json ENVELOPE_PATH]\n       repro explore --grid SPEC.json [--json PATH] [--journal PATH] [--sim-cells N] [--rank-only] [--top N] [--threads N] [--throttle-ms N]".into()
}

fn slug(title: &str) -> String {
    title
        .chars()
        .take_while(|&c| c != '—')
        .collect::<String>()
        .trim()
        .to_lowercase()
        .replace([' ', '/'], "_")
        .replace(|c: char| !c.is_alphanumeric() && c != '_', "")
}

fn emit(tables: Vec<ResultTable>, out: &Option<PathBuf>) {
    for t in tables {
        println!("{}", t.to_markdown());
        if let Some(dir) = out {
            std::fs::create_dir_all(dir).expect("create --out dir");
            let path = dir.join(format!("{}.csv", slug(&t.title)));
            std::fs::write(&path, t.to_csv()).expect("write CSV");
            eprintln!("wrote {}", path.display());
        }
    }
}

/// The crash-safe journaled sweep: Dataset 3 FIFO vs Priority over the
/// scale's (p, k) grid, checkpointing each cell to `--journal` and
/// emitting a byte-deterministic artifact at `--json`.
fn run_sweep(args: &Args) -> Result<(), String> {
    let (pages, reps) = args.scale.cyclic_params();
    let spec = WorkloadSpec::Cyclic { pages, reps };
    let threads_grid = args.scale.thread_counts();
    let max_p = *threads_grid.last().expect("non-empty thread grid");
    let pool = TracePool::generate(spec, max_p, args.seed, TraceOptions::default());
    let hbm_sizes = hbm_sizes_for(&pool, args.scale);

    // Without --journal, checkpoint to a throwaway file so the same code
    // path runs either way; it is removed on success.
    let ephemeral = args.journal.is_none();
    let journal_path = args.journal.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("repro-sweep-{}.jsonl", std::process::id()))
    });
    let journal = SweepJournal::open(&journal_path)
        .map_err(|e| format!("cannot open journal {}: {e}", journal_path.display()))?;
    if !journal.is_empty() {
        eprintln!(
            "[repro] journal {} holds {} completed cells",
            journal_path.display(),
            journal.len()
        );
    }

    // SIGTERM/SIGINT drain instead of kill: in-flight cells finish and
    // flush to the journal, unstarted cells are skipped, and the process
    // exits cleanly — rerunning the same command resumes exactly where
    // the drain stopped.
    let cancel = hbm_serve::ShutdownFlag::with_signal_handlers();
    let opts = SweepRunOptions {
        budget: CellBudget::UNLIMITED,
        threads: args.threads,
        throttle: (args.throttle_ms > 0).then(|| Duration::from_millis(args.throttle_ms)),
        cancel: Some(cancel.clone()),
    };
    let outcome = run_journaled_sweep(
        &pool,
        "dataset3-fifo-vs-priority",
        &threads_grid,
        &hbm_sizes,
        |_| hbm_core::ArbitrationKind::Priority,
        1,
        args.seed,
        &journal,
        &opts,
    );
    eprintln!(
        "[repro] sweep: {} cells ({} resumed from journal, {} failed, {} cancelled)",
        outcome.cells.len() + outcome.failures.len(),
        outcome.resumed,
        outcome.failures.len(),
        outcome.cancelled,
    );

    let mut table = ResultTable::new(
        "Journaled sweep — Dataset 3: FIFO vs Priority",
        &[
            "p",
            "k",
            "fifo_makespan",
            "priority_makespan",
            "ratio",
            "truncated",
        ],
    );
    for c in &outcome.cells {
        table.push_row(vec![
            c.p.to_string(),
            c.k.to_string(),
            c.fifo_makespan.to_string(),
            c.challenger_makespan.to_string(),
            c.try_ratio().map_or_else(|| "n/a".into(), f3),
            c.truncated.to_string(),
        ]);
    }
    println!("{}", table.to_markdown());

    if outcome.cancelled > 0 {
        // Drained, not killed: everything that ran is flushed to the
        // journal. Keep the journal (even an ephemeral one) so the run
        // can resume, and skip the JSON artifact — a partial artifact
        // would be indistinguishable from a complete one.
        eprintln!(
            "[repro] sweep cancelled: {} cells skipped; journal {} holds every completed cell",
            outcome.cancelled,
            journal_path.display()
        );
        return Err(format!(
            "sweep cancelled by signal; resume with --journal {}",
            journal_path.display()
        ));
    }
    if let Some(json_path) = &args.json {
        std::fs::write(json_path, cells_to_json(&outcome.cells))
            .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
        eprintln!("wrote {}", json_path.display());
    }
    if ephemeral {
        let _ = std::fs::remove_file(&journal_path);
    }
    if !outcome.failures.is_empty() {
        for f in &outcome.failures {
            eprintln!("[repro] FAILED cell p={} k={}: {}", f.p, f.k, f.reason);
        }
        return Err(format!("{} sweep cells failed", outcome.failures.len()));
    }
    Ok(())
}

/// `repro calibrate`: refit the analytical model against the simulator
/// and regenerate the committed envelope artifact. Prints the Rust
/// constants to paste into `crates/model/src/calibration.rs`.
fn run_calibrate(args: &Args) -> Result<(), String> {
    eprintln!("[repro] simulating the calibration corpus ...");
    let run = hbm_experiments::calibrate::run();
    println!("{}", hbm_experiments::calibrate::rust_literals(&run));
    let env = &run.envelope;
    eprintln!(
        "[repro] calibrate: {} cells; median |rel err| makespan {:.4} (conformance {:.4}), response {:.4}, inconsistency {:.4}, blocked {:.4}",
        env.cells,
        env.makespan.median_abs,
        env.conformance_makespan_median_abs,
        env.mean_response.median_abs,
        env.inconsistency.median_abs,
        env.blocked_frac.median_abs,
    );
    let out = args
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from("results/model_envelope.json"));
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(&out, env.to_json()).map_err(|e| format!("write {}: {e}", out.display()))?;
    eprintln!("wrote {}", out.display());
    Ok(())
}

/// `repro explore`: rank a declarative config grid analytically, then
/// simulate only the predicted Pareto frontier plus the highest-
/// uncertainty cells (journaled, resumable, byte-deterministic artifact).
fn run_explore(args: &Args) -> Result<(), String> {
    use hbm_experiments::explore::{
        artifact_json, rank, sim_targets, simulate, summary_table, ExploreRecord,
        ExploreRunOptions, ExploreSpec, RankCaps,
    };
    use hbm_experiments::journal::JournalFile;

    let grid_path = args
        .grid
        .as_ref()
        .ok_or("explore requires --grid SPEC.json")?;
    let text = std::fs::read_to_string(grid_path)
        .map_err(|e| format!("cannot read {}: {e}", grid_path.display()))?;
    let spec = ExploreSpec::parse(&text)?;
    eprintln!(
        "[repro] explore: {} cells ({} workload axes × k {} × q {} × far {} × arb {} × rep {})",
        spec.total_cells(),
        spec.workloads.len(),
        spec.k.len(),
        spec.q.len(),
        spec.far_latency.len(),
        spec.arbitration.len(),
        spec.replacement.len(),
    );

    let caps = RankCaps {
        top: args.top,
        uncertain: args.sim_cells.max(args.top),
        frontier: 256,
    };
    let t0 = Instant::now();
    let outcome = rank(&spec, &caps);
    let dt = t0.elapsed().as_secs_f64();
    eprintln!(
        "[repro] explore: ranked {} cells in {dt:.2}s ({:.0} cells/s); {} winners, {} frontier",
        outcome.total_cells,
        outcome.total_cells as f64 / dt.max(1e-9),
        outcome.winners,
        outcome.frontier_total,
    );
    if outcome.frontier_total as usize > outcome.frontier.len() {
        eprintln!(
            "[repro] explore: frontier capped at {} of {} cells in the artifact",
            outcome.frontier.len(),
            outcome.frontier_total
        );
    }

    let mut sims = std::collections::HashMap::new();
    let ephemeral = args.journal.is_none();
    let journal_path = args.journal.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("repro-explore-{}.jsonl", std::process::id()))
    });
    if !args.rank_only {
        let targets = sim_targets(&outcome, args.sim_cells);
        let journal = JournalFile::<ExploreRecord>::open(&journal_path)
            .map_err(|e| format!("cannot open journal {}: {e}", journal_path.display()))?;
        if !journal.is_empty() {
            eprintln!(
                "[repro] journal {} holds {} completed cells",
                journal_path.display(),
                journal.len()
            );
        }
        let cancel = hbm_serve::ShutdownFlag::with_signal_handlers();
        let opts = ExploreRunOptions {
            budget: CellBudget {
                max_ticks: spec.max_ticks,
                max_wall: None,
            },
            threads: args.threads,
            throttle: (args.throttle_ms > 0).then(|| Duration::from_millis(args.throttle_ms)),
            cancel: Some(cancel),
        };
        let sim = simulate(&spec, &targets, &journal, &opts);
        eprintln!(
            "[repro] explore: simulated {} of {} selected cells ({} resumed from journal, {} failed, {} cancelled)",
            sim.results.len(),
            targets.len(),
            sim.resumed,
            sim.failures.len(),
            sim.cancelled,
        );
        if sim.cancelled > 0 {
            eprintln!(
                "[repro] explore cancelled: journal {} holds every completed cell",
                journal_path.display()
            );
            return Err(format!(
                "explore cancelled by signal; resume with --journal {}",
                journal_path.display()
            ));
        }
        if !sim.failures.is_empty() {
            for f in &sim.failures {
                eprintln!("[repro] FAILED {f}");
            }
            return Err(format!("{} explore cells failed", sim.failures.len()));
        }
        sims = sim.results;
    }

    println!("{}", summary_table(&spec, &outcome, &sims).to_markdown());
    if let Some(json_path) = &args.json {
        std::fs::write(json_path, artifact_json(&spec, &outcome, &sims))
            .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
        eprintln!("wrote {}", json_path.display());
    }
    if ephemeral {
        let _ = std::fs::remove_file(&journal_path);
    }
    Ok(())
}

fn run_command(cmd: &str, scale: Scale, seed: u64) -> Result<Vec<ResultTable>, String> {
    // Monte Carlo budgets for the KNL microbenchmarks per scale.
    let (ops, blocks) = match scale {
        Scale::Small => (20_000, 20_000),
        Scale::Default => (500_000, 500_000),
        Scale::Full => (1 << 27, 4_000_000),
    };
    Ok(match cmd {
        "fig2" => vec![
            fig2::run(Panel::SpGemm, scale, seed),
            fig2::run(Panel::Sort, scale, seed),
        ],
        "fig3" => vec![fig3::run(scale, seed)],
        "fig4" => vec![
            fig4::run(Panel::SpGemm, scale, seed),
            fig4::run(Panel::Sort, scale, seed),
        ],
        "fig5" => vec![
            tradeoff::run_fig5(Panel::SpGemm, scale, seed),
            tradeoff::run_fig5(Panel::Sort, scale, seed),
        ],
        "table1" => vec![
            tradeoff::run_table1(Panel::SpGemm, scale, seed),
            tradeoff::run_table1(Panel::Sort, scale, seed),
        ],
        "fig6" => vec![knl_exp::run_fig6(ops, seed)],
        "table2" => vec![
            knl_exp::run_table2a(ops, seed),
            knl_exp::run_table2b(blocks, seed),
        ],
        "validate" => vec![knl_exp::run_validation()],
        "channels" => vec![channels::run(scale, seed)],
        "augment" => vec![augment::run(scale, seed)],
        "mrc" => vec![mrc::run(scale, seed)],
        "assoc" => vec![assoc_exp::run(scale, seed)],
        "schemes" => vec![schemes::run(scale, seed)],
        "ablate" => vec![
            ablations::replacement(scale, seed),
            ablations::collapse(scale, seed),
            ablations::frfcfs(scale, seed),
        ],
        "all" => {
            let cmds = [
                "fig2", "fig3", "fig4", "fig5", "table1", "fig6", "table2", "validate", "channels",
                "augment", "mrc", "assoc", "schemes", "ablate",
            ];
            let mut all = Vec::new();
            for c in cmds {
                eprintln!("[repro] running {c} (scale {scale}) ...");
                let t0 = Instant::now();
                all.extend(run_command(c, scale, seed)?);
                eprintln!("[repro] {c} done in {:.1}s", t0.elapsed().as_secs_f64());
            }
            all
        }
        other => return Err(format!("unknown command '{other}'\n{}", usage())),
    })
}

/// Plot-capable commands: computes cells once, returns (tables, charts).
fn run_with_plots(cmd: &str, scale: Scale, seed: u64) -> Option<(Vec<ResultTable>, Vec<String>)> {
    use hbm_experiments::sweep::plot_cells;
    match cmd {
        "fig2" => {
            let a = fig2::run_cells(Panel::SpGemm, scale, seed);
            let b = fig2::run_cells(Panel::Sort, scale, seed);
            Some((
                vec![
                    fig2::render(Panel::SpGemm, &a),
                    fig2::render(Panel::Sort, &b),
                ],
                vec![
                    plot_cells(&a, "Figure 2a — SpGEMM", "Priority").render(),
                    plot_cells(&b, "Figure 2b — GNU sort", "Priority").render(),
                ],
            ))
        }
        "fig3" => {
            let cells = fig3::run_cells(scale, seed);
            Some((
                vec![fig3::render(&cells)],
                vec![fig3::plot_cells(&cells).render()],
            ))
        }
        "fig4" => {
            let a = fig4::run_cells(Panel::SpGemm, scale, seed);
            let b = fig4::run_cells(Panel::Sort, scale, seed);
            Some((
                vec![
                    fig4::render(Panel::SpGemm, &a),
                    fig4::render(Panel::Sort, &b),
                ],
                vec![
                    plot_cells(&a, "Figure 4a — SpGEMM", "Dynamic").render(),
                    plot_cells(&b, "Figure 4b — GNU sort", "Dynamic").render(),
                ],
            ))
        }
        "fig5" => {
            let a = tradeoff::run_points(Panel::SpGemm, scale, seed);
            let b = tradeoff::run_points(Panel::Sort, scale, seed);
            Some((
                vec![
                    tradeoff::run_fig5(Panel::SpGemm, scale, seed),
                    tradeoff::run_fig5(Panel::Sort, scale, seed),
                ],
                vec![
                    tradeoff::plot_points(&a, "Figure 5a — SpGEMM").render(),
                    tradeoff::plot_points(&b, "Figure 5b — GNU sort").render(),
                ],
            ))
        }
        _ => None,
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let t0 = Instant::now();
    if args.command == "calibrate" {
        match run_calibrate(&args) {
            Ok(()) => {
                eprintln!(
                    "[repro] calibrate finished in {:.1}s",
                    t0.elapsed().as_secs_f64()
                );
                return;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    if args.command == "explore" {
        match run_explore(&args) {
            Ok(()) => {
                eprintln!(
                    "[repro] explore finished in {:.1}s",
                    t0.elapsed().as_secs_f64()
                );
                return;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    if args.command == "sweep" {
        match run_sweep(&args) {
            Ok(()) => {
                eprintln!(
                    "[repro] sweep finished in {:.1}s (scale {}, seed {})",
                    t0.elapsed().as_secs_f64(),
                    args.scale,
                    args.seed
                );
                return;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    if args.plot {
        if let Some((tables, charts)) = run_with_plots(&args.command, args.scale, args.seed) {
            emit(tables, &args.out);
            for c in charts {
                println!("{c}");
            }
            eprintln!(
                "[repro] {} finished in {:.1}s (scale {}, seed {})",
                args.command,
                t0.elapsed().as_secs_f64(),
                args.scale,
                args.seed
            );
            return;
        }
        eprintln!(
            "[repro] --plot not supported for '{}'; showing tables",
            args.command
        );
    }
    match run_command(&args.command, args.scale, args.seed) {
        Ok(tables) => {
            emit(tables, &args.out);
            eprintln!(
                "[repro] {} finished in {:.1}s (scale {}, seed {})",
                args.command,
                t0.elapsed().as_secs_f64(),
                args.scale,
                args.seed
            );
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
