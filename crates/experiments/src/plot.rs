//! Terminal plotting: render the paper's figures as ASCII charts.
//!
//! The paper's artifacts are *plots*; tables alone hide the shapes (the
//! crossover in Figure 2, the linear blow-up in Figure 3, the L-shaped
//! trade-off frontier in Figure 5). [`AsciiPlot`] renders series of (x, y)
//! points on a labelled grid with optional log axes, so `repro <cmd>
//! --plot` shows the figure itself.

/// One named series of points, drawn with its marker character.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// Marker drawn at each point.
    pub marker: char,
    /// The (x, y) points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// A new series.
    pub fn new(name: impl Into<String>, marker: char, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            marker,
            points,
        }
    }
}

/// An ASCII scatter/line chart.
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    title: String,
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
    log_x: bool,
    log_y: bool,
    series: Vec<Series>,
}

impl AsciiPlot {
    /// A plot with the given title and axis labels (default 72×20 cells,
    /// linear axes).
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        AsciiPlot {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            width: 72,
            height: 20,
            log_x: false,
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Sets the grid size in character cells.
    pub fn size(mut self, width: usize, height: usize) -> Self {
        self.width = width.max(8);
        self.height = height.max(4);
        self
    }

    /// Uses a log₁₀ x-axis (points with x ≤ 0 are dropped).
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Uses a log₁₀ y-axis (points with y ≤ 0 are dropped).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds a series.
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    fn tx(&self, x: f64) -> f64 {
        if self.log_x {
            x.log10()
        } else {
            x
        }
    }

    fn ty(&self, y: f64) -> f64 {
        if self.log_y {
            y.log10()
        } else {
            y
        }
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64, char)> = self
            .series
            .iter()
            .flat_map(|s| {
                s.points
                    .iter()
                    .filter(|(x, y)| (!self.log_x || *x > 0.0) && (!self.log_y || *y > 0.0))
                    .map(move |&(x, y)| (self.tx(x), self.ty(y), s.marker))
            })
            .collect();
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        if pts.is_empty() {
            out.push_str("(no points)\n");
            return out;
        }
        let (mut x0, mut x1) = (f64::MAX, f64::MIN);
        let (mut y0, mut y1) = (f64::MAX, f64::MIN);
        for &(x, y, _) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for &(x, y, m) in &pts {
            let cx = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
            let cy = ((y - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
            let row = self.height - 1 - cy;
            // Later series overwrite; collisions show the last marker.
            grid[row][cx] = m;
        }
        let untx = |v: f64| if self.log_x { 10f64.powf(v) } else { v };
        let unty = |v: f64| if self.log_y { 10f64.powf(v) } else { v };
        out.push_str(&format!(
            "{} (top = {:.3}, bottom = {:.3})\n",
            self.y_label,
            unty(y1),
            unty(y0)
        ));
        for row in &grid {
            out.push_str("  |");
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str("  +");
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "   {}: {:.3} .. {:.3}{}\n",
            self.x_label,
            untx(x0),
            untx(x1),
            if self.log_x { " (log)" } else { "" }
        ));
        for s in &self.series {
            out.push_str(&format!("   {} {}\n", s.marker, s.name));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_corners() {
        let p = AsciiPlot::new("t", "x", "y")
            .size(11, 5)
            .series(Series::new("s", '*', vec![(0.0, 0.0), (10.0, 4.0)]));
        let r = p.render();
        let lines: Vec<&str> = r.lines().collect();
        // Grid rows are lines[2..7]; top-right has the max point.
        assert!(lines[2].ends_with('*'), "top row: {:?}", lines[2]);
        assert!(lines[6].starts_with("  |*"), "bottom row: {:?}", lines[6]);
        assert!(r.contains("* s"));
    }

    #[test]
    fn empty_plot_degrades_gracefully() {
        let r = AsciiPlot::new("t", "x", "y").render();
        assert!(r.contains("no points"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let p = AsciiPlot::new("t", "x", "y").series(Series::new(
            "s",
            'o',
            vec![(1.0, 5.0), (2.0, 5.0)],
        ));
        let r = p.render();
        assert!(r.contains('o'));
    }

    #[test]
    fn log_axes_drop_nonpositive_points() {
        let p = AsciiPlot::new("t", "x", "y")
            .log_x()
            .log_y()
            .series(Series::new(
                "s",
                'x',
                vec![(0.0, 1.0), (10.0, 100.0), (100.0, 10.0)],
            ));
        let r = p.render();
        assert!(r.contains("(log)"));
        let grid_markers: usize = r
            .lines()
            .filter(|l| l.starts_with("  |"))
            .map(|l| l.matches('x').count())
            .sum();
        assert_eq!(grid_markers, 2, "the x<=0 point must be dropped");
    }

    #[test]
    fn multiple_series_share_the_grid() {
        let p = AsciiPlot::new("t", "x", "y")
            .size(20, 8)
            .series(Series::new("a", 'a', vec![(0.0, 0.0)]))
            .series(Series::new("b", 'b', vec![(1.0, 1.0)]));
        let r = p.render();
        assert!(r.contains('a'));
        assert!(r.contains('b'));
    }
}
