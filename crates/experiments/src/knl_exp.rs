//! Figure 6 and Table 2: the §5 model-validation experiments on the
//! synthetic KNL.

use crate::common::{f3, ResultTable};
use hbm_knl_model::{bandwidth_sweep, latency_sweep, validate, Machine};

const KIB: u64 = 1 << 10;
const MIB: u64 = 1 << 20;
const GIB: u64 = 1 << 30;

fn fmt_size(bytes: u64) -> String {
    if bytes >= GIB {
        format!("{}GiB", bytes / GIB)
    } else if bytes >= MIB {
        format!("{}MiB", bytes / MIB)
    } else {
        format!("{}KiB", bytes / KIB)
    }
}

/// Figure 6 sizes: powers of two, 1 KiB – 64 GiB.
pub fn fig6_sizes() -> Vec<u64> {
    (10..=36).map(|s| 1u64 << s).collect()
}

/// Table 2a sizes: 16 MiB – 64 GiB.
pub fn table2a_sizes() -> Vec<u64> {
    (24..=36).map(|s| 1u64 << s).collect()
}

/// Table 2b sizes: 512 MiB – 64 GiB.
pub fn table2b_sizes() -> Vec<u64> {
    (29..=36).map(|s| 1u64 << s).collect()
}

/// Figure 6: pointer-chasing latency across the full hierarchy.
pub fn run_fig6(ops: u64, seed: u64) -> ResultTable {
    let m = Machine::knl();
    let rows = latency_sweep(&m, &fig6_sizes(), ops, seed);
    let mut t = ResultTable::new(
        "Figure 6 — pointer chasing on the synthetic KNL (ns per op)",
        &["array", "flat_dram_ns", "flat_hbm_ns", "cache_mode_ns"],
    );
    for r in rows {
        t.push_row(vec![
            fmt_size(r.bytes),
            f3(r.dram_ns),
            r.hbm_ns.map_or("-".into(), f3),
            f3(r.cache_ns),
        ]);
    }
    t
}

/// Table 2a: latency for array sizes beyond shared L2.
pub fn run_table2a(ops: u64, seed: u64) -> ResultTable {
    let m = Machine::knl();
    let rows = latency_sweep(&m, &table2a_sizes(), ops, seed);
    let mut t = ResultTable::new(
        "Table 2a — pointer-chase latency (ns/update); paper: DRAM 168.9-364.7, HBM 187.6-343.1, cache 190.6-489.6",
        &["array", "dram_ns", "hbm_ns", "cache_ns"],
    );
    for r in rows {
        t.push_row(vec![
            fmt_size(r.bytes),
            f3(r.dram_ns),
            r.hbm_ns.map_or("-".into(), f3),
            f3(r.cache_ns),
        ]);
    }
    t
}

/// Table 2b: GLUPS bandwidth (272 threads).
pub fn run_table2b(blocks_cap: u64, seed: u64) -> ResultTable {
    let m = Machine::knl();
    let rows = bandwidth_sweep(&m, &table2b_sizes(), blocks_cap, seed);
    let mut t = ResultTable::new(
        "Table 2b — GLUPS bandwidth (MiB/s); paper: DRAM ~67.5k, HBM ~300-324k, cache 308k->147k",
        &["array", "dram_mibs", "hbm_mibs", "cache_mibs"],
    );
    for r in rows {
        t.push_row(vec![
            fmt_size(r.bytes),
            format!("{:.0}", r.dram_mibs),
            r.hbm_mibs.map_or("-".into(), |b| format!("{b:.0}")),
            format!("{:.0}", r.cache_mibs),
        ]);
    }
    t
}

/// The §5 property checks (P1–P4) as a table.
pub fn run_validation() -> ResultTable {
    let report = validate(&Machine::knl());
    let mut t = ResultTable::new(
        "§5 model validation — Properties 1-4 on the synthetic KNL",
        &["property", "statement", "measured", "holds"],
    );
    for c in &report.checks {
        t.push_row(vec![
            format!("P{}", c.id),
            c.statement.clone(),
            f3(c.measured),
            c.holds.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_covers_the_hierarchy() {
        let t = run_fig6(20_000, 1);
        assert_eq!(t.rows.len(), 27);
        assert_eq!(t.rows[0][0], "1KiB");
        assert_eq!(t.rows.last().unwrap()[0], "64GiB");
        // HBM column empty beyond 8 GiB.
        assert_eq!(t.rows.last().unwrap()[2], "-");
    }

    #[test]
    fn table2a_shape() {
        let t = run_table2a(20_000, 1);
        assert_eq!(t.rows[0][0], "16MiB");
        // Latency rises monotonically down the table for DRAM.
        let first: f64 = t.rows[0][1].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        assert!(last > first + 100.0);
    }

    #[test]
    fn table2b_shows_the_cliff() {
        let t = run_table2b(50_000, 1);
        let cache_8g: f64 = t.rows[4][3].parse().unwrap(); // 8 GiB row
        let cache_64g: f64 = t.rows.last().unwrap()[3].parse().unwrap();
        assert!(cache_64g < 0.6 * cache_8g);
        let dram_64g: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        assert!(cache_64g > dram_64g, "cache mode still beats flat DRAM");
    }

    #[test]
    fn validation_all_hold() {
        let t = run_validation();
        assert_eq!(t.rows.len(), 4);
        for r in &t.rows {
            assert_eq!(r[3], "true", "{} failed", r[0]);
        }
    }
}
