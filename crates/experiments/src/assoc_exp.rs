//! Lemma 1 / Corollary 1 in numbers: overhead of the direct-mapped
//! transformation on real workload streams.

use crate::common::{f3, ResultTable, Scale};
use hbm_assoc::transform::{measure_overhead, Discipline};
use hbm_traces::{TraceOptions, WorkloadSpec};

/// Runs the overhead measurement on the paper's workloads and renders it.
pub fn run(scale: Scale, seed: u64) -> ResultTable {
    let k = match scale {
        Scale::Small => 64,
        Scale::Default => 256,
        Scale::Full => 1024,
    };
    let specs: Vec<(&str, WorkloadSpec)> = vec![
        ("sort", scale.sort_spec()),
        ("spgemm", scale.spgemm_spec()),
        ("cyclic", {
            let (pages, reps) = scale.cyclic_params();
            WorkloadSpec::Cyclic { pages, reps }
        }),
    ];
    let results = hbm_par::parallel_map(&specs, |(name, spec)| {
        let trace = spec.generate_trace(seed, TraceOptions::default());
        let stream: Vec<u64> = trace.iter().map(|&p| p as u64).collect();
        let mut out = Vec::new();
        for d in [Discipline::Lru, Discipline::Fifo] {
            let o = measure_overhead(&stream, k, d, seed);
            out.push((name.to_string(), d, o));
        }
        out
    });
    let mut t = ResultTable::new(
        format!("Lemma 1 — direct-mapped transformation overhead (k = {k})"),
        &[
            "workload",
            "discipline",
            "assoc_misses",
            "transformed_misses",
            "transfers_per_miss",
            "hbm_accesses_per_access",
            "plain_direct_misses",
        ],
    );
    for group in results {
        for (name, d, o) in group {
            t.push_row(vec![
                name,
                format!("{d:?}"),
                o.reference_misses.to_string(),
                o.transformed_misses.to_string(),
                f3(o.transfers_per_miss),
                f3(o.accesses_per_access),
                o.plain_direct_misses.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformation_is_exact_and_cheap_on_real_traces() {
        let t = run(Scale::Small, 1);
        assert_eq!(t.rows.len(), 6); // 3 workloads x 2 disciplines
        for r in &t.rows {
            assert_eq!(r[2], r[3], "{}: transformed misses must match", r[0]);
            let transfers: f64 = r[4].parse().unwrap();
            assert!(transfers <= 2.0);
            let per_access: f64 = r[5].parse().unwrap();
            assert!(
                per_access < 8.0,
                "{}: per-access overhead {per_access}",
                r[0]
            );
        }
    }
}
