//! `repro explore` — million-config design-space exploration.
//!
//! The analytical model ([`hbm_model`]) prices one configuration in
//! microseconds; the simulator prices it in milliseconds to minutes. The
//! explorer exploits that gap: it enumerates a declarative configuration
//! grid (workloads × p × far latency × k × q × arbitration × replacement),
//! ranks **every** cell analytically in a single streaming pass, and then
//! simulates only the cells the ranking says matter — the predicted
//! Pareto frontier over (k, q, makespan) plus the cells whose calibrated
//! uncertainty band is widest. A million-cell grid costs a million
//! closed-form evaluations and a few dozen simulations.
//!
//! ## Grid specification
//!
//! The grid is a JSON file. Workload/arbitration/replacement values use
//! **exactly** the `hbm-serve` `/simulate` grammar (the parsers are
//! shared, not re-implemented), and numeric axes are either explicit
//! lists or `{min, max, steps, scale}` ranges:
//!
//! ```json
//! {
//!   "workloads": [
//!     {"workload": {"name": "dataset3-small"}, "p": [2, 4, 8], "seed": 1}
//!   ],
//!   "k": {"min": 4, "max": 4096, "steps": 64, "scale": "log"},
//!   "q": [1, 2, 4],
//!   "far_latency": [4],
//!   "arbitration": ["fifo", "priority", {"kind": "dynamic_priority", "period": 64}],
//!   "replacement": ["lru", "random"],
//!   "sim_seed": 42,
//!   "max_ticks": 2000000
//! }
//! ```
//!
//! `far_latency` defaults to `[1]` (the engine default), `arbitration` to
//! `["fifo", "priority"]`, `replacement` to `["lru"]`, `sim_seed` to `0`.
//!
//! ## Determinism and resumability
//!
//! The rank pass is a pure function of the spec and the committed
//! calibration — no clocks, no RNG, no thread-order dependence. The
//! simulation pass checkpoints every completed cell through the same
//! crash-safe journal machinery as `repro sweep`
//! ([`JournalFile<ExploreRecord>`]), so a SIGKILLed exploration resumed
//! with the same `--journal` re-simulates only the missing cells and
//! emits a **byte-identical** artifact. The artifact deliberately
//! contains no timestamps; wall-clock numbers go to stderr only.

use crate::common::{
    run_batch_budgeted_flat, CellBudget, ResultTable, ScratchPool, SimSettings, TracePool,
};
use crate::journal::{json_hex, JournalFile, JournalRecord};
use hbm_core::fxhash::FxHasher;
use hbm_core::{ArbitrationKind, BatchScratch, FaultPlan, ReplacementKind};
use hbm_model::calibration::ENVELOPE;
use hbm_model::predict::{arb_index, predict, ModelConfig, Prediction, ARB_KINDS};
use hbm_serve::json::{fmt_f64, Json};
use hbm_serve::proto::{parse_arbitration, parse_replacement, parse_workload};
use hbm_serve::shutdown::ShutdownFlag;
use hbm_traces::analysis::WorkloadSummary;
use hbm_traces::{TraceOptions, WorkloadSpec};
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::hash::Hasher;
use std::time::Duration;

/// Journal format tag for explore cells, hashed into every key. Bumping
/// it invalidates journals written by incompatible versions.
pub const EXPLORE_TAG: &str = "hbm-explore-journal-v1";

/// One workload axis of the grid: a generator spec, its trace seed, and
/// the thread counts to explore it at.
#[derive(Debug, Clone)]
pub struct WorkloadAxis {
    /// The trace generator.
    pub spec: WorkloadSpec,
    /// Trace-generation seed.
    pub seed: u64,
    /// Thread counts (`p`) to evaluate, ascending and deduplicated.
    pub p: Vec<usize>,
}

/// A parsed, validated exploration grid.
#[derive(Debug, Clone)]
pub struct ExploreSpec {
    /// Workload axes (outermost grid dimension).
    pub workloads: Vec<WorkloadAxis>,
    /// HBM capacities (`k`), ascending and deduplicated.
    pub k: Vec<usize>,
    /// Channel counts (`q`), ascending and deduplicated.
    pub q: Vec<usize>,
    /// Far-memory latencies, ascending and deduplicated.
    pub far_latency: Vec<u64>,
    /// Arbitration policies, in spec order.
    pub arbitration: Vec<ArbitrationKind>,
    /// Replacement policies, in spec order.
    pub replacement: Vec<ReplacementKind>,
    /// RNG seed for stochastic policies in the simulation pass.
    pub sim_seed: u64,
    /// Optional per-cell tick budget for the simulation pass.
    pub max_ticks: Option<u64>,
}

/// Expands a numeric axis: an explicit list (`[1, 2, 4]`) or a range
/// object (`{"min": 4, "max": 4096, "steps": 64, "scale": "log"}`,
/// `scale` ∈ {`log`, `linear`}, default `log`). The result is sorted
/// ascending, deduplicated, and non-empty.
fn expand_axis(v: &Json, field: &str) -> Result<Vec<u64>, String> {
    let mut vals: Vec<u64> = Vec::new();
    if let Some(arr) = v.as_array() {
        for x in arr {
            vals.push(
                x.as_u64()
                    .ok_or_else(|| format!("grid spec '{field}': expected integers"))?,
            );
        }
    } else if v.get("min").is_some() {
        let get = |f: &str| -> Result<u64, String> {
            v.get(f)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("grid spec '{field}.{f}': expected an integer"))
        };
        let (min, max) = (get("min")?, get("max")?);
        let steps = v
            .get("steps")
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("grid spec '{field}.steps': expected an integer"))?;
        let scale = v.get("scale").and_then(Json::as_str).unwrap_or("log");
        if steps == 0 || max < min {
            return Err(format!("grid spec '{field}': need steps >= 1 and max >= min"));
        }
        if scale == "log" && min == 0 {
            return Err(format!("grid spec '{field}': log scale needs min >= 1"));
        }
        if steps == 1 {
            vals.push(min);
        } else {
            for i in 0..steps {
                let t = i as f64 / (steps - 1) as f64;
                let x = match scale {
                    "log" => min as f64 * (max as f64 / min as f64).powf(t),
                    "linear" => min as f64 + (max as f64 - min as f64) * t,
                    other => {
                        return Err(format!("grid spec '{field}.scale': unknown scale '{other}'"))
                    }
                };
                vals.push(x.round() as u64);
            }
        }
    } else {
        return Err(format!(
            "grid spec '{field}': expected a list or {{min, max, steps[, scale]}}"
        ));
    }
    vals.sort_unstable();
    vals.dedup();
    if vals.is_empty() {
        return Err(format!("grid spec '{field}': axis is empty"));
    }
    Ok(vals)
}

/// [`expand_axis`] for axes whose values must be positive `usize`s.
fn expand_axis_usize(v: &Json, field: &str) -> Result<Vec<usize>, String> {
    let vals = expand_axis(v, field)?;
    if vals.iter().any(|&x| x == 0) {
        return Err(format!("grid spec '{field}': values must be >= 1"));
    }
    Ok(vals.into_iter().map(|x| x as usize).collect())
}

impl ExploreSpec {
    /// Parses and validates a grid-spec JSON document.
    pub fn parse(text: &str) -> Result<ExploreSpec, String> {
        let v = Json::parse(text).map_err(|e| format!("grid spec: invalid json: {e}"))?;
        let wl = v
            .get("workloads")
            .ok_or("grid spec: missing 'workloads'")?
            .as_array()
            .ok_or("grid spec 'workloads': expected an array")?;
        if wl.is_empty() {
            return Err("grid spec 'workloads': need at least one workload".into());
        }
        let mut workloads = Vec::with_capacity(wl.len());
        for (i, entry) in wl.iter().enumerate() {
            let spec = parse_workload(
                entry
                    .get("workload")
                    .ok_or_else(|| format!("grid spec workloads[{i}]: missing 'workload'"))?,
            )
            .map_err(|e| format!("grid spec workloads[{i}]: {e}"))?;
            let seed = entry.get("seed").and_then(Json::as_u64).unwrap_or(0);
            let p = expand_axis_usize(
                entry
                    .get("p")
                    .ok_or_else(|| format!("grid spec workloads[{i}]: missing 'p'"))?,
                "p",
            )?;
            workloads.push(WorkloadAxis { spec, seed, p });
        }
        let k = expand_axis_usize(v.get("k").ok_or("grid spec: missing 'k'")?, "k")?;
        let q = expand_axis_usize(v.get("q").ok_or("grid spec: missing 'q'")?, "q")?;
        let far_latency = match v.get("far_latency") {
            Some(fv) => {
                let vals = expand_axis(fv, "far_latency")?;
                if vals.iter().any(|&x| x == 0) {
                    return Err("grid spec 'far_latency': values must be >= 1".into());
                }
                vals
            }
            None => vec![1],
        };
        let arbitration = match v.get("arbitration") {
            Some(av) => {
                let arr = av
                    .as_array()
                    .ok_or("grid spec 'arbitration': expected an array")?;
                let mut arbs = Vec::with_capacity(arr.len());
                for a in arr {
                    let arb = parse_arbitration(a).map_err(|e| format!("grid spec: {e}"))?;
                    if !arbs.contains(&arb) {
                        arbs.push(arb);
                    }
                }
                if arbs.is_empty() {
                    return Err("grid spec 'arbitration': axis is empty".into());
                }
                arbs
            }
            None => vec![ArbitrationKind::Fifo, ArbitrationKind::Priority],
        };
        let replacement = match v.get("replacement") {
            Some(rv) => {
                let arr = rv
                    .as_array()
                    .ok_or("grid spec 'replacement': expected an array")?;
                let mut reps = Vec::with_capacity(arr.len());
                for r in arr {
                    let rep = parse_replacement(r).map_err(|e| format!("grid spec: {e}"))?;
                    if !reps.contains(&rep) {
                        reps.push(rep);
                    }
                }
                if reps.is_empty() {
                    return Err("grid spec 'replacement': axis is empty".into());
                }
                reps
            }
            None => vec![ReplacementKind::Lru],
        };
        let sim_seed = v.get("sim_seed").and_then(Json::as_u64).unwrap_or(0);
        let max_ticks = v.get("max_ticks").and_then(Json::as_u64);
        let spec = ExploreSpec {
            workloads,
            k,
            q,
            far_latency,
            arbitration,
            replacement,
            sim_seed,
            max_ticks,
        };
        const MAX_CELLS: u128 = 1 << 36;
        if spec.total_cells() > MAX_CELLS {
            return Err(format!(
                "grid spec: {} cells exceeds the {MAX_CELLS}-cell cap",
                spec.total_cells()
            ));
        }
        Ok(spec)
    }

    /// Total raw grid cells (every axis combination).
    pub fn total_cells(&self) -> u128 {
        let p_cells: u128 = self.workloads.iter().map(|w| w.p.len() as u128).sum();
        p_cells
            * self.k.len() as u128
            * self.q.len() as u128
            * self.far_latency.len() as u128
            * self.arbitration.len() as u128
            * self.replacement.len() as u128
    }

    /// The canonical identity string of workload axis `wi` — hashed into
    /// journal keys and printed in the artifact. Mirrors the server's
    /// `WorkloadKey::cache_key` convention (`Debug` of the spec is stable
    /// and injective enough to key on).
    pub fn workload_label(&self, wi: usize) -> String {
        let w = &self.workloads[wi];
        format!("{:?}|seed={}", w.spec, w.seed)
    }
}

/// One winner cell surfaced by the rank pass: the best (arbitration,
/// replacement) pair at its (workload, p, far, k, q) coordinate, with
/// the full model prediction attached.
#[derive(Debug, Clone, Copy)]
pub struct RankedCell {
    /// Workload axis index into [`ExploreSpec::workloads`].
    pub wi: usize,
    /// Thread count.
    pub p: usize,
    /// Far-memory latency.
    pub far: u64,
    /// HBM capacity.
    pub k: usize,
    /// Channel count.
    pub q: usize,
    /// Winning arbitration policy.
    pub arbitration: ArbitrationKind,
    /// Winning replacement policy.
    pub replacement: ReplacementKind,
    /// The model's full prediction for the winning pair.
    pub pred: Prediction,
    /// Global enumeration index of the winning raw cell — the
    /// deterministic tie-breaker for equal estimates.
    pub index: u64,
}

/// Output of the analytical rank pass.
#[derive(Debug, Clone)]
pub struct RankOutcome {
    /// Raw cells evaluated (every axis combination).
    pub total_cells: u128,
    /// Winner cells (one per (workload, p, far, k, q) coordinate).
    pub winners: u64,
    /// How often each arbitration *family* (by
    /// [`arb_index`]) produced the winning policy at a coordinate.
    pub policy_wins: [u64; ARB_KINDS],
    /// Top winners by predicted makespan, ascending.
    pub ranked: Vec<RankedCell>,
    /// Predicted Pareto frontier over (k, q, makespan) within each
    /// (workload, p, far) group, in deterministic grid order. Capped at
    /// [`RankCaps::frontier`]; `frontier_total` counts the uncapped set.
    pub frontier: Vec<RankedCell>,
    /// Total frontier cells before the cap.
    pub frontier_total: u64,
    /// Top winners by model uncertainty, descending — the cells whose
    /// predictions deserve simulation the most.
    pub uncertain: Vec<RankedCell>,
}

/// Output-size caps for the rank pass.
#[derive(Debug, Clone, Copy)]
pub struct RankCaps {
    /// Ranked-list length.
    pub top: usize,
    /// Uncertainty-list length.
    pub uncertain: usize,
    /// Frontier-list length (`frontier_total` still counts everything).
    pub frontier: usize,
}

/// Bounded top-set over `RankedCell`s ordered by a `(u64, u64)` key
/// (max-heap evicts the largest key, so the set retains the `cap`
/// smallest keys). Largest-first selections invert their key bits.
struct TopSet {
    cap: usize,
    heap: BinaryHeap<TopEntry>,
}

struct TopEntry {
    key: (u64, u64),
    cell: RankedCell,
}

impl PartialEq for TopEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for TopEntry {}
impl PartialOrd for TopEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TopEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl TopSet {
    fn new(cap: usize) -> TopSet {
        TopSet {
            cap,
            heap: BinaryHeap::with_capacity(cap + 1),
        }
    }

    fn push(&mut self, key: (u64, u64), cell: RankedCell) {
        if self.cap == 0 {
            return;
        }
        if self.heap.len() == self.cap {
            // Full: only displace the current worst.
            if self.heap.peek().is_some_and(|w| key < w.key) {
                self.heap.pop();
            } else {
                return;
            }
        }
        self.heap.push(TopEntry { key, cell });
    }

    fn into_sorted(self) -> Vec<RankedCell> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| e.cell)
            .collect()
    }
}

/// Flags the Pareto-minimal cells of one (workload, p, far) group laid
/// out k-major (`ests[ki * qn + qi]`, both axes ascending). A cell is
/// dominated when another cell has `k' <= k`, `q' <= q`, `est' <= est`
/// with at least one strict inequality; the sweep keeps a prefix-min
/// over all smaller-k rows plus a running row minimum, so the whole
/// group is classified in O(kn·qn).
fn pareto_flags(ests: &[f64], kn: usize, qn: usize) -> Vec<bool> {
    assert_eq!(ests.len(), kn * qn);
    let mut flags = vec![false; kn * qn];
    // prefix[qi] = min est over k' < current row, q' <= qi.
    let mut prefix = vec![f64::INFINITY; qn];
    for ki in 0..kn {
        let mut row_min = f64::INFINITY;
        for qi in 0..qn {
            let est = ests[ki * qn + qi];
            // `<=` on the prior-row prefix: k' < k is already strict.
            // `<=` on the row minimum: q' < q is already strict.
            flags[ki * qn + qi] = !(prefix[qi] <= est || row_min <= est);
            row_min = row_min.min(est);
            prefix[qi] = prefix[qi].min(row_min);
        }
    }
    flags
}

/// Ranks the entire grid analytically in one streaming pass.
///
/// Per (workload, p) the workload summary is computed once (streaming,
/// no trace retained); per (workload, p, far) group the best
/// (arbitration, replacement) pair is reduced per (k, q) coordinate, the
/// group's Pareto frontier is extracted, and the winners feed the
/// bounded ranked/uncertain sets. Memory is O(|k|·|q|) per group plus
/// the caps — independent of total grid size.
pub fn rank(spec: &ExploreSpec, caps: &RankCaps) -> RankOutcome {
    #[derive(Clone, Copy)]
    struct GroupCell {
        arb: ArbitrationKind,
        rep: ReplacementKind,
        pred: Prediction,
        index: u64,
    }

    let (kn, qn) = (spec.k.len(), spec.q.len());
    let mut index: u64 = 0;
    let mut winners: u64 = 0;
    let mut policy_wins = [0u64; ARB_KINDS];
    let mut ranked = TopSet::new(caps.top);
    let mut uncertain = TopSet::new(caps.uncertain);
    let mut frontier = Vec::new();
    let mut frontier_total: u64 = 0;
    let mut best: Vec<Option<GroupCell>> = vec![None; kn * qn];
    let mut ests: Vec<f64> = vec![0.0; kn * qn];

    for (wi, axis) in spec.workloads.iter().enumerate() {
        for &p in &axis.p {
            let summary = WorkloadSummary::from_spec(axis.spec, axis.seed, p);
            for &far in &spec.far_latency {
                best.iter_mut().for_each(|b| *b = None);
                for (ki, &k) in spec.k.iter().enumerate() {
                    for (qi, &q) in spec.q.iter().enumerate() {
                        let slot = &mut best[ki * qn + qi];
                        for &arb in &spec.arbitration {
                            for &rep in &spec.replacement {
                                let cfg = ModelConfig::new(k, q, arb, rep).far_latency(far);
                                let pred = predict(&summary, &cfg);
                                // Strict `<` keeps the first-seen policy on
                                // ties — deterministic in spec order.
                                if slot
                                    .map_or(true, |b| pred.makespan.est < b.pred.makespan.est)
                                {
                                    *slot = Some(GroupCell {
                                        arb,
                                        rep,
                                        pred,
                                        index,
                                    });
                                }
                                index += 1;
                            }
                        }
                        let w = slot.expect("every coordinate evaluates >= 1 policy");
                        ests[ki * qn + qi] = w.pred.makespan.est;
                    }
                }
                let flags = pareto_flags(&ests, kn, qn);
                for (ci, cell) in best.iter().enumerate() {
                    let (ki, qi) = (ci / qn, ci % qn);
                    let w = cell.expect("group fully evaluated");
                    let rc = RankedCell {
                        wi,
                        p,
                        far,
                        k: spec.k[ki],
                        q: spec.q[qi],
                        arbitration: w.arb,
                        replacement: w.rep,
                        pred: w.pred,
                        index: w.index,
                    };
                    winners += 1;
                    policy_wins[arb_index(w.arb)] += 1;
                    ranked.push((w.pred.makespan.est.to_bits(), w.index), rc);
                    // Bit-flip inverts the order: retain the *largest*
                    // uncertainties (scores are finite and >= 0).
                    uncertain.push((!w.pred.uncertainty.to_bits(), w.index), rc);
                    if flags[ci] {
                        frontier_total += 1;
                        if frontier.len() < caps.frontier {
                            frontier.push(rc);
                        }
                    }
                }
            }
        }
    }
    RankOutcome {
        total_cells: spec.total_cells(),
        winners,
        policy_wins,
        ranked: ranked.into_sorted(),
        frontier,
        frontier_total,
        uncertain: uncertain.into_sorted(),
    }
}

/// The cells the rank pass nominates for simulation: the Pareto frontier
/// first (grid order), then the highest-uncertainty winners, deduplicated
/// and capped at `cap`.
pub fn sim_targets(outcome: &RankOutcome, cap: usize) -> Vec<RankedCell> {
    let mut seen = std::collections::HashSet::new();
    let mut targets = Vec::new();
    for cell in outcome.frontier.iter().chain(outcome.uncertain.iter()) {
        if targets.len() >= cap {
            break;
        }
        if seen.insert(cell.index) {
            targets.push(*cell);
        }
    }
    targets
}

/// Hash key identifying one explore cell in the journal. Two cells
/// collide only if every input that affects the simulation matches.
pub fn explore_cell_key(
    workload: &str,
    p: usize,
    k: usize,
    q: usize,
    far: u64,
    arbitration: ArbitrationKind,
    replacement: ReplacementKind,
    sim_seed: u64,
) -> u64 {
    let mut h = FxHasher::default();
    h.write(EXPLORE_TAG.as_bytes());
    h.write(workload.as_bytes());
    h.write_usize(p);
    h.write_usize(k);
    h.write_usize(q);
    h.write_u64(far);
    h.write_u64(sim_seed);
    h.write(format!("{arbitration:?}|{replacement:?}").as_bytes());
    h.finish()
}

fn cell_key_of(spec: &ExploreSpec, c: &RankedCell) -> u64 {
    explore_cell_key(
        &spec.workload_label(c.wi),
        c.p,
        c.k,
        c.q,
        c.far,
        c.arbitration,
        c.replacement,
        spec.sim_seed,
    )
}

/// One simulated explore cell — the journal record type. f64 metrics
/// round-trip as IEEE-754 bit patterns so resumed runs stay bit-exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreRecord {
    /// Simulated makespan (ticks).
    pub makespan: u64,
    /// Simulated mean response time.
    pub mean_response: f64,
    /// Simulated inconsistency (response-time stddev).
    pub inconsistency: f64,
    /// Simulated HBM hit rate.
    pub hit_rate: f64,
    /// True if the cell hit its tick/wall budget before completing.
    pub truncated: bool,
}

impl JournalRecord for ExploreRecord {
    fn format_line(&self, key: u64) -> String {
        format!(
            "{{\"key\":\"{key:016x}\",\"makespan\":{},\"mean_response_bits\":\"{:016x}\",\
             \"inconsistency_bits\":\"{:016x}\",\"hit_rate_bits\":\"{:016x}\",\"truncated\":{}}}\n",
            self.makespan,
            self.mean_response.to_bits(),
            self.inconsistency.to_bits(),
            self.hit_rate.to_bits(),
            self.truncated,
        )
    }

    fn parse_line(line: &str) -> Option<(u64, ExploreRecord)> {
        let line = line.trim_end();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        let v = Json::parse(line).ok()?;
        let key = json_hex(&v, "key")?;
        Some((
            key,
            ExploreRecord {
                makespan: v.get("makespan")?.as_u64()?,
                mean_response: f64::from_bits(json_hex(&v, "mean_response_bits")?),
                inconsistency: f64::from_bits(json_hex(&v, "inconsistency_bits")?),
                hit_rate: f64::from_bits(json_hex(&v, "hit_rate_bits")?),
                truncated: v.get("truncated")?.as_bool()?,
            },
        ))
    }
}

/// Execution options for the simulation pass.
#[derive(Clone, Default)]
pub struct ExploreRunOptions {
    /// Per-cell tick/wall budget.
    pub budget: CellBudget,
    /// Worker threads; 0 means [`hbm_par::default_threads`].
    pub threads: usize,
    /// Artificial per-cell delay (the CI kill-window lever).
    pub throttle: Option<Duration>,
    /// Cooperative cancellation; a tripped flag stops scheduling groups.
    pub cancel: Option<ShutdownFlag>,
}

/// Result of the simulation pass.
pub struct SimOutcome {
    /// Journal key → simulated metrics for every completed target.
    pub results: HashMap<u64, ExploreRecord>,
    /// Targets restored from the journal instead of re-run.
    pub resumed: usize,
    /// Targets skipped because the cancel flag tripped.
    pub cancelled: usize,
    /// Human-readable failures (typed sim errors, journal IO, panics).
    pub failures: Vec<String>,
}

/// Simulates the selected cells with crash-safe journaling.
///
/// Targets are grouped by (workload, p) — each group shares one memoized
/// [`FlatWorkload`](hbm_core::FlatWorkload) and runs as one lockstep
/// batch — and every completed cell is journaled (and flushed) the moment
/// its group finishes. Journaled targets are skipped entirely, so a
/// resumed exploration re-simulates only the gap.
pub fn simulate(
    spec: &ExploreSpec,
    targets: &[RankedCell],
    journal: &JournalFile<ExploreRecord>,
    opts: &ExploreRunOptions,
) -> SimOutcome {
    let mut results = HashMap::new();
    let mut resumed = 0;
    // Unjournaled targets grouped by (workload, p); BTreeMap keeps the
    // group order deterministic.
    let mut groups: BTreeMap<(usize, usize), Vec<(u64, RankedCell)>> = BTreeMap::new();
    for cell in targets {
        let key = cell_key_of(spec, cell);
        if let Some(r) = journal.get(key) {
            results.insert(key, *r);
            resumed += 1;
        } else {
            groups.entry((cell.wi, cell.p)).or_default().push((key, *cell));
        }
    }
    // One trace pool per workload axis, generated at the largest p any of
    // its groups needs (smaller p reuses the prefix of the traces).
    let mut pool_p: HashMap<usize, usize> = HashMap::new();
    for &(wi, p) in groups.keys() {
        let e = pool_p.entry(wi).or_insert(p);
        *e = (*e).max(p);
    }
    let pools: HashMap<usize, TracePool> = pool_p
        .iter()
        .map(|(&wi, &max_p)| {
            let w = &spec.workloads[wi];
            (
                wi,
                TracePool::generate(w.spec, max_p, w.seed, TraceOptions::default()),
            )
        })
        .collect();

    let glist: Vec<((usize, usize), Vec<(u64, RankedCell)>)> = groups.into_iter().collect();
    let workers = if opts.threads == 0 {
        hbm_par::default_threads()
    } else {
        opts.threads
    };
    let scratches: ScratchPool<BatchScratch> = ScratchPool::new();
    let fresh = hbm_par::try_parallel_map_with(&glist, workers, |((wi, p), gcells)| {
        if opts.cancel.as_ref().is_some_and(|c| c.is_set()) {
            return Ok(None);
        }
        if let Some(throttle) = opts.throttle {
            std::thread::sleep(throttle * gcells.len() as u32);
        }
        let flat = pools[wi].flat(*p);
        let settings: Vec<SimSettings> = gcells
            .iter()
            .map(|(_, c)| SimSettings {
                k: c.k,
                q: c.q,
                arbitration: c.arbitration,
                replacement: c.replacement,
                far_latency: Some(c.far),
                seed: spec.sim_seed,
                faults: FaultPlan::default(),
            })
            .collect();
        let reports = scratches
            .with(|scratch| run_batch_budgeted_flat(&flat, &settings, opts.budget, scratch))
            .map_err(|e| e.to_string())?;
        let mut out = Vec::with_capacity(gcells.len());
        for ((key, _), r) in gcells.iter().zip(&reports) {
            let rec = ExploreRecord {
                makespan: r.makespan,
                mean_response: r.response.mean,
                inconsistency: r.response.inconsistency,
                hit_rate: r.hit_rate,
                truncated: r.truncated,
            };
            journal
                .record(*key, &rec)
                .map_err(|e| format!("journal write failed: {e}"))?;
            out.push(rec);
        }
        Ok::<Option<Vec<ExploreRecord>>, String>(Some(out))
    });

    let mut cancelled = 0;
    let mut failures = Vec::new();
    for (((wi, p), gcells), res) in glist.iter().zip(fresh) {
        match res {
            Ok(Ok(Some(recs))) => {
                for ((key, _), rec) in gcells.iter().zip(recs) {
                    results.insert(*key, rec);
                }
            }
            Ok(Ok(None)) => cancelled += gcells.len(),
            Ok(Err(e)) => failures.push(format!("group (workload {wi}, p={p}): {e}")),
            Err(panic) => {
                failures.push(format!("group (workload {wi}, p={p}) panicked: {}", panic.message))
            }
        }
    }
    SimOutcome {
        results,
        resumed,
        cancelled,
        failures,
    }
}

/// Escapes a string for embedding in a JSON document.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes one cell for the artifact: coordinates, model prediction,
/// and (when simulated) the measured metrics plus the
/// prediction-vs-simulation verdict.
fn cell_json(spec: &ExploreSpec, c: &RankedCell, sims: &HashMap<u64, ExploreRecord>) -> String {
    let key = cell_key_of(spec, c);
    let (sim_makespan, sim_response, within_band) = match sims.get(&key) {
        Some(r) => (
            r.makespan.to_string(),
            fmt_f64(r.mean_response),
            c.pred.makespan.covers(r.makespan as f64, 0.0).to_string(),
        ),
        None => ("null".into(), "null".into(), "null".into()),
    };
    format!(
        "{{\"workload\":\"{}\",\"p\":{},\"far_latency\":{},\"k\":{},\"q\":{},\
         \"arbitration\":\"{:?}\",\"replacement\":\"{:?}\",\
         \"predicted_makespan\":{},\"band_lo\":{},\"band_hi\":{},\
         \"predicted_response\":{},\"predicted_inconsistency\":{},\
         \"uncertainty\":{},\"clamped\":{},\"lower_bound\":{},\"upper_bound\":{},\
         \"sim_makespan\":{},\"sim_response\":{},\"within_band\":{}}}",
        esc(&spec.workload_label(c.wi)),
        c.p,
        c.far,
        c.k,
        c.q,
        c.arbitration,
        c.replacement,
        fmt_f64(c.pred.makespan.est),
        fmt_f64(c.pred.makespan.lo),
        fmt_f64(c.pred.makespan.hi),
        fmt_f64(c.pred.mean_response.est),
        fmt_f64(c.pred.inconsistency.est),
        fmt_f64(c.pred.uncertainty),
        c.pred.clamped,
        c.pred.lower_bound,
        c.pred.upper_bound,
        sim_makespan,
        sim_response,
        within_band,
    )
}

/// Arbitration family name for `policy_wins` entries, by [`arb_index`].
const ARB_FAMILY: [&str; ARB_KINDS] = [
    "fifo",
    "priority",
    "dynamic_priority",
    "cycle_priority",
    "cycle_reverse_priority",
    "interleave_priority",
    "sweep_priority",
    "random_pick",
    "fr_fcfs",
];

fn cell_list_json(
    spec: &ExploreSpec,
    cells: &[RankedCell],
    sims: &HashMap<u64, ExploreRecord>,
) -> String {
    let mut out = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&cell_json(spec, c, sims));
        out.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]");
    out
}

/// Serializes the full exploration artifact. Deterministic by
/// construction — fixed field order, grid-ordered cells, no timestamps,
/// floats through the shared shortest-roundtrip formatter — so a fresh
/// and a resumed run of the same grid produce **byte-identical** files.
pub fn artifact_json(
    spec: &ExploreSpec,
    outcome: &RankOutcome,
    sims: &HashMap<u64, ExploreRecord>,
) -> String {
    let mut disagreements = 0u64;
    let mut seen = std::collections::HashSet::new();
    for c in outcome
        .frontier
        .iter()
        .chain(outcome.uncertain.iter())
        .chain(outcome.ranked.iter())
    {
        if !seen.insert(c.index) {
            continue;
        }
        if let Some(r) = sims.get(&cell_key_of(spec, c)) {
            if !c.pred.makespan.covers(r.makespan as f64, 0.0) {
                disagreements += 1;
            }
        }
    }
    let wins: Vec<String> = (0..ARB_KINDS)
        .filter(|&i| outcome.policy_wins[i] > 0)
        .map(|i| {
            format!(
                "{{\"arbitration\":\"{}\",\"wins\":{}}}",
                ARB_FAMILY[i], outcome.policy_wins[i]
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"hbm-explore-v1\",\n  \"grid\": {{\"workloads\":{},\"k\":{},\"q\":{},\
         \"far_latency\":{},\"arbitration\":{},\"replacement\":{},\"total_cells\":{},\
         \"winners\":{}}},\n  \"envelope\": {{\"calibration_cells\":{},\
         \"makespan_median_abs\":{},\"conformance_makespan_median_abs\":{}}},\n  \
         \"policy_wins\": [{}],\n  \"ranked\": {},\n  \"frontier\": {},\n  \
         \"frontier_total\": {},\n  \"uncertain\": {},\n  \"simulated\": {},\n  \
         \"disagreements\": {}\n}}\n",
        spec.workloads.len(),
        spec.k.len(),
        spec.q.len(),
        spec.far_latency.len(),
        spec.arbitration.len(),
        spec.replacement.len(),
        outcome.total_cells,
        outcome.winners,
        ENVELOPE.cells,
        fmt_f64(ENVELOPE.makespan.median_abs),
        fmt_f64(ENVELOPE.conformance_makespan_median_abs),
        wins.join(","),
        cell_list_json(spec, &outcome.ranked, sims),
        cell_list_json(spec, &outcome.frontier, sims),
        outcome.frontier_total,
        cell_list_json(spec, &outcome.uncertain, sims),
        sims.len(),
        disagreements,
    )
}

/// Human-readable table of the ranked cells (the artifact's `ranked`
/// list), with simulated makespans where available.
pub fn summary_table(
    spec: &ExploreSpec,
    outcome: &RankOutcome,
    sims: &HashMap<u64, ExploreRecord>,
) -> ResultTable {
    let mut table = ResultTable::new(
        "Design-space exploration — top configurations by predicted makespan",
        &[
            "workload",
            "p",
            "far",
            "k",
            "q",
            "arbitration",
            "replacement",
            "pred_makespan",
            "band",
            "sim_makespan",
            "within_band",
        ],
    );
    for c in &outcome.ranked {
        let key = cell_key_of(spec, c);
        let (sim, within) = match sims.get(&key) {
            Some(r) => (
                r.makespan.to_string(),
                c.pred.makespan.covers(r.makespan as f64, 0.0).to_string(),
            ),
            None => ("-".into(), "-".into()),
        };
        table.push_row(vec![
            format!("{:?}", spec.workloads[c.wi].spec),
            c.p.to_string(),
            c.far.to_string(),
            c.k.to_string(),
            c.q.to_string(),
            format!("{:?}", c.arbitration),
            format!("{:?}", c.replacement),
            format!("{:.0}", c.pred.makespan.est),
            format!("[{:.0}, {:.0}]", c.pred.makespan.lo, c.pred.makespan.hi),
            sim,
            within,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    static TMP_SEQ: AtomicU32 = AtomicU32::new(0);

    struct TempPath(PathBuf);

    impl TempPath {
        fn new(stem: &str) -> TempPath {
            let n = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
            TempPath(std::env::temp_dir().join(format!(
                "hbm-explore-test-{}-{stem}-{n}.jsonl",
                std::process::id()
            )))
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    const TINY_SPEC: &str = r#"{
        "workloads": [
            {"workload": {"kind": "cyclic", "pages": 16, "reps": 4}, "p": [2, 4], "seed": 1}
        ],
        "k": [8, 16, 32],
        "q": [1, 2],
        "arbitration": ["fifo", "priority"],
        "replacement": ["lru"],
        "sim_seed": 7
    }"#;

    #[test]
    fn expand_axis_list_sorts_and_dedups() {
        let v = Json::parse("[4, 1, 4, 2]").unwrap();
        assert_eq!(expand_axis(&v, "k").unwrap(), vec![1, 2, 4]);
    }

    #[test]
    fn expand_axis_log_range_hits_endpoints() {
        let v = Json::parse(r#"{"min": 4, "max": 4096, "steps": 11, "scale": "log"}"#).unwrap();
        let vals = expand_axis(&v, "k").unwrap();
        assert_eq!(*vals.first().unwrap(), 4);
        assert_eq!(*vals.last().unwrap(), 4096);
        assert!(vals.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
    }

    #[test]
    fn expand_axis_linear_range() {
        let v = Json::parse(r#"{"min": 0, "max": 10, "steps": 6, "scale": "linear"}"#).unwrap();
        assert_eq!(expand_axis(&v, "q").unwrap(), vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn expand_axis_rejects_garbage() {
        for bad in [
            "[]",
            "\"x\"",
            r#"{"min": 4, "max": 2, "steps": 3}"#,
            r#"{"min": 0, "max": 8, "steps": 3, "scale": "log"}"#,
            r#"{"min": 1, "max": 8, "steps": 3, "scale": "cubic"}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(expand_axis(&v, "k").is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn spec_parse_round_trips_the_tiny_grid() {
        let spec = ExploreSpec::parse(TINY_SPEC).unwrap();
        assert_eq!(spec.workloads.len(), 1);
        assert_eq!(spec.workloads[0].p, vec![2, 4]);
        assert_eq!(spec.k, vec![8, 16, 32]);
        assert_eq!(spec.q, vec![1, 2]);
        assert_eq!(spec.far_latency, vec![1], "default far latency");
        assert_eq!(spec.arbitration.len(), 2);
        assert_eq!(spec.replacement, vec![ReplacementKind::Lru]);
        assert_eq!(spec.sim_seed, 7);
        // 2 p-cells × 3 k × 2 q × 2 arb × 1 rep × 1 far.
        assert_eq!(spec.total_cells(), 24);
    }

    #[test]
    fn spec_parse_rejects_missing_axes() {
        for bad in [
            "{}",
            r#"{"workloads": [], "k": [1], "q": [1]}"#,
            r#"{"workloads": [{"workload": {"kind": "cyclic", "pages": 4, "reps": 1}, "p": [1]}], "q": [1]}"#,
            r#"{"workloads": [{"workload": {"kind": "nope"}, "p": [1]}], "k": [1], "q": [1]}"#,
        ] {
            assert!(ExploreSpec::parse(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn pareto_flags_hand_case() {
        // k-major 2×2 grid: rows k ascending, cols q ascending.
        //   (k0,q0)=10  (k0,q1)=9
        //   (k1,q0)=8   (k1,q1)=8
        // (k1,q1) is dominated by (k1,q0): same k, smaller q, equal est.
        let flags = pareto_flags(&[10.0, 9.0, 8.0, 8.0], 2, 2);
        assert_eq!(flags, vec![true, true, true, false]);
    }

    #[test]
    fn pareto_flags_equal_est_prefers_smaller_k() {
        let flags = pareto_flags(&[5.0, 5.0], 2, 1);
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn pareto_flags_all_distinct_frontier() {
        // est strictly decreasing in k, increasing in q: the q0 column and
        // the k-max row trade off; (k0,q1) is dominated by (k0,q0) iff
        // est(k0,q0) <= est(k0,q1).
        let flags = pareto_flags(&[4.0, 6.0, 2.0, 5.0], 2, 2);
        assert_eq!(flags, vec![true, false, true, false]);
    }

    #[test]
    fn rank_is_deterministic_and_respects_caps() {
        let spec = ExploreSpec::parse(TINY_SPEC).unwrap();
        let caps = RankCaps {
            top: 5,
            uncertain: 3,
            frontier: 100,
        };
        let a = rank(&spec, &caps);
        let b = rank(&spec, &caps);
        assert_eq!(a.total_cells, 24);
        assert_eq!(a.winners, 12, "one winner per (p, far, k, q)");
        assert_eq!(a.ranked.len(), 5);
        assert_eq!(a.uncertain.len(), 3);
        assert!(a.frontier_total >= 2, "each group keeps >= 1 frontier cell");
        assert!(
            a.ranked
                .windows(2)
                .all(|w| w[0].pred.makespan.est <= w[1].pred.makespan.est),
            "ranked ascending by estimate"
        );
        assert!(
            a.uncertain
                .windows(2)
                .all(|w| w[0].pred.uncertainty >= w[1].pred.uncertainty),
            "uncertain descending by score"
        );
        let empty = HashMap::new();
        assert_eq!(
            artifact_json(&spec, &a, &empty),
            artifact_json(&spec, &b, &empty),
            "rank pass must be bit-deterministic"
        );
        let wins: u64 = a.policy_wins.iter().sum();
        assert_eq!(wins, a.winners);
    }

    #[test]
    fn explore_record_round_trips_bit_exactly() {
        let rec = ExploreRecord {
            makespan: 123_456,
            mean_response: 0.1 + 0.2,
            inconsistency: 3.5,
            hit_rate: 0.75,
            truncated: false,
        };
        let line = rec.format_line(99);
        let (key, got) = <ExploreRecord as JournalRecord>::parse_line(&line).unwrap();
        assert_eq!(key, 99);
        assert_eq!(got, rec);
        assert_eq!(got.mean_response.to_bits(), rec.mean_response.to_bits());
        // Torn line: must not parse.
        assert!(
            <ExploreRecord as JournalRecord>::parse_line(&line[..line.len() / 2]).is_none()
        );
    }

    #[test]
    fn explore_cell_keys_separate_every_parameter() {
        let k = |w: &str, p, kk, q, far, arb, rep, seed| {
            explore_cell_key(w, p, kk, q, far, arb, rep, seed)
        };
        let base = k(
            "w",
            2,
            8,
            1,
            4,
            ArbitrationKind::Fifo,
            ReplacementKind::Lru,
            0,
        );
        let variants = [
            k("x", 2, 8, 1, 4, ArbitrationKind::Fifo, ReplacementKind::Lru, 0),
            k("w", 3, 8, 1, 4, ArbitrationKind::Fifo, ReplacementKind::Lru, 0),
            k("w", 2, 9, 1, 4, ArbitrationKind::Fifo, ReplacementKind::Lru, 0),
            k("w", 2, 8, 2, 4, ArbitrationKind::Fifo, ReplacementKind::Lru, 0),
            k("w", 2, 8, 1, 5, ArbitrationKind::Fifo, ReplacementKind::Lru, 0),
            k(
                "w",
                2,
                8,
                1,
                4,
                ArbitrationKind::Priority,
                ReplacementKind::Lru,
                0,
            ),
            k(
                "w",
                2,
                8,
                1,
                4,
                ArbitrationKind::Fifo,
                ReplacementKind::Clock,
                0,
            ),
            k("w", 2, 8, 1, 4, ArbitrationKind::Fifo, ReplacementKind::Lru, 1),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "variant {i} collided");
        }
    }

    #[test]
    fn simulate_then_resume_is_byte_identical() {
        let spec = ExploreSpec::parse(TINY_SPEC).unwrap();
        let caps = RankCaps {
            top: 4,
            uncertain: 4,
            frontier: 100,
        };
        let outcome = rank(&spec, &caps);
        let targets = sim_targets(&outcome, 6);
        assert!(!targets.is_empty() && targets.len() <= 6);

        let tmp = TempPath::new("resume");
        let full = {
            let journal = JournalFile::<ExploreRecord>::open(&tmp.0).unwrap();
            let sim = simulate(&spec, &targets, &journal, &ExploreRunOptions::default());
            assert!(sim.failures.is_empty(), "{:?}", sim.failures);
            assert_eq!(sim.resumed, 0);
            assert_eq!(sim.results.len(), targets.len());
            artifact_json(&spec, &outcome, &sim.results)
        };
        // Truncate the journal to its first 2 lines — a mid-run kill —
        // and resume: the artifact must come back byte-identical.
        let text = std::fs::read_to_string(&tmp.0).unwrap();
        let keep: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        std::fs::write(&tmp.0, keep).unwrap();
        let journal = JournalFile::<ExploreRecord>::open(&tmp.0).unwrap();
        assert_eq!(journal.len(), 2);
        let sim = simulate(&spec, &targets, &journal, &ExploreRunOptions::default());
        assert!(sim.failures.is_empty(), "{:?}", sim.failures);
        assert_eq!(sim.resumed, 2);
        assert_eq!(artifact_json(&spec, &outcome, &sim.results), full);
        assert!(full.contains("\"within_band\":"));
        assert!(full.contains("\"schema\": \"hbm-explore-v1\""));
    }

    #[test]
    fn tripped_cancel_skips_everything() {
        let spec = ExploreSpec::parse(TINY_SPEC).unwrap();
        let outcome = rank(
            &spec,
            &RankCaps {
                top: 4,
                uncertain: 4,
                frontier: 100,
            },
        );
        let targets = sim_targets(&outcome, 4);
        let tmp = TempPath::new("cancel");
        let journal = JournalFile::<ExploreRecord>::open(&tmp.0).unwrap();
        let flag = ShutdownFlag::new();
        flag.trip();
        let sim = simulate(
            &spec,
            &targets,
            &journal,
            &ExploreRunOptions {
                cancel: Some(flag),
                ..ExploreRunOptions::default()
            },
        );
        assert_eq!(sim.cancelled, targets.len());
        assert!(sim.results.is_empty());
        assert!(sim.failures.is_empty());
    }

    #[test]
    fn predictions_track_simulation_on_the_tiny_grid() {
        // Not an envelope test (that lives in hbm-model's validation
        // suite) — just a smoke check that sim results land in the same
        // order of magnitude as predictions and inside the proved bounds.
        let spec = ExploreSpec::parse(TINY_SPEC).unwrap();
        let outcome = rank(
            &spec,
            &RankCaps {
                top: 4,
                uncertain: 0,
                frontier: 100,
            },
        );
        let targets: Vec<RankedCell> = outcome.ranked.clone();
        let tmp = TempPath::new("track");
        let journal = JournalFile::<ExploreRecord>::open(&tmp.0).unwrap();
        let sim = simulate(&spec, &targets, &journal, &ExploreRunOptions::default());
        assert!(sim.failures.is_empty(), "{:?}", sim.failures);
        for c in &targets {
            let r = &sim.results[&cell_key_of(&spec, c)];
            assert!(r.makespan >= c.pred.lower_bound);
            assert!(r.makespan <= c.pred.upper_bound);
        }
    }
}
