//! Figure 4: Dynamic Priority (T = 10k) vs FIFO on SpGEMM (4a) and sort
//! (4b).
//!
//! "Randomized remapping has mitigated any advantages that FIFO held in
//! Figure 2": the ratio should now be ≥ ~1 everywhere — Dynamic Priority
//! never loses to FIFO, and still wins big at high thread counts.

use crate::common::{f3, hbm_sizes_for, ResultTable, Scale, TracePool};
use crate::fig2::Panel;
use crate::sweep::{ratio_sweep, summarize, RatioCell};
use hbm_core::ArbitrationKind;
use hbm_traces::TraceOptions;

/// The remap interval used by the paper's Figure 4: `T = 10·k` ticks.
pub const REMAP_MULTIPLIER: u64 = 10;

/// Runs one panel and returns the raw cells (FIFO vs Dynamic Priority).
pub fn run_cells(panel: Panel, scale: Scale, seed: u64) -> Vec<RatioCell> {
    let spec = match panel {
        Panel::SpGemm => scale.spgemm_spec(),
        Panel::Sort => scale.sort_spec(),
    };
    let threads = scale.thread_counts();
    let max_p = *threads.iter().max().expect("nonempty");
    let pool = TracePool::generate(spec, max_p, seed, TraceOptions::default());
    let hbm_sizes = hbm_sizes_for(&pool, scale);
    ratio_sweep(
        &pool,
        &threads,
        &hbm_sizes,
        |k| ArbitrationKind::DynamicPriority {
            period: REMAP_MULTIPLIER * k as u64,
        },
        1,
        seed,
    )
}

/// Runs and renders one Figure 4 panel.
pub fn run(panel: Panel, scale: Scale, seed: u64) -> ResultTable {
    render(panel, &run_cells(panel, scale, seed))
}

/// Renders the Figure 4 table from precomputed cells.
pub fn render(panel: Panel, cells: &[RatioCell]) -> ResultTable {
    let name = match panel {
        Panel::SpGemm => {
            "Figure 4a — SpGEMM: FIFO/DynamicPriority(T=10k) makespan ratio (>1 favours Dynamic)"
        }
        Panel::Sort => {
            "Figure 4b — GNU sort: FIFO/DynamicPriority(T=10k) makespan ratio (>1 favours Dynamic)"
        }
    };
    let mut t = ResultTable::new(
        name,
        &["p", "k", "fifo_makespan", "dynamic_makespan", "ratio"],
    );
    for c in cells {
        t.push_row(vec![
            c.p.to_string(),
            c.k.to_string(),
            c.fifo_makespan.to_string(),
            c.challenger_makespan.to_string(),
            f3(c.ratio()),
        ]);
    }
    let s = summarize(cells);
    t.push_row(vec![
        "summary".into(),
        "-".into(),
        format!("min ratio {:.3} at p={}", s.min_ratio, s.min_ratio_p),
        format!("max ratio {:.2} at p={}", s.max_ratio, s.max_ratio_p),
        "-".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig2;

    #[test]
    fn dynamic_priority_never_loses_badly() {
        // Figure 4's claim, at test scale: the min ratio across the sweep
        // stays close to (or above) 1 — FIFO's Figure 2 advantage is gone.
        let f4 = summarize(&run_cells(Panel::SpGemm, Scale::Small, 11));
        let f2 = summarize(&fig2::run_cells(Panel::SpGemm, Scale::Small, 11));
        // Dynamic's worst cell is no worse than static Priority's worst.
        assert!(
            f4.min_ratio >= f2.min_ratio * 0.95,
            "dynamic min {} vs static min {}",
            f4.min_ratio,
            f2.min_ratio
        );
        assert!(f4.min_ratio > 0.8, "dynamic worst case {}", f4.min_ratio);
        assert!(f4.max_ratio > 1.0, "dynamic still wins at high p");
    }

    #[test]
    fn renders() {
        let t = run(Panel::Sort, Scale::Small, 2);
        assert!(t.title.contains("Figure 4b"));
        assert!(!t.rows.is_empty());
    }
}
