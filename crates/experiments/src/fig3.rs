//! Figure 3: FIFO vs Priority on the adversarial Dataset 3.
//!
//! "100 repetitions of the sequence 1, 2, 3 … 256, but only 1/4 of the
//! memory required to fit every page in HBM. FIFO misses every page and
//! Priority starves threads. FIFO yields a higher makespan by as much as
//! 40×" — and the gap scales linearly with thread count.

use crate::common::{f3, run_batch_flat, ResultTable, Scale, SimSettings};
use hbm_core::{ArbitrationKind, BatchScratch, FlatWorkload};
use hbm_traces::adversarial::{cyclic_workload, figure3_hbm_slots};
use serde::Serialize;
use std::sync::Arc;

/// One Figure 3 point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig3Cell {
    /// Thread count.
    pub p: usize,
    /// HBM slots (= p·pages/4).
    pub k: usize,
    /// FIFO makespan.
    pub fifo_makespan: u64,
    /// Priority makespan.
    pub priority_makespan: u64,
    /// FIFO hit rate (expected: 0).
    pub fifo_hit_rate: f64,
}

impl Fig3Cell {
    /// FIFO/Priority makespan ratio, `None` when the Priority makespan is
    /// 0 (empty workload — the ratio is undefined, not `fifo_makespan`).
    pub fn try_ratio(&self) -> Option<f64> {
        if self.priority_makespan == 0 {
            return None;
        }
        Some(self.fifo_makespan as f64 / self.priority_makespan as f64)
    }

    /// FIFO/Priority makespan ratio.
    ///
    /// # Panics
    /// Panics when the Priority makespan is 0 (see
    /// [`try_ratio`](Self::try_ratio)).
    pub fn ratio(&self) -> f64 {
        self.try_ratio().unwrap_or_else(|| {
            panic!(
                "ratio undefined: Priority makespan is 0 at p={} (empty workload cell?)",
                self.p
            )
        })
    }
}

/// Thread counts for the Figure 3 sweep at each scale.
pub fn thread_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Small => vec![4, 8, 16, 32],
        Scale::Default => vec![4, 8, 16, 32, 64, 128],
        Scale::Full => vec![4, 8, 16, 32, 64, 128, 192, 256],
    }
}

/// Runs the sweep and returns raw cells.
pub fn run_cells(scale: Scale, seed: u64) -> Vec<Fig3Cell> {
    let (pages, reps) = scale.cyclic_params();
    let ps = thread_counts(scale);
    hbm_par::parallel_map(&ps, |&p| {
        // Flatten once per p; both policy cells replay the same shared
        // workload as one two-cell lockstep batch over SoA columns.
        let flat = Arc::new(FlatWorkload::new(&cyclic_workload(p, pages, reps)));
        let k = figure3_hbm_slots(p, pages, 4);
        let settings = [
            SimSettings::new(k, 1, ArbitrationKind::Fifo, seed),
            SimSettings::new(k, 1, ArbitrationKind::Priority, seed),
        ];
        let reports = run_batch_flat(&flat, &settings, &mut BatchScratch::default());
        Fig3Cell {
            p,
            k,
            fifo_makespan: reports[0].makespan,
            priority_makespan: reports[1].makespan,
            fifo_hit_rate: reports[0].hit_rate,
        }
    })
}

/// Renders the Figure 3 chart: makespan vs p for both policies.
pub fn plot_cells(cells: &[Fig3Cell]) -> crate::plot::AsciiPlot {
    use crate::plot::{AsciiPlot, Series};
    AsciiPlot::new(
        "Figure 3 — FIFO vs Priority on Dataset 3 (k = 1/4 of union)",
        "threads p",
        "makespan",
    )
    .log_y()
    .series(Series::new(
        "FIFO",
        'f',
        cells
            .iter()
            .map(|c| (c.p as f64, c.fifo_makespan as f64))
            .collect(),
    ))
    .series(Series::new(
        "Priority",
        'p',
        cells
            .iter()
            .map(|c| (c.p as f64, c.priority_makespan as f64))
            .collect(),
    ))
}

/// Runs and renders the Figure 3 table.
pub fn run(scale: Scale, seed: u64) -> ResultTable {
    render(&run_cells(scale, seed))
}

/// Renders the Figure 3 table from precomputed cells.
pub fn render(cells: &[Fig3Cell]) -> ResultTable {
    let mut t = ResultTable::new(
        "Figure 3 — Dataset 3 (cycle over 256 pages, k = 1/4 of union): FIFO vs Priority",
        &[
            "p",
            "k",
            "fifo_makespan",
            "priority_makespan",
            "ratio",
            "fifo_hit_rate",
        ],
    );
    for c in cells {
        t.push_row(vec![
            c.p.to_string(),
            c.k.to_string(),
            c.fifo_makespan.to_string(),
            c.priority_makespan.to_string(),
            f3(c.ratio()),
            f3(c.fifo_hit_rate),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_hit_rate_is_zero_and_ratio_grows_with_p() {
        let cells = run_cells(Scale::Small, 1);
        for c in &cells {
            assert_eq!(c.fifo_hit_rate, 0.0, "p={}: FIFO must never hit", c.p);
        }
        // Monotone-ish growth of the ratio with thread count.
        let first = cells.first().unwrap().ratio();
        let last = cells.last().unwrap().ratio();
        assert!(
            last > 1.5 * first,
            "ratio should grow with p: {first} -> {last}"
        );
        assert!(last > 2.0, "FIFO must lose badly at p=32: ratio {last}");
    }

    #[test]
    fn fifo_makespan_equals_total_refs_times_refill() {
        // With zero hits and q=1, FIFO's makespan is ~ total references
        // (every reference crosses the channel serially).
        let cells = run_cells(Scale::Small, 1);
        let (pages, reps) = Scale::Small.cyclic_params();
        for c in &cells {
            let total = (c.p * pages as usize * reps) as u64;
            assert!(c.fifo_makespan >= total, "p={}", c.p);
            assert!(c.fifo_makespan <= total + total / 10 + 1000, "p={}", c.p);
        }
    }
}
