//! Figure 5 and Table 1: the makespan/inconsistency trade-off across
//! remap intervals.
//!
//! Figure 5 plots makespan vs inconsistency for FIFO, Priority, and the
//! Dynamic/Cycle Priority families as the permutation interval `T` sweeps;
//! Table 1 reports inconsistency and average response time for
//! `T ∈ {k, 5k, 10k, 100k}`. One sweep produces both: "Most of the
//! inconsistency can be removed with minimal loss in performance."

use crate::common::{
    contended_config, contended_threads, f3, run_cell_flat, ResultTable, Scale, ScratchPool,
    TracePool,
};
use crate::fig2::Panel;
use hbm_core::ArbitrationKind;
use hbm_traces::{TraceOptions, WorkloadSpec};
use serde::Serialize;

/// Outcome of one policy on the trade-off workload.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyPoint {
    /// Policy label ("FIFO", "Priority", "Dynamic Priority T = 10k", …).
    pub label: String,
    /// Remap multiplier if the policy has one (T = mult·k).
    pub multiplier: Option<u64>,
    /// Makespan.
    pub makespan: u64,
    /// Inconsistency (stddev of response times).
    pub inconsistency: f64,
    /// Average response time.
    pub mean_response: f64,
    /// Worst single response time (starvation).
    pub max_response: u64,
}

/// The spec behind one trade-off panel.
fn panel_spec(panel: Panel, scale: Scale) -> WorkloadSpec {
    match panel {
        Panel::SpGemm => scale.spgemm_spec(),
        Panel::Sort => scale.sort_spec(),
    }
}

/// The (p, k) configuration for the trade-off experiment.
///
/// Figure 5 / Table 1 live in the *contended* regime: HBM holds about two
/// per-core working sets while many more threads compete, so static
/// Priority starves the tail and the trade-off is visible. `k` is derived
/// from the pool's memoized probe trace.
pub fn config(pool: &TracePool, scale: Scale) -> (usize, usize) {
    contended_config(pool, scale)
}

/// Runs the trade-off sweep for one panel and returns the configuration
/// alongside the points, so callers that need both (the Figure 5 title
/// quotes p and k) never regenerate traces to rediscover them.
pub fn run_points_with_config(
    panel: Panel,
    scale: Scale,
    seed: u64,
) -> (usize, usize, Vec<PolicyPoint>) {
    let spec = panel_spec(panel, scale);
    let pool = TracePool::generate(
        spec,
        contended_threads(scale),
        seed,
        TraceOptions::default(),
    );
    let (p, k) = config(&pool, scale);
    let flat = pool.flat(p);

    let mut jobs: Vec<(String, Option<u64>, ArbitrationKind)> =
        vec![("FIFO".into(), None, ArbitrationKind::Fifo)];
    for &m in &scale.remap_multipliers() {
        jobs.push((
            format!("Dynamic Priority T = {m}k"),
            Some(m),
            ArbitrationKind::DynamicPriority {
                period: m * k as u64,
            },
        ));
    }
    for &m in &scale.remap_multipliers() {
        jobs.push((
            format!("Cycle Priority T = {m}k"),
            Some(m),
            ArbitrationKind::CyclePriority {
                period: m * k as u64,
            },
        ));
    }
    jobs.push(("Priority".into(), None, ArbitrationKind::Priority));

    let scratches = ScratchPool::new();
    let points = hbm_par::parallel_map(&jobs, |(label, mult, arb)| {
        let r = scratches.with(|scratch| run_cell_flat(&flat, k, 1, *arb, seed, scratch));
        PolicyPoint {
            label: label.clone(),
            multiplier: *mult,
            makespan: r.makespan,
            inconsistency: r.response.inconsistency,
            mean_response: r.response.mean,
            max_response: r.worst_response(),
        }
    });
    (p, k, points)
}

/// Runs the trade-off sweep for one panel; returns points in a fixed
/// order: FIFO, Dynamic×multipliers, Cycle×multipliers, Priority.
pub fn run_points(panel: Panel, scale: Scale, seed: u64) -> Vec<PolicyPoint> {
    run_points_with_config(panel, scale, seed).2
}

/// Renders the Figure 5 chart: inconsistency (x, log) vs makespan (y).
pub fn plot_points(points: &[PolicyPoint], title: &str) -> crate::plot::AsciiPlot {
    use crate::plot::{AsciiPlot, Series};
    let pick = |prefix: &str| -> Vec<(f64, f64)> {
        points
            .iter()
            .filter(|p| p.label.starts_with(prefix))
            .map(|p| (p.inconsistency.max(1e-3), p.makespan as f64))
            .collect()
    };
    AsciiPlot::new(
        title,
        "inconsistency (stddev of response times)",
        "makespan",
    )
    .log_x()
    .series(Series::new("FIFO", 'F', pick("FIFO")))
    .series(Series::new(
        "Dynamic Priority (T sweep)",
        'd',
        pick("Dynamic"),
    ))
    .series(Series::new("Cycle Priority (T sweep)", 'c', pick("Cycle")))
    .series(Series::new("Priority", 'P', pick("Priority")))
}

/// Figure 5 rendering: makespan vs inconsistency per policy point.
pub fn run_fig5(panel: Panel, scale: Scale, seed: u64) -> ResultTable {
    let (p, k, points) = run_points_with_config(panel, scale, seed);
    let name = match panel {
        Panel::SpGemm => format!(
            "Figure 5a — SpGEMM (p={p}, k={k}): inconsistency vs makespan across schemes and T"
        ),
        Panel::Sort => format!(
            "Figure 5b — GNU sort (p={p}, k={k}): inconsistency vs makespan across schemes and T"
        ),
    };
    let mut t = ResultTable::new(
        name,
        &["policy", "inconsistency", "makespan", "max_response"],
    );
    for pt in &points {
        t.push_row(vec![
            pt.label.clone(),
            f3(pt.inconsistency),
            pt.makespan.to_string(),
            pt.max_response.to_string(),
        ]);
    }
    t
}

/// Table 1 rendering: inconsistency and average response time, for the
/// paper's multipliers {1, 5, 10, 100} plus FIFO and Priority.
pub fn run_table1(panel: Panel, scale: Scale, seed: u64) -> ResultTable {
    let points = run_points(panel, scale, seed);
    let paper_mults = [1u64, 5, 10, 100];
    let name = match panel {
        Panel::SpGemm => "Table 1a — SpGEMM: inconsistency and average response time",
        Panel::Sort => "Table 1b — GNU sort: inconsistency and average response time",
    };
    let mut t = ResultTable::new(name, &["queuing_policy", "inconsistency", "response_time"]);
    for pt in &points {
        let keep = match pt.multiplier {
            None => true,
            Some(m) => paper_mults.contains(&m),
        };
        if keep {
            t.push_row(vec![
                pt.label.clone(),
                f3(pt.inconsistency),
                f3(pt.mean_response),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_label<'a>(points: &'a [PolicyPoint], label: &str) -> &'a PolicyPoint {
        points.iter().find(|p| p.label == label).expect("label")
    }

    #[test]
    fn paper_orderings_hold_at_small_scale() {
        let points = run_points(Panel::SpGemm, Scale::Small, 5);
        let fifo = by_label(&points, "FIFO");
        let prio = by_label(&points, "Priority");

        // Table 1's claims: FIFO has lowest inconsistency and highest mean
        // response; Priority the opposite.
        for pt in &points {
            if pt.label != "FIFO" {
                assert!(
                    pt.inconsistency >= fifo.inconsistency * 0.9,
                    "{}: inconsistency {} below FIFO's {}",
                    pt.label,
                    pt.inconsistency,
                    fifo.inconsistency
                );
                assert!(
                    pt.mean_response <= fifo.mean_response * 1.1,
                    "{}: response {} above FIFO's {}",
                    pt.label,
                    pt.mean_response,
                    fifo.mean_response
                );
            }
        }
        assert!(
            prio.inconsistency >= points.iter().map(|p| p.inconsistency).fold(0.0, f64::max) * 0.99,
            "Priority has (near-)max inconsistency"
        );
        // Figure 5's claim: FIFO has the worst makespan.
        for pt in &points {
            assert!(
                pt.makespan <= fifo.makespan + fifo.makespan / 10,
                "{} makespan {} should not exceed FIFO's {} by much",
                pt.label,
                pt.makespan,
                fifo.makespan
            );
        }
    }

    #[test]
    fn more_frequent_remap_means_less_inconsistency() {
        let points = run_points(Panel::SpGemm, Scale::Small, 5);
        let dyn_points: Vec<&PolicyPoint> = points
            .iter()
            .filter(|p| p.label.starts_with("Dynamic"))
            .collect();
        assert!(dyn_points.len() >= 2);
        // T=1k vs the largest multiplier: smaller T, smaller inconsistency.
        let small_t = dyn_points.first().unwrap();
        let large_t = dyn_points.last().unwrap();
        assert!(
            small_t.inconsistency <= large_t.inconsistency,
            "T=k {} should have lower inconsistency than T=100k {}",
            small_t.inconsistency,
            large_t.inconsistency
        );
    }

    #[test]
    fn tables_render() {
        let f5 = run_fig5(Panel::Sort, Scale::Small, 2);
        assert!(f5.title.contains("Figure 5b"));
        let t1 = run_table1(Panel::Sort, Scale::Small, 2);
        assert!(t1.rows.iter().any(|r| r[0] == "FIFO"));
        assert!(t1.rows.iter().any(|r| r[0] == "Priority"));
    }
}
