//! `repro calibrate` — fits `hbm-model`'s constants against the simulator.
//!
//! The calibration corpus deliberately spans every regime the model will
//! be asked to screen:
//!
//! * the **288-cell conformance grid** (`hbm_core::testkit::conformance_grid`)
//!   — every arbitration × replacement combination on four adversarial
//!   workload shapes at two `(k, q, far)` parameter sets;
//! * **Figure-2-style grids** — SpGEMM and sort workloads across
//!   `p × k` at `Scale::Small`, FIFO vs Priority (the realistic-workload
//!   regime);
//! * a **Figure-3-style grid** — the cyclic Dataset-3 adversary across
//!   `p × k × q` (the thrash regime where policies diverge hardest);
//! * a **faulted sub-grid** — deterministic random fault plans over a
//!   conformance workload, populating the blocked-fraction envelope.
//!
//! Fitting is staged (each stage's parameters are independent of the
//! next): the makespan shape parameters (α, per-arbitration β) by grid
//! search minimizing summed squared log-ratio with the scale κ profiled
//! out as the per-(arb, rep) geometric mean of `sim/raw`; then the
//! response wait weight the same way; then the inconsistency κ. The
//! resulting signed-error quantiles become the committed [`Envelope`].
//!
//! The command prints the fitted constants as Rust literals to paste
//! into `crates/model/src/calibration.rs` and writes the envelope
//! artifact (`results/model_envelope.json`). Everything is deterministic
//! — same simulator, same corpus, same constants on every run.

use crate::common::{hbm_sizes_for, Scale, TracePool};
use hbm_core::testkit::{conformance_grid, grid_workloads, random_fault_plan};
use hbm_core::{ArbitrationKind, FaultPlan, ReplacementKind, Report, SimBuilder};
use hbm_model::calibration::{Calibration, Envelope, MetricEnvelope};
use hbm_model::predict::{arb_index, raw_estimates, rep_index, ARB_KINDS, REP_KINDS};
use hbm_model::{FaultSummary, ModelConfig};
use hbm_traces::analysis::WorkloadSummary;
use hbm_traces::TraceOptions;

/// One observation: a simulated cell paired with everything the model
/// needs to predict it.
#[derive(Debug, Clone)]
pub struct Obs {
    /// Index into [`Corpus::summaries`].
    pub summary: usize,
    /// The cell as the model sees it.
    pub cfg: ModelConfig,
    /// True for conformance-grid cells (they gate the acceptance
    /// criterion separately).
    pub conformance: bool,
    /// True for cells simulated under a fault plan.
    pub faulted: bool,
    /// Simulated makespan.
    pub sim_makespan: f64,
    /// Simulated mean response time.
    pub sim_response: f64,
    /// Simulated inconsistency.
    pub sim_inconsistency: f64,
    /// Simulated blocked fraction (`outage_blocked_ticks / makespan`).
    pub sim_blocked: f64,
}

/// The calibration corpus: deduplicated workload summaries plus every
/// simulated observation.
#[derive(Debug, Default)]
pub struct Corpus {
    /// Workload summaries referenced by [`Obs::summary`].
    pub summaries: Vec<WorkloadSummary>,
    /// Simulated cells.
    pub obs: Vec<Obs>,
}

impl Corpus {
    fn push(&mut self, summary: usize, cfg: ModelConfig, conformance: bool, r: &Report) {
        if r.truncated || r.makespan < 2 {
            return; // a truncated makespan is not ground truth
        }
        self.obs.push(Obs {
            summary,
            cfg,
            conformance,
            faulted: !cfg.faults.is_zero(),
            sim_makespan: r.makespan as f64,
            sim_response: r.response.mean,
            sim_inconsistency: r.response.inconsistency,
            sim_blocked: r.faults.outage_blocked_ticks as f64 / r.makespan as f64,
        });
    }
}

fn same_traces(a: &hbm_core::Workload, b: &hbm_core::Workload) -> bool {
    a.traces().len() == b.traces().len()
        && a.traces()
            .iter()
            .zip(b.traces())
            .all(|(x, y)| x.as_slice() == y.as_slice())
}

fn model_cfg(c: &hbm_core::SimConfig, faults: FaultSummary) -> ModelConfig {
    ModelConfig::new(c.hbm_slots, c.channels, c.arbitration, c.replacement)
        .far_latency(c.far_latency)
        .faults(faults)
}

/// Simulates the whole calibration corpus. Deterministic; a few seconds
/// at `Scale::Small`-sized grids.
pub fn build_corpus() -> Corpus {
    let mut corpus = Corpus::default();

    // 1. The conformance grid: all 36 policy combinations.
    let shapes = grid_workloads();
    let shape_summaries: Vec<usize> = shapes
        .iter()
        .map(|w| {
            corpus.summaries.push(WorkloadSummary::from_workload(w));
            corpus.summaries.len() - 1
        })
        .collect();
    for cell in conformance_grid() {
        // Identify the shape by exact trace-length profile (the four
        // grid shapes are distinguishable by construction).
        let si = shapes
            .iter()
            .position(|w| same_traces(w, &cell.workload))
            .expect("conformance cell uses a grid workload");
        let r = SimBuilder::from_config(cell.config).run(&cell.workload);
        corpus.push(
            shape_summaries[si],
            model_cfg(&cell.config, FaultSummary::NONE),
            true,
            &r,
        );
    }

    // 2. Figure-2-style realistic grids: SpGEMM + sort, p × k, FIFO vs
    // Priority at q = 1 (the paper's Figure 2 axes).
    let scale = Scale::Small;
    for spec in [scale.spgemm_spec(), scale.sort_spec()] {
        let threads = scale.thread_counts();
        let max_p = *threads.iter().max().expect("nonempty");
        let pool = TracePool::generate(spec, max_p, 0xCA11, TraceOptions::default());
        let sizes = hbm_sizes_for(&pool, scale);
        for &p in &threads {
            let w = pool.workload(p);
            corpus.summaries.push(WorkloadSummary::from_workload(&w));
            let si = corpus.summaries.len() - 1;
            for &k in &sizes {
                for arb in [ArbitrationKind::Fifo, ArbitrationKind::Priority] {
                    let config = SimBuilder::new()
                        .hbm_slots(k)
                        .channels(1)
                        .arbitration(arb)
                        .replacement(ReplacementKind::Lru)
                        .config()
                        .to_owned();
                    let r = SimBuilder::from_config(config).run(&w);
                    corpus.push(si, model_cfg(&config, FaultSummary::NONE), false, &r);
                }
            }
        }
    }

    // 3. Figure-3-style thrash grid: the cyclic adversary across
    // p × k × q with the priority family in play.
    let (pages, reps) = scale.cyclic_params();
    for p in [2usize, 4, 8, 16] {
        let w = hbm_traces::adversarial::cyclic_workload(p, pages, reps);
        corpus.summaries.push(WorkloadSummary::from_workload(&w));
        let si = corpus.summaries.len() - 1;
        let full = p * pages as usize;
        for k in [full / 4, full / 2, full] {
            for q in [1usize, 2] {
                for arb in [
                    ArbitrationKind::Fifo,
                    ArbitrationKind::Priority,
                    ArbitrationKind::DynamicPriority { period: k as u64 },
                ] {
                    let config = SimBuilder::new()
                        .hbm_slots(k.max(1))
                        .channels(q)
                        .arbitration(arb)
                        .replacement(ReplacementKind::Lru)
                        .config()
                        .to_owned();
                    let r = SimBuilder::from_config(config).run(&w);
                    corpus.push(si, model_cfg(&config, FaultSummary::NONE), false, &r);
                }
            }
        }
    }

    // 4. Faulted sub-grid: deterministic fault plans over the cyclic
    // conformance shape — the only source of nonzero blocked fractions.
    let w = &shapes[0];
    let si = shape_summaries[0];
    for fault_seed in 0..8u64 {
        let plan = random_fault_plan(fault_seed, 150);
        if plan.is_empty() {
            continue;
        }
        for (k, q, far) in [(4usize, 1usize, 1u64), (8, 2, 3)] {
            for arb in [ArbitrationKind::Fifo, ArbitrationKind::Priority] {
                let builder = SimBuilder::new()
                    .hbm_slots(k)
                    .channels(q)
                    .far_latency(far)
                    .arbitration(arb)
                    .replacement(ReplacementKind::Lru)
                    .fault_plan(plan.clone());
                let config = builder.config().to_owned();
                let r = builder.run(w);
                corpus.push(si, model_cfg(&config, fault_summary(&plan, q)), false, &r);
            }
        }
    }

    corpus
}

fn fault_summary(plan: &FaultPlan, q: usize) -> FaultSummary {
    FaultSummary::from_plan(plan, q)
}

/// κ per (arb, rep) as `exp(median log(sim/raw))`. The grid search uses
/// the squared-log loss (smooth, profile-friendly); the *final* scale is
/// the median ratio instead, which directly minimizes the median
/// absolute log error each combination contributes to the envelope gate.
fn median_kappa(
    corpus: &Corpus,
    cal: &Calibration,
    pick: impl Fn(&Obs, &hbm_model::predict::RawEstimates) -> Option<(f64, f64)>,
) -> [[f64; REP_KINDS]; ARB_KINDS] {
    let mut logs: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); REP_KINDS]; ARB_KINDS];
    for o in &corpus.obs {
        let raw = raw_estimates(cal, &corpus.summaries[o.summary], &o.cfg);
        if let Some((sim, raw_v)) = pick(o, &raw) {
            if sim > 0.0 && raw_v > 0.0 {
                logs[arb_index(o.cfg.arbitration)][rep_index(o.cfg.replacement)]
                    .push((sim / raw_v).ln());
            }
        }
    }
    let mut kappa = [[1.0f64; REP_KINDS]; ARB_KINDS];
    for a in 0..ARB_KINDS {
        for r in 0..REP_KINDS {
            let v = &mut logs[a][r];
            if !v.is_empty() {
                v.sort_by(|x, y| x.partial_cmp(y).unwrap());
                kappa[a][r] = v[((v.len() - 1) as f64 * 0.5).round() as usize].exp();
            }
        }
    }
    kappa
}

/// A fitted calibration plus its measured envelope.
#[derive(Debug, Clone)]
pub struct CalibrationRun {
    /// The fitted constants.
    pub fit: Calibration,
    /// The signed-error envelope measured under `fit`.
    pub envelope: Envelope,
}

/// Geometric-mean κ per (arb, rep) of `sim/raw`, with the summed squared
/// log-ratio residual it leaves. `pick` extracts (sim, raw) per obs and
/// returns `None` to exclude an observation from this metric's fit.
fn profile_kappa(
    corpus: &Corpus,
    cal: &Calibration,
    pick: impl Fn(&Obs, &hbm_model::predict::RawEstimates) -> Option<(f64, f64)>,
) -> ([[f64; REP_KINDS]; ARB_KINDS], f64) {
    let mut log_sum = [[0.0f64; REP_KINDS]; ARB_KINDS];
    let mut count = [[0u32; REP_KINDS]; ARB_KINDS];
    let mut ratios: Vec<(usize, usize, f64)> = Vec::with_capacity(corpus.obs.len());
    for o in &corpus.obs {
        let raw = raw_estimates(cal, &corpus.summaries[o.summary], &o.cfg);
        if let Some((sim, raw_v)) = pick(o, &raw) {
            if sim > 0.0 && raw_v > 0.0 {
                let (a, r) = (arb_index(o.cfg.arbitration), rep_index(o.cfg.replacement));
                let lr = (sim / raw_v).ln();
                log_sum[a][r] += lr;
                count[a][r] += 1;
                ratios.push((a, r, lr));
            }
        }
    }
    let mut kappa = [[1.0f64; REP_KINDS]; ARB_KINDS];
    for a in 0..ARB_KINDS {
        for r in 0..REP_KINDS {
            if count[a][r] > 0 {
                kappa[a][r] = (log_sum[a][r] / count[a][r] as f64).exp();
            }
        }
    }
    let residual = ratios
        .iter()
        .map(|&(a, r, lr)| {
            let d = lr - kappa[a][r].ln();
            d * d
        })
        .sum();
    (kappa, residual)
}

/// Fits the calibration on a corpus and measures the resulting envelope.
pub fn fit(corpus: &Corpus) -> CalibrationRun {
    let mut cal = Calibration::uncalibrated();

    // Stage 1: per-arbitration (β, α) by grid search, κ_makespan
    // profiled out. Both parameters only affect the arbitration's own
    // observations, so each family's search is independent.
    let alphas: Vec<f64> = (0..=10).map(|i| i as f64 * 0.05).collect();
    let betas: Vec<f64> = (0..=20).map(|i| i as f64 * 0.05).collect();
    for a in 0..ARB_KINDS {
        let mut trial = cal.clone();
        let mut best = (f64::INFINITY, cal.beta[a], cal.alpha[a]);
        for &beta in &betas {
            for &alpha in &alphas {
                trial.beta[a] = beta;
                trial.alpha[a] = alpha;
                let (_, residual) = profile_kappa(corpus, &trial, |o, raw| {
                    (arb_index(o.cfg.arbitration) == a).then_some((o.sim_makespan, raw.makespan))
                });
                if residual < best.0 {
                    best = (residual, beta, alpha);
                }
            }
        }
        cal.beta[a] = best.1;
        cal.alpha[a] = best.2;
    }
    // The makespan scale anchors to the conformance grid when a combo
    // has conformance cells (all 36 do — the grid covers the full
    // arb × rep cross product and is the acceptance gate); the larger
    // fig2/fig3 cells inform the shape parameters above and the measured
    // envelope below, but must not drag a combination's median ratio
    // away from the canonical validation corpus.
    let has_conformance = corpus.obs.iter().any(|o| o.conformance);
    cal.kappa_makespan = median_kappa(corpus, &cal, |o, raw| {
        (o.conformance || !has_conformance).then_some((o.sim_makespan, raw.makespan))
    });

    // Stage 2: the queueing wait weight, κ_response profiled out.
    let mut best_wait = (f64::INFINITY, cal.wait_weight);
    for wait in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let mut trial = cal.clone();
        trial.wait_weight = wait;
        let (_, residual) = profile_kappa(corpus, &trial, |o, raw| {
            (o.sim_response >= 1.0).then_some((o.sim_response, raw.mean_response))
        });
        if residual < best_wait.0 {
            best_wait = (residual, wait);
        }
    }
    cal.wait_weight = best_wait.1;
    cal.kappa_response = median_kappa(corpus, &cal, |o, raw| {
        (o.sim_response >= 1.0).then_some((o.sim_response, raw.mean_response))
    });

    // Stage 3: inconsistency scale (only where both sides are nonzero —
    // a zero stddev carries no scale information).
    cal.kappa_inconsistency = median_kappa(corpus, &cal, |o, raw| {
        (o.sim_inconsistency > 1e-9 && raw.inconsistency > 1e-9)
            .then_some((o.sim_inconsistency, raw.inconsistency))
    });

    CalibrationRun {
        envelope: measure_envelope(corpus, &cal),
        fit: cal,
    }
}

/// Measures the signed-error envelope of `cal` over the corpus. Band
/// attachment needs an envelope, but the *estimates* do not, so this
/// predicts with a zero envelope and reads the point estimates.
pub fn measure_envelope(corpus: &Corpus, cal: &Calibration) -> Envelope {
    let zero = Envelope {
        makespan: MetricEnvelope::ZERO,
        mean_response: MetricEnvelope::ZERO,
        inconsistency: MetricEnvelope::ZERO,
        blocked_frac: MetricEnvelope::ZERO,
        cells: 0,
        conformance_makespan_median_abs: 0.0,
    };
    let mut mk = Vec::new();
    let mut mk_conformance = Vec::new();
    let mut resp = Vec::new();
    let mut inc = Vec::new();
    let mut blocked = Vec::new();
    for o in &corpus.obs {
        let pred = cal.predict_with(&zero, &corpus.summaries[o.summary], &o.cfg);
        let mk_err = (pred.makespan.est - o.sim_makespan) / o.sim_makespan;
        mk.push(mk_err);
        if o.conformance {
            mk_conformance.push(mk_err.abs());
        }
        if o.sim_response >= 1.0 {
            resp.push((pred.mean_response.est - o.sim_response) / o.sim_response);
        }
        // Near-zero simulated stddevs would blow relative errors up, so
        // the inconsistency envelope uses max(sim, 1) as denominator.
        inc.push((pred.inconsistency.est - o.sim_inconsistency) / o.sim_inconsistency.max(1.0));
        if o.faulted {
            blocked.push(pred.blocked_frac.est - o.sim_blocked);
        }
    }
    mk_conformance.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let conformance_median = if mk_conformance.is_empty() {
        0.0
    } else {
        mk_conformance[((mk_conformance.len() - 1) as f64 * 0.5).round() as usize]
    };
    Envelope {
        makespan: MetricEnvelope::from_errors(mk),
        mean_response: MetricEnvelope::from_errors(resp),
        inconsistency: MetricEnvelope::from_errors(inc),
        blocked_frac: MetricEnvelope::from_errors(blocked),
        cells: corpus.obs.len() as u64,
        conformance_makespan_median_abs: conformance_median,
    }
}

/// Runs the whole calibration: corpus, fit, envelope.
pub fn run() -> CalibrationRun {
    fit(&build_corpus())
}

fn lit(x: f64) -> String {
    let s = format!("{x:?}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

fn lit_table(name: &str, t: &[[f64; REP_KINDS]; ARB_KINDS]) -> String {
    let rows: Vec<String> = t
        .iter()
        .map(|row| {
            let cells: Vec<String> = row.iter().map(|&x| lit(x)).collect();
            format!("        [{}],", cells.join(", "))
        })
        .collect();
    format!("    {name}: [\n{}\n    ],", rows.join("\n"))
}

fn lit_metric(name: &str, m: &MetricEnvelope) -> String {
    format!(
        "    {name}: MetricEnvelope {{\n        p05: {},\n        p25: {},\n        p50: {},\n        p75: {},\n        p95: {},\n        median_abs: {},\n    }},",
        lit(m.p05),
        lit(m.p25),
        lit(m.p50),
        lit(m.p75),
        lit(m.p95),
        lit(m.median_abs),
    )
}

/// Renders the fitted constants as the Rust source to paste over
/// `FIT`/`ENVELOPE` in `crates/model/src/calibration.rs`.
pub fn rust_literals(run: &CalibrationRun) -> String {
    let beta: Vec<String> = run.fit.beta.iter().map(|&b| lit(b)).collect();
    let alpha: Vec<String> = run.fit.alpha.iter().map(|&a| lit(a)).collect();
    let mut out = String::new();
    out.push_str("pub static FIT: Calibration = Calibration {\n");
    out.push_str(&format!("    beta: [{}],\n", beta.join(", ")));
    out.push_str(&format!("    alpha: [{}],\n", alpha.join(", ")));
    out.push_str(&format!("    wait_weight: {},\n", lit(run.fit.wait_weight)));
    out.push_str(&lit_table("kappa_makespan", &run.fit.kappa_makespan));
    out.push('\n');
    out.push_str(&lit_table("kappa_response", &run.fit.kappa_response));
    out.push('\n');
    out.push_str(&lit_table("kappa_inconsistency", &run.fit.kappa_inconsistency));
    out.push_str("\n};\n\n");
    out.push_str("pub static ENVELOPE: Envelope = Envelope {\n");
    out.push_str(&lit_metric("makespan", &run.envelope.makespan));
    out.push('\n');
    out.push_str(&lit_metric("mean_response", &run.envelope.mean_response));
    out.push('\n');
    out.push_str(&lit_metric("inconsistency", &run.envelope.inconsistency));
    out.push('\n');
    out.push_str(&lit_metric("blocked_frac", &run.envelope.blocked_frac));
    out.push('\n');
    out.push_str(&format!("    cells: {},\n", run.envelope.cells));
    out.push_str(&format!(
        "    conformance_makespan_median_abs: {},\n",
        lit(run.envelope.conformance_makespan_median_abs)
    ));
    out.push_str("};\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A conformance-only corpus: fast enough for a unit test, broad
    /// enough to exercise every (arb, rep) table entry.
    fn small_corpus() -> Corpus {
        let mut corpus = Corpus::default();
        let shapes = grid_workloads();
        let idx: Vec<usize> = shapes
            .iter()
            .map(|w| {
                corpus.summaries.push(WorkloadSummary::from_workload(w));
                corpus.summaries.len() - 1
            })
            .collect();
        for cell in conformance_grid() {
            let si = shapes
                .iter()
                .position(|w| same_traces(w, &cell.workload))
                .unwrap();
            let r = SimBuilder::from_config(cell.config).run(&cell.workload);
            corpus.push(idx[si], model_cfg(&cell.config, FaultSummary::NONE), true, &r);
        }
        corpus
    }

    #[test]
    fn fit_on_conformance_grid_is_finite_and_tight() {
        let corpus = small_corpus();
        assert!(corpus.obs.len() > 250, "grid cells: {}", corpus.obs.len());
        let run = fit(&corpus);
        for a in 0..ARB_KINDS {
            assert!(run.fit.beta[a].is_finite());
            for r in 0..REP_KINDS {
                assert!(run.fit.kappa_makespan[a][r].is_finite());
                assert!(run.fit.kappa_makespan[a][r] > 0.0);
            }
        }
        // The fitted model must already meet the acceptance bar on the
        // grid it was fitted on (the committed run fits a wider corpus).
        assert!(
            run.envelope.conformance_makespan_median_abs <= 0.15,
            "median |rel err| {} > 0.15",
            run.envelope.conformance_makespan_median_abs
        );
    }

    #[test]
    fn rust_literals_shape() {
        let run = fit(&small_corpus());
        let src = rust_literals(&run);
        assert!(src.contains("pub static FIT: Calibration"));
        assert!(src.contains("kappa_inconsistency"));
        assert!(src.contains("pub static ENVELOPE: Envelope"));
        // Every float literal must parse as f64 source (decimal point).
        assert!(!src.contains("alpha: 0,"));
    }
}
