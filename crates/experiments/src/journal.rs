//! Crash-safe checkpoint/resume journal for ratio sweeps.
//!
//! A sweep over a large (p, k) grid can be killed mid-run — by a CI
//! timeout, an OOM reaper, or a ^C. The journal makes that survivable:
//! every completed cell is appended to an on-disk JSONL file *as it
//! finishes*, keyed by a hash of the cell's full configuration, and a
//! restarted sweep skips every journaled cell. The final output is
//! assembled in deterministic grid order from journaled + fresh cells, so
//! a resumed run produces **byte-identical** output to an uninterrupted
//! one.
//!
//! Two representation choices make the byte-identical guarantee hold:
//!
//! * f64 fields are journaled as their IEEE-754 **bit patterns** (hex),
//!   not as decimal text, so a resumed cell's floats are exactly the
//!   floats the original run computed — no round-trip through a decimal
//!   formatter.
//! * A line is only trusted if it parses completely and ends in `}`. A
//!   process killed mid-append leaves at most one partial trailing line,
//!   which is ignored; that cell simply re-runs.

use crate::common::{run_batch_budgeted_flat, CellBudget, ScratchPool, SimSettings, TracePool};
use crate::sweep::RatioCell;
use hbm_core::fxhash::FxHasher;
use hbm_core::{ArbitrationKind, BatchScratch};
use hbm_serve::json::{fmt_f64, Json};
use hbm_serve::shutdown::ShutdownFlag;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// Journal format tag, hashed into every cell key. Bumping it invalidates
/// journals written by incompatible versions (their keys never match).
const FORMAT_TAG: &str = "hbm-sweep-journal-v1";

/// Hash key identifying one sweep cell: the sweep `tag` (workload family +
/// anything not captured by the numeric parameters), the grid coordinates,
/// and the challenger policy. Two cells collide only if every input that
/// affects the simulation matches.
pub fn cell_key(
    tag: &str,
    p: usize,
    k: usize,
    q: usize,
    seed: u64,
    challenger: ArbitrationKind,
) -> u64 {
    let mut h = FxHasher::default();
    h.write(FORMAT_TAG.as_bytes());
    h.write(tag.as_bytes());
    h.write_usize(p);
    h.write_usize(k);
    h.write_usize(q);
    h.write_u64(seed);
    h.write(format!("{challenger:?}").as_bytes());
    h.finish()
}

/// A record type that can live in a [`JournalFile`]: one journal line per
/// record, keyed by a config hash. Implementations must keep the
/// byte-identical-resume contract: `parse_line(format_line(k, r)) ==
/// Some((k, r))` with f64 fields round-tripping **bit-exactly** (journal
/// them as `{:016x}` bit patterns, not decimal text).
pub trait JournalRecord: Sized {
    /// Serializes one record (plus its key) as a single `\n`-terminated
    /// JSONL line ending in `}`.
    fn format_line(&self, key: u64) -> String;
    /// Parses one journal line; `None` for partial or corrupt lines (the
    /// cell re-runs — a journal is a cache, never an authority).
    fn parse_line(line: &str) -> Option<(u64, Self)>;
}

/// Append-only JSONL journal of completed cells of any [`JournalRecord`]
/// type. [`SweepJournal`] is the ratio-sweep instantiation; the design
/// explorer journals its simulated frontier cells through the same
/// machinery (`JournalFile<ExploreRecord>`).
pub struct JournalFile<T> {
    path: PathBuf,
    cells: HashMap<u64, T>,
    writer: Mutex<File>,
}

/// Append-only JSONL journal of completed [`RatioCell`]s.
pub type SweepJournal = JournalFile<RatioCell>;

impl<T: JournalRecord> JournalFile<T> {
    /// Opens (creating if absent) the journal at `path`, loading every
    /// complete line already present. A partial trailing line — the
    /// signature of a mid-append kill — is tolerated and ignored.
    pub fn open(path: impl AsRef<Path>) -> io::Result<JournalFile<T>> {
        let path = path.as_ref().to_path_buf();
        let mut cells = HashMap::new();
        match File::open(&path) {
            Ok(mut f) => {
                let mut text = String::new();
                f.read_to_string(&mut text)?;
                for line in text.lines() {
                    if let Some((key, cell)) = T::parse_line(line) {
                        cells.insert(key, cell);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let writer = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(JournalFile {
            path,
            cells,
            writer: Mutex::new(writer),
        })
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of cells loaded from disk at open time.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells were loaded at open time.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The journaled cell for `key`, if its run already completed.
    pub fn get(&self, key: u64) -> Option<&T> {
        self.cells.get(&key)
    }

    /// Appends one completed cell and flushes it to disk before
    /// returning, so a kill after `record` never loses the cell.
    pub fn record(&self, key: u64, cell: &T) -> io::Result<()> {
        let line = cell.format_line(key);
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        w.write_all(line.as_bytes())?;
        w.flush()
    }
}

impl JournalRecord for RatioCell {
    fn format_line(&self, key: u64) -> String {
        format_line(key, self)
    }

    fn parse_line(line: &str) -> Option<(u64, RatioCell)> {
        parse_line(line)
    }
}

fn format_line(key: u64, c: &RatioCell) -> String {
    format!(
        "{{\"key\":\"{key:016x}\",\"p\":{},\"k\":{},\"fifo_makespan\":{},\
         \"challenger_makespan\":{},\"fifo_hit_rate_bits\":\"{:016x}\",\
         \"challenger_hit_rate_bits\":\"{:016x}\",\"truncated\":{}}}\n",
        c.p,
        c.k,
        c.fifo_makespan,
        c.challenger_makespan,
        c.fifo_hit_rate.to_bits(),
        c.challenger_hit_rate.to_bits(),
        c.truncated,
    )
}

/// Extracts `"field":"<16 hex digits>"` from a parsed journal object.
pub(crate) fn json_hex(v: &Json, field: &str) -> Option<u64> {
    let s = v.get(field)?.as_str()?;
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Parses one journal line via the shared [`hbm_serve::json`] codec;
/// `None` for partial or corrupt lines (the cell re-runs — the journal is
/// a cache, never an authority). The historical hand-rolled field
/// scanners accepted exactly the lines [`Json::parse`] accepts here, so
/// journals written by older versions load unchanged.
fn parse_line(line: &str) -> Option<(u64, RatioCell)> {
    let line = line.trim_end();
    if !line.starts_with('{') || !line.ends_with('}') {
        return None;
    }
    let v = Json::parse(line).ok()?;
    let key = json_hex(&v, "key")?;
    Some((
        key,
        RatioCell {
            p: v.get("p")?.as_usize()?,
            k: v.get("k")?.as_usize()?,
            fifo_makespan: v.get("fifo_makespan")?.as_u64()?,
            challenger_makespan: v.get("challenger_makespan")?.as_u64()?,
            fifo_hit_rate: f64::from_bits(json_hex(&v, "fifo_hit_rate_bits")?),
            challenger_hit_rate: f64::from_bits(json_hex(&v, "challenger_hit_rate_bits")?),
            truncated: v.get("truncated")?.as_bool()?,
        },
    ))
}

/// Execution options for a journaled sweep.
#[derive(Clone, Default)]
pub struct SweepRunOptions {
    /// Per-cell tick/wall budget.
    pub budget: CellBudget,
    /// Worker threads; 0 means [`hbm_par::default_threads`].
    pub threads: usize,
    /// Artificial per-cell delay. Used by the CI resume-smoke test to
    /// make "killed mid-run" a deterministic state rather than a race.
    pub throttle: Option<Duration>,
    /// Cooperative cancellation (the CLI wires SIGTERM/SIGINT here). A
    /// tripped flag stops *scheduling* cells; cells already running finish
    /// and are journaled, so a cancelled sweep resumes from exactly where
    /// it drained.
    pub cancel: Option<ShutdownFlag>,
}

/// One cell that did not produce a result: either its simulation config
/// was rejected or its worker panicked.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Thread count of the failed cell.
    pub p: usize,
    /// HBM slots of the failed cell.
    pub k: usize,
    /// Human-readable cause.
    pub reason: String,
}

/// Result of a journaled sweep run.
pub struct SweepOutcome {
    /// Completed cells in deterministic (p-major, then k) grid order.
    /// When the run was cancelled, cells that never ran are absent (the
    /// order of the survivors is still deterministic).
    pub cells: Vec<RatioCell>,
    /// Cells that failed (typed config error or panic); the rest of the
    /// sweep is unaffected.
    pub failures: Vec<CellFailure>,
    /// How many cells were restored from the journal instead of re-run.
    pub resumed: usize,
    /// How many cells were skipped because the cancel flag tripped. Zero
    /// means the sweep ran to completion.
    pub cancelled: usize,
}

/// Runs the (threads × hbm_sizes) ratio sweep with crash-safe journaling.
///
/// Cells already present in `journal` are skipped. The remaining cells
/// are grouped by thread count — every group shares one memoized
/// [`FlatWorkload`] — and each group runs as one lockstep batch through
/// the SoA engine, `2 × |group|` simulation cells wide (FIFO and
/// challenger per k). Every completed cell is journaled (and flushed) the
/// moment its group finishes; a resumed group re-batches only its
/// unjournaled cells, which is bit-identical by the batch-split
/// invariance the lockstep differential suite enforces. A group whose
/// worker panics or whose config is rejected fails alone — its cells
/// become [`CellFailure`]s and every other group still completes. Output
/// order is deterministic regardless of which cells resumed, so fresh and
/// resumed runs of the same grid yield identical `cells`.
#[allow(clippy::too_many_arguments)]
pub fn run_journaled_sweep(
    pool: &TracePool,
    tag: &str,
    threads_grid: &[usize],
    hbm_sizes: &[usize],
    challenger: impl Fn(usize) -> ArbitrationKind + Sync,
    q: usize,
    seed: u64,
    journal: &SweepJournal,
    opts: &SweepRunOptions,
) -> SweepOutcome {
    let grid: Vec<(u64, usize, usize)> = threads_grid
        .iter()
        .flat_map(|&p| hbm_sizes.iter().map(move |&k| (p, k)))
        .map(|(p, k)| (cell_key(tag, p, k, q, seed, challenger(k)), p, k))
        .collect();

    // Unjournaled cells, grouped by p (the grid is p-major, so groups are
    // contiguous runs). Each group is one batch over one shared flat.
    let mut groups: Vec<(usize, Vec<(u64, usize)>)> = Vec::new();
    for &(key, p, k) in &grid {
        if journal.get(key).is_some() {
            continue;
        }
        match groups.last_mut() {
            Some((gp, cells)) if *gp == p => cells.push((key, k)),
            _ => groups.push((p, vec![(key, k)])),
        }
    }
    let todo: usize = groups.iter().map(|(_, cells)| cells.len()).sum();
    let resumed = grid.len() - todo;

    let workers = if opts.threads == 0 {
        hbm_par::default_threads()
    } else {
        opts.threads
    };
    let scratches: ScratchPool<BatchScratch> = ScratchPool::new();
    let fresh = hbm_par::try_parallel_map_with(&groups, workers, |(p, gcells)| {
        // Checked once per group, before any work: a tripped flag means
        // none of the group's cells start. Groups already past this point
        // run to completion and are journaled (drain-and-flush), so
        // resuming after a cancel re-runs only genuinely unstarted cells.
        if opts.cancel.as_ref().is_some_and(|c| c.is_set()) {
            return Ok(None);
        }
        if let Some(throttle) = opts.throttle {
            // Per-cell pacing (the CI resume-smoke contract), paid up
            // front since the batch runs the whole group at once.
            std::thread::sleep(throttle * gcells.len() as u32);
        }
        let flat = pool.flat(*p);
        let settings: Vec<SimSettings> = gcells
            .iter()
            .flat_map(|&(_, k)| {
                [
                    SimSettings::new(k, q, ArbitrationKind::Fifo, seed),
                    SimSettings::new(k, q, challenger(k), seed),
                ]
            })
            .collect();
        let reports = scratches
            .with(|scratch| run_batch_budgeted_flat(&flat, &settings, opts.budget, scratch))?;
        let mut out = Vec::with_capacity(gcells.len());
        for (&(key, k), pair) in gcells.iter().zip(reports.chunks_exact(2)) {
            let cell = RatioCell {
                p: *p,
                k,
                fifo_makespan: pair[0].makespan,
                challenger_makespan: pair[1].makespan,
                fifo_hit_rate: pair[0].hit_rate,
                challenger_hit_rate: pair[1].hit_rate,
                truncated: pair[0].truncated || pair[1].truncated,
            };
            journal.record(key, &cell).map_err(CellError::Io)?;
            out.push(cell);
        }
        Ok::<Option<Vec<RatioCell>>, CellError>(Some(out))
    });

    let mut done: HashMap<u64, Result<Option<RatioCell>, String>> = HashMap::new();
    for ((p, gcells), res) in groups.iter().zip(fresh) {
        match res {
            Ok(Ok(Some(cells))) => {
                for (&(key, _), cell) in gcells.iter().zip(cells) {
                    done.insert(key, Ok(Some(cell)));
                }
            }
            Ok(Ok(None)) => {
                for &(key, _) in gcells {
                    done.insert(key, Ok(None));
                }
            }
            Ok(Err(e)) => {
                for &(key, k) in gcells {
                    done.insert(key, Err(format!("cell (p={p}, k={k}): {e}")));
                }
            }
            Err(panic) => {
                for &(key, k) in gcells {
                    done.insert(
                        key,
                        Err(format!("cell (p={p}, k={k}) panicked: {}", panic.message)),
                    );
                }
            }
        }
    }

    let mut cells = Vec::with_capacity(grid.len());
    let mut failures = Vec::new();
    let mut cancelled = 0;
    for &(key, p, k) in &grid {
        if let Some(cell) = journal.get(key) {
            cells.push(*cell);
        } else {
            match done.remove(&key) {
                Some(Ok(Some(cell))) => cells.push(cell),
                Some(Ok(None)) => cancelled += 1,
                Some(Err(reason)) => failures.push(CellFailure { p, k, reason }),
                None => unreachable!("every non-journaled cell was scheduled"),
            }
        }
    }
    SweepOutcome {
        cells,
        failures,
        resumed,
        cancelled,
    }
}

/// Cell-level error inside the sweep closure: a typed simulation error or
/// a journal IO failure.
#[derive(Debug)]
enum CellError {
    Sim(hbm_core::SimError),
    Io(io::Error),
}

impl From<hbm_core::SimError> for CellError {
    fn from(e: hbm_core::SimError) -> Self {
        CellError::Sim(e)
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Sim(e) => write!(f, "{e}"),
            CellError::Io(e) => write!(f, "journal write failed: {e}"),
        }
    }
}

/// Serializes sweep cells as a deterministic JSON array: fixed field
/// order, grid-ordered cells, floats via Rust's shortest-roundtrip
/// formatter (bit-exact inputs therefore format identically). This is the
/// artifact the resume-smoke CI job byte-compares.
pub fn cells_to_json(cells: &[RatioCell]) -> String {
    let mut out = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"p\":{},\"k\":{},\"fifo_makespan\":{},\"challenger_makespan\":{},\
             \"fifo_hit_rate\":{},\"challenger_hit_rate\":{},\"truncated\":{}}}{}\n",
            c.p,
            c.k,
            c.fifo_makespan,
            c.challenger_makespan,
            json_f64(c.fifo_hit_rate),
            json_f64(c.challenger_hit_rate),
            c.truncated,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    out
}

/// JSON-safe f64 — the shared codec's formatter ([`fmt_f64`]), kept under
/// its historical local name. Byte-identical to the formatter this module
/// used before the codec was extracted, so existing artifacts reproduce.
fn json_f64(x: f64) -> String {
    fmt_f64(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_traces::{TraceOptions, WorkloadSpec};
    use std::sync::atomic::{AtomicU32, Ordering};

    static TMP_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A unique temp path per test invocation; removed on drop.
    struct TempPath(PathBuf);

    impl TempPath {
        fn new(stem: &str) -> TempPath {
            let n = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
            TempPath(std::env::temp_dir().join(format!(
                "hbm-journal-test-{}-{stem}-{n}.jsonl",
                std::process::id()
            )))
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn sample_cell() -> RatioCell {
        RatioCell {
            p: 8,
            k: 64,
            fifo_makespan: 123_456,
            challenger_makespan: 98_765,
            fifo_hit_rate: 0.1 + 0.2, // deliberately non-representable: 0.30000000000000004
            challenger_hit_rate: 0.75,
            truncated: false,
        }
    }

    fn tiny_pool() -> TracePool {
        TracePool::generate(
            WorkloadSpec::Cyclic { pages: 16, reps: 4 },
            4,
            1,
            TraceOptions::default(),
        )
    }

    #[test]
    fn record_then_reopen_round_trips_bit_exactly() {
        let tmp = TempPath::new("roundtrip");
        let cell = sample_cell();
        {
            let j = SweepJournal::open(&tmp.0).unwrap();
            assert!(j.is_empty());
            j.record(42, &cell).unwrap();
        }
        let j = SweepJournal::open(&tmp.0).unwrap();
        assert_eq!(j.len(), 1);
        let got = j.get(42).unwrap();
        assert_eq!(*got, cell);
        assert_eq!(got.fifo_hit_rate.to_bits(), cell.fifo_hit_rate.to_bits());
    }

    #[test]
    fn partial_trailing_line_is_ignored() {
        let tmp = TempPath::new("partial");
        {
            let j = SweepJournal::open(&tmp.0).unwrap();
            j.record(1, &sample_cell()).unwrap();
        }
        // Simulate a kill mid-append: a second line cut off partway.
        let full = format_line(2, &sample_cell());
        let mut f = OpenOptions::new().append(true).open(&tmp.0).unwrap();
        f.write_all(&full.as_bytes()[..full.len() / 2]).unwrap();
        drop(f);
        let j = SweepJournal::open(&tmp.0).unwrap();
        assert_eq!(j.len(), 1, "the torn line must not load");
        assert!(j.get(1).is_some());
        assert!(j.get(2).is_none());
    }

    #[test]
    fn corrupt_middle_line_is_skipped_not_fatal() {
        let tmp = TempPath::new("corrupt");
        {
            let j = SweepJournal::open(&tmp.0).unwrap();
            j.record(1, &sample_cell()).unwrap();
        }
        let mut f = OpenOptions::new().append(true).open(&tmp.0).unwrap();
        f.write_all(b"{\"key\":\"zzzz\",garbage}\n").unwrap();
        drop(f);
        {
            let j = SweepJournal::open(&tmp.0).unwrap();
            j.record(3, &sample_cell()).unwrap();
        }
        let j = SweepJournal::open(&tmp.0).unwrap();
        assert_eq!(j.len(), 2);
        assert!(j.get(1).is_some() && j.get(3).is_some());
    }

    #[test]
    fn cell_keys_separate_every_parameter() {
        let base = cell_key("t", 2, 32, 1, 7, ArbitrationKind::Priority);
        let variants = [
            cell_key("u", 2, 32, 1, 7, ArbitrationKind::Priority),
            cell_key("t", 3, 32, 1, 7, ArbitrationKind::Priority),
            cell_key("t", 2, 33, 1, 7, ArbitrationKind::Priority),
            cell_key("t", 2, 32, 2, 7, ArbitrationKind::Priority),
            cell_key("t", 2, 32, 1, 8, ArbitrationKind::Priority),
            cell_key("t", 2, 32, 1, 7, ArbitrationKind::Fifo),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "variant {i} collided");
        }
    }

    #[test]
    fn journaled_sweep_matches_plain_sweep() {
        let tmp = TempPath::new("matches");
        let pool = tiny_pool();
        let journal = SweepJournal::open(&tmp.0).unwrap();
        let outcome = run_journaled_sweep(
            &pool,
            "test",
            &[2, 4],
            &[16, 32],
            |_| ArbitrationKind::Priority,
            1,
            0,
            &journal,
            &SweepRunOptions::default(),
        );
        assert!(outcome.failures.is_empty());
        assert_eq!(outcome.resumed, 0);
        let plain = crate::sweep::ratio_sweep(
            &pool,
            &[2, 4],
            &[16, 32],
            |_| ArbitrationKind::Priority,
            1,
            0,
        );
        assert_eq!(outcome.cells, plain);
    }

    #[test]
    fn resumed_sweep_is_byte_identical() {
        let tmp = TempPath::new("resume");
        let pool = tiny_pool();
        let run = |journal: &SweepJournal| {
            run_journaled_sweep(
                &pool,
                "test",
                &[1, 2, 4],
                &[16, 32],
                |_| ArbitrationKind::Priority,
                1,
                0,
                journal,
                &SweepRunOptions::default(),
            )
        };
        let first = {
            let journal = SweepJournal::open(&tmp.0).unwrap();
            run(&journal)
        };
        assert_eq!(first.resumed, 0);
        // Reopen: every cell must come back from disk, and the JSON
        // artifact must match the fresh run byte for byte.
        let journal = SweepJournal::open(&tmp.0).unwrap();
        let second = run(&journal);
        assert_eq!(second.resumed, 6);
        assert_eq!(cells_to_json(&second.cells), cells_to_json(&first.cells));
    }

    #[test]
    fn partially_journaled_sweep_fills_only_the_gap() {
        let tmp = TempPath::new("gap");
        let pool = tiny_pool();
        let full = {
            let journal = SweepJournal::open(&tmp.0).unwrap();
            run_journaled_sweep(
                &pool,
                "test",
                &[1, 2, 4],
                &[16, 32],
                |_| ArbitrationKind::Priority,
                1,
                0,
                &journal,
                &SweepRunOptions::default(),
            )
        };
        // Truncate the journal to its first 3 lines — as if the run died
        // halfway — and resume.
        let text = std::fs::read_to_string(&tmp.0).unwrap();
        let keep: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        std::fs::write(&tmp.0, keep).unwrap();
        let journal = SweepJournal::open(&tmp.0).unwrap();
        assert_eq!(journal.len(), 3);
        let resumed = run_journaled_sweep(
            &pool,
            "test",
            &[1, 2, 4],
            &[16, 32],
            |_| ArbitrationKind::Priority,
            1,
            0,
            &journal,
            &SweepRunOptions::default(),
        );
        assert_eq!(resumed.resumed, 3);
        assert_eq!(cells_to_json(&resumed.cells), cells_to_json(&full.cells));
    }

    #[test]
    fn invalid_cell_fails_alone() {
        let tmp = TempPath::new("badcell");
        let pool = tiny_pool();
        let journal = SweepJournal::open(&tmp.0).unwrap();
        // q = 0 is a typed ConfigError for every cell; no panic escapes.
        let outcome = run_journaled_sweep(
            &pool,
            "test",
            &[2],
            &[16, 32],
            |_| ArbitrationKind::Priority,
            0,
            0,
            &journal,
            &SweepRunOptions::default(),
        );
        assert!(outcome.cells.is_empty());
        assert_eq!(outcome.failures.len(), 2);
        assert!(outcome.failures[0].reason.contains("channel"));
    }

    #[test]
    fn json_is_valid_and_deterministic() {
        let cells = vec![sample_cell()];
        let a = cells_to_json(&cells);
        let b = cells_to_json(&cells);
        assert_eq!(a, b);
        assert!(a.starts_with("[\n"));
        assert!(a.ends_with("]\n"));
        assert!(a.contains("\"fifo_hit_rate\":0.30000000000000004"));
        assert!(cells_to_json(&[]).contains("[\n]"));
    }

    #[test]
    fn json_f64_edge_cases() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn tripped_cancel_flag_skips_every_unstarted_cell() {
        let tmp = TempPath::new("cancel");
        let pool = tiny_pool();
        let journal = SweepJournal::open(&tmp.0).unwrap();
        let flag = ShutdownFlag::new();
        flag.trip();
        let outcome = run_journaled_sweep(
            &pool,
            "test",
            &[2, 4],
            &[16, 32],
            |_| ArbitrationKind::Priority,
            1,
            0,
            &journal,
            &SweepRunOptions {
                cancel: Some(flag),
                ..SweepRunOptions::default()
            },
        );
        assert_eq!(
            outcome.cancelled, 4,
            "no cell may start under a tripped flag"
        );
        assert!(outcome.cells.is_empty());
        assert!(outcome.failures.is_empty());
    }

    #[test]
    fn cancelled_sweep_resumes_to_identical_output() {
        let tmp = TempPath::new("cancel-resume");
        let pool = tiny_pool();
        let run = |journal: &SweepJournal, opts: &SweepRunOptions| {
            run_journaled_sweep(
                &pool,
                "test",
                &[1, 2, 4],
                &[16, 32],
                |_| ArbitrationKind::Priority,
                1,
                0,
                journal,
                opts,
            )
        };
        // Reference: an uninterrupted run in a separate journal.
        let full = {
            let tmp2 = TempPath::new("cancel-reference");
            let journal = SweepJournal::open(&tmp2.0).unwrap();
            run(&journal, &SweepRunOptions::default())
        };
        // Cancelled run: the flag trips immediately, so everything is
        // skipped and the journal stays empty — the degenerate drain.
        {
            let journal = SweepJournal::open(&tmp.0).unwrap();
            let flag = ShutdownFlag::new();
            flag.trip();
            let cancelled = run(
                &journal,
                &SweepRunOptions {
                    cancel: Some(flag),
                    ..SweepRunOptions::default()
                },
            );
            assert_eq!(cancelled.cancelled, 6);
        }
        // Resume with an untripped flag: completes, byte-identical.
        let journal = SweepJournal::open(&tmp.0).unwrap();
        let resumed = run(
            &journal,
            &SweepRunOptions {
                cancel: Some(ShutdownFlag::new()),
                ..SweepRunOptions::default()
            },
        );
        assert_eq!(resumed.cancelled, 0);
        assert_eq!(cells_to_json(&resumed.cells), cells_to_json(&full.cells));
    }
}
