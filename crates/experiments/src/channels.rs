//! The multi-channel extension (Theorem 3): sweeping `q` from 1 to 10.
//!
//! The paper's model extension allows `1 ≤ q ≪ p` far channels and proves
//! Priority O(q)-competitive. This experiment measures how makespan scales
//! with `q` for FIFO and Priority on a contended workload — channels keep
//! helping until the workload stops being channel-bound.

use crate::common::{
    contended_config, contended_threads, f3, run_cell_flat, ResultTable, Scale, ScratchPool,
    TracePool,
};
use hbm_core::ArbitrationKind;
use hbm_traces::TraceOptions;
use serde::Serialize;

/// One q-sweep point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ChannelCell {
    /// Far-channel count.
    pub q: usize,
    /// FIFO makespan.
    pub fifo_makespan: u64,
    /// Priority makespan.
    pub priority_makespan: u64,
}

/// Runs the sweep for `q ∈ 1..=10` on the SpGEMM workload.
pub fn run_cells(scale: Scale, seed: u64) -> Vec<ChannelCell> {
    let pool = TracePool::generate(
        scale.spgemm_spec(),
        contended_threads(scale),
        seed,
        TraceOptions::default(),
    );
    let (p, k) = contended_config(&pool, scale);
    let flat = pool.flat(p);
    let qs: Vec<usize> = (1..=10).collect();
    let scratches = ScratchPool::new();
    hbm_par::parallel_map(&qs, |&q| {
        scratches.with(|scratch| ChannelCell {
            q,
            fifo_makespan: run_cell_flat(&flat, k, q, ArbitrationKind::Fifo, seed, scratch)
                .makespan,
            priority_makespan: run_cell_flat(&flat, k, q, ArbitrationKind::Priority, seed, scratch)
                .makespan,
        })
    })
}

/// Runs and renders the channel sweep.
pub fn run(scale: Scale, seed: u64) -> ResultTable {
    let cells = run_cells(scale, seed);
    let base_f = cells[0].fifo_makespan as f64;
    let base_p = cells[0].priority_makespan as f64;
    let mut t = ResultTable::new(
        "Multi-channel sweep (Theorem 3) — SpGEMM makespan vs q",
        &[
            "q",
            "fifo_makespan",
            "priority_makespan",
            "fifo_speedup",
            "priority_speedup",
        ],
    );
    for c in &cells {
        t.push_row(vec![
            c.q.to_string(),
            c.fifo_makespan.to_string(),
            c.priority_makespan.to_string(),
            f3(base_f / c.fifo_makespan as f64),
            f3(base_p / c.priority_makespan as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_help_then_saturate() {
        let cells = run_cells(Scale::Small, 3);
        assert_eq!(cells.len(), 10);
        // q=2 helps both policies vs q=1 on a contended workload.
        assert!(cells[1].fifo_makespan < cells[0].fifo_makespan);
        assert!(cells[1].priority_makespan <= cells[0].priority_makespan);
        // Makespan never increases by much as q grows (small anomalies from
        // eviction timing are allowed).
        for w in cells.windows(2) {
            assert!(
                w[1].fifo_makespan as f64 <= w[0].fifo_makespan as f64 * 1.1,
                "q={} regressed",
                w[1].q
            );
        }
        // Speedup is bounded by the work bound: it saturates.
        let s10 = cells[0].fifo_makespan as f64 / cells[9].fifo_makespan as f64;
        assert!(s10 < 10.0, "cannot exceed the work lower bound");
    }
}
