//! Shared experiment infrastructure: scales, result tables, and the
//! simulation cell runner.

use hbm_core::{
    ArbitrationKind, EngineScratch, FlatWorkload, NoopObserver, Report, SimBuilder, SimError,
    Trace, Workload,
};
use hbm_traces::{TraceOptions, WorkloadSpec};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Experiment scale. The paper's full parameters produce multi-hour runs;
/// `Default` preserves every *shape* (who wins, where crossovers fall) at
/// minutes of runtime, and `Small` is the CI/test scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds — used by tests and quick sanity runs.
    Small,
    /// Minutes — the `repro` binary's default.
    Default,
    /// The paper's parameters (sort 500k, SpGEMM 600×600, 100 reps, p→200).
    Full,
}

impl Scale {
    /// Parses a CLI scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "default" => Some(Scale::Default),
            "full" | "paper" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Dataset 1 spec (GNU sort analogue) at this scale.
    ///
    /// The paper's "GNU sort" [53] cites the libstdc++ *parallel mode*,
    /// whose sort is a multiway mergesort; our instrumented mergesort
    /// reproduces Figure 2b's structure (FIFO winning by up to ~1.3× in
    /// the pre-thrash band, then Priority dominating), while introsort's
    /// collapsed traces are so local that the band vanishes. Both
    /// algorithms are available via [`hbm_traces::SortAlgo`].
    pub fn sort_spec(self) -> WorkloadSpec {
        let n = match self {
            Scale::Small => 4_000,
            Scale::Default => 10_000,
            Scale::Full => 500_000,
        };
        WorkloadSpec::Sort {
            algo: hbm_traces::SortAlgo::Mergesort,
            n,
        }
    }

    /// Dataset 2 spec (TACO SpGEMM analogue) at this scale.
    pub fn spgemm_spec(self) -> WorkloadSpec {
        let n = match self {
            Scale::Small => 80,
            Scale::Default => 150,
            Scale::Full => 600,
        };
        WorkloadSpec::SpGemm { n, density: 0.10 }
    }

    /// Dataset 3 (pages, reps) at this scale.
    pub fn cyclic_params(self) -> (u32, usize) {
        match self {
            Scale::Small => (64, 10),
            Scale::Default => (256, 30),
            Scale::Full => (256, 100),
        }
    }

    /// Thread counts swept in Figures 2–4.
    ///
    /// The grid is dense in the 20–120 range because the FIFO↔Priority
    /// crossover band (where the paper's "FIFO wins by up to 37%" cells
    /// live) is narrow in `p` for any fixed `k`.
    pub fn thread_counts(self) -> Vec<usize> {
        match self {
            Scale::Small => vec![1, 2, 4, 8, 16],
            Scale::Default | Scale::Full => {
                vec![
                    1, 2, 5, 10, 15, 20, 25, 30, 40, 50, 60, 75, 100, 120, 150, 200,
                ]
            }
        }
    }

    /// HBM sizes as multiples of one core's working set (unique pages).
    ///
    /// The paper sweeps absolute sizes 1000–5000 against workloads whose
    /// per-core working set is ≈1000 pages (sort of 500k ints ≈ 977 data
    /// pages), i.e. 1–5 working sets. Expressing `k` in working sets keeps
    /// the contention structure — and therefore the crossovers of Figures
    /// 2/4 — identical at every scale; at `Full` the resulting absolute
    /// sizes land in the paper's 1000–5000 range.
    pub fn hbm_multipliers(self) -> Vec<usize> {
        match self {
            Scale::Small => vec![1, 2, 5],
            _ => vec![1, 2, 3, 5],
        }
    }

    /// Remap-interval multipliers (T as a multiple of k) for Figure 5.
    pub fn remap_multipliers(self) -> Vec<u64> {
        match self {
            Scale::Small => vec![1, 10, 100],
            _ => vec![1, 2, 5, 10, 20, 50, 100],
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scale::Small => "small",
            Scale::Default => "default",
            Scale::Full => "full",
        };
        f.write_str(s)
    }
}

/// A rendered experiment result: one table of strings, ready for markdown
/// or CSV output.
#[derive(Debug, Clone, Serialize)]
pub struct ResultTable {
    /// Table title (e.g. "Figure 2a — SpGEMM, FIFO/Priority makespan ratio").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// A new empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (panics if the width differs from the header).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// GitHub-flavoured markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }

    /// CSV rendering (no quoting needed: cells are numbers and labels).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 decimals for tables.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Builds per-core traces for the largest thread count once; sweep cells
/// take prefixes. "Each trace is generated from the same program with
/// different randomness" (§3.2).
///
/// Beyond the traces themselves the pool memoizes two derived artifacts so
/// no sweep cell ever regenerates or re-indexes workload data
/// (DESIGN.md §13):
///
/// * a lazily generated **probe trace** — `spec.generate_trace(seed,
///   TraceOptions::default())`, exactly the trace [`hbm_sizes_for`] and
///   [`contended_config`] historically regenerated from scratch on every
///   call (it is *not* pool trace 0: `WorkloadSpec::workload` derives
///   per-core seeds, so trace 0 uses a different stream);
/// * one immutable [`FlatWorkload`] per requested prefix length `p`,
///   shared via `Arc` across every cell of a sweep grid.
pub struct TracePool {
    spec: WorkloadSpec,
    seed: u64,
    traces: Vec<Trace>,
    probe: OnceLock<Trace>,
    flats: Mutex<HashMap<usize, Arc<FlatWorkload>>>,
}

impl TracePool {
    /// Generates `max_p` traces for `spec` (parallelized inside).
    pub fn generate(spec: WorkloadSpec, max_p: usize, seed: u64, opts: TraceOptions) -> Self {
        let w = spec.workload(max_p, seed, opts);
        TracePool {
            spec,
            seed,
            traces: w.traces().to_vec(),
            probe: OnceLock::new(),
            flats: Mutex::new(HashMap::new()),
        }
    }

    /// The workload made of the first `p` traces (cheap: traces are
    /// `Arc`-backed, so this clones handles, not page data).
    pub fn workload(&self, p: usize) -> Workload {
        assert!(p <= self.traces.len());
        let mut w = Workload::new();
        for t in &self.traces[..p] {
            w.push(t.clone());
        }
        w
    }

    /// The shared pre-indexed form of [`workload(p)`](Self::workload),
    /// built once per distinct `p` and memoized. Every sweep cell at the
    /// same thread count gets the same `Arc` — flattening and page-index
    /// construction happen once, not once per cell.
    pub fn flat(&self, p: usize) -> Arc<FlatWorkload> {
        let mut flats = self.flats.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            flats
                .entry(p)
                .or_insert_with(|| Arc::new(FlatWorkload::new(&self.workload(p)))),
        )
    }

    /// Largest available thread count.
    pub fn max_p(&self) -> usize {
        self.traces.len()
    }

    /// One core's working set (unique pages) measured on the memoized
    /// probe trace — generated at most once per pool, with
    /// `TraceOptions::default()` regardless of the pool's own options so
    /// derived HBM sizes stay identical across e.g. collapse ablations.
    pub fn working_set(&self) -> usize {
        self.probe
            .get_or_init(|| {
                Trace::new(self.spec.generate_trace(self.seed, TraceOptions::default()))
            })
            .unique_pages()
    }
}

/// The swept HBM sizes for `pool`'s workload:
/// `scale.hbm_multipliers() × working_set`, floored at 16 slots. The
/// working set comes from the pool's memoized probe trace, so repeated
/// calls (and [`contended_config`]) share one generation.
pub fn hbm_sizes_for(pool: &TracePool, scale: Scale) -> Vec<usize> {
    let ws = pool.working_set().max(1);
    let mut sizes: Vec<usize> = scale
        .hbm_multipliers()
        .into_iter()
        .map(|m| (m * ws).max(16))
        .collect();
    sizes.dedup(); // flooring at 16 can merge the smallest sizes
    sizes
}

/// Thread count of the contended regime at `scale` — available before a
/// [`TracePool`] exists, since the pool must be generated for exactly this
/// many cores.
pub fn contended_threads(scale: Scale) -> usize {
    match scale {
        Scale::Small => 16,
        _ => 100,
    }
}

/// The contended (p, k) configuration for non-sweep experiments: HBM holds
/// about two per-core working sets while `p` threads compete — the regime
/// where policies diverge (Figure 5 / Table 1 / ablations). Reads the
/// pool's memoized working set instead of regenerating a probe trace.
pub fn contended_config(pool: &TracePool, scale: Scale) -> (usize, usize) {
    (contended_threads(scale), (2 * pool.working_set()).max(16))
}

/// [`contended_config`] for call sites that build their workloads directly
/// (e.g. skewed variants) and have no [`TracePool`] to memoize the probe:
/// generates one default-options probe trace on the spot.
pub fn contended_config_for(spec: WorkloadSpec, scale: Scale, seed: u64) -> (usize, usize) {
    let ws = Trace::new(spec.generate_trace(seed, TraceOptions::default())).unique_pages();
    (contended_threads(scale), (2 * ws).max(16))
}

/// Runs one simulation cell.
pub fn run_cell(
    workload: &Workload,
    k: usize,
    q: usize,
    arb: ArbitrationKind,
    seed: u64,
) -> Report {
    SimBuilder::new()
        .hbm_slots(k)
        .channels(q)
        .arbitration(arb)
        .seed(seed)
        .run(workload)
}

/// Runs one simulation cell against a shared [`FlatWorkload`], recycling
/// `scratch`'s buffers for the engine's mutable state. Bit-identical to
/// [`run_cell`] on the equivalent owned workload (enforced by the sharing
/// differential suite), but performs no per-cell trace copies and O(1)
/// heap allocations once the scratch is warm.
pub fn run_cell_flat(
    flat: &Arc<FlatWorkload>,
    k: usize,
    q: usize,
    arb: ArbitrationKind,
    seed: u64,
    scratch: &mut EngineScratch,
) -> Report {
    let engine = SimBuilder::new()
        .hbm_slots(k)
        .channels(q)
        .arbitration(arb)
        .seed(seed)
        .try_build_flat_reusing(flat, scratch)
        .expect("invalid simulation config");
    engine.run_reusing(&mut NoopObserver, scratch)
}

/// Per-cell execution budget for sweeps over untrusted or adversarial
/// parameter grids. Exceeding either bound stops the cell cooperatively
/// and reports `Report::truncated = true` — the cell fails *soft* (its
/// partial metrics are still returned) instead of hanging the sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellBudget {
    /// Maximum simulated ticks (sets the engine's `max_ticks`).
    pub max_ticks: Option<u64>,
    /// Maximum wall-clock time, checked every 1024 engine steps.
    pub max_wall: Option<Duration>,
}

impl CellBudget {
    /// No limits — identical behaviour to [`run_cell`].
    pub const UNLIMITED: CellBudget = CellBudget {
        max_ticks: None,
        max_wall: None,
    };
}

/// Runs one simulation cell under a [`CellBudget`], returning a typed
/// error (never panicking) on invalid configuration. Budget-truncated
/// cells return `Ok` with `Report::truncated = true`.
pub fn run_cell_budgeted(
    workload: &Workload,
    k: usize,
    q: usize,
    arb: ArbitrationKind,
    seed: u64,
    budget: CellBudget,
) -> Result<Report, SimError> {
    let mut builder = SimBuilder::new()
        .hbm_slots(k)
        .channels(q)
        .arbitration(arb)
        .seed(seed);
    if let Some(max_ticks) = budget.max_ticks {
        builder = builder.max_ticks(max_ticks);
    }
    let tick_cap = builder.config().max_ticks;
    let mut engine = builder.try_build(workload)?;
    let Some(wall) = budget.max_wall else {
        return Ok(engine.run(&mut NoopObserver));
    };
    let start = Instant::now();
    let mut steps = 0u32;
    while !engine.is_done() && engine.tick() < tick_cap {
        engine.step(&mut NoopObserver);
        steps = steps.wrapping_add(1);
        // Instant::now() costs a vDSO call; amortize it over a batch of
        // steps (a step is at least one tick, usually far more).
        if steps & 1023 == 0 && start.elapsed() >= wall {
            break;
        }
    }
    Ok(engine.into_report())
}

/// [`run_cell_budgeted`] over a shared [`FlatWorkload`] with recycled
/// scratch buffers — the journaled-sweep worker path. Same soft-failure
/// semantics; same results bit for bit.
pub fn run_cell_budgeted_flat(
    flat: &Arc<FlatWorkload>,
    k: usize,
    q: usize,
    arb: ArbitrationKind,
    seed: u64,
    budget: CellBudget,
    scratch: &mut EngineScratch,
) -> Result<Report, SimError> {
    let mut builder = SimBuilder::new()
        .hbm_slots(k)
        .channels(q)
        .arbitration(arb)
        .seed(seed);
    if let Some(max_ticks) = budget.max_ticks {
        builder = builder.max_ticks(max_ticks);
    }
    let tick_cap = builder.config().max_ticks;
    let mut engine = builder.try_build_flat_reusing(flat, scratch)?;
    let Some(wall) = budget.max_wall else {
        return Ok(engine.run_reusing(&mut NoopObserver, scratch));
    };
    let start = Instant::now();
    let mut steps = 0u32;
    while !engine.is_done() && engine.tick() < tick_cap {
        engine.step(&mut NoopObserver);
        steps = steps.wrapping_add(1);
        if steps & 1023 == 0 && start.elapsed() >= wall {
            break;
        }
    }
    Ok(engine.into_report_reusing(scratch))
}

/// A pool of [`EngineScratch`] buffers shared by sweep workers.
///
/// `hbm_par`'s closures are `Fn(&T)` — they cannot hold `&mut` worker
/// state — so per-cell scratch reuse goes through this pool: each cell
/// pops a scratch (or starts a fresh one), runs, and returns it. With `n`
/// workers the pool converges to `n` scratches regardless of grid size.
///
/// **Panic safety:** the scratch is returned by a drop guard, so a cell
/// that panics mid-run still recycles its buffers. That is sound because
/// engine construction fully overwrites every scratch buffer
/// (`clear()` + `resize`) — a panic-abandoned scratch is indistinguishable
/// from a fresh one to the next cell (see the `EngineScratch` docs and the
/// sharing differential suite).
#[derive(Default)]
pub struct ScratchPool {
    free: Mutex<Vec<EngineScratch>>,
}

impl ScratchPool {
    /// An empty pool; scratches are created on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with a pooled scratch, returning it afterwards — including
    /// on unwind.
    pub fn with<R>(&self, f: impl FnOnce(&mut EngineScratch) -> R) -> R {
        struct Guard<'a> {
            pool: &'a ScratchPool,
            scratch: Option<EngineScratch>,
        }
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                if let Some(s) = self.scratch.take() {
                    self.pool
                        .free
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(s);
                }
            }
        }
        let scratch = self
            .free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        let mut guard = Guard {
            pool: self,
            scratch: Some(scratch),
        };
        f(guard.scratch.as_mut().expect("scratch present until drop"))
    }

    /// Number of idle scratches currently pooled (for tests/diagnostics).
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse_roundtrip() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Full));
        assert_eq!(Scale::parse("bogus"), None);
        assert_eq!(Scale::Default.to_string(), "default");
    }

    #[test]
    fn table_rendering() {
        let mut t = ResultTable::new("T", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### T"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = ResultTable::new("T", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn trace_pool_prefixes() {
        let spec = WorkloadSpec::Uniform { pages: 10, len: 50 };
        let pool = TracePool::generate(spec, 4, 1, TraceOptions::default());
        assert_eq!(pool.max_p(), 4);
        let w2 = pool.workload(2);
        let w4 = pool.workload(4);
        assert_eq!(w2.cores(), 2);
        // Prefix property: w2's traces are w4's first two.
        assert_eq!(w2.trace(0).as_slice(), w4.trace(0).as_slice());
        assert_eq!(w2.trace(1).as_slice(), w4.trace(1).as_slice());
    }

    #[test]
    fn budgeted_run_matches_unbudgeted_when_unlimited() {
        let w = Workload::from_refs(vec![vec![0, 1, 2, 0, 1, 2]; 3]);
        let plain = run_cell(&w, 4, 1, ArbitrationKind::Priority, 7);
        let budgeted = run_cell_budgeted(
            &w,
            4,
            1,
            ArbitrationKind::Priority,
            7,
            CellBudget::UNLIMITED,
        )
        .unwrap();
        assert_eq!(plain.makespan, budgeted.makespan);
        assert_eq!(plain.hits, budgeted.hits);
        assert!(!budgeted.truncated);
    }

    #[test]
    fn budgeted_run_wall_limit_matches_plain_run_when_generous() {
        let w = Workload::from_refs(vec![vec![0, 1, 2]; 2]);
        let budget = CellBudget {
            max_ticks: None,
            max_wall: Some(Duration::from_secs(60)),
        };
        let r = run_cell_budgeted(&w, 4, 1, ArbitrationKind::Fifo, 0, budget).unwrap();
        assert!(!r.truncated);
        assert_eq!(r.served, 6);
    }

    #[test]
    fn budgeted_run_tick_limit_truncates() {
        let w = Workload::from_refs(vec![(0..200u32).collect(); 4]);
        let budget = CellBudget {
            max_ticks: Some(10),
            max_wall: None,
        };
        let r = run_cell_budgeted(&w, 16, 1, ArbitrationKind::Fifo, 0, budget).unwrap();
        assert!(r.truncated, "tick budget must truncate");
        assert_eq!(r.makespan, 10);
    }

    #[test]
    fn budgeted_run_zero_wall_truncates_not_hangs() {
        // A zero wall budget must stop promptly with partial metrics.
        let w = Workload::from_refs(vec![(0..2000u32).collect(); 8]);
        let budget = CellBudget {
            max_ticks: None,
            max_wall: Some(Duration::ZERO),
        };
        let r = run_cell_budgeted(&w, 16, 1, ArbitrationKind::Fifo, 0, budget).unwrap();
        assert!(r.truncated, "zero wall budget must truncate");
    }

    #[test]
    fn budgeted_run_surfaces_config_errors() {
        let w = Workload::from_refs(vec![vec![0]]);
        let err = run_cell_budgeted(&w, 0, 1, ArbitrationKind::Fifo, 0, CellBudget::UNLIMITED);
        assert!(err.is_err(), "k = 0 must be a typed error, not a panic");
    }

    #[test]
    fn scales_are_ordered() {
        for (small, full) in [
            (
                Scale::Small.hbm_multipliers().len(),
                Scale::Full.hbm_multipliers().len() + 1,
            ),
            (
                Scale::Small.cyclic_params().1,
                Scale::Full.cyclic_params().1,
            ),
        ] {
            assert!(small < full);
        }
    }
}
