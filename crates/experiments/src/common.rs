//! Shared experiment infrastructure: scales, result tables, and the
//! simulation cell runner.
//!
//! The warm-path substrate (trace pools, scratch pools, budgeted cell
//! runners) moved to [`hbm_serve::pool`] so the serving layer can reuse it
//! without depending on the experiment harness; this module re-exports it
//! under the historical paths, so every sweep and benchmark call site
//! compiles unchanged.

use hbm_core::Trace;
use hbm_traces::{TraceOptions, WorkloadSpec};
use serde::Serialize;

pub use hbm_serve::pool::{
    run_batch_budgeted_flat, run_batch_flat, run_cell, run_cell_budgeted, run_cell_budgeted_flat,
    run_cell_flat, CellBudget, ScratchPool, SimSettings, TracePool,
};

/// Experiment scale. The paper's full parameters produce multi-hour runs;
/// `Default` preserves every *shape* (who wins, where crossovers fall) at
/// minutes of runtime, and `Small` is the CI/test scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds — used by tests and quick sanity runs.
    Small,
    /// Minutes — the `repro` binary's default.
    Default,
    /// The paper's parameters (sort 500k, SpGEMM 600×600, 100 reps, p→200).
    Full,
}

impl Scale {
    /// Parses a CLI scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "default" => Some(Scale::Default),
            "full" | "paper" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Dataset 1 spec (GNU sort analogue) at this scale.
    ///
    /// The paper's "GNU sort" [53] cites the libstdc++ *parallel mode*,
    /// whose sort is a multiway mergesort; our instrumented mergesort
    /// reproduces Figure 2b's structure (FIFO winning by up to ~1.3× in
    /// the pre-thrash band, then Priority dominating), while introsort's
    /// collapsed traces are so local that the band vanishes. Both
    /// algorithms are available via [`hbm_traces::SortAlgo`].
    pub fn sort_spec(self) -> WorkloadSpec {
        let n = match self {
            Scale::Small => 4_000,
            Scale::Default => 10_000,
            Scale::Full => 500_000,
        };
        WorkloadSpec::Sort {
            algo: hbm_traces::SortAlgo::Mergesort,
            n,
        }
    }

    /// Dataset 2 spec (TACO SpGEMM analogue) at this scale.
    pub fn spgemm_spec(self) -> WorkloadSpec {
        let n = match self {
            Scale::Small => 80,
            Scale::Default => 150,
            Scale::Full => 600,
        };
        WorkloadSpec::SpGemm { n, density: 0.10 }
    }

    /// Dataset 3 (pages, reps) at this scale.
    pub fn cyclic_params(self) -> (u32, usize) {
        match self {
            Scale::Small => (64, 10),
            Scale::Default => (256, 30),
            Scale::Full => (256, 100),
        }
    }

    /// Thread counts swept in Figures 2–4.
    ///
    /// The grid is dense in the 20–120 range because the FIFO↔Priority
    /// crossover band (where the paper's "FIFO wins by up to 37%" cells
    /// live) is narrow in `p` for any fixed `k`.
    pub fn thread_counts(self) -> Vec<usize> {
        match self {
            Scale::Small => vec![1, 2, 4, 8, 16],
            Scale::Default | Scale::Full => {
                vec![
                    1, 2, 5, 10, 15, 20, 25, 30, 40, 50, 60, 75, 100, 120, 150, 200,
                ]
            }
        }
    }

    /// HBM sizes as multiples of one core's working set (unique pages).
    ///
    /// The paper sweeps absolute sizes 1000–5000 against workloads whose
    /// per-core working set is ≈1000 pages (sort of 500k ints ≈ 977 data
    /// pages), i.e. 1–5 working sets. Expressing `k` in working sets keeps
    /// the contention structure — and therefore the crossovers of Figures
    /// 2/4 — identical at every scale; at `Full` the resulting absolute
    /// sizes land in the paper's 1000–5000 range.
    pub fn hbm_multipliers(self) -> Vec<usize> {
        match self {
            Scale::Small => vec![1, 2, 5],
            _ => vec![1, 2, 3, 5],
        }
    }

    /// Remap-interval multipliers (T as a multiple of k) for Figure 5.
    pub fn remap_multipliers(self) -> Vec<u64> {
        match self {
            Scale::Small => vec![1, 10, 100],
            _ => vec![1, 2, 5, 10, 20, 50, 100],
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scale::Small => "small",
            Scale::Default => "default",
            Scale::Full => "full",
        };
        f.write_str(s)
    }
}

/// A rendered experiment result: one table of strings, ready for markdown
/// or CSV output.
#[derive(Debug, Clone, Serialize)]
pub struct ResultTable {
    /// Table title (e.g. "Figure 2a — SpGEMM, FIFO/Priority makespan ratio").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// A new empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (panics if the width differs from the header).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// GitHub-flavoured markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }

    /// CSV rendering (no quoting needed: cells are numbers and labels).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 decimals for tables.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// The swept HBM sizes for `pool`'s workload:
/// `scale.hbm_multipliers() × working_set`, floored at 16 slots. The
/// working set comes from the pool's memoized probe trace, so repeated
/// calls (and [`contended_config`]) share one generation.
pub fn hbm_sizes_for(pool: &TracePool, scale: Scale) -> Vec<usize> {
    let ws = pool.working_set().max(1);
    let mut sizes: Vec<usize> = scale
        .hbm_multipliers()
        .into_iter()
        .map(|m| (m * ws).max(16))
        .collect();
    sizes.dedup(); // flooring at 16 can merge the smallest sizes
    sizes
}

/// Thread count of the contended regime at `scale` — available before a
/// [`TracePool`] exists, since the pool must be generated for exactly this
/// many cores.
pub fn contended_threads(scale: Scale) -> usize {
    match scale {
        Scale::Small => 16,
        _ => 100,
    }
}

/// The contended (p, k) configuration for non-sweep experiments: HBM holds
/// about two per-core working sets while `p` threads compete — the regime
/// where policies diverge (Figure 5 / Table 1 / ablations). Reads the
/// pool's memoized working set instead of regenerating a probe trace.
pub fn contended_config(pool: &TracePool, scale: Scale) -> (usize, usize) {
    (contended_threads(scale), (2 * pool.working_set()).max(16))
}

/// [`contended_config`] for call sites that build their workloads directly
/// (e.g. skewed variants) and have no [`TracePool`] to memoize the probe:
/// generates one default-options probe trace on the spot.
pub fn contended_config_for(spec: WorkloadSpec, scale: Scale, seed: u64) -> (usize, usize) {
    let ws = Trace::new(spec.generate_trace(seed, TraceOptions::default())).unique_pages();
    (contended_threads(scale), (2 * ws).max(16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse_roundtrip() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Full));
        assert_eq!(Scale::parse("bogus"), None);
        assert_eq!(Scale::Default.to_string(), "default");
    }

    #[test]
    fn table_rendering() {
        let mut t = ResultTable::new("T", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### T"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = ResultTable::new("T", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    // The pool/runner substrate's own tests live with the code in
    // `hbm_serve::pool`; this one checks the re-exported paths still
    // resolve and behave (the harness's compilation contract).
    #[test]
    fn reexported_substrate_is_usable() {
        let spec = WorkloadSpec::Uniform { pages: 10, len: 50 };
        let pool = TracePool::generate(spec, 2, 1, TraceOptions::default());
        let r = run_cell(&pool.workload(2), 16, 1, hbm_core::ArbitrationKind::Fifo, 0);
        assert!(r.served > 0);
        let budgeted = run_cell_budgeted(
            &pool.workload(2),
            16,
            1,
            hbm_core::ArbitrationKind::Fifo,
            0,
            CellBudget::UNLIMITED,
        )
        .unwrap();
        assert_eq!(budgeted.makespan, r.makespan);
    }

    #[test]
    fn scales_are_ordered() {
        for (small, full) in [
            (
                Scale::Small.hbm_multipliers().len(),
                Scale::Full.hbm_multipliers().len() + 1,
            ),
            (
                Scale::Small.cyclic_params().1,
                Scale::Full.cyclic_params().1,
            ),
        ] {
            assert!(small < full);
        }
    }
}
