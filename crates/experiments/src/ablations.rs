//! Ablation studies for the design choices DESIGN.md calls out.

use crate::common::{
    contended_config, contended_threads, f3, run_cell_flat, ResultTable, Scale, ScratchPool,
    TracePool,
};
use hbm_core::{ArbitrationKind, EngineScratch, ReplacementKind};
use hbm_traces::TraceOptions;

/// Replacement-policy ablation: the paper claims "HBM replacement is not
/// the problem" — LRU, FIFO, CLOCK (and even Random) should land within a
/// modest band of each other, while the arbitration policy moves makespan
/// by integer factors.
pub fn replacement(scale: Scale, seed: u64) -> ResultTable {
    let pool = TracePool::generate(
        scale.spgemm_spec(),
        contended_threads(scale),
        seed,
        TraceOptions::default(),
    );
    let (p, k) = contended_config(&pool, scale);
    let flat = pool.flat(p);
    let jobs: Vec<(ReplacementKind, ArbitrationKind)> = ReplacementKind::ALL
        .into_iter()
        .flat_map(|r| {
            [ArbitrationKind::Fifo, ArbitrationKind::Priority]
                .into_iter()
                .map(move |a| (r, a))
        })
        .collect();
    let scratches = ScratchPool::new();
    let results = hbm_par::parallel_map(&jobs, |&(rep, arb)| {
        let r = scratches.with(|scratch| {
            hbm_core::SimBuilder::new()
                .hbm_slots(k)
                .channels(1)
                .arbitration(arb)
                .replacement(rep)
                .seed(seed)
                .try_build_flat_reusing(&flat, scratch)
                .expect("invalid simulation config")
                .run_reusing(&mut hbm_core::NoopObserver, scratch)
        });
        (rep, arb, r.makespan, r.hit_rate)
    });
    let mut t = ResultTable::new(
        "Ablation replacement — replacement × arbitration policy (SpGEMM)",
        &["replacement", "arbitration", "makespan", "hit_rate"],
    );
    for (rep, arb, makespan, hit_rate) in results {
        t.push_row(vec![
            rep.to_string(),
            arb.label(),
            makespan.to_string(),
            f3(hit_rate),
        ]);
    }
    t
}

/// Trace-granularity ablation: collapsing consecutive same-page references
/// shortens traces but must not change which policy wins.
pub fn collapse(scale: Scale, seed: u64) -> ResultTable {
    let p = contended_threads(scale);
    let mut t = ResultTable::new(
        "Ablation collapse — trace granularity (collapse consecutive same-page refs)",
        &[
            "collapse",
            "total_refs",
            "fifo_makespan",
            "priority_makespan",
            "ratio",
        ],
    );
    let mut scratch = EngineScratch::default();
    let mut k = 0;
    for collapse in [false, true] {
        let opts = TraceOptions {
            collapse,
            ..TraceOptions::default()
        };
        let pool = TracePool::generate(scale.sort_spec(), p, seed, opts);
        if !collapse {
            // The probe trace always uses default options (collapse=true),
            // so either pool derives the same k; compute it once.
            k = contended_config(&pool, scale).1;
        }
        let flat = pool.flat(p);
        let fifo = run_cell_flat(&flat, k, 1, ArbitrationKind::Fifo, seed, &mut scratch);
        let prio = run_cell_flat(&flat, k, 1, ArbitrationKind::Priority, seed, &mut scratch);
        t.push_row(vec![
            collapse.to_string(),
            flat.workload().total_refs().to_string(),
            fifo.makespan.to_string(),
            prio.makespan.to_string(),
            f3(fifo.makespan as f64 / prio.makespan.max(1) as f64),
        ]);
    }
    t
}

/// FR-FCFS extension: the real controllers' FIFO variant against plain
/// FIFO and Priority.
pub fn frfcfs(scale: Scale, seed: u64) -> ResultTable {
    let pool = TracePool::generate(
        scale.spgemm_spec(),
        contended_threads(scale),
        seed,
        TraceOptions::default(),
    );
    let (p, k) = contended_config(&pool, scale);
    let flat = pool.flat(p);
    let kinds = [
        ArbitrationKind::Fifo,
        ArbitrationKind::FrFcfs { row_shift: 2 },
        ArbitrationKind::FrFcfs { row_shift: 4 },
        ArbitrationKind::Priority,
    ];
    let scratches = ScratchPool::new();
    let results = hbm_par::parallel_map(&kinds, |&arb| {
        let r = scratches.with(|scratch| run_cell_flat(&flat, k, 1, arb, seed, scratch));
        (arb, r.makespan, r.response.mean)
    });
    let mut t = ResultTable::new(
        "Extension frfcfs — FR-FCFS (open-row FIFO variant) vs FIFO and Priority",
        &["policy", "makespan", "mean_response"],
    );
    for (arb, makespan, mean) in results {
        t.push_row(vec![arb.label(), makespan.to_string(), f3(mean)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replacement_is_not_the_problem() {
        let t = replacement(Scale::Small, 9);
        assert_eq!(t.rows.len(), 8);
        // Within one arbitration policy, replacement choice moves makespan
        // by far less than the arbitration choice does at high contention.
        let get = |rep: &str, arb: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == rep && r[1] == arb).unwrap()[2]
                .parse()
                .unwrap()
        };
        let lru_prio = get("LRU", "Priority");
        let clock_prio = get("CLOCK", "Priority");
        assert!(
            (clock_prio / lru_prio - 1.0).abs() < 0.5,
            "replacement swing should be modest: LRU {lru_prio} vs CLOCK {clock_prio}"
        );
    }

    #[test]
    fn collapse_preserves_the_winner() {
        let t = collapse(Scale::Small, 9);
        assert_eq!(t.rows.len(), 2);
        let r_raw: f64 = t.rows[0][4].parse().unwrap();
        let r_col: f64 = t.rows[1][4].parse().unwrap();
        // Same side of 1.0 (or both near 1).
        assert!(
            (r_raw - 1.0) * (r_col - 1.0) >= 0.0
                || (r_raw - 1.0).abs() < 0.15
                || (r_col - 1.0).abs() < 0.15,
            "winner flipped: raw {r_raw} vs collapsed {r_col}"
        );
        let refs_raw: u64 = t.rows[0][1].parse().unwrap();
        let refs_col: u64 = t.rows[1][1].parse().unwrap();
        assert!(refs_col < refs_raw, "collapse must shorten traces");
    }

    #[test]
    fn frfcfs_runs() {
        let t = frfcfs(Scale::Small, 9);
        assert_eq!(t.rows.len(), 4);
    }
}
