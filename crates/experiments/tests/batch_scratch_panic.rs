//! BatchScratch soundness under the panic path (DESIGN.md §15).
//!
//! Batched sweep workers recycle [`BatchScratch`] column arenas through a
//! [`ScratchPool`]; a batch that panics mid-run abandons its scratch in
//! an arbitrary state — possibly *hollow* (the [`BatchEngine`] took the
//! columns and never gave them back) or half-mutated. The pool's drop
//! guard still returns that scratch, and the next batch must be
//! bit-identical to one run on a fresh scratch. These tests drive the
//! real crash machinery: `hbm_par::try_parallel_map`'s per-batch
//! `catch_unwind` plus the pool's unwind guard, then differential-check
//! every surviving scratch. They also pin the batch-granularity budget
//! contract: a per-cell tick budget flags exactly the over-budget cells.

use hbm_core::testkit::{compare_reports, random_cell};
use hbm_core::{
    ArbitrationKind, BatchCell, BatchEngine, BatchScratch, FaultPlan, FlatWorkload, SimConfig,
    Workload,
};
use hbm_experiments::common::{
    run_batch_budgeted_flat, run_batch_flat, CellBudget, ScratchPool, SimSettings,
};
use proptest::prelude::*;
use std::sync::Arc;

/// A small heterogeneous batch derived from the testkit's seeded cell
/// generator: every cell replays `flat` under a different configuration.
fn seeded_batch(seed: u64, n: usize) -> Vec<BatchCell> {
    (0..n as u64)
        .map(|i| {
            let config = SimConfig {
                max_ticks: 100_000,
                ..random_cell(seed + i).config
            };
            BatchCell {
                config,
                faults: FaultPlan::default(),
            }
        })
        .collect()
}

/// A sweep of batches where every third batch panics *after*
/// `BatchEngine` construction has taken the scratch's columns (leaving it
/// hollow). Panicking batches fail alone under `try_parallel_map`; every
/// scratch the pool recycled — including the abandoned ones — then
/// produces bit-identical reports.
#[test]
fn panicked_batches_leave_recyclable_scratches() {
    let scratches: ScratchPool<BatchScratch> = ScratchPool::new();
    let seeds: Vec<u64> = (0..12).collect();
    let results = hbm_par::try_parallel_map(&seeds, |&seed| {
        scratches.with(|scratch| {
            let cell = random_cell(seed);
            let flat = Arc::new(FlatWorkload::new(&cell.workload));
            let batch = seeded_batch(seed * 31, 3);
            let engine = BatchEngine::try_with_scratch(Arc::clone(&flat), &batch, scratch)
                .expect("testkit configs are valid");
            // The engine now owns the columns; the scratch is hollow —
            // the worst state the drop guard can hand back to the pool.
            if seed % 3 == 0 {
                panic!("injected mid-batch panic (seed {seed})");
            }
            engine.into_reports_reusing(scratch)
        })
    });
    for (seed, res) in seeds.iter().zip(&results) {
        match res {
            Ok(reports) => {
                assert_ne!(seed % 3, 0, "seed {seed} should have panicked");
                assert_eq!(reports.len(), 3);
            }
            Err(p) => {
                assert_eq!(seed % 3, 0, "seed {seed} should have completed");
                assert!(p.message.contains("injected"), "unexpected panic: {p}");
            }
        }
    }
    assert!(
        scratches.idle() > 0,
        "workers must have returned scratches to the pool"
    );

    // Differential pass: drain the pool — every recycled scratch (hollow
    // or dirty) must replay a fresh batch identically to owned runs.
    let idle = scratches.idle();
    for verify_seed in 100..100 + idle as u64 {
        let cell = random_cell(verify_seed);
        let flat = Arc::new(FlatWorkload::new(&cell.workload));
        let settings: Vec<SimSettings> = (0..3)
            .map(|i| {
                let c = random_cell(verify_seed * 7 + i).config;
                SimSettings {
                    k: c.hbm_slots,
                    q: c.channels,
                    arbitration: c.arbitration,
                    replacement: c.replacement,
                    far_latency: Some(c.far_latency),
                    seed: c.seed,
                    faults: FaultPlan::default(),
                }
            })
            .collect();
        let pooled = scratches.with(|scratch| run_batch_flat(&flat, &settings, scratch));
        for (i, s) in settings.iter().enumerate() {
            // Reference: the same cell as a singleton on a fresh scratch,
            // which takes the scalar fallback path — an independent
            // implementation of the same trajectory.
            let owned =
                run_batch_flat(&flat, std::slice::from_ref(s), &mut BatchScratch::default());
            compare_reports(&owned[0], &pooled[i]).unwrap_or_else(|msg| {
                panic!("recycled scratch diverged on verify seed {verify_seed}, cell {i}:\n{msg}")
            });
        }
    }
}

/// The same guarantee without the pool: a scratch abandoned hollow by a
/// direct `catch_unwind` (no drop guard involved) re-arms correctly, and
/// its embedded scalar scratch survives alongside.
#[test]
fn hollow_batch_scratch_from_catch_unwind_is_reusable() {
    let mut scratch = BatchScratch::default();
    let warm = random_cell(7);
    let warm_flat = Arc::new(FlatWorkload::new(&warm.workload));
    let warm_batch = seeded_batch(70, 2);
    // Warm the scratch on one batch so it holds real columns.
    let engine = BatchEngine::try_with_scratch(Arc::clone(&warm_flat), &warm_batch, &mut scratch)
        .expect("valid batch");
    let _ = engine.into_reports_reusing(&mut scratch);
    // Abandon it hollow: construction takes the columns, then we unwind.
    let taken = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _engine =
            BatchEngine::try_with_scratch(Arc::clone(&warm_flat), &warm_batch, &mut scratch)
                .expect("valid batch");
        panic!("abandon the engine");
    }));
    assert!(taken.is_err());
    // The hollow scratch must serve the next batch bit-identically.
    let cell = random_cell(8);
    let flat = Arc::new(FlatWorkload::new(&cell.workload));
    let batch = seeded_batch(80, 4);
    let reused = BatchEngine::try_with_scratch(Arc::clone(&flat), &batch, &mut scratch)
        .expect("valid batch")
        .into_reports_reusing(&mut scratch);
    let fresh =
        BatchEngine::try_with_scratch(Arc::clone(&flat), &batch, &mut BatchScratch::default())
            .expect("valid batch")
            .into_reports_reusing(&mut BatchScratch::default());
    for (i, (a, b)) in fresh.iter().zip(&reused).enumerate() {
        compare_reports(a, b)
            .unwrap_or_else(|msg| panic!("hollow scratch diverged on cell {i}:\n{msg}"));
    }
}

/// Per-cell tick budgets inside one batch: exactly the cells that exceed
/// the budget report `truncated`; cells finishing within it never do, and
/// their metrics are untouched by their truncated neighbours.
#[test]
fn cell_budget_truncates_exactly_the_over_budget_cells() {
    let w = Workload::from_refs(vec![(0..400u32).map(|r| r % 300).collect(); 4]);
    let flat = Arc::new(FlatWorkload::new(&w));
    // Two fast cells (everything fits), two thrashing cells (tiny HBM,
    // serial channel) interleaved so truncation lands mid-batch.
    let settings = vec![
        SimSettings::new(512, 4, ArbitrationKind::Fifo, 1),
        SimSettings::new(2, 1, ArbitrationKind::Fifo, 1),
        SimSettings::new(512, 4, ArbitrationKind::Priority, 1),
        SimSettings::new(2, 1, ArbitrationKind::Priority, 1),
    ];
    let unlimited = run_batch_budgeted_flat(
        &flat,
        &settings,
        CellBudget::UNLIMITED,
        &mut BatchScratch::default(),
    )
    .unwrap();
    assert!(unlimited.iter().all(|r| !r.truncated));
    let fast_worst = unlimited[0].makespan.max(unlimited[2].makespan);
    assert!(
        unlimited[1].makespan > fast_worst + 10 && unlimited[3].makespan > fast_worst + 10,
        "thrashing cells must outlast the budget for this test to bite"
    );
    let budget = CellBudget {
        max_ticks: Some(fast_worst + 10),
        max_wall: None,
    };
    let reports =
        run_batch_budgeted_flat(&flat, &settings, budget, &mut BatchScratch::default()).unwrap();
    assert!(!reports[0].truncated && !reports[2].truncated);
    assert!(reports[1].truncated && reports[3].truncated);
    assert_eq!(reports[1].makespan, fast_worst + 10);
    assert_eq!(reports[3].makespan, fast_worst + 10);
    // Survivors are bit-identical to their unbudgeted runs: ragged
    // truncation next door never perturbs a finishing cell.
    for i in [0usize, 2] {
        compare_reports(&unlimited[i], &reports[i])
            .unwrap_or_else(|msg| panic!("budget perturbed surviving cell {i}:\n{msg}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The serve-path budgeted batch runner (phase-major since the
    /// executor rewrite) is bit-identical to the cell-major reference
    /// executor on arbitrary heterogeneous batches, **including batches a
    /// `CellBudget` tick cap truncates mid-run** — the budget maps to
    /// per-cell `max_ticks` via `SimSettings::to_batch_cell`, so both
    /// executors must truncate the same cells at the same tick with the
    /// same partial metrics.
    #[test]
    fn budgeted_phase_major_equals_cell_major(
        seeds in prop::collection::vec(0u64..4096, 2..7),
        budget_ticks in 1u64..120,
        cap in 0usize..2,
    ) {
        let base = random_cell(seeds[0] ^ 0xb1d);
        let flat = Arc::new(FlatWorkload::new(&base.workload));
        let settings: Vec<SimSettings> = seeds
            .iter()
            .map(|&s| {
                let c = random_cell(s).config;
                SimSettings {
                    k: c.hbm_slots,
                    q: c.channels,
                    arbitration: c.arbitration,
                    replacement: c.replacement,
                    far_latency: Some(c.far_latency),
                    seed: c.seed,
                    faults: FaultPlan::default(),
                }
            })
            .collect();
        let budget = CellBudget {
            // Half the cases run a tick cap tight enough to truncate
            // thrashing cells mid-batch; the other half run unlimited.
            max_ticks: (cap == 1).then_some(budget_ticks),
            max_wall: None,
        };
        let budgeted =
            run_batch_budgeted_flat(&flat, &settings, budget, &mut BatchScratch::default())
                .unwrap();
        let cells: Vec<BatchCell> =
            settings.iter().map(|s| s.to_batch_cell(budget)).collect();
        let reference = BatchEngine::try_new(Arc::clone(&flat), &cells)
            .unwrap()
            .run_quiet_cell_major();
        for (i, (a, b)) in budgeted.iter().zip(&reference).enumerate() {
            if let Err(m) = compare_reports(a, b) {
                return Err(TestCaseError::fail(format!(
                    "budgeted phase-major vs cell-major: cell {i} differs: {m}"
                )));
            }
        }
    }
}
