//! EngineScratch soundness under the panic path (DESIGN.md §13).
//!
//! Sweep workers recycle [`EngineScratch`] buffers through a
//! [`ScratchPool`]; a cell that panics mid-run abandons its scratch in an
//! arbitrary state — possibly *hollow* (the engine took the buffers and
//! never gave them back) or half-mutated. The pool's drop guard still
//! returns that scratch, and the next cell must be bit-identical to one
//! run on a fresh scratch. These tests drive the real crash machinery:
//! `hbm_par::try_parallel_map`'s per-cell `catch_unwind` plus the pool's
//! unwind guard, then differential-check every surviving scratch.

use hbm_core::testkit::{compare_reports, random_cell};
use hbm_core::{Engine, EngineScratch, FaultPlan, FlatWorkload, NoopObserver};
use hbm_experiments::common::{run_cell, run_cell_flat, ScratchPool};
use std::sync::Arc;

/// The pool's `with` returns the scratch even when the closure unwinds.
#[test]
fn with_recycles_scratch_on_unwind() {
    let pool: ScratchPool = ScratchPool::new();
    assert_eq!(pool.idle(), 0);
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.with(|_scratch| panic!("injected"));
    }));
    assert!(unwound.is_err());
    assert_eq!(
        pool.idle(),
        1,
        "panicked cell must still return its scratch"
    );
}

/// A sweep where every third cell panics *after* engine construction has
/// taken the scratch's buffers (leaving it hollow). Panicking cells fail
/// alone under `try_parallel_map`; every scratch the pool recycled —
/// including the abandoned ones — then produces bit-identical reports.
#[test]
fn panicked_cells_leave_recyclable_scratches() {
    let scratches = ScratchPool::new();
    let seeds: Vec<u64> = (0..12).collect();
    let results = hbm_par::try_parallel_map(&seeds, |&seed| {
        scratches.with(|scratch| {
            let cell = random_cell(seed);
            let flat = Arc::new(FlatWorkload::new(&cell.workload));
            let engine = Engine::from_flat_with_scratch(
                cell.config,
                FaultPlan::default(),
                Arc::clone(&flat),
                scratch,
            );
            // The engine now owns the buffers; the scratch is hollow — the
            // worst state the drop guard can hand back to the pool.
            if seed % 3 == 0 {
                panic!("injected mid-cell panic (seed {seed})");
            }
            engine.run_reusing(&mut NoopObserver, scratch)
        })
    });
    for (seed, res) in seeds.iter().zip(&results) {
        match res {
            Ok(_) => assert_ne!(seed % 3, 0, "seed {seed} should have panicked"),
            Err(p) => {
                assert_eq!(seed % 3, 0, "seed {seed} should have completed");
                assert!(p.message.contains("injected"), "unexpected panic: {p}");
            }
        }
    }
    assert!(
        scratches.idle() > 0,
        "workers must have returned scratches to the pool"
    );

    // Differential pass: drain the pool — every recycled scratch (hollow
    // or dirty) must replay a fresh cell identically to an owned run.
    let idle = scratches.idle();
    for verify_seed in 100..100 + idle as u64 {
        let cell = random_cell(verify_seed);
        let flat = Arc::new(FlatWorkload::new(&cell.workload));
        let pooled = scratches.with(|scratch| {
            run_cell_flat(
                &flat,
                cell.config.hbm_slots,
                cell.config.channels,
                cell.config.arbitration,
                cell.config.seed,
                scratch,
            )
        });
        let owned = run_cell(
            &cell.workload,
            cell.config.hbm_slots,
            cell.config.channels,
            cell.config.arbitration,
            cell.config.seed,
        );
        compare_reports(&owned, &pooled).unwrap_or_else(|msg| {
            panic!("recycled scratch diverged on verify seed {verify_seed}:\n{msg}")
        });
    }
}

/// The same guarantee without the pool: a scratch abandoned hollow by a
/// direct `catch_unwind` (no drop guard involved) re-arms correctly.
#[test]
fn hollow_scratch_from_catch_unwind_is_reusable() {
    let mut scratch = EngineScratch::default();
    // Warm the scratch on one cell so it holds real buffers.
    let warm = random_cell(7);
    let warm_flat = Arc::new(FlatWorkload::new(&warm.workload));
    let _ = run_cell_flat(
        &warm_flat,
        warm.config.hbm_slots,
        warm.config.channels,
        warm.config.arbitration,
        warm.config.seed,
        &mut scratch,
    );
    // Abandon it hollow: construction takes the buffers, then we unwind.
    let taken = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _engine = Engine::from_flat_with_scratch(
            warm.config,
            FaultPlan::default(),
            Arc::clone(&warm_flat),
            &mut scratch,
        );
        panic!("abandon the engine");
    }));
    assert!(taken.is_err());
    // The hollow scratch must serve the next cell bit-identically.
    let cell = random_cell(8);
    let flat = Arc::new(FlatWorkload::new(&cell.workload));
    let reused = run_cell_flat(
        &flat,
        cell.config.hbm_slots,
        cell.config.channels,
        cell.config.arbitration,
        cell.config.seed,
        &mut scratch,
    );
    let owned = run_cell(
        &cell.workload,
        cell.config.hbm_slots,
        cell.config.channels,
        cell.config.arbitration,
        cell.config.seed,
    );
    compare_reports(&owned, &reused).unwrap();
}
