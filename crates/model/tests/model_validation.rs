//! Validation suite for the analytical model.
//!
//! Three layers of protection:
//!
//! 1. **Envelope regression** — replays the full 288-cell conformance
//!    grid against the simulator and fails if the median |relative
//!    error| on makespan exceeds the acceptance gate (15%) or drifts
//!    more than 20% above the committed envelope. A model change that
//!    silently degrades accuracy cannot land.
//! 2. **Artifact mirror** — the committed `results/model_envelope.json`
//!    must be byte-identical to what the in-source `ENVELOPE` constants
//!    serialize to, so the artifact and the code cannot diverge.
//! 3. **Structural properties** — fault-free predictions are monotone in
//!    the resources (more HBM or more channels never predicts a worse
//!    makespan) and always land inside the provable interval.

use hbm_core::testkit::conformance_grid;
use hbm_core::{ArbitrationKind, ReplacementKind, SimBuilder};
use hbm_model::calibration::ENVELOPE;
use hbm_model::predict::predict;
use hbm_model::ModelConfig;
use hbm_traces::analysis::WorkloadSummary;
use hbm_traces::WorkloadSpec;
use proptest::prelude::*;

/// Nearest-rank median of absolute errors — the same convention the
/// calibration harness commits into the envelope.
fn median_abs(mut errs: Vec<f64>) -> f64 {
    assert!(!errs.is_empty());
    errs.iter_mut().for_each(|e| *e = e.abs());
    errs.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    let rank = ((errs.len() as f64) * 0.5).ceil() as usize;
    errs[rank.saturating_sub(1)]
}

/// Replays the conformance grid fresh: simulate every cell, predict it
/// from summary statistics alone, and regress the median error against
/// the committed envelope.
#[test]
fn envelope_regression_on_fresh_conformance_grid() {
    // The committed claim itself: the acceptance gate is part of the
    // artifact, not just of this run.
    assert!(
        ENVELOPE.conformance_makespan_median_abs <= 0.15,
        "committed conformance median {} violates the 15% gate",
        ENVELOPE.conformance_makespan_median_abs
    );

    let mut errs = Vec::new();
    for cell in conformance_grid() {
        let report = SimBuilder::from_config(cell.config).run(&cell.workload);
        if report.truncated || report.makespan < 2 {
            continue;
        }
        let summary = WorkloadSummary::from_workload(&cell.workload);
        let cfg = ModelConfig::new(
            cell.config.hbm_slots,
            cell.config.channels,
            cell.config.arbitration,
            cell.config.replacement,
        )
        .far_latency(cell.config.far_latency);
        let pred = predict(&summary, &cfg);
        errs.push((pred.makespan.est - report.makespan as f64) / report.makespan as f64);
    }
    assert!(
        errs.len() >= 250,
        "conformance grid shrank to {} usable cells",
        errs.len()
    );
    let fresh = median_abs(errs);
    assert!(
        fresh <= 0.15,
        "fresh conformance median |rel err| {fresh:.4} exceeds the 15% acceptance gate"
    );
    let ceiling = ENVELOPE.conformance_makespan_median_abs * 1.2;
    assert!(
        fresh <= ceiling,
        "fresh conformance median |rel err| {fresh:.4} drifted >20% above the committed \
         envelope ({:.4}); re-run `repro calibrate` and commit the new constants",
        ENVELOPE.conformance_makespan_median_abs
    );
}

/// The committed artifact is exactly the serialized in-source constants.
#[test]
fn committed_envelope_artifact_mirrors_constants() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/model_envelope.json"
    );
    let artifact = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed envelope {path}: {e}"));
    assert_eq!(
        artifact,
        ENVELOPE.to_json(),
        "results/model_envelope.json diverged from the ENVELOPE constants; \
         re-run `repro calibrate` and commit both together"
    );
}

/// Distinct trace shapes for the property tests: cyclic (the adversarial
/// paper workload), zipf (skewed reuse), uniform (no reuse structure).
fn summary(wi: usize, p: usize) -> WorkloadSummary {
    let spec = match wi {
        0 => WorkloadSpec::Cyclic { pages: 48, reps: 6 },
        1 => WorkloadSpec::Zipf {
            pages: 96,
            len: 800,
            alpha: 1.1,
        },
        _ => WorkloadSpec::Uniform {
            pages: 96,
            len: 800,
        },
    };
    WorkloadSummary::from_spec(spec, 11, p)
}

fn arbitration_kinds() -> impl Strategy<Value = ArbitrationKind> {
    prop_oneof![
        Just(ArbitrationKind::Fifo),
        Just(ArbitrationKind::Priority),
        Just(ArbitrationKind::DynamicPriority { period: 7 }),
        Just(ArbitrationKind::CyclePriority { period: 5 }),
        Just(ArbitrationKind::InterleavePriority { period: 6 }),
        Just(ArbitrationKind::RandomPick),
        Just(ArbitrationKind::FrFcfs { row_shift: 2 }),
    ]
}

fn replacement_kinds() -> impl Strategy<Value = ReplacementKind> {
    prop_oneof![
        Just(ReplacementKind::Lru),
        Just(ReplacementKind::Fifo),
        Just(ReplacementKind::Clock),
        Just(ReplacementKind::Random),
    ]
}

proptest! {
    /// More HBM never predicts a worse makespan (fault-free): the miss
    /// curve is non-increasing in capacity and every downstream operation
    /// of the closed form preserves that monotonicity.
    #[test]
    fn estimate_monotone_in_k(
        wi in 0usize..3,
        p in 1usize..6,
        k in 1usize..300,
        dk in 1usize..300,
        q in 1usize..6,
        far in 1u64..9,
        arb in arbitration_kinds(),
        rep in replacement_kinds(),
    ) {
        let s = summary(wi, p);
        let small = predict(&s, &ModelConfig::new(k, q, arb, rep).far_latency(far));
        let big = predict(&s, &ModelConfig::new(k + dk, q, arb, rep).far_latency(far));
        prop_assert!(
            big.makespan.est <= small.makespan.est * (1.0 + 1e-9),
            "k {} -> {}: est rose {} -> {}",
            k, k + dk, small.makespan.est, big.makespan.est
        );
    }

    /// More far channels never predict a worse makespan (fault-free):
    /// channel work divides by q and the lower bound's footprint term
    /// shrinks with q.
    #[test]
    fn estimate_monotone_in_q(
        wi in 0usize..3,
        p in 1usize..6,
        k in 1usize..300,
        q in 1usize..6,
        dq in 1usize..6,
        far in 1u64..9,
        arb in arbitration_kinds(),
        rep in replacement_kinds(),
    ) {
        let s = summary(wi, p);
        let narrow = predict(&s, &ModelConfig::new(k, q, arb, rep).far_latency(far));
        let wide = predict(&s, &ModelConfig::new(k, q + dq, arb, rep).far_latency(far));
        prop_assert!(
            wide.makespan.est <= narrow.makespan.est * (1.0 + 1e-9),
            "q {} -> {}: est rose {} -> {}",
            q, q + dq, narrow.makespan.est, wide.makespan.est
        );
    }

    /// Fault-free predictions always land inside the provable interval,
    /// and the uncertainty band always brackets the point estimate.
    #[test]
    fn estimate_within_proved_interval(
        wi in 0usize..3,
        p in 1usize..6,
        k in 1usize..300,
        q in 1usize..6,
        far in 1u64..9,
        arb in arbitration_kinds(),
        rep in replacement_kinds(),
    ) {
        let s = summary(wi, p);
        let pred = predict(&s, &ModelConfig::new(k, q, arb, rep).far_latency(far));
        prop_assert!(pred.makespan.est >= pred.lower_bound as f64);
        prop_assert!(pred.makespan.est <= pred.upper_bound as f64);
        prop_assert!(pred.makespan.lo <= pred.makespan.est);
        prop_assert!(pred.makespan.hi >= pred.makespan.est);
        prop_assert!(pred.uncertainty.is_finite() && pred.uncertainty >= 0.0);
    }
}
