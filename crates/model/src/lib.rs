//! # hbm-model — the analytical fast path
//!
//! A closed-form performance model of the paper's HBM machine: given a
//! [`WorkloadSummary`](hbm_traces::analysis::WorkloadSummary) (per-core
//! miss-ratio curves, request volumes, footprint) and a [`ModelConfig`]
//! (`k`, `q`, arbitration, replacement, far latency, fault summary), it
//! predicts **makespan**, **mean response time**, **blocked fraction**,
//! and **inconsistency** — each as a [`Band`] carrying a calibrated
//! uncertainty interval — without running the simulator.
//!
//! One prediction costs O(1) after the summary's one-time per-workload
//! pass, so a million-cell design-space grid ranks in seconds; that is
//! the contract `repro explore` (hbm-experiments) and `POST /estimate`
//! (hbm-serve) build on. Where the simulator spends a tick per simulated
//! tick, the model spends a handful of float operations per *run*.
//!
//! ## The model in one paragraph
//!
//! Per-core LRU miss-ratio curves give the miss count `m(k)` under an
//! equal `⌊k/p⌋` HBM split; a per-arbitration *batching coefficient* β
//! interpolates between that fair split (FIFO-family, β = 0) and ideal
//! priority batching (β = 1), where every page crosses a far channel
//! exactly once. The predicted makespan is the larger of the channel
//! path `m·f/q` and the critical core's own path, plus an α-weighted
//! contention overlap, scaled by a per-(arbitration, replacement)
//! calibration factor κ fitted against the simulator, and finally
//! clamped into the provable interval
//! [`makespan_lower_bound`](hbm_core::bounds::makespan_lower_bound) ≤
//! makespan ≤
//! [`makespan_upper_bound`](hbm_core::bounds::makespan_upper_bound).
//! Mean response and inconsistency follow from a two-point
//! (hit/miss) response mixture; the blocked fraction is driven by the
//! fault summary's full-outage ticks. DESIGN.md §19 derives each term.
//!
//! ## Calibration and the error envelope
//!
//! `repro calibrate` fits κ over the 288-cell conformance grid plus the
//! Figure 2/Figure 3 sweep grids, and records the resulting signed
//! relative-error quantiles per metric as a committed artifact
//! (`results/model_envelope.json`) mirrored by the constants in
//! [`calibration::FIT`]. The envelope is what turns a point estimate
//! into a band, and `tests/model_validation.rs` fails CI if the model
//! drifts more than 20% beyond the committed envelope.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibration;
pub mod predict;

pub use calibration::{Calibration, Envelope, MetricEnvelope};
pub use predict::{
    arb_index, rep_index, summary_bounds, Band, FaultSummary, ModelConfig, Prediction,
};
