//! The closed-form predictor: from a [`WorkloadSummary`] and a
//! [`ModelConfig`] to a [`Prediction`] in O(1) float operations.
//!
//! The derivation (DESIGN.md §19) in brief. Let `p` be the core count,
//! `f` the far latency, `m(s)` the summed per-core LRU miss count at a
//! per-core share of `s` HBM slots, and `m̂(s)` the critical (worst)
//! core's miss count at that share.
//!
//! * **Fair split** (FIFO-family behaviour): every core holds `⌊k/p⌋`
//!   slots for the whole run → `m_fair = m(⌊k/p⌋)`.
//! * **Batched** (Priority-family behaviour): the running core owns the
//!   whole HBM while it runs → `m_batch = m(k)` (with `m(s)` capped at
//!   the per-core working set this approaches one fetch per distinct
//!   page, the Lemma-1 ideal).
//! * A per-arbitration *batching coefficient* `β ∈ [0, 1]` interpolates:
//!   `m_eff = β·m_batch + (1−β)·m_fair`. β is fitted, not assumed.
//!
//! The channel path must move `m_eff` fetches of `f` ticks each through
//! `q` channels (`E[attempts]` per fetch under transient faults, plus
//! channel-ticks lost to partial outages); the critical-core path must
//! execute its own trace plus its own misses serially. Makespan is the
//! larger path plus an α-weighted fraction of the smaller (imperfect
//! overlap), plus ticks where *zero* channels were up, scaled by a
//! fitted per-(arbitration, replacement) constant κ, and clamped into
//! the provable `[lower_bound, upper_bound]` interval.
//!
//! Mean response time is a two-point mixture: hits cost 1 tick, misses
//! cost `1 + f·E[attempts] + W` where `W = w·f·ρ/(1−ρ)` is an M/M/1-style
//! queueing wait at channel utilization `ρ` with fitted weight `w`.
//! Inconsistency (the paper's response-time stddev) is the mixture's
//! stddev; the blocked fraction is full-outage time over the makespan.

use crate::calibration::{Calibration, Envelope, MetricEnvelope};
use hbm_core::{ArbitrationKind, FaultPlan, ReplacementKind};
use hbm_traces::analysis::WorkloadSummary;

/// Number of arbitration families the calibration tables index over.
pub const ARB_KINDS: usize = 9;
/// Number of replacement policies the calibration tables index over.
pub const REP_KINDS: usize = 4;

/// Dense index of an arbitration kind into the calibration tables.
/// Parameterized variants (periods, row shifts) share their family's
/// entry: the fitted constants capture the family's batching behaviour,
/// which the parameters perturb only mildly.
pub fn arb_index(kind: ArbitrationKind) -> usize {
    match kind {
        ArbitrationKind::Fifo => 0,
        ArbitrationKind::Priority => 1,
        ArbitrationKind::DynamicPriority { .. } => 2,
        ArbitrationKind::CyclePriority { .. } => 3,
        ArbitrationKind::CycleReversePriority { .. } => 4,
        ArbitrationKind::InterleavePriority { .. } => 5,
        ArbitrationKind::SweepPriority { .. } => 6,
        ArbitrationKind::RandomPick => 7,
        ArbitrationKind::FrFcfs { .. } => 8,
    }
}

/// Dense index of a replacement policy into the calibration tables.
pub fn rep_index(kind: ReplacementKind) -> usize {
    match kind {
        ReplacementKind::Lru => 0,
        ReplacementKind::Fifo => 1,
        ReplacementKind::Clock => 2,
        ReplacementKind::Random => 3,
    }
}

/// What the model needs to know about a [`FaultPlan`]: aggregate totals,
/// not the schedule. Computed once per plan by [`FaultSummary::from_plan`]
/// and then shared across every `(k, arbitration, replacement)` cell that
/// reuses the plan — only `q` changes the outage accounting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSummary {
    /// Ticks during which *every* channel is down (`q_eff = 0`): the
    /// machine serves hits but admits no fetch, so these ticks add to the
    /// makespan of any fetch-bound run and drive the blocked fraction.
    pub full_outage_ticks: u64,
    /// Σ over ticks of `min(channels_down, q)` for partial outages —
    /// channel-ticks of capacity lost while the machine still made
    /// progress. Divided by `q` this is the equivalent serial delay.
    pub lost_channel_ticks: f64,
    /// Σ over degradation windows of `duration × extra_latency`: the
    /// total extra channel-ticks available to be charged to fetches that
    /// start inside a window.
    pub degraded_extra_ticks: f64,
    /// Σ of degradation window durations (ticks covered by ≥1 window).
    pub degraded_span: u64,
    /// Expected transfer attempts per fetch under the transient-failure
    /// model (`1.0` when there is none). With per-attempt failure
    /// probability `P` and a hard retry bound `R`,
    /// `E = Σ_{a=1}^{R} a·P^{a−1}(1−P) + (R+1)·P^R`.
    pub mean_attempts: f64,
}

impl FaultSummary {
    /// The fault-free summary.
    pub const NONE: FaultSummary = FaultSummary {
        full_outage_ticks: 0,
        lost_channel_ticks: 0.0,
        degraded_extra_ticks: 0.0,
        degraded_span: 0,
        mean_attempts: 1.0,
    };

    /// Summarizes `plan` as seen by a machine with `q` far channels.
    pub fn from_plan(plan: &FaultPlan, q: usize) -> Self {
        if q == 0 {
            return FaultSummary::NONE;
        }
        // Outage windows may overlap; per-tick down-counts add (the
        // engine disables the last `down(t)` channels). Sweep boundary
        // events to accumulate exact per-segment counts.
        let mut events: Vec<(u64, i64)> = Vec::with_capacity(plan.outages.len() * 2);
        for o in &plan.outages {
            if o.end > o.start && o.channels > 0 {
                events.push((o.start, o.channels as i64));
                events.push((o.end, -(o.channels as i64)));
            }
        }
        events.sort_unstable();
        let mut full_outage_ticks = 0u64;
        let mut lost_channel_ticks = 0.0f64;
        let mut down = 0i64;
        let mut prev = 0u64;
        for &(t, delta) in &events {
            if t > prev && down > 0 {
                let span = t - prev;
                let eff_down = (down as u64).min(q as u64);
                if eff_down as usize >= q {
                    full_outage_ticks += span;
                } else {
                    lost_channel_ticks += span as f64 * eff_down as f64;
                }
            }
            prev = t.max(prev);
            down += delta;
        }
        // Degradation windows: overlaps add extra latency, mirroring the
        // engine's per-start accumulation.
        let mut degraded_extra_ticks = 0.0f64;
        for d in &plan.degradations {
            if d.end > d.start {
                degraded_extra_ticks += (d.end - d.start) as f64 * d.extra_latency as f64;
            }
        }
        let mut spans: Vec<(u64, u64)> = plan
            .degradations
            .iter()
            .filter(|d| d.end > d.start)
            .map(|d| (d.start, d.end))
            .collect();
        spans.sort_unstable();
        let mut degraded_span = 0u64;
        let mut cover_end = 0u64;
        for (s, e) in spans {
            let s = s.max(cover_end);
            if e > s {
                degraded_span += e - s;
                cover_end = e;
            }
        }
        let mean_attempts = match plan.transient {
            None => 1.0,
            Some(t) => expected_attempts(t.fail_prob, t.max_retries),
        };
        FaultSummary {
            full_outage_ticks,
            lost_channel_ticks,
            degraded_extra_ticks,
            degraded_span,
            mean_attempts,
        }
    }

    /// True when the summary is indistinguishable from fault-free. Only
    /// then may predictions be clamped against the fault-free
    /// [`makespan_upper_bound`](hbm_core::bounds::makespan_upper_bound).
    pub fn is_zero(&self) -> bool {
        self.full_outage_ticks == 0
            && self.lost_channel_ticks == 0.0
            && self.degraded_extra_ticks == 0.0
            && (self.mean_attempts - 1.0).abs() < 1e-12
    }
}

/// `E[attempts]` per transfer: geometric with success probability
/// `1 − fail_prob`, truncated by the hard retry bound (the attempt after
/// the `max_retries`-th failure always succeeds).
fn expected_attempts(fail_prob: f64, max_retries: u32) -> f64 {
    let p = fail_prob.clamp(0.0, 1.0);
    let r = max_retries.max(1);
    let mut e = 0.0;
    let mut pow = 1.0; // p^(a-1)
    for a in 1..=r {
        e += a as f64 * pow * (1.0 - p);
        pow *= p;
    }
    // All r attempts failed (prob p^r): the (r+1)-th succeeds for sure.
    e + (r as f64 + 1.0) * pow
}

/// One design-space cell as the model sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// HBM capacity in slots.
    pub k: usize,
    /// Far channel count.
    pub q: usize,
    /// Arbitration policy (parameterized variants share their family's
    /// calibration entry).
    pub arbitration: ArbitrationKind,
    /// HBM replacement policy.
    pub replacement: ReplacementKind,
    /// Far-transfer latency in ticks.
    pub far_latency: u64,
    /// Aggregate fault summary ([`FaultSummary::NONE`] when fault-free).
    pub faults: FaultSummary,
}

impl ModelConfig {
    /// A fault-free cell at the default far latency of 1.
    pub fn new(k: usize, q: usize, arbitration: ArbitrationKind, replacement: ReplacementKind) -> Self {
        ModelConfig {
            k,
            q,
            arbitration,
            replacement,
            far_latency: 1,
            faults: FaultSummary::NONE,
        }
    }

    /// Sets the far latency.
    pub fn far_latency(mut self, f: u64) -> Self {
        self.far_latency = f;
        self
    }

    /// Attaches a fault summary.
    pub fn faults(mut self, faults: FaultSummary) -> Self {
        self.faults = faults;
        self
    }
}

/// A point estimate with its calibrated uncertainty interval. The band is
/// derived from the committed error envelope: if signed relative errors
/// `(pred − sim)/sim` historically span `[q05, q95]`, the simulator value
/// compatible with estimate `e` spans `[e/(1+q95), e/(1+q05)]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Lower edge of the 90% band.
    pub lo: f64,
    /// The point estimate.
    pub est: f64,
    /// Upper edge of the 90% band.
    pub hi: f64,
}

impl Band {
    fn from_envelope(est: f64, env: &MetricEnvelope) -> Band {
        // err = (pred − sim)/sim > −1 always, so 1 + q > 0.
        let lo = est / (1.0 + env.p95.max(-0.99));
        let hi = est / (1.0 + env.p05.max(-0.99));
        Band {
            lo: lo.min(est),
            est,
            hi: hi.max(est),
        }
    }

    /// Relative width of the band: `(hi − lo) / max(est, 1)` — the
    /// model's own uncertainty score for ranking cells to re-simulate.
    pub fn rel_width(&self) -> f64 {
        (self.hi - self.lo) / self.est.max(1.0)
    }

    /// True if `value` lies inside the band widened by `slack`
    /// (multiplicative: `[lo/(1+slack), hi·(1+slack)]`).
    pub fn covers(&self, value: f64, slack: f64) -> bool {
        value >= self.lo / (1.0 + slack) && value <= self.hi * (1.0 + slack)
    }
}

/// The model's output for one cell: the four paper metrics as bands,
/// plus the provable interval and bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted makespan (ticks), clamped into `[lower_bound,
    /// upper_bound]` (upper only when fault-free — outages can push real
    /// runs past the fault-free ceiling).
    pub makespan: Band,
    /// Predicted mean response time (ticks per reference).
    pub mean_response: Band,
    /// Predicted inconsistency (response-time standard deviation).
    pub inconsistency: Band,
    /// Predicted fraction of the makespan spent in full outage.
    pub blocked_frac: Band,
    /// Effective miss ratio the prediction is built on.
    pub miss_ratio: f64,
    /// Lemma-1 lower bound on the makespan (ticks).
    pub lower_bound: u64,
    /// Serial-channel upper bound on the fault-free makespan (ticks).
    pub upper_bound: u64,
    /// Uncertainty score: the makespan band's relative width, inflated by
    /// how hard the estimate was clamped (a clamp means the closed form
    /// disagreed with a proof — trust it less).
    pub uncertainty: f64,
    /// True if the raw estimate fell outside the provable interval.
    pub clamped: bool,
}

/// The provable makespan interval from summary statistics alone: mirrors
/// [`hbm_core::bounds::makespan_lower_bound`] /
/// [`makespan_upper_bound`](hbm_core::bounds::makespan_upper_bound)
/// without needing the traces.
pub fn summary_bounds(summary: &WorkloadSummary, q: usize, far_latency: u64) -> (u64, u64) {
    if summary.total_refs == 0 {
        return (0, 0);
    }
    let lb = summary
        .max_trace_len
        .max(summary.footprint.div_ceil(q.max(1) as u64))
        .max(2);
    let ub = summary
        .total_refs
        .saturating_mul(far_latency.saturating_add(1))
        .saturating_add(1);
    (lb, ub)
}

/// Raw (pre-κ, pre-clamp) estimates — the quantities calibration fits κ
/// against. Public so `repro calibrate` can refit without a circular
/// dependency on the fitted constants.
#[derive(Debug, Clone, Copy, Default)]
pub struct RawEstimates {
    /// Raw makespan (ticks).
    pub makespan: f64,
    /// Raw mean response time.
    pub mean_response: f64,
    /// Raw inconsistency.
    pub inconsistency: f64,
    /// Raw blocked fraction.
    pub blocked_frac: f64,
    /// Effective miss ratio.
    pub miss_ratio: f64,
}

/// Computes the raw closed-form estimates under `cal`'s shape parameters
/// (β, α, wait weight) with κ ≡ 1.
pub fn raw_estimates(cal: &Calibration, s: &WorkloadSummary, c: &ModelConfig) -> RawEstimates {
    if s.cores == 0 || s.total_refs == 0 {
        return RawEstimates::default();
    }
    let p = s.cores;
    let q = c.q.max(1) as f64;
    let f = c.far_latency.max(1) as f64;
    let ai = arb_index(c.arbitration);
    let beta = cal.beta[ai].clamp(0.0, 1.0);

    // Effective miss counts: β-interpolation between the fair ⌊k/p⌋
    // split and whole-machine batching.
    let m_fair = s.misses_at_share(c.k / p) as f64;
    let m_batch = s.misses_at_share(c.k) as f64;
    let m_eff = beta * m_batch + (1.0 - beta) * m_fair;
    let crit_fair = s.max_misses_at_share(c.k / p) as f64;
    let crit_batch = s.max_misses_at_share(c.k) as f64;
    let m_crit = beta * crit_batch + (1.0 - beta) * crit_fair;

    let attempts = c.faults.mean_attempts.max(1.0);
    // Channel path: every effective miss holds a channel for f ticks per
    // attempt; q channels drain in parallel. Partial outages remove
    // channel-ticks; degradations stretch fetches that start in-window
    // (approximated by the covered fraction of the run).
    let chan_work = m_eff * f * attempts;
    let crit_path = s.max_trace_len as f64 + m_crit * f * attempts;
    let t0 = (chan_work / q).max(crit_path).max(1.0);
    let degr_extra = if c.faults.degraded_extra_ticks > 0.0 {
        m_eff * c.faults.degraded_extra_ticks / t0.max(c.faults.degraded_span as f64)
    } else {
        0.0
    };
    let chan_path = (chan_work + degr_extra + c.faults.lost_channel_ticks) / q;

    // Imperfect overlap: the shorter path hides behind the longer one
    // only partially; α is the fitted exposed fraction.
    let hi = chan_path.max(crit_path);
    let lo = chan_path.min(crit_path);
    let makespan = hi + cal.alpha[ai] * lo + c.faults.full_outage_ticks as f64;

    // Response mixture: hits cost 1; misses cost 1 + f·attempts + wait,
    // with an M/M/1-style wait at channel utilization ρ.
    let miss_ratio = (m_eff / s.total_refs as f64).clamp(0.0, 1.0);
    let rho = (chan_work / q / makespan.max(1.0)).clamp(0.0, 0.98);
    let wait = cal.wait_weight * f * rho / (1.0 - rho);
    let resp_miss = 1.0 + f * attempts + wait;
    let mean_response = 1.0 + miss_ratio * (resp_miss - 1.0);
    let inconsistency = (resp_miss - 1.0) * (miss_ratio * (1.0 - miss_ratio)).sqrt();
    let blocked_frac = (c.faults.full_outage_ticks as f64 / makespan.max(1.0)).clamp(0.0, 1.0);

    RawEstimates {
        makespan,
        mean_response,
        inconsistency,
        blocked_frac,
        miss_ratio,
    }
}

impl Calibration {
    /// Predicts all four metrics for one cell, applying κ, clamping the
    /// makespan into its provable interval, and attaching `envelope`'s
    /// uncertainty bands.
    pub fn predict_with(
        &self,
        envelope: &Envelope,
        s: &WorkloadSummary,
        c: &ModelConfig,
    ) -> Prediction {
        let raw = raw_estimates(self, s, c);
        let (lb, ub) = summary_bounds(s, c.q, c.far_latency);
        let ai = arb_index(c.arbitration);
        let ri = rep_index(c.replacement);

        let scaled = raw.makespan * self.kappa_makespan[ai][ri];
        // The upper bound only holds fault-free; outages can exceed it.
        let clamp_hi = if c.faults.is_zero() { ub as f64 } else { f64::INFINITY };
        let est_mk = scaled.clamp(lb as f64, clamp_hi.max(lb as f64));
        let clamped = (est_mk - scaled).abs() > 1e-9;

        let mut makespan = Band::from_envelope(est_mk, &envelope.makespan);
        // The band may not contradict the proofs either.
        makespan.lo = makespan.lo.max(lb as f64);
        if c.faults.is_zero() {
            makespan.hi = makespan.hi.min(ub as f64).max(makespan.lo);
        }
        makespan.est = est_mk.clamp(makespan.lo, makespan.hi.max(makespan.lo));

        let est_resp = (raw.mean_response * self.kappa_response[ai][ri]).max(1.0);
        let mut mean_response = Band::from_envelope(est_resp, &envelope.mean_response);
        mean_response.lo = mean_response.lo.max(1.0);

        let est_inc = (raw.inconsistency * self.kappa_inconsistency[ai][ri]).max(0.0);
        let mut inconsistency = Band::from_envelope(est_inc, &envelope.inconsistency);
        inconsistency.lo = inconsistency.lo.max(0.0);

        // Blocked fraction rescales with the calibrated makespan (same
        // outage ticks over a better denominator) and is absolute-error
        // banded: envelope quantiles for it are differences, not ratios.
        let est_blocked = if c.faults.full_outage_ticks == 0 {
            0.0
        } else {
            (c.faults.full_outage_ticks as f64 / est_mk.max(1.0)).clamp(0.0, 1.0)
        };
        let blocked_frac = Band {
            lo: (est_blocked - envelope.blocked_frac.p95.abs()).max(0.0),
            est: est_blocked,
            hi: (est_blocked + envelope.blocked_frac.p95.abs()).min(1.0),
        };

        let clamp_penalty = if raw.makespan > 0.0 {
            (scaled - est_mk).abs() / est_mk.max(1.0)
        } else {
            0.0
        };
        let uncertainty = makespan.rel_width() + clamp_penalty;

        Prediction {
            makespan,
            mean_response,
            inconsistency,
            blocked_frac,
            miss_ratio: raw.miss_ratio,
            lower_bound: lb,
            upper_bound: ub,
            uncertainty,
            clamped,
        }
    }
}

/// Predicts one cell with the committed calibration
/// ([`crate::calibration::FIT`]) and envelope
/// ([`crate::calibration::ENVELOPE`]) — the entry point `repro explore`
/// and `POST /estimate` use.
pub fn predict(s: &WorkloadSummary, c: &ModelConfig) -> Prediction {
    crate::calibration::FIT.predict_with(&crate::calibration::ENVELOPE, s, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_core::Workload;

    fn summary() -> WorkloadSummary {
        let trace: Vec<u32> = (0..16u32).cycle().take(160).collect();
        WorkloadSummary::from_workload(&Workload::from_refs(vec![trace; 4]))
    }

    #[test]
    fn expected_attempts_limits() {
        assert!((expected_attempts(0.0, 3) - 1.0).abs() < 1e-12);
        // P = 1: every attempt fails until the bound forces success at
        // attempt R + 1.
        assert!((expected_attempts(1.0, 3) - 4.0).abs() < 1e-12);
        // Unbounded geometric mean 1/(1-P) = 2 at P = 0.5; the truncation
        // can only pull it down slightly for large R.
        let e = expected_attempts(0.5, 30);
        assert!((e - 2.0).abs() < 1e-6, "e = {e}");
    }

    #[test]
    fn fault_summary_of_empty_plan_is_zero() {
        let fs = FaultSummary::from_plan(&FaultPlan::new(), 4);
        assert!(fs.is_zero());
        assert_eq!(fs, FaultSummary::NONE);
    }

    #[test]
    fn fault_summary_splits_full_and_partial_outages() {
        let plan = FaultPlan::new()
            .outage(0, 10, 1) // partial: 10 ticks × 1 channel
            .outage(20, 25, 9); // full: channels ≥ q
        let fs = FaultSummary::from_plan(&plan, 2);
        assert_eq!(fs.full_outage_ticks, 5);
        assert!((fs.lost_channel_ticks - 10.0).abs() < 1e-12);
        assert!(!fs.is_zero());
    }

    #[test]
    fn fault_summary_overlapping_outages_add() {
        // Two 1-channel outages overlapping on [5, 10) take a q=2 machine
        // to a full outage there.
        let plan = FaultPlan::new().outage(0, 10, 1).outage(5, 15, 1);
        let fs = FaultSummary::from_plan(&plan, 2);
        assert_eq!(fs.full_outage_ticks, 5);
        assert!((fs.lost_channel_ticks - 10.0).abs() < 1e-12);
    }

    #[test]
    fn fault_summary_degradation_totals() {
        let plan = FaultPlan::new().degradation(0, 10, 3).degradation(5, 15, 2);
        let fs = FaultSummary::from_plan(&plan, 2);
        assert!((fs.degraded_extra_ticks - (30.0 + 20.0)).abs() < 1e-12);
        assert_eq!(fs.degraded_span, 15, "overlap covered once");
    }

    #[test]
    fn summary_bounds_match_trace_bounds() {
        let w = Workload::from_refs(vec![vec![0, 1, 2, 0, 1, 2]; 4]);
        let s = WorkloadSummary::from_workload(&w);
        for q in [1usize, 2, 4] {
            for f in [1u64, 3] {
                let (lb, ub) = summary_bounds(&s, q, f);
                assert_eq!(lb, hbm_core::bounds::makespan_lower_bound(&w, 8, q));
                assert_eq!(ub, hbm_core::bounds::makespan_upper_bound(&w, 8, q, f));
            }
        }
        let empty = WorkloadSummary::from_workload(&Workload::new());
        assert_eq!(summary_bounds(&empty, 2, 1), (0, 0));
    }

    #[test]
    fn prediction_stays_in_provable_interval_when_fault_free() {
        let s = summary();
        for k in [1usize, 8, 16, 32, 64, 128] {
            for q in [1usize, 2, 4] {
                for arb in [ArbitrationKind::Fifo, ArbitrationKind::Priority] {
                    let c = ModelConfig::new(k, q, arb, ReplacementKind::Lru);
                    let pred = predict(&s, &c);
                    let (lb, ub) = summary_bounds(&s, q, 1);
                    assert!(pred.makespan.est >= lb as f64, "est below lb at k={k} q={q}");
                    assert!(pred.makespan.est <= ub as f64, "est above ub at k={k} q={q}");
                    assert!(pred.makespan.lo <= pred.makespan.est);
                    assert!(pred.makespan.est <= pred.makespan.hi);
                    assert!(pred.mean_response.est >= 1.0);
                    assert!(pred.inconsistency.est >= 0.0);
                    assert_eq!(pred.blocked_frac.est, 0.0);
                }
            }
        }
    }

    #[test]
    fn arb_and_rep_indices_are_dense_and_in_range() {
        for (i, kind) in [
            ArbitrationKind::Fifo,
            ArbitrationKind::Priority,
            ArbitrationKind::DynamicPriority { period: 3 },
            ArbitrationKind::CyclePriority { period: 3 },
            ArbitrationKind::CycleReversePriority { period: 3 },
            ArbitrationKind::InterleavePriority { period: 3 },
            ArbitrationKind::SweepPriority { period: 3 },
            ArbitrationKind::RandomPick,
            ArbitrationKind::FrFcfs { row_shift: 2 },
        ]
        .into_iter()
        .enumerate()
        {
            assert_eq!(arb_index(kind), i);
        }
        for (i, kind) in ReplacementKind::ALL.into_iter().enumerate() {
            assert_eq!(rep_index(kind), i);
        }
    }
}
