//! Fitted constants and the committed error envelope.
//!
//! [`FIT`] holds the shape parameters (per-arbitration batching
//! coefficient β, overlap weight α, queueing wait weight) and the
//! per-(arbitration, replacement) scale factors κ fitted by
//! `repro calibrate` against the simulator over the 288-cell conformance
//! grid, the Figure-2-style (SpGEMM/Sort × p × k) grids, the
//! Figure-3-style cyclic-adversary grid, and a faulted sub-grid.
//!
//! [`ENVELOPE`] records the resulting *signed relative error* quantiles
//! per metric (`err = (pred − sim)/sim`; for the blocked fraction the
//! errors are absolute differences since the metric lives in `[0, 1]`,
//! and inconsistency errors use `max(sim, 1)` as the denominator so
//! near-zero simulator values do not blow up the quantiles). The
//! envelope is committed twice on purpose: as these constants (used at
//! prediction time to attach uncertainty bands) and as the artifact
//! `results/model_envelope.json` (exactly [`Envelope::to_json`]'s
//! bytes); `tests/model_validation.rs` fails if the two drift apart or
//! if a fresh conformance-grid run degrades more than 20% beyond
//! [`Envelope::conformance_makespan_median_abs`].
//!
//! To refit after a model or simulator change: run `repro calibrate`,
//! paste the printed constants over [`FIT`] and [`ENVELOPE`], and commit
//! the regenerated artifact it writes.

use crate::predict::{ARB_KINDS, REP_KINDS};

/// The model's fitted parameters. See the module docs for what each
/// field is and how it is (re)fitted.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Per-arbitration batching coefficient β ∈ [0, 1] (index =
    /// [`crate::predict::arb_index`]): 0 = fair-split behaviour,
    /// 1 = ideal priority batching.
    pub beta: [f64; ARB_KINDS],
    /// Per-arbitration exposed fraction of the shorter path (channel vs
    /// critical core) that the longer path fails to hide — FIFO's
    /// round-robin interleaving overlaps differently than Priority's
    /// batching, so α is fitted per family like β.
    pub alpha: [f64; ARB_KINDS],
    /// Weight of the M/M/1-style queueing wait in the miss response.
    pub wait_weight: f64,
    /// Makespan scale per (arbitration, replacement).
    pub kappa_makespan: [[f64; REP_KINDS]; ARB_KINDS],
    /// Mean-response scale per (arbitration, replacement).
    pub kappa_response: [[f64; REP_KINDS]; ARB_KINDS],
    /// Inconsistency scale per (arbitration, replacement).
    pub kappa_inconsistency: [[f64; REP_KINDS]; ARB_KINDS],
}

impl Calibration {
    /// The neutral, unfitted calibration (κ ≡ 1): the starting point
    /// `repro calibrate` searches from, and a useful baseline for tests
    /// that must not depend on fitted numbers.
    pub const fn uncalibrated() -> Self {
        Calibration {
            beta: [0.0, 1.0, 0.5, 0.5, 0.5, 0.5, 0.5, 0.25, 0.0],
            alpha: [0.25; ARB_KINDS],
            wait_weight: 1.0,
            kappa_makespan: [[1.0; REP_KINDS]; ARB_KINDS],
            kappa_response: [[1.0; REP_KINDS]; ARB_KINDS],
            kappa_inconsistency: [[1.0; REP_KINDS]; ARB_KINDS],
        }
    }
}

/// Signed-error quantiles for one metric over the calibration corpus.
/// `p05`..`p95` are nearest-rank quantiles of the signed errors;
/// `median_abs` is the median of their absolute values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricEnvelope {
    /// 5th percentile of signed errors.
    pub p05: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median signed error.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Median absolute error.
    pub median_abs: f64,
}

impl MetricEnvelope {
    /// An all-zero envelope (useful as a neutral placeholder).
    pub const ZERO: MetricEnvelope = MetricEnvelope {
        p05: 0.0,
        p25: 0.0,
        p50: 0.0,
        p75: 0.0,
        p95: 0.0,
        median_abs: 0.0,
    };

    /// Builds the envelope from a set of signed errors. Empty input
    /// yields [`ZERO`](Self::ZERO). Quantiles are nearest-rank on the
    /// sorted values (deterministic, no interpolation).
    pub fn from_errors(mut errs: Vec<f64>) -> Self {
        if errs.is_empty() {
            return MetricEnvelope::ZERO;
        }
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| {
            let idx = ((errs.len() - 1) as f64 * p).round() as usize;
            errs[idx]
        };
        let mut abs: Vec<f64> = errs.iter().map(|e| e.abs()).collect();
        abs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_abs = abs[((abs.len() - 1) as f64 * 0.5).round() as usize];
        MetricEnvelope {
            p05: q(0.05),
            p25: q(0.25),
            p50: q(0.50),
            p75: q(0.75),
            p95: q(0.95),
            median_abs,
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"p05\": {}, \"p25\": {}, \"p50\": {}, \"p75\": {}, \"p95\": {}, \"median_abs\": {}}}",
            fmt(self.p05),
            fmt(self.p25),
            fmt(self.p50),
            fmt(self.p75),
            fmt(self.p95),
            fmt(self.median_abs),
        )
    }
}

/// The committed per-metric error envelope plus corpus bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Makespan relative-error quantiles over the whole corpus.
    pub makespan: MetricEnvelope,
    /// Mean-response relative-error quantiles.
    pub mean_response: MetricEnvelope,
    /// Inconsistency error quantiles (denominator `max(sim, 1)`).
    pub inconsistency: MetricEnvelope,
    /// Blocked-fraction *absolute* error quantiles.
    pub blocked_frac: MetricEnvelope,
    /// Calibration corpus size (cells).
    pub cells: u64,
    /// Median |relative error| on makespan over the 288-cell conformance
    /// grid alone — the number the acceptance criterion (≤ 0.15) and the
    /// CI regression test (≤ 1.2× this) gate on.
    pub conformance_makespan_median_abs: f64,
}

impl Envelope {
    /// Renders the envelope exactly as the committed artifact
    /// `results/model_envelope.json` stores it. Deterministic: fixed key
    /// order, shortest-roundtrip float formatting, trailing newline.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"hbm-model-envelope-v1\",\n  \"cells\": {},\n  \"conformance_makespan_median_abs\": {},\n  \"makespan\": {},\n  \"mean_response\": {},\n  \"inconsistency\": {},\n  \"blocked_frac\": {}\n}}\n",
            self.cells,
            fmt(self.conformance_makespan_median_abs),
            self.makespan.to_json(),
            self.mean_response.to_json(),
            self.inconsistency.to_json(),
            self.blocked_frac.to_json(),
        )
    }
}

/// Shortest-roundtrip float formatting with a forced decimal point, so
/// the artifact is valid JSON with unambiguous float typing.
fn fmt(x: f64) -> String {
    if x == x.trunc() && x.is_finite() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// The committed calibration, produced by `repro calibrate` (see the
/// module docs for the refit procedure).
pub static FIT: Calibration = Calibration {
    beta: [0.15000000000000002, 0.6000000000000001, 0.4, 0.30000000000000004, 0.2, 0.4, 0.30000000000000004, 0.25, 0.25],
    alpha: [0.1, 0.5, 0.5, 0.5, 0.4, 0.45, 0.5, 0.30000000000000004, 0.5],
    wait_weight: 0.25,
    kappa_makespan: [
        [0.9656084656084657, 0.9656084656084657, 0.9656084656084657, 0.9656084656084657],
        [0.7692307692307693, 0.7692307692307693, 0.7692307692307693, 0.7692307692307693],
        [0.7222222222222222, 0.7222222222222222, 0.7222222222222222, 0.7272727272727273],
        [0.7777777777777778, 0.7777777777777778, 0.7777777777777778, 0.8021390374331551],
        [0.769230769230769, 0.769230769230769, 0.769230769230769, 0.769230769230769],
        [0.8411214953271028, 0.8411214953271028, 0.8411214953271028, 0.8460236886632826],
        [0.8181818181818182, 0.8181818181818182, 0.8181818181818182, 0.8181818181818182],
        [0.8163265306122449, 0.8163265306122449, 0.8163265306122449, 0.8163265306122449],
        [0.7272727272727273, 0.7272727272727273, 0.7272727272727273, 0.7272727272727273],
    ],
    kappa_response: [
        [1.0000123989208465, 0.6173498005829379, 0.6248550508564424, 0.6248550508564424],
        [1.0703989419094193, 0.9013605442176872, 0.9013605442176872, 0.9013605442176872],
        [1.0807031249999999, 0.9, 0.9, 0.9],
        [0.8793425099581504, 0.8793425099581504, 0.8793425099581504, 0.9],
        [0.8461538461538461, 0.8461538461538461, 0.8461538461538461, 0.8461538461538461],
        [0.9026662734432174, 0.9026662734432174, 0.9026662734432174, 0.9130434782608695],
        [0.8793425099581504, 0.8793425099581504, 0.8793425099581504, 0.9333333333333333],
        [0.802047781569966, 0.802047781569966, 0.802047781569966, 0.802047781569966],
        [0.9013605442176872, 0.9013605442176872, 0.9013605442176872, 0.9013605442176872],
    ],
    kappa_inconsistency: [
        [0.9999731191105653, 0.6072501775342107, 0.6171199478462315, 0.6171199478462315],
        [2.110811733525323, 0.9990942344080144, 0.9990942344080144, 0.9990942344080144],
        [13.786037571963684, 0.9709757676119856, 0.9867572497085114, 0.9867572497085114],
        [0.9573958256816469, 0.9502385175390845, 0.9635558227772996, 0.9687375340829253],
        [0.7414672572547658, 0.7311421816776157, 0.7195579062296055, 0.6923521102888963],
        [0.9624622572967396, 0.951194018082875, 0.9666539830659517, 0.9666539830659517],
        [0.9573958256816469, 0.9502385175390845, 0.9635558227772996, 0.9687375340829253],
        [0.8538842362970805, 0.8438871982183425, 0.8576030819246103, 0.8576030819246103],
        [1.0845758178247382, 0.9363934190911616, 1.0891267948993013, 1.0891267948993013],
    ],
};

/// The committed error envelope matching [`FIT`]; mirrored byte-for-byte
/// by `results/model_envelope.json`.
pub static ENVELOPE: Envelope = Envelope {
    makespan: MetricEnvelope {
        p05: -0.3590097161525733,
        p25: -0.0927021696252465,
        p50: -0.0005611815422289111,
        p75: 0.17948717948717943,
        p95: 0.7123745819397991,
        median_abs: 0.13343799058084782,
    },
    mean_response: MetricEnvelope {
        p05: -0.4578498865653592,
        p25: -0.1573881932021468,
        p50: 0.0,
        p75: 0.17076171874999968,
        p95: 0.5714936355678198,
        median_abs: 0.16231189029696855,
    },
    inconsistency: MetricEnvelope {
        p05: -1.0,
        p25: -0.82915619758885,
        p50: -0.15840182038216077,
        p75: 0.3375165506992453,
        p95: 3.1395684334847744,
        median_abs: 0.6435937420983333,
    },
    blocked_frac: MetricEnvelope {
        p05: -0.008099690597987985,
        p25: 0.0,
        p50: 0.0027433861685316613,
        p75: 0.023190950135755617,
        p95: 0.07549704508442906,
        median_abs: 0.005239687848383502,
    },
    cells: 452,
    conformance_makespan_median_abs: 0.14716031631919477,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_from_errors_quantiles() {
        let errs: Vec<f64> = (-50..=50).map(|i| i as f64 / 100.0).collect();
        let env = MetricEnvelope::from_errors(errs);
        assert!((env.p50 - 0.0).abs() < 1e-12);
        assert!((env.p05 + 0.45).abs() < 1e-12);
        assert!((env.p95 - 0.45).abs() < 1e-12);
        assert!((env.median_abs - 0.25).abs() < 1e-12);
    }

    #[test]
    fn envelope_of_empty_errors_is_zero() {
        assert_eq!(MetricEnvelope::from_errors(vec![]), MetricEnvelope::ZERO);
    }

    #[test]
    fn to_json_is_deterministic_and_parseable_shape() {
        let j = ENVELOPE.to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"schema\": \"hbm-model-envelope-v1\""));
        assert!(j.contains("\"makespan\": {\"p05\": "));
        assert_eq!(j, ENVELOPE.to_json());
    }

    #[test]
    fn fmt_forces_decimal_point() {
        assert_eq!(fmt(1.0), "1.0");
        assert_eq!(fmt(0.125), "0.125");
        assert_eq!(fmt(-0.5), "-0.5");
    }
}
