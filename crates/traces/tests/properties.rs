//! Property-based tests for the instrumented workload generators.

use hbm_traces::memlog::{LoggedVec, Recorder};
use hbm_traces::sort::{sort_logged, SortAlgo};
use hbm_traces::spgemm::Csr;
use hbm_traces::synthetic;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every sorting algorithm sorts arbitrary inputs while being logged.
    #[test]
    fn logged_sorts_sort(
        mut data in prop::collection::vec(-1000i64..1000, 0..300),
        algo_idx in 0usize..4,
    ) {
        let algo = SortAlgo::ALL[algo_idx];
        let rec = Recorder::new(4096, true);
        let mut v = LoggedVec::new(data.clone(), &rec);
        sort_logged(&mut v, algo, &rec);
        data.sort_unstable();
        prop_assert_eq!(v.unlogged(), data.as_slice());
    }

    /// The recorded trace length is bounded by the raw access count, and
    /// collapsing only ever shortens.
    #[test]
    fn trace_length_bounded_by_accesses(
        data in prop::collection::vec(0i64..100, 2..200),
    ) {
        let rec = Recorder::new(64, false);
        let mut v = LoggedVec::new(data.clone(), &rec);
        sort_logged(&mut v, SortAlgo::Introsort, &rec);
        drop(v);
        let raw_accesses = rec.raw_accesses();
        let raw_trace = rec.into_trace();
        prop_assert_eq!(raw_trace.len() as u64, raw_accesses);

        let rec2 = Recorder::new(64, true);
        let mut v2 = LoggedVec::new(data, &rec2);
        sort_logged(&mut v2, SortAlgo::Introsort, &rec2);
        drop(v2);
        let collapsed = rec2.into_trace();
        prop_assert!(collapsed.len() <= raw_trace.len());
        // Collapsing preserves the deduplicated sequence.
        let mut dedup = raw_trace.clone();
        dedup.dedup();
        prop_assert_eq!(collapsed, dedup);
    }

    /// Random CSR matrices are structurally valid for any density.
    #[test]
    fn csr_always_valid(
        n in 1usize..60,
        m in 1usize..60,
        density in 0.0f64..1.0,
        seed in 0u64..100,
    ) {
        let a = Csr::random(n, m, density, seed);
        prop_assert_eq!(a.row_ptr.len(), n + 1);
        prop_assert_eq!(a.row_ptr[0], 0);
        prop_assert_eq!(*a.row_ptr.last().unwrap() as usize, a.nnz());
        prop_assert_eq!(a.col_idx.len(), a.vals.len());
        prop_assert!(a.row_ptr.windows(2).all(|w| w[0] <= w[1]));
        for i in 0..n {
            let row = &a.col_idx[a.row_ptr[i] as usize..a.row_ptr[i + 1] as usize];
            prop_assert!(row.iter().all(|&j| (j as usize) < m));
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// SpGEMM against the dense reference on arbitrary matrices.
    #[test]
    fn spgemm_correct_on_arbitrary_matrices(
        n in 2usize..20,
        k in 2usize..20,
        m in 2usize..20,
        d1 in 0.05f64..0.6,
        d2 in 0.05f64..0.6,
        seed in 0u64..50,
    ) {
        let a = Csr::random(n, k, d1, seed);
        let b = Csr::random(k, m, d2, seed + 1);
        let run = hbm_traces::spgemm::spgemm_run(&a, &b, 4096, true);
        let (da, db) = (a.to_dense(), b.to_dense());
        let mut want = vec![vec![0.0f64; m]; n];
        for i in 0..n {
            for kk in 0..k {
                for j in 0..m {
                    want[i][j] += da[i][kk] * db[kk][j];
                }
            }
        }
        let mut got = vec![vec![0.0f64; m]; n];
        for (i, j, v) in &run.output {
            got[*i as usize][*j as usize] = *v;
        }
        for i in 0..n {
            for j in 0..m {
                prop_assert!((got[i][j] - want[i][j]).abs() < 1e-9);
            }
        }
    }

    /// Synthetic generators respect their page bounds and lengths.
    #[test]
    fn synthetic_generators_in_bounds(
        pages in 1u32..500,
        len in 0usize..2000,
        seed in 0u64..100,
    ) {
        let u = synthetic::uniform_trace(pages, len, seed);
        prop_assert_eq!(u.len(), len);
        prop_assert!(u.iter().all(|&p| p < pages));
        let z = synthetic::zipf_trace(pages, len, 1.0, seed);
        prop_assert_eq!(z.len(), len);
        prop_assert!(z.iter().all(|&p| p < pages));
        let s = synthetic::strided_trace(pages, 7, len);
        prop_assert!(s.iter().all(|&p| p < pages));
    }

    /// The permutation walk visits each page exactly once per lap, for any
    /// size and seed.
    #[test]
    fn permutation_walk_laps_are_permutations(
        pages in 1u32..100,
        laps in 1usize..4,
        seed in 0u64..100,
    ) {
        let t = synthetic::permutation_walk_trace(pages, laps, seed);
        prop_assert_eq!(t.len(), pages as usize * laps);
        for lap in 0..laps {
            let mut chunk: Vec<u32> =
                t[lap * pages as usize..(lap + 1) * pages as usize].to_vec();
            chunk.sort_unstable();
            prop_assert_eq!(chunk, (0..pages).collect::<Vec<_>>());
        }
    }

    /// Trace I/O round-trips arbitrary ref vectors.
    #[test]
    fn io_roundtrip_arbitrary(
        traces in prop::collection::vec(prop::collection::vec(0u32..10000, 0..100), 0..6),
    ) {
        let w = hbm_core::Workload::from_refs(traces);
        let mut buf = Vec::new();
        hbm_traces::io::write_workload(&w, &mut buf).unwrap();
        let r = hbm_traces::io::read_workload(&buf[..]).unwrap();
        prop_assert_eq!(w.cores(), r.cores());
        for c in 0..w.cores() as u32 {
            prop_assert_eq!(w.trace(c).as_slice(), r.trace(c).as_slice());
        }
    }
}
