//! Trace persistence: a compact binary format for workloads.
//!
//! The paper's pipeline logged accesses "to a file" and fed files to the
//! simulator. We support the same decoupling: generate once, save, replay
//! across many simulator configurations. The format is self-describing and
//! versioned:
//!
//! ```text
//! magic   b"HBMT"
//! version u32 LE (currently 1)
//! cores   u32 LE
//! per core: len u64 LE, then len × u32 LE page ids
//! ```

use hbm_core::{Trace, Workload};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"HBMT";
const VERSION: u32 = 1;

/// Serializes a workload to any writer.
pub fn write_workload<W: Write>(w: &Workload, mut out: W) -> io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&(w.cores() as u32).to_le_bytes())?;
    for t in w.traces() {
        out.write_all(&(t.len() as u64).to_le_bytes())?;
        // Buffer per trace to avoid one syscall per reference.
        let mut buf = Vec::with_capacity(t.len() * 4);
        for &p in t.as_slice() {
            buf.extend_from_slice(&p.to_le_bytes());
        }
        out.write_all(&buf)?;
    }
    Ok(())
}

/// Deserializes a workload from any reader.
pub fn read_workload<R: Read>(mut input: R) -> io::Result<Workload> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut u32buf = [0u8; 4];
    input.read_exact(&mut u32buf)?;
    let version = u32::from_le_bytes(u32buf);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    input.read_exact(&mut u32buf)?;
    let cores = u32::from_le_bytes(u32buf);
    let mut w = Workload::new();
    let mut u64buf = [0u8; 8];
    for _ in 0..cores {
        input.read_exact(&mut u64buf)?;
        let len = u64::from_le_bytes(u64buf) as usize;
        let mut bytes = vec![0u8; len * 4];
        input.read_exact(&mut bytes)?;
        let refs: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
            .collect();
        w.push(Trace::new(refs));
    }
    Ok(w)
}

/// Saves a workload to `path`.
pub fn save_workload(w: &Workload, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_workload(w, io::BufWriter::new(file))
}

/// Loads a workload from `path`.
pub fn load_workload(path: &Path) -> io::Result<Workload> {
    let file = std::fs::File::open(path)?;
    read_workload(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workload {
        Workload::from_refs(vec![vec![1, 2, 3, 2, 1], vec![], vec![9, 9, 9]])
    }

    #[test]
    fn roundtrip_in_memory() {
        let w = sample();
        let mut buf = Vec::new();
        write_workload(&w, &mut buf).unwrap();
        let r = read_workload(&buf[..]).unwrap();
        assert_eq!(r.cores(), 3);
        for c in 0..3 {
            assert_eq!(r.trace(c).as_slice(), w.trace(c).as_slice());
        }
    }

    #[test]
    fn empty_workload_roundtrip() {
        let w = Workload::new();
        let mut buf = Vec::new();
        write_workload(&w, &mut buf).unwrap();
        assert_eq!(read_workload(&buf[..]).unwrap().cores(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00";
        assert!(read_workload(&buf[..]).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_workload(&Workload::new(), &mut buf).unwrap();
        buf[4] = 99;
        let err = read_workload(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut buf = Vec::new();
        write_workload(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_workload(&buf[..]).is_err());
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("hbm_traces_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.hbmt");
        let w = sample();
        save_workload(&w, &path).unwrap();
        let r = load_workload(&path).unwrap();
        assert_eq!(r.total_refs(), w.total_refs());
        std::fs::remove_file(&path).ok();
    }
}
