//! Trace persistence: a compact binary format for workloads.
//!
//! The paper's pipeline logged accesses "to a file" and fed files to the
//! simulator. We support the same decoupling: generate once, save, replay
//! across many simulator configurations. The format is self-describing and
//! versioned:
//!
//! ```text
//! magic   b"HBMT"
//! version u32 LE (currently 1)
//! cores   u32 LE
//! per core: len u64 LE, then len × u32 LE page ids
//! ```
//!
//! Reads are defensive: every failure mode of a corrupt or truncated file
//! is a typed [`TraceIoError`], never a panic, and a hostile length field
//! cannot make the reader allocate more memory than the file actually
//! delivers (trace bytes stream in bounded chunks).

use hbm_core::{Trace, Workload};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"HBMT";
const VERSION: u32 = 1;

/// Per-read chunk size while streaming a trace body (in references). A
/// corrupt header claiming a gigantic trace length therefore costs at
/// most one chunk of memory before the inevitable EOF error surfaces.
const CHUNK_REFS: usize = 64 * 1024;

/// Everything that can go wrong reading a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// The underlying reader failed (includes truncation: a trace body
    /// shorter than its declared length surfaces as `UnexpectedEof`).
    Io(io::Error),
    /// The first four bytes were not `b"HBMT"`.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The format version is not one this reader understands.
    UnsupportedVersion {
        /// The version actually found.
        found: u32,
    },
    /// A per-core trace length that cannot be represented in memory on
    /// this platform (`len × 4` bytes overflows `usize`).
    TraceTooLong {
        /// Zero-based core index of the offending trace.
        core: u32,
        /// The declared reference count.
        len: u64,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace io failed: {e}"),
            TraceIoError::BadMagic { found } => {
                write!(f, "bad magic {found:?} (expected {MAGIC:?})")
            }
            TraceIoError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported trace format version {found} (expected {VERSION})"
                )
            }
            TraceIoError::TraceTooLong { core, len } => {
                write!(
                    f,
                    "core {core} declares {len} references, too long for this platform"
                )
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Serializes a workload to any writer.
pub fn write_workload<W: Write>(w: &Workload, mut out: W) -> io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&(w.cores() as u32).to_le_bytes())?;
    for t in w.traces() {
        out.write_all(&(t.len() as u64).to_le_bytes())?;
        // Buffer per trace to avoid one syscall per reference.
        let mut buf = Vec::with_capacity(t.len() * 4);
        for &p in t.as_slice() {
            buf.extend_from_slice(&p.to_le_bytes());
        }
        out.write_all(&buf)?;
    }
    Ok(())
}

/// Deserializes a workload from any reader. Corrupt input — wrong magic,
/// unknown version, truncated body, absurd length fields — yields a typed
/// [`TraceIoError`]; this function never panics on input bytes.
pub fn read_workload<R: Read>(mut input: R) -> Result<Workload, TraceIoError> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic { found: magic });
    }
    let mut u32buf = [0u8; 4];
    input.read_exact(&mut u32buf)?;
    let version = u32::from_le_bytes(u32buf);
    if version != VERSION {
        return Err(TraceIoError::UnsupportedVersion { found: version });
    }
    input.read_exact(&mut u32buf)?;
    let cores = u32::from_le_bytes(u32buf);
    let mut w = Workload::new();
    let mut u64buf = [0u8; 8];
    for core in 0..cores {
        input.read_exact(&mut u64buf)?;
        let len = u64::from_le_bytes(u64buf);
        let len: usize = usize::try_from(len)
            .ok()
            .filter(|l| l.checked_mul(4).is_some())
            .ok_or(TraceIoError::TraceTooLong { core, len })?;
        // Stream the body in bounded chunks: allocation tracks the bytes
        // the reader actually produces, so a hostile length field on a
        // short file fails at EOF instead of reserving `len × 4` up front.
        let mut refs: Vec<u32> = Vec::with_capacity(len.min(CHUNK_REFS));
        let mut chunk = vec![0u8; len.min(CHUNK_REFS) * 4];
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(CHUNK_REFS);
            let bytes = &mut chunk[..take * 4];
            input.read_exact(bytes)?;
            refs.extend(
                bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])),
            );
            remaining -= take;
        }
        w.push(Trace::new(refs));
    }
    Ok(w)
}

/// Saves a workload to `path`.
pub fn save_workload(w: &Workload, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_workload(w, io::BufWriter::new(file))
}

/// Loads a workload from `path`.
pub fn load_workload(path: &Path) -> Result<Workload, TraceIoError> {
    let file = std::fs::File::open(path)?;
    read_workload(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workload {
        Workload::from_refs(vec![vec![1, 2, 3, 2, 1], vec![], vec![9, 9, 9]])
    }

    #[test]
    fn roundtrip_in_memory() {
        let w = sample();
        let mut buf = Vec::new();
        write_workload(&w, &mut buf).unwrap();
        let r = read_workload(&buf[..]).unwrap();
        assert_eq!(r.cores(), 3);
        for c in 0..3 {
            assert_eq!(r.trace(c).as_slice(), w.trace(c).as_slice());
        }
    }

    #[test]
    fn empty_workload_roundtrip() {
        let w = Workload::new();
        let mut buf = Vec::new();
        write_workload(&w, &mut buf).unwrap();
        assert_eq!(read_workload(&buf[..]).unwrap().cores(), 0);
    }

    #[test]
    fn chunked_read_survives_a_trace_larger_than_one_chunk() {
        let big: Vec<u32> = (0..(CHUNK_REFS as u32 * 2 + 37)).collect();
        let w = Workload::from_refs(vec![big.clone()]);
        let mut buf = Vec::new();
        write_workload(&w, &mut buf).unwrap();
        let r = read_workload(&buf[..]).unwrap();
        assert_eq!(r.trace(0).as_slice(), &big[..]);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00";
        match read_workload(&buf[..]).unwrap_err() {
            TraceIoError::BadMagic { found } => assert_eq!(&found, b"NOPE"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_workload(&Workload::new(), &mut buf).unwrap();
        buf[4] = 99;
        match read_workload(&buf[..]).unwrap_err() {
            TraceIoError::UnsupportedVersion { found: 99 } => {}
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut buf = Vec::new();
        write_workload(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        match read_workload(&buf[..]).unwrap_err() {
            TraceIoError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn every_prefix_of_a_valid_file_errors_cleanly() {
        // No prefix length may panic or loop — each must yield Err.
        let mut buf = Vec::new();
        write_workload(&sample(), &mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(
                read_workload(&buf[..cut]).is_err(),
                "prefix of {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn hostile_length_field_does_not_allocate_unbounded() {
        // Header claiming one core with u64::MAX references on an
        // otherwise empty body: must fail fast (overflow check), not
        // attempt an 2^64-scale allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        match read_workload(&buf[..]).unwrap_err() {
            TraceIoError::TraceTooLong { core: 0, len } => assert_eq!(len, u64::MAX),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn large_claimed_length_with_short_body_fails_at_eof_cheaply() {
        // A representable but absurd length (1 GiB of refs) over a
        // 4-byte body: the chunked reader must hit EOF after at most one
        // chunk, not materialize 4 GiB first.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&(1u64 << 28).to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        match read_workload(&buf[..]).unwrap_err() {
            TraceIoError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn corrupt_core_count_is_just_a_truncation_error() {
        // Inflated core count over a valid 3-core body: the reader runs
        // out of bytes and reports EOF, never panics.
        let mut buf = Vec::new();
        write_workload(&sample(), &mut buf).unwrap();
        buf[8..12].copy_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(
            read_workload(&buf[..]).unwrap_err(),
            TraceIoError::Io(_)
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceIoError::UnsupportedVersion { found: 7 };
        assert!(e.to_string().contains("version 7"));
        let e = TraceIoError::TraceTooLong { core: 3, len: 42 };
        assert!(e.to_string().contains("core 3"));
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("hbm_traces_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.hbmt");
        let w = sample();
        save_workload(&w, &path).unwrap();
        let r = load_workload(&path).unwrap();
        assert_eq!(r.total_refs(), w.total_refs());
        std::fs::remove_file(&path).ok();
    }
}
