//! Dense matrix-matrix multiplication traces.
//!
//! The paper's parameter sweep includes "Dense Matrix Multiplication"
//! alongside the sparse kernel (§1.2). We implement the classic triple loop
//! (ijk order) and a blocked/tiled variant over logged arrays — the blocked
//! variant exists because its much smaller working set makes an instructive
//! contrast in the HBM simulations (better reuse → fewer far-channel
//! crossings).

use crate::memlog::{LoggedVec, Recorder};
use hbm_core::rng::Xoshiro256;
use hbm_core::LocalPage;

/// Loop order/structure of the dense kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DenseVariant {
    /// Naive `for i { for j { for k { c[i][j] += a[i][k] * b[k][j] } } }`.
    Ijk,
    /// Cache-friendlier `ikj` order (streams B and C rows).
    Ikj,
    /// Square tiling with the given tile edge.
    Blocked(usize),
}

impl std::fmt::Display for DenseVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DenseVariant::Ijk => write!(f, "ijk"),
            DenseVariant::Ikj => write!(f, "ikj"),
            DenseVariant::Blocked(t) => write!(f, "blocked{t}"),
        }
    }
}

/// Multiplies two random `n × n` matrices with the chosen loop structure,
/// returning the page trace and (for tests) the result matrix.
pub fn matmul_run(
    n: usize,
    variant: DenseVariant,
    seed: u64,
    page_bytes: u64,
    collapse: bool,
) -> (Vec<LocalPage>, Vec<f64>) {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let av: Vec<f64> = (0..n * n).map(|_| rng.gen_f64()).collect();
    let bv: Vec<f64> = (0..n * n).map(|_| rng.gen_f64()).collect();

    let rec = Recorder::new(page_bytes, collapse);
    let a = LoggedVec::new(av, &rec);
    let b = LoggedVec::new(bv, &rec);
    let mut c: LoggedVec<f64> = LoggedVec::zeroed(n * n, &rec);

    match variant {
        DenseVariant::Ijk => {
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0.0;
                    for k in 0..n {
                        acc += a.get(i * n + k) * b.get(k * n + j);
                    }
                    c.set(i * n + j, acc);
                }
            }
        }
        DenseVariant::Ikj => {
            for i in 0..n {
                for k in 0..n {
                    let aik = a.get(i * n + k);
                    for j in 0..n {
                        let cur = c.get(i * n + j);
                        c.set(i * n + j, cur + aik * b.get(k * n + j));
                    }
                }
            }
        }
        DenseVariant::Blocked(t) => {
            let t = t.max(1);
            for ii in (0..n).step_by(t) {
                for kk in (0..n).step_by(t) {
                    for jj in (0..n).step_by(t) {
                        for i in ii..(ii + t).min(n) {
                            for k in kk..(kk + t).min(n) {
                                let aik = a.get(i * n + k);
                                for j in jj..(jj + t).min(n) {
                                    let cur = c.get(i * n + j);
                                    c.set(i * n + j, cur + aik * b.get(k * n + j));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    let result = c.unlogged().to_vec();
    drop((a, b, c));
    (rec.into_trace(), result)
}

/// The page trace alone (the usual entry point for workload builders).
pub fn matmul_trace(
    n: usize,
    variant: DenseVariant,
    seed: u64,
    page_bytes: u64,
    collapse: bool,
) -> Vec<LocalPage> {
    matmul_run(n, variant, seed, page_bytes, collapse).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_compute_the_same_product() {
        let (_, ijk) = matmul_run(17, DenseVariant::Ijk, 1, 4096, true);
        let (_, ikj) = matmul_run(17, DenseVariant::Ikj, 1, 4096, true);
        let (_, blk) = matmul_run(17, DenseVariant::Blocked(4), 1, 4096, true);
        for i in 0..ijk.len() {
            assert!((ijk[i] - ikj[i]).abs() < 1e-9);
            assert!((ijk[i] - blk[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn trace_deterministic() {
        let a = matmul_trace(12, DenseVariant::Ijk, 2, 4096, true);
        let b = matmul_trace(12, DenseVariant::Ijk, 2, 4096, true);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn variants_touch_identical_page_sets() {
        // Same matrices, same address layout: every variant touches exactly
        // the pages of A, B, and C — only the order differs.
        let uniq = |v| {
            let mut t = matmul_trace(48, v, 3, 4096, true);
            t.sort_unstable();
            t.dedup();
            t
        };
        let ijk = uniq(DenseVariant::Ijk);
        assert_eq!(ijk, uniq(DenseVariant::Ikj));
        assert_eq!(ijk, uniq(DenseVariant::Blocked(8)));
        // 48x48 doubles = 18432 B per matrix = 5 pages each, 3 matrices.
        assert_eq!(ijk.len(), 15);
    }

    #[test]
    fn collapse_never_lengthens() {
        for v in [
            DenseVariant::Ijk,
            DenseVariant::Ikj,
            DenseVariant::Blocked(8),
        ] {
            let raw = matmul_trace(32, v, 3, 4096, false).len();
            let col = matmul_trace(32, v, 3, 4096, true).len();
            assert!(col <= raw, "{v}: {col} > {raw}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        let (t, c) = matmul_run(1, DenseVariant::Ijk, 4, 4096, false);
        assert_eq!(c.len(), 1);
        assert!(!t.is_empty());
        let (t0, c0) = matmul_run(0, DenseVariant::Blocked(8), 4, 4096, false);
        assert!(c0.is_empty());
        assert!(t0.is_empty());
    }

    #[test]
    fn blocked_tile_larger_than_n_equals_plain_ikj_result() {
        let (_, blk) = matmul_run(9, DenseVariant::Blocked(100), 5, 4096, true);
        let (_, ikj) = matmul_run(9, DenseVariant::Ikj, 5, 4096, true);
        for i in 0..blk.len() {
            assert!((blk[i] - ikj[i]).abs() < 1e-9);
        }
    }
}
