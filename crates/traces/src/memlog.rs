//! Instrumented memory: the Rust analogue of the paper's logging C++
//! iterators and array wrappers (§3.2).
//!
//! The paper generated traces by "overloading C++ operators to log memory
//! accesses" and then, "in a preprocessing step, each array dereference ...
//! is mapped to its page reference". We reproduce that pipeline:
//!
//! * [`AddressSpace`] hands out page-aligned virtual base addresses, one
//!   region per simulated array;
//! * [`LoggedVec`] wraps a `Vec` and records the byte address of every
//!   element access into the shared [`Recorder`];
//! * the recorder maps addresses to page ids on the fly (the preprocessing
//!   step) and can collapse consecutive duplicates at record time, which
//!   keeps multi-million-access traces compact.

use hbm_core::LocalPage;
use std::cell::RefCell;
use std::rc::Rc;

/// Default page/block size in bytes (4 KiB — 512 doubles per page).
pub const DEFAULT_PAGE_BYTES: u64 = 4096;

/// Bump allocator for simulated virtual addresses; regions are page-aligned
/// so two arrays never share a page.
#[derive(Debug)]
pub struct AddressSpace {
    next: u64,
    page_bytes: u64,
}

impl AddressSpace {
    /// A fresh address space with the given page size (must be a power of
    /// two).
    pub fn new(page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        AddressSpace {
            next: 0,
            page_bytes,
        }
    }

    /// Reserves `bytes` and returns the region's base address.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        let span = bytes.max(1).div_ceil(self.page_bytes) * self.page_bytes;
        self.next += span;
        base
    }

    /// Advances the bump pointer to at least `addr` (rounded up to a page).
    ///
    /// Used to place per-core *private* regions at disjoint global offsets
    /// when building non-disjoint workloads: the shared arrays are
    /// allocated first at identical addresses in every core's recorder,
    /// then each core skips to its own private base.
    pub fn skip_to(&mut self, addr: u64) {
        let aligned = addr.div_ceil(self.page_bytes) * self.page_bytes;
        self.next = self.next.max(aligned);
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }
}

#[derive(Debug)]
struct RecorderInner {
    space: AddressSpace,
    pages: Vec<LocalPage>,
    raw_accesses: u64,
    collapse: bool,
    page_shift: u32,
}

/// Shared access recorder: allocates regions and accumulates the page
/// trace. Clone it freely — clones share state (single-threaded `Rc`).
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Rc<RefCell<RecorderInner>>,
}

impl Recorder {
    /// A recorder with the given page size. When `collapse` is set,
    /// consecutive accesses to the same page record one reference — the
    /// trace-granularity knob studied by the `ablation_collapse` bench.
    pub fn new(page_bytes: u64, collapse: bool) -> Self {
        Recorder {
            inner: Rc::new(RefCell::new(RecorderInner {
                space: AddressSpace::new(page_bytes),
                pages: Vec::new(),
                raw_accesses: 0,
                collapse,
                page_shift: page_bytes.trailing_zeros(),
            })),
        }
    }

    /// A recorder with [`DEFAULT_PAGE_BYTES`] pages and collapsing on.
    pub fn with_defaults() -> Self {
        Recorder::new(DEFAULT_PAGE_BYTES, true)
    }

    /// Allocates a page-aligned region of `bytes` bytes.
    pub fn alloc(&self, bytes: u64) -> u64 {
        self.inner.borrow_mut().space.alloc(bytes)
    }

    /// Advances the allocator to at least `addr` (see
    /// [`AddressSpace::skip_to`]).
    pub fn skip_to(&self, addr: u64) {
        self.inner.borrow_mut().space.skip_to(addr);
    }

    /// Records one access at byte address `addr`.
    #[inline]
    pub fn record(&self, addr: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.raw_accesses += 1;
        let page = addr >> inner.page_shift;
        let page: LocalPage = page
            .try_into()
            .expect("page id exceeds u32 (trace too large)");
        if inner.collapse && inner.pages.last() == Some(&page) {
            return;
        }
        inner.pages.push(page);
    }

    /// Raw element accesses recorded (before collapsing).
    pub fn raw_accesses(&self) -> u64 {
        self.inner.borrow().raw_accesses
    }

    /// Page references recorded so far (after collapsing).
    pub fn len(&self) -> usize {
        self.inner.borrow().pages.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the recorder and returns the page trace.
    ///
    /// # Panics
    /// Panics if other clones of this recorder are still alive (they would
    /// observe a drained log).
    pub fn into_trace(self) -> Vec<LocalPage> {
        let inner = Rc::try_unwrap(self.inner)
            .expect("all LoggedVecs must be dropped before extracting the trace");
        inner.into_inner().pages
    }
}

/// A `Vec<T>` whose every element access is logged — the paper's
/// "array-like objects that log all accesses to a file", minus the file.
#[derive(Debug)]
pub struct LoggedVec<T> {
    data: Vec<T>,
    base: u64,
    elem_bytes: u64,
    rec: Recorder,
}

impl<T: Copy> LoggedVec<T> {
    /// Wraps `data` in a fresh region of `rec`'s address space.
    pub fn new(data: Vec<T>, rec: &Recorder) -> Self {
        let elem_bytes = std::mem::size_of::<T>().max(1) as u64;
        let base = rec.alloc(elem_bytes * data.len() as u64);
        LoggedVec {
            data,
            base,
            elem_bytes,
            rec: rec.clone(),
        }
    }

    /// A zero-filled logged vector of length `n`.
    pub fn zeroed(n: usize, rec: &Recorder) -> Self
    where
        T: Default,
    {
        LoggedVec::new(vec![T::default(); n], rec)
    }

    #[inline]
    fn addr(&self, i: usize) -> u64 {
        debug_assert!(i < self.data.len());
        self.base + i as u64 * self.elem_bytes
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Logged read of element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.rec.record(self.addr(i));
        self.data[i]
    }

    /// Logged write of element `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: T) {
        self.rec.record(self.addr(i));
        self.data[i] = v;
    }

    /// Logged swap of elements `i` and `j` (records both addresses).
    #[inline]
    pub fn swap(&mut self, i: usize, j: usize) {
        self.rec.record(self.addr(i));
        self.rec.record(self.addr(j));
        self.data.swap(i, j);
    }

    /// Unlogged view of the data (verification only — the real program
    /// would not get this shortcut).
    pub fn unlogged(&self) -> &[T] {
        &self.data
    }

    /// Consumes the wrapper, returning the plain data.
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_space_is_page_aligned_and_disjoint() {
        let mut s = AddressSpace::new(4096);
        let a = s.alloc(10);
        let b = s.alloc(5000);
        let c = s.alloc(1);
        assert_eq!(a, 0);
        assert_eq!(b, 4096);
        assert_eq!(c, 4096 + 8192);
        assert_eq!(a % 4096, 0);
        assert_eq!(b % 4096, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_page_rejected() {
        AddressSpace::new(1000);
    }

    #[test]
    fn recorder_maps_addresses_to_pages() {
        let rec = Recorder::new(64, false);
        rec.record(0);
        rec.record(63);
        rec.record(64);
        rec.record(200);
        assert_eq!(rec.clone().len(), 4);
        drop(rec.clone());
        let trace = rec.into_trace();
        assert_eq!(trace, vec![0, 0, 1, 3]);
    }

    #[test]
    fn collapse_merges_consecutive_same_page() {
        let rec = Recorder::new(64, true);
        for addr in [0u64, 8, 16, 64, 72, 0] {
            rec.record(addr);
        }
        assert_eq!(rec.raw_accesses(), 6);
        let trace = rec.into_trace();
        assert_eq!(trace, vec![0, 1, 0]);
    }

    #[test]
    fn logged_vec_records_reads_writes_swaps() {
        let rec = Recorder::new(64, false);
        let mut v = LoggedVec::new(vec![10i64, 20, 30, 40], &rec);
        assert_eq!(v.get(0), 10);
        v.set(3, 99);
        v.swap(0, 3);
        assert_eq!(v.unlogged(), &[99, 20, 30, 10]);
        drop(v);
        // Accesses: get(0), set(3), swap(0,3) -> 4 raw records.
        assert_eq!(rec.raw_accesses(), 4);
        let trace = rec.into_trace();
        // 8-byte i64: elements 0..3 at addrs 0,8,16,24 -> all page 0.
        assert_eq!(trace, vec![0, 0, 0, 0]);
    }

    #[test]
    fn two_vecs_never_share_a_page() {
        let rec = Recorder::new(4096, false);
        let a: LoggedVec<u8> = LoggedVec::new(vec![0; 10], &rec);
        let b: LoggedVec<u8> = LoggedVec::new(vec![0; 10], &rec);
        a.get(9);
        b.get(0);
        drop(a);
        drop(b);
        let trace = rec.into_trace();
        assert_ne!(trace[0], trace[1]);
    }

    #[test]
    fn big_elements_span_pages() {
        let rec = Recorder::new(64, false);
        let v = LoggedVec::new(vec![[0u8; 40]; 4], &rec);
        v.get(0); // addr 0 -> page 0
        v.get(2); // addr 80 -> page 1
        drop(v);
        assert_eq!(rec.into_trace(), vec![0, 1]);
    }

    #[test]
    fn zeroed_constructor() {
        let rec = Recorder::with_defaults();
        let v: LoggedVec<f64> = LoggedVec::zeroed(8, &rec);
        assert_eq!(v.len(), 8);
        assert_eq!(v.unlogged(), &[0.0; 8]);
    }

    #[test]
    #[should_panic(expected = "must be dropped")]
    fn into_trace_with_live_vec_panics() {
        let rec = Recorder::with_defaults();
        let _v: LoggedVec<u8> = LoggedVec::zeroed(1, &rec);
        let rec2 = rec.clone();
        drop(rec);
        let _ = rec2.into_trace(); // _v still holds a clone
    }
}
