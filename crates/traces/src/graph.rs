//! Graph-analytics traces: BFS and PageRank-style sweeps over logged CSR
//! adjacency.
//!
//! §1.3 cites graph algorithms as a headline HBM beneficiary (Slota &
//! Rajamanickam measured 2–5× KNL speedups on instances larger than HBM),
//! and graph traversals are the classic *irregular* access pattern — the
//! opposite pole from the paper's sorting/SpGEMM kernels. These generators
//! run the real algorithms over [`LoggedVec`]s, so the traces carry BFS's
//! frontier-driven locality and PageRank's streaming-plus-gather mix.

use crate::memlog::{LoggedVec, Recorder};
use hbm_core::rng::Xoshiro256;
use hbm_core::LocalPage;

/// An unweighted directed graph in CSR form.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// Vertex count.
    pub n: usize,
    /// Offsets, `n + 1` entries.
    pub offsets: Vec<u32>,
    /// Neighbor lists, concatenated.
    pub neighbors: Vec<u32>,
}

impl CsrGraph {
    /// Edge count.
    pub fn edges(&self) -> usize {
        self.neighbors.len()
    }

    /// An Erdős–Rényi-ish random graph: each vertex draws `avg_degree`
    /// out-neighbors uniformly (with replacement, self-loops allowed) —
    /// the standard synthetic stand-in for irregular access.
    pub fn random(n: usize, avg_degree: usize, seed: u64) -> Self {
        assert!(n > 0);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u32);
        for _ in 0..n {
            for _ in 0..avg_degree {
                neighbors.push(rng.gen_range(n as u64) as u32);
            }
            offsets.push(neighbors.len() as u32);
        }
        CsrGraph {
            n,
            offsets,
            neighbors,
        }
    }

    /// A power-law-ish graph: vertex `v`'s out-degree is `avg_degree`, but
    /// targets are drawn with probability ∝ 1/(rank+1) — a few hub
    /// vertices receive most edges, concentrating page reuse the way real
    /// social/web graphs do.
    pub fn preferential(n: usize, avg_degree: usize, seed: u64) -> Self {
        assert!(n > 0);
        let mut rng = Xoshiro256::seed_from_u64(seed ^ GRAPH_SEED_TAG);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u32);
        for _ in 0..n {
            for _ in 0..avg_degree {
                // Inverse-CDF of 1/(r+1) over n ranks ~ n^u - 1.
                let u = rng.gen_f64();
                let target = ((n as f64).powf(u) - 1.0) as u32;
                neighbors.push(target.min(n as u32 - 1));
            }
            offsets.push(neighbors.len() as u32);
        }
        CsrGraph {
            n,
            offsets,
            neighbors,
        }
    }
}

/// Domain-separation tag so graph seeds never collide with other
/// generators fed from the same master seed.
const GRAPH_SEED_TAG: u64 = 0x6b5f_9a2c_11d4_e37b;

/// Result of a logged graph run: the page trace plus algorithm output for
/// verification.
#[derive(Debug)]
pub struct GraphRun {
    /// The page trace.
    pub trace: Vec<LocalPage>,
    /// BFS: distance per vertex (`u32::MAX` = unreachable); PageRank:
    /// empty.
    pub distances: Vec<u32>,
    /// PageRank: final scores; BFS: empty.
    pub scores: Vec<f64>,
}

/// Breadth-first search from `source` over logged CSR arrays, recording
/// every offset/neighbor/distance/queue access.
pub fn bfs_run(g: &CsrGraph, source: u32, page_bytes: u64, collapse: bool) -> GraphRun {
    assert!((source as usize) < g.n);
    let rec = Recorder::new(page_bytes, collapse);
    let offsets = LoggedVec::new(g.offsets.clone(), &rec);
    let neighbors = LoggedVec::new(g.neighbors.clone(), &rec);
    let mut dist: LoggedVec<u32> = LoggedVec::new(vec![u32::MAX; g.n], &rec);
    let mut queue: LoggedVec<u32> = LoggedVec::zeroed(g.n, &rec);

    dist.set(source as usize, 0);
    queue.set(0, source);
    let (mut head, mut tail) = (0usize, 1usize);
    while head < tail {
        let v = queue.get(head) as usize;
        head += 1;
        let d = dist.get(v);
        let start = offsets.get(v) as usize;
        let end = offsets.get(v + 1) as usize;
        for e in start..end {
            let u = neighbors.get(e) as usize;
            if dist.get(u) == u32::MAX {
                dist.set(u, d + 1);
                if tail < g.n {
                    queue.set(tail, u as u32);
                }
                tail += 1;
            }
        }
    }

    let distances = dist.unlogged().to_vec();
    drop((offsets, neighbors, dist, queue));
    GraphRun {
        trace: rec.into_trace(),
        distances,
        scores: Vec::new(),
    }
}

/// PageRank power iterations over logged CSR arrays (push style, uniform
/// damping 0.85), `iters` sweeps.
pub fn pagerank_run(g: &CsrGraph, iters: usize, page_bytes: u64, collapse: bool) -> GraphRun {
    const DAMPING: f64 = 0.85;
    let rec = Recorder::new(page_bytes, collapse);
    let offsets = LoggedVec::new(g.offsets.clone(), &rec);
    let neighbors = LoggedVec::new(g.neighbors.clone(), &rec);
    let mut rank: LoggedVec<f64> = LoggedVec::new(vec![1.0 / g.n as f64; g.n], &rec);
    let mut next: LoggedVec<f64> = LoggedVec::zeroed(g.n, &rec);

    for _ in 0..iters {
        let base = (1.0 - DAMPING) / g.n as f64;
        for v in 0..g.n {
            next.set(v, base);
        }
        for v in 0..g.n {
            let r = rank.get(v);
            let start = offsets.get(v) as usize;
            let end = offsets.get(v + 1) as usize;
            let out = (end - start).max(1) as f64;
            for e in start..end {
                let u = neighbors.get(e) as usize;
                let cur = next.get(u);
                next.set(u, cur + DAMPING * r / out);
            }
        }
        for v in 0..g.n {
            let x = next.get(v);
            rank.set(v, x);
        }
    }

    let scores = rank.unlogged().to_vec();
    drop((offsets, neighbors, rank, next));
    GraphRun {
        trace: rec.into_trace(),
        distances: Vec::new(),
        scores,
    }
}

/// One core's BFS trace on a random graph (different graph per seed).
pub fn bfs_trace(
    n: usize,
    avg_degree: usize,
    seed: u64,
    page_bytes: u64,
    collapse: bool,
) -> Vec<LocalPage> {
    let g = CsrGraph::random(n, avg_degree, seed);
    bfs_run(&g, 0, page_bytes, collapse).trace
}

/// One core's PageRank trace on a preferential-attachment graph.
pub fn pagerank_trace(
    n: usize,
    avg_degree: usize,
    iters: usize,
    seed: u64,
    page_bytes: u64,
    collapse: bool,
) -> Vec<LocalPage> {
    let g = CsrGraph::preferential(n, avg_degree, seed);
    pagerank_run(&g, iters, page_bytes, collapse).trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_bfs(g: &CsrGraph, source: u32) -> Vec<u32> {
        let mut dist = vec![u32::MAX; g.n];
        let mut q = std::collections::VecDeque::new();
        dist[source as usize] = 0;
        q.push_back(source as usize);
        while let Some(v) = q.pop_front() {
            for e in g.offsets[v] as usize..g.offsets[v + 1] as usize {
                let u = g.neighbors[e] as usize;
                if dist[u] == u32::MAX {
                    dist[u] = dist[v] + 1;
                    q.push_back(u);
                }
            }
        }
        dist
    }

    #[test]
    fn bfs_matches_reference() {
        for seed in 0..5 {
            let g = CsrGraph::random(200, 4, seed);
            let run = bfs_run(&g, 0, 4096, true);
            assert_eq!(run.distances, reference_bfs(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn bfs_on_line_graph() {
        // 0 -> 1 -> 2 -> 3: distances 0,1,2,3.
        let g = CsrGraph {
            n: 4,
            offsets: vec![0, 1, 2, 3, 3],
            neighbors: vec![1, 2, 3],
        };
        let run = bfs_run(&g, 0, 4096, false);
        assert_eq!(run.distances, vec![0, 1, 2, 3]);
        assert!(!run.trace.is_empty());
    }

    #[test]
    fn bfs_unreachable_vertices() {
        let g = CsrGraph {
            n: 3,
            offsets: vec![0, 1, 1, 1],
            neighbors: vec![1],
        };
        let run = bfs_run(&g, 0, 4096, true);
        assert_eq!(run.distances, vec![0, 1, u32::MAX]);
    }

    #[test]
    fn pagerank_conserves_mass() {
        let g = CsrGraph::random(100, 5, 3);
        let run = pagerank_run(&g, 10, 4096, true);
        let total: f64 = run.scores.iter().sum();
        // Push-style PR without dangling-node redistribution conserves up
        // to the damping leak; with avg_degree 5 and no dangling nodes the
        // sum stays ~1.
        assert!((total - 1.0).abs() < 0.05, "total rank {total}");
        assert!(run.scores.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn preferential_graph_has_hubs() {
        let g = CsrGraph::preferential(500, 8, 7);
        let mut indeg = vec![0u32; g.n];
        for &u in &g.neighbors {
            indeg[u as usize] += 1;
        }
        let max = *indeg.iter().max().unwrap();
        let mean = g.edges() as f64 / g.n as f64;
        assert!(
            max as f64 > 8.0 * mean,
            "hub in-degree {max} vs mean {mean}"
        );
    }

    #[test]
    fn traces_deterministic_and_distinct_by_seed() {
        assert_eq!(
            bfs_trace(300, 4, 1, 4096, true),
            bfs_trace(300, 4, 1, 4096, true)
        );
        assert_ne!(
            bfs_trace(300, 4, 1, 4096, true),
            bfs_trace(300, 4, 2, 4096, true)
        );
        assert_eq!(
            pagerank_trace(200, 4, 3, 1, 4096, true),
            pagerank_trace(200, 4, 3, 1, 4096, true)
        );
    }

    #[test]
    fn graph_edges_count() {
        let g = CsrGraph::random(50, 3, 1);
        assert_eq!(g.edges(), 150);
        assert_eq!(g.offsets.len(), 51);
    }
}
