//! Trace characterization: LRU stack distances and miss-ratio curves.
//!
//! The experiments size HBM in units of the per-core working set; this
//! module is the measurement behind that methodology. [`stack_distances`]
//! implements Mattson's algorithm — the LRU *stack distance* of a reference
//! is the number of distinct pages touched since the previous reference to
//! the same page — using a Fenwick tree over time indices (O(n log n)).
//! Because LRU is a stack algorithm, one pass yields the miss count for
//! *every* cache size at once: a reference with stack distance `d` hits in
//! any LRU cache with at least `d + 1` slots ([`MissRatioCurve`]).

use crate::memlog::DEFAULT_PAGE_BYTES;
use hbm_core::LocalPage;

/// Fenwick (binary-indexed) tree over `n` slots, point update / prefix sum.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i`.
    fn prefix(&self, mut i: usize) -> u32 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// The LRU stack distance of each reference: `None` for a cold (first)
/// reference, otherwise the number of *distinct* pages referenced since the
/// previous access to the same page (0 = immediate re-reference).
pub fn stack_distances(trace: &[LocalPage]) -> Vec<Option<u32>> {
    let n = trace.len();
    let mut out = Vec::with_capacity(n);
    // marker[t] = 1 if time t is the most recent access of its page.
    let mut fen = Fenwick::new(n);
    let mut last_access: std::collections::HashMap<LocalPage, usize> =
        std::collections::HashMap::new();
    for (t, &page) in trace.iter().enumerate() {
        match last_access.get(&page) {
            None => out.push(None),
            Some(&prev) => {
                // Distinct pages since prev = markers in (prev, t).
                let d = fen.prefix(t.saturating_sub(1)) - fen.prefix(prev);
                out.push(Some(d));
            }
        }
        if let Some(&prev) = last_access.get(&page) {
            fen.add(prev, -1);
        }
        fen.add(t, 1);
        last_access.insert(page, t);
    }
    out
}

/// Miss counts for every LRU cache size, computed in one pass.
#[derive(Debug, Clone)]
pub struct MissRatioCurve {
    /// Total references.
    pub total: u64,
    /// Cold (first-touch) misses — unavoidable at any size.
    pub cold: u64,
    /// `hist[d]` = references with stack distance exactly `d`.
    hist: Vec<u64>,
}

impl MissRatioCurve {
    /// Builds the curve from a trace.
    pub fn from_trace(trace: &[LocalPage]) -> Self {
        let dists = stack_distances(trace);
        let mut hist = Vec::new();
        let mut cold = 0;
        for d in dists {
            match d {
                None => cold += 1,
                Some(d) => {
                    let d = d as usize;
                    if hist.len() <= d {
                        hist.resize(d + 1, 0);
                    }
                    hist[d] += 1;
                }
            }
        }
        MissRatioCurve {
            total: trace.len() as u64,
            cold,
            hist,
        }
    }

    /// Unique pages in the trace (= cold misses).
    pub fn unique_pages(&self) -> u64 {
        self.cold
    }

    /// Misses an LRU cache of `k` slots incurs on this trace: cold misses
    /// plus every reference whose stack distance is ≥ k.
    pub fn misses_at(&self, k: usize) -> u64 {
        let capacity_misses: u64 = self.hist.iter().skip(k).sum();
        self.cold + capacity_misses
    }

    /// Miss ratio at `k` slots (0 for an empty trace).
    pub fn miss_ratio_at(&self, k: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misses_at(k) as f64 / self.total as f64
        }
    }

    /// Smallest `k` whose miss ratio is at most `target` (cold misses
    /// included), or `None` if even a cache holding everything exceeds it.
    pub fn size_for_miss_ratio(&self, target: f64) -> Option<usize> {
        let full = self.unique_pages() as usize;
        (0..=full).find(|&k| self.miss_ratio_at(k) <= target)
    }

    /// The *working set* in the experiments' sense: the smallest cache
    /// whose only misses are cold misses.
    pub fn working_set(&self) -> usize {
        self.hist.len()
    }
}

/// Convenience: the miss-ratio curve of a workload spec's single-core trace.
pub fn mrc_for(spec: crate::workload_gen::WorkloadSpec, seed: u64) -> MissRatioCurve {
    let opts = crate::workload_gen::TraceOptions {
        page_bytes: DEFAULT_PAGE_BYTES,
        collapse: true,
    };
    MissRatioCurve::from_trace(&spec.generate_trace(seed, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n·u) reference: simulate LRU of size k directly.
    fn lru_misses(trace: &[LocalPage], k: usize) -> u64 {
        let mut stack: Vec<LocalPage> = Vec::new();
        let mut misses = 0;
        for &p in trace {
            match stack.iter().position(|&x| x == p) {
                Some(i) => {
                    stack.remove(i);
                }
                None => {
                    misses += 1;
                    if stack.len() == k {
                        stack.pop();
                    }
                }
            }
            if k > 0 {
                stack.insert(0, p);
            }
        }
        misses
    }

    #[test]
    fn distances_on_known_sequence() {
        // a b c a b b: a cold, b cold, c cold, a dist 2, b dist 2, b dist 0.
        let trace = [0, 1, 2, 0, 1, 1];
        assert_eq!(
            stack_distances(&trace),
            vec![None, None, None, Some(2), Some(2), Some(0)]
        );
    }

    #[test]
    fn curve_matches_direct_lru_simulation() {
        use hbm_core::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(5);
        let trace: Vec<u32> = (0..3000)
            .map(|_| {
                let u = rng.gen_f64();
                ((u * u) * 60.0) as u32
            })
            .collect();
        let mrc = MissRatioCurve::from_trace(&trace);
        for k in [1usize, 2, 4, 8, 16, 32, 64] {
            assert_eq!(mrc.misses_at(k), lru_misses(&trace, k), "k = {k}");
        }
    }

    #[test]
    fn cyclic_trace_is_all_or_nothing() {
        // The Dataset 3 pathology in MRC form: distance = pages - 1 for
        // every non-cold reference, so the curve is a step function.
        let trace = crate::adversarial::cyclic_trace(32, 5);
        let mrc = MissRatioCurve::from_trace(&trace);
        assert_eq!(mrc.unique_pages(), 32);
        assert_eq!(mrc.misses_at(31), trace.len() as u64, "thrash below 32");
        assert_eq!(mrc.misses_at(32), 32, "cold misses only at 32");
        assert_eq!(mrc.working_set(), 32);
    }

    #[test]
    fn monotone_in_k() {
        let trace = crate::synthetic::zipf_trace(100, 5000, 1.0, 7);
        let mrc = MissRatioCurve::from_trace(&trace);
        let mut last = u64::MAX;
        for k in 0..110 {
            let m = mrc.misses_at(k);
            assert!(m <= last);
            last = m;
        }
        assert_eq!(mrc.misses_at(200), mrc.unique_pages());
    }

    #[test]
    fn size_for_miss_ratio_finds_the_knee() {
        let trace = crate::adversarial::cyclic_trace(16, 10);
        let mrc = MissRatioCurve::from_trace(&trace);
        // 10% miss ratio requires the full working set on a cyclic trace.
        assert_eq!(mrc.size_for_miss_ratio(0.2), Some(16));
        assert!(
            mrc.size_for_miss_ratio(0.0001).is_none(),
            "cold misses remain"
        );
    }

    #[test]
    fn empty_and_singleton() {
        let mrc = MissRatioCurve::from_trace(&[]);
        assert_eq!(mrc.total, 0);
        assert_eq!(mrc.miss_ratio_at(4), 0.0);
        let one = MissRatioCurve::from_trace(&[9]);
        assert_eq!(one.misses_at(0), 1);
        assert_eq!(one.working_set(), 0);
    }

    #[test]
    fn fenwick_basics() {
        let mut f = Fenwick::new(8);
        f.add(0, 1);
        f.add(3, 2);
        f.add(7, 1);
        assert_eq!(f.prefix(0), 1);
        assert_eq!(f.prefix(2), 1);
        assert_eq!(f.prefix(3), 3);
        assert_eq!(f.prefix(7), 4);
        f.add(3, -2);
        assert_eq!(f.prefix(7), 2);
    }
}
