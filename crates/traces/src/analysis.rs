//! Trace characterization: LRU stack distances and miss-ratio curves.
//!
//! The experiments size HBM in units of the per-core working set; this
//! module is the measurement behind that methodology. [`stack_distances`]
//! implements Mattson's algorithm — the LRU *stack distance* of a reference
//! is the number of distinct pages touched since the previous reference to
//! the same page — using a Fenwick tree over time indices (O(n log n)).
//! Because LRU is a stack algorithm, one pass yields the miss count for
//! *every* cache size at once: a reference with stack distance `d` hits in
//! any LRU cache with at least `d + 1` slots ([`MissRatioCurve`]).

use crate::memlog::DEFAULT_PAGE_BYTES;
use hbm_core::LocalPage;

/// Fenwick (binary-indexed) tree over `n` slots, point update / prefix sum.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i`.
    fn prefix(&self, mut i: usize) -> u32 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Mattson's algorithm as a stream: calls `sink` with each reference's
/// stack distance (`None` for cold) in trace order, never materializing
/// the distance vector. [`stack_distances`] collects it; curve builders
/// fold it straight into a histogram, so summarizing a trace allocates
/// only the Fenwick tree and the last-access map — nothing
/// trace-length-sized beyond the trace itself.
fn stream_stack_distances(trace: &[LocalPage], mut sink: impl FnMut(Option<u32>)) {
    let n = trace.len();
    // marker[t] = 1 if time t is the most recent access of its page.
    let mut fen = Fenwick::new(n);
    let mut last_access: std::collections::HashMap<LocalPage, usize> =
        std::collections::HashMap::new();
    for (t, &page) in trace.iter().enumerate() {
        match last_access.get(&page) {
            None => sink(None),
            Some(&prev) => {
                // Distinct pages since prev = markers in (prev, t).
                let d = fen.prefix(t.saturating_sub(1)) - fen.prefix(prev);
                sink(Some(d));
            }
        }
        if let Some(&prev) = last_access.get(&page) {
            fen.add(prev, -1);
        }
        fen.add(t, 1);
        last_access.insert(page, t);
    }
}

/// The LRU stack distance of each reference: `None` for a cold (first)
/// reference, otherwise the number of *distinct* pages referenced since the
/// previous access to the same page (0 = immediate re-reference).
pub fn stack_distances(trace: &[LocalPage]) -> Vec<Option<u32>> {
    let mut out = Vec::with_capacity(trace.len());
    stream_stack_distances(trace, |d| out.push(d));
    out
}

/// Miss counts for every LRU cache size, computed in one pass.
#[derive(Debug, Clone)]
pub struct MissRatioCurve {
    /// Total references.
    pub total: u64,
    /// Cold (first-touch) misses — unavoidable at any size.
    pub cold: u64,
    /// `hist[d]` = references with stack distance exactly `d`.
    hist: Vec<u64>,
}

impl MissRatioCurve {
    /// Builds the curve from a trace. Distances stream straight into the
    /// histogram — the full distance vector (a second trace-sized
    /// allocation) is never materialized.
    pub fn from_trace(trace: &[LocalPage]) -> Self {
        let mut hist = Vec::new();
        let mut cold = 0;
        stream_stack_distances(trace, |d| match d {
            None => cold += 1,
            Some(d) => {
                let d = d as usize;
                if hist.len() <= d {
                    hist.resize(d + 1, 0);
                }
                hist[d] += 1;
            }
        });
        MissRatioCurve {
            total: trace.len() as u64,
            cold,
            hist,
        }
    }

    /// Unique pages in the trace (= cold misses).
    pub fn unique_pages(&self) -> u64 {
        self.cold
    }

    /// Misses an LRU cache of `k` slots incurs on this trace: cold misses
    /// plus every reference whose stack distance is ≥ k.
    pub fn misses_at(&self, k: usize) -> u64 {
        let capacity_misses: u64 = self.hist.iter().skip(k).sum();
        self.cold + capacity_misses
    }

    /// Miss ratio at `k` slots (0 for an empty trace).
    pub fn miss_ratio_at(&self, k: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misses_at(k) as f64 / self.total as f64
        }
    }

    /// Smallest `k` whose miss ratio is at most `target` (cold misses
    /// included), or `None` if even a cache holding everything exceeds it.
    pub fn size_for_miss_ratio(&self, target: f64) -> Option<usize> {
        let full = self.unique_pages() as usize;
        (0..=full).find(|&k| self.miss_ratio_at(k) <= target)
    }

    /// The *working set* in the experiments' sense: the smallest cache
    /// whose only misses are cold misses.
    pub fn working_set(&self) -> usize {
        self.hist.len()
    }

    /// The whole curve as a lookup table: `table[s]` = misses of an LRU
    /// cache with `s` slots, for `s` in `0..=working_set()`. Beyond the
    /// working set the miss count is constant at `cold`. One suffix-sum
    /// pass turns every later [`misses_at`](Self::misses_at) query from
    /// O(working_set) into O(1) — the precompute behind `hbm-model`'s
    /// million-config analytical screening.
    pub fn misses_table(&self) -> Vec<u64> {
        let ws = self.hist.len();
        let mut table = vec![self.cold; ws + 1];
        let mut suffix = 0u64;
        for s in (0..ws).rev() {
            suffix += self.hist[s];
            table[s] = self.cold + suffix;
        }
        table
    }
}

/// Convenience: the miss-ratio curve of a workload spec's single-core
/// trace. The single-core special case of [`WorkloadSummary::from_spec`]:
/// the trace is generated once and folded straight into the histogram —
/// no flat-workload construction, no second trace-sized allocation.
pub fn mrc_for(spec: crate::workload_gen::WorkloadSpec, seed: u64) -> MissRatioCurve {
    let opts = crate::workload_gen::TraceOptions {
        page_bytes: DEFAULT_PAGE_BYTES,
        collapse: true,
    };
    MissRatioCurve::from_trace(&spec.generate_trace(seed, opts))
}

/// Everything the analytical model needs to know about a `p`-core
/// workload, extracted in one pass: per-core miss-ratio curves, per-core
/// request volumes (the rates), the total footprint, and an aggregated
/// O(1) miss-count lookup.
///
/// Built either from a spec ([`from_spec`](Self::from_spec) — each core's
/// trace is generated, summarized, and dropped before the next, so the
/// flat `p`-core workload is never materialized or cloned) or from an
/// already-built [`Workload`](hbm_core::Workload)
/// ([`from_workload`](Self::from_workload) — borrows each trace slice in
/// place).
#[derive(Debug, Clone)]
pub struct WorkloadSummary {
    /// Core count `p`.
    pub cores: usize,
    /// Σ per-core references.
    pub total_refs: u64,
    /// Longest single trace (the work bound).
    pub max_trace_len: u64,
    /// Per-core reference counts — the relative request rates (every
    /// core demands 1 ref/tick while unblocked, so a core's share of the
    /// machine's demand is `trace_lens[i] / max_trace_len`).
    pub trace_lens: Vec<u64>,
    /// Distinct pages across the whole workload (what the channel bound
    /// charges). For disjoint per-core address spaces this is the sum of
    /// per-core unique pages; [`from_workload`](Self::from_workload) uses
    /// the workload's own global-page accounting, so shared universes
    /// count each page once.
    pub footprint: u64,
    /// Per-core LRU miss-ratio curves.
    pub per_core: Vec<MissRatioCurve>,
    /// `agg_misses[s]` = Σ per-core misses with `s` HBM slots *per core*,
    /// for `s` in `0..=max_working_set`; constant (all cold) beyond.
    agg_misses: Vec<u64>,
    /// `max_misses[s]` = max per-core misses at share `s` — the critical
    /// core's traffic, same indexing as `agg_misses`.
    max_misses: Vec<u64>,
    /// Mean per-core working set (0 for an empty workload).
    mean_working_set: f64,
}

impl WorkloadSummary {
    /// Summarizes `spec` at `p` cores with [`TraceOptions::default`]
    /// (collapse on, default page size) — the options every experiment
    /// and the serving layer use. Seed derivation is identical to
    /// [`WorkloadSpec::workload`](crate::workload_gen::WorkloadSpec::workload),
    /// so the summary describes exactly the workload the simulator runs.
    pub fn from_spec(spec: crate::workload_gen::WorkloadSpec, seed: u64, p: usize) -> Self {
        Self::from_spec_opts(spec, seed, p, crate::workload_gen::TraceOptions::default())
    }

    /// [`from_spec`](Self::from_spec) with explicit trace options.
    ///
    /// Streams per-core: cores are summarized in parallel, each core's
    /// trace generated, folded into its curve, and freed — peak memory is
    /// one trace per worker thread, not the `p`-core flat workload.
    pub fn from_spec_opts(
        spec: crate::workload_gen::WorkloadSpec,
        seed: u64,
        p: usize,
        opts: crate::workload_gen::TraceOptions,
    ) -> Self {
        use hbm_core::rng::splitmix64;
        let per_core: Vec<(u64, MissRatioCurve)> = hbm_par::parallel_map_indices(p, |core| {
            // Same per-core seed split as WorkloadSpec::workload.
            let mut s = seed;
            for _ in 0..=core {
                splitmix64(&mut s);
            }
            let trace = spec.generate_trace(s, opts);
            let len = trace.len() as u64;
            (len, MissRatioCurve::from_trace(&trace))
        });
        let (trace_lens, curves): (Vec<u64>, Vec<MissRatioCurve>) = per_core.into_iter().unzip();
        // Spec-generated cores live in disjoint address spaces (the
        // workload builder assigns each core its own global page range),
        // so the footprint is the sum of per-core unique pages.
        let footprint = curves.iter().map(|c| c.unique_pages()).sum();
        Self::assemble(trace_lens, curves, footprint)
    }

    /// Summarizes an already-built workload, borrowing each trace in
    /// place (no clones). The footprint uses the workload's global-page
    /// accounting, so shared-universe workloads count each page once.
    pub fn from_workload(w: &hbm_core::Workload) -> Self {
        let traces: Vec<&[LocalPage]> = w.traces().iter().map(|t| t.as_slice()).collect();
        let per_core: Vec<(u64, MissRatioCurve)> = hbm_par::parallel_map(&traces, |t| {
            (t.len() as u64, MissRatioCurve::from_trace(t))
        });
        let (trace_lens, curves): (Vec<u64>, Vec<MissRatioCurve>) = per_core.into_iter().unzip();
        Self::assemble(trace_lens, curves, w.total_unique_pages() as u64)
    }

    fn assemble(trace_lens: Vec<u64>, per_core: Vec<MissRatioCurve>, footprint: u64) -> Self {
        let max_ws = per_core.iter().map(|c| c.working_set()).max().unwrap_or(0);
        let mut agg_misses = vec![0u64; max_ws + 1];
        let mut max_misses = vec![0u64; max_ws + 1];
        for curve in &per_core {
            let table = curve.misses_table();
            for s in 0..agg_misses.len() {
                let m = table[s.min(table.len() - 1)];
                agg_misses[s] += m;
                max_misses[s] = max_misses[s].max(m);
            }
        }
        let mean_working_set = if per_core.is_empty() {
            0.0
        } else {
            per_core.iter().map(|c| c.working_set()).sum::<usize>() as f64 / per_core.len() as f64
        };
        WorkloadSummary {
            cores: per_core.len(),
            total_refs: trace_lens.iter().sum(),
            max_trace_len: trace_lens.iter().copied().max().unwrap_or(0),
            trace_lens,
            footprint,
            per_core,
            agg_misses,
            max_misses,
            mean_working_set,
        }
    }

    /// Σ per-core LRU misses when every core gets `share` HBM slots to
    /// itself. O(1).
    pub fn misses_at_share(&self, share: usize) -> u64 {
        self.agg_misses[share.min(self.agg_misses.len() - 1)]
    }

    /// Σ per-core LRU misses under an equal split of `k` HBM slots
    /// across the cores (each core gets `⌊k/p⌋` — the pessimistic
    /// rounding keeps the count monotone non-increasing in `k`). O(1).
    pub fn misses_at_capacity(&self, k: usize) -> u64 {
        if self.cores == 0 {
            return 0;
        }
        self.misses_at_share(k / self.cores)
    }

    /// Miss ratio under the equal split (0 for an empty workload).
    pub fn miss_ratio_at_capacity(&self, k: usize) -> f64 {
        if self.total_refs == 0 {
            0.0
        } else {
            self.misses_at_capacity(k) as f64 / self.total_refs as f64
        }
    }

    /// The largest per-core working set: with `cores × this` HBM slots,
    /// only cold misses remain under the equal split.
    pub fn max_working_set(&self) -> usize {
        self.agg_misses.len() - 1
    }

    /// The *critical core*'s LRU misses when every core gets `share`
    /// slots — the max, where [`misses_at_share`](Self::misses_at_share)
    /// is the sum. O(1).
    pub fn max_misses_at_share(&self, share: usize) -> u64 {
        self.max_misses[share.min(self.max_misses.len() - 1)]
    }

    /// Critical-core misses under the equal `⌊k/p⌋` split. O(1).
    pub fn max_misses_at_capacity(&self, k: usize) -> u64 {
        if self.cores == 0 {
            return 0;
        }
        self.max_misses_at_share(k / self.cores)
    }

    /// Mean per-core working set (0 for an empty workload) — the batching
    /// granularity a Priority-family policy effectively schedules in.
    pub fn mean_working_set(&self) -> f64 {
        self.mean_working_set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n·u) reference: simulate LRU of size k directly.
    fn lru_misses(trace: &[LocalPage], k: usize) -> u64 {
        let mut stack: Vec<LocalPage> = Vec::new();
        let mut misses = 0;
        for &p in trace {
            match stack.iter().position(|&x| x == p) {
                Some(i) => {
                    stack.remove(i);
                }
                None => {
                    misses += 1;
                    if stack.len() == k {
                        stack.pop();
                    }
                }
            }
            if k > 0 {
                stack.insert(0, p);
            }
        }
        misses
    }

    #[test]
    fn distances_on_known_sequence() {
        // a b c a b b: a cold, b cold, c cold, a dist 2, b dist 2, b dist 0.
        let trace = [0, 1, 2, 0, 1, 1];
        assert_eq!(
            stack_distances(&trace),
            vec![None, None, None, Some(2), Some(2), Some(0)]
        );
    }

    #[test]
    fn curve_matches_direct_lru_simulation() {
        use hbm_core::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(5);
        let trace: Vec<u32> = (0..3000)
            .map(|_| {
                let u = rng.gen_f64();
                ((u * u) * 60.0) as u32
            })
            .collect();
        let mrc = MissRatioCurve::from_trace(&trace);
        for k in [1usize, 2, 4, 8, 16, 32, 64] {
            assert_eq!(mrc.misses_at(k), lru_misses(&trace, k), "k = {k}");
        }
    }

    #[test]
    fn cyclic_trace_is_all_or_nothing() {
        // The Dataset 3 pathology in MRC form: distance = pages - 1 for
        // every non-cold reference, so the curve is a step function.
        let trace = crate::adversarial::cyclic_trace(32, 5);
        let mrc = MissRatioCurve::from_trace(&trace);
        assert_eq!(mrc.unique_pages(), 32);
        assert_eq!(mrc.misses_at(31), trace.len() as u64, "thrash below 32");
        assert_eq!(mrc.misses_at(32), 32, "cold misses only at 32");
        assert_eq!(mrc.working_set(), 32);
    }

    #[test]
    fn monotone_in_k() {
        let trace = crate::synthetic::zipf_trace(100, 5000, 1.0, 7);
        let mrc = MissRatioCurve::from_trace(&trace);
        let mut last = u64::MAX;
        for k in 0..110 {
            let m = mrc.misses_at(k);
            assert!(m <= last);
            last = m;
        }
        assert_eq!(mrc.misses_at(200), mrc.unique_pages());
    }

    #[test]
    fn size_for_miss_ratio_finds_the_knee() {
        let trace = crate::adversarial::cyclic_trace(16, 10);
        let mrc = MissRatioCurve::from_trace(&trace);
        // 10% miss ratio requires the full working set on a cyclic trace.
        assert_eq!(mrc.size_for_miss_ratio(0.2), Some(16));
        assert!(
            mrc.size_for_miss_ratio(0.0001).is_none(),
            "cold misses remain"
        );
    }

    #[test]
    fn empty_and_singleton() {
        let mrc = MissRatioCurve::from_trace(&[]);
        assert_eq!(mrc.total, 0);
        assert_eq!(mrc.miss_ratio_at(4), 0.0);
        let one = MissRatioCurve::from_trace(&[9]);
        assert_eq!(one.misses_at(0), 1);
        assert_eq!(one.working_set(), 0);
    }

    #[test]
    fn summary_from_spec_matches_the_workload_the_simulator_runs() {
        use crate::workload_gen::{TraceOptions, WorkloadSpec};
        let spec = WorkloadSpec::Uniform { pages: 40, len: 300 };
        let (seed, p) = (9u64, 4usize);
        let summary = WorkloadSummary::from_spec(spec, seed, p);
        // The summary must describe exactly spec.workload(p, seed, ..):
        // same per-core lengths, same curves, same footprint.
        let w = spec.workload(p, seed, TraceOptions::default());
        let direct = WorkloadSummary::from_workload(&w);
        assert_eq!(summary.cores, p);
        assert_eq!(summary.trace_lens, direct.trace_lens);
        assert_eq!(summary.total_refs, direct.total_refs);
        assert_eq!(summary.max_trace_len, w.max_trace_len() as u64);
        assert_eq!(summary.footprint, w.total_unique_pages() as u64);
        for k in [0usize, 1, 8, 40, 400] {
            assert_eq!(summary.misses_at_capacity(k), direct.misses_at_capacity(k));
        }
    }

    #[test]
    fn summary_aggregate_agrees_with_per_core_curves() {
        use crate::workload_gen::WorkloadSpec;
        let summary = WorkloadSummary::from_spec(WorkloadSpec::Cyclic { pages: 16, reps: 5 }, 3, 3);
        for share in [0usize, 4, 15, 16, 64] {
            let direct: u64 = summary.per_core.iter().map(|c| c.misses_at(share)).sum();
            assert_eq!(summary.misses_at_share(share), direct, "share {share}");
        }
        // Equal split: 3 cores × 16-page cycles thrash below 3·16 slots
        // and keep only cold misses at it.
        assert_eq!(summary.max_working_set(), 16);
        assert_eq!(summary.misses_at_capacity(3 * 16), summary.footprint);
        assert_eq!(summary.misses_at_capacity(3 * 16 - 3), summary.total_refs);
    }

    #[test]
    fn summary_misses_monotone_in_k() {
        use crate::workload_gen::WorkloadSpec;
        let spec = WorkloadSpec::Zipf {
            pages: 64,
            len: 800,
            alpha: 1.0,
        };
        let summary = WorkloadSummary::from_spec(spec, 11, 3);
        let mut last = u64::MAX;
        for k in 0..=(3 * summary.max_working_set() + 6) {
            let m = summary.misses_at_capacity(k);
            assert!(m <= last, "misses rose at k={k}: {m} > {last}");
            last = m;
        }
    }

    #[test]
    fn summary_of_shared_workload_counts_shared_pages_once() {
        let w = hbm_core::Workload::shared_from_refs(vec![vec![0, 1, 2], vec![1, 2, 3]]);
        let s = WorkloadSummary::from_workload(&w);
        assert_eq!(s.footprint, 4, "shared pages must not double-count");
        assert_eq!(s.total_refs, 6);
        assert_eq!(s.max_trace_len, 3);
    }

    #[test]
    fn summary_of_empty_workload() {
        let s = WorkloadSummary::from_workload(&hbm_core::Workload::new());
        assert_eq!(s.cores, 0);
        assert_eq!(s.total_refs, 0);
        assert_eq!(s.misses_at_capacity(16), 0);
        assert_eq!(s.miss_ratio_at_capacity(16), 0.0);
    }

    #[test]
    fn misses_table_matches_pointwise_queries() {
        let trace = crate::synthetic::zipf_trace(50, 2000, 0.9, 13);
        let mrc = MissRatioCurve::from_trace(&trace);
        let table = mrc.misses_table();
        assert_eq!(table.len(), mrc.working_set() + 1);
        for (s, &m) in table.iter().enumerate() {
            assert_eq!(m, mrc.misses_at(s), "table[{s}]");
        }
        assert_eq!(*table.last().unwrap(), mrc.unique_pages());
    }

    #[test]
    fn fenwick_basics() {
        let mut f = Fenwick::new(8);
        f.add(0, 1);
        f.add(3, 2);
        f.add(7, 1);
        assert_eq!(f.prefix(0), 1);
        assert_eq!(f.prefix(2), 1);
        assert_eq!(f.prefix(3), 3);
        assert_eq!(f.prefix(7), 4);
        f.add(3, -2);
        assert_eq!(f.prefix(7), 2);
    }
}
