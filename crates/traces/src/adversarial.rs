//! Dataset 3: traces designed to be bad for FIFO (paper §3.2, Figure 3).
//!
//! "FIFO performs asymptotically poorly when run on a long sequence of
//! unique pages, repeated many times. We generate the sequence 1, 2, 3 …
//! 256 and repeat it 100 times." With HBM sized to a quarter of the union
//! of all threads' pages, FIFO never hits (every page is re-evicted before
//! its reuse) while Priority retains whole working sets — the 40× of
//! Figure 3.

use hbm_core::{LocalPage, Trace, Workload};

/// One core's cyclic trace: pages `0..pages`, repeated `reps` times.
///
/// The paper's Dataset 3 is `cyclic_trace(256, 100)`.
pub fn cyclic_trace(pages: u32, reps: usize) -> Vec<LocalPage> {
    let mut out = Vec::with_capacity(pages as usize * reps);
    for _ in 0..reps {
        out.extend(0..pages);
    }
    out
}

/// The full Dataset 3 workload: `p` cores each running [`cyclic_trace`].
/// Pages are disjoint across cores automatically (core-local namespaces).
pub fn cyclic_workload(p: usize, pages: u32, reps: usize) -> Workload {
    Workload::replicate(Trace::new(cyclic_trace(pages, reps)), p)
}

/// HBM size for the Figure 3 configuration: enough memory for exactly
/// `1/denominator` of the unique pages across all threads (the paper uses
/// `denominator = 4`).
pub fn figure3_hbm_slots(p: usize, pages: u32, denominator: usize) -> usize {
    ((p * pages as usize) / denominator).max(1)
}

/// A *sawtooth* variant: ascending then descending sweep. LRU handles this
/// better than the pure cycle (the turnaround reuses recent pages), so it
/// probes the boundary of the FIFO-killer family.
pub fn sawtooth_trace(pages: u32, reps: usize) -> Vec<LocalPage> {
    let mut out = Vec::with_capacity((2 * pages as usize).saturating_sub(2).max(1) * reps);
    for _ in 0..reps {
        out.extend(0..pages);
        if pages > 2 {
            out.extend((1..pages - 1).rev());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_core::{ArbitrationKind, ReplacementKind, SimBuilder};

    #[test]
    fn cyclic_trace_shape() {
        let t = cyclic_trace(4, 3);
        assert_eq!(t, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn paper_dataset3_dimensions() {
        let t = cyclic_trace(256, 100);
        assert_eq!(t.len(), 25_600);
        let w = cyclic_workload(8, 256, 100);
        assert_eq!(w.cores(), 8);
        assert_eq!(w.total_unique_pages(), 8 * 256);
        assert_eq!(figure3_hbm_slots(8, 256, 4), 512);
    }

    #[test]
    fn sawtooth_shape() {
        assert_eq!(sawtooth_trace(4, 1), vec![0, 1, 2, 3, 2, 1]);
        assert_eq!(sawtooth_trace(2, 2), vec![0, 1, 0, 1]);
        assert_eq!(sawtooth_trace(1, 2), vec![0, 0]);
    }

    #[test]
    fn fifo_never_hits_on_dataset3() {
        // Scaled-down Figure 3 setup: FIFO must have a 0% hit rate.
        let p = 8;
        let w = cyclic_workload(p, 32, 5);
        let k = figure3_hbm_slots(p, 32, 4);
        let r = SimBuilder::new()
            .hbm_slots(k)
            .channels(1)
            .arbitration(ArbitrationKind::Fifo)
            .replacement(ReplacementKind::Lru)
            .run(&w);
        assert_eq!(r.hits, 0);
        assert_eq!(r.misses, w.total_refs() as u64);
    }

    #[test]
    fn priority_beats_fifo_on_dataset3() {
        let p = 16;
        let w = cyclic_workload(p, 64, 20);
        let k = figure3_hbm_slots(p, 64, 4);
        let mk = |arb| {
            SimBuilder::new()
                .hbm_slots(k)
                .channels(1)
                .arbitration(arb)
                .run(&w)
                .makespan
        };
        let fifo = mk(ArbitrationKind::Fifo);
        let prio = mk(ArbitrationKind::Priority);
        assert!(fifo > 2 * prio, "fifo {fifo} vs prio {prio}");
    }
}
