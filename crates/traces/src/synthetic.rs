//! Synthetic reference streams beyond the paper's three datasets.
//!
//! These exist for robustness testing and ablations: uniform random access
//! (no locality), Zipfian access (power-law locality, the usual cache-
//! friendly skew), sequential streaming, strided access, and a random-walk
//! "pointer chase" over a permuted ring (the access pattern of the §5
//! latency microbenchmark, reused here as a trace generator).

use hbm_core::rng::Xoshiro256;
use hbm_core::LocalPage;

/// Uniform random references over `pages` pages.
pub fn uniform_trace(pages: u32, len: usize, seed: u64) -> Vec<LocalPage> {
    assert!(pages > 0);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..len)
        .map(|_| rng.gen_range(pages as u64) as u32)
        .collect()
}

/// Zipfian references: page `i` drawn with probability ∝ `1/(i+1)^alpha`.
///
/// Uses inverse-CDF sampling over a precomputed table; `alpha ≈ 0.8–1.2`
/// spans typical cache-workload skews.
pub fn zipf_trace(pages: u32, len: usize, alpha: f64, seed: u64) -> Vec<LocalPage> {
    assert!(pages > 0);
    assert!(alpha >= 0.0);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    // Cumulative distribution over pages.
    let mut cdf = Vec::with_capacity(pages as usize);
    let mut acc = 0.0f64;
    for i in 0..pages {
        acc += 1.0 / ((i as f64) + 1.0).powf(alpha);
        cdf.push(acc);
    }
    let total = acc;
    (0..len)
        .map(|_| {
            let x = rng.gen_f64() * total;
            // Binary search for the first cdf entry >= x.
            match cdf.binary_search_by(|c| c.partial_cmp(&x).expect("no NaN")) {
                Ok(i) | Err(i) => (i as u32).min(pages - 1),
            }
        })
        .collect()
}

/// Sequential stream: `0, 1, 2, …` over `pages`, `passes` times — the
/// STREAM-benchmark shape (pure cold misses at page granularity once per
/// pass unless the whole footprint fits).
pub fn stream_trace(pages: u32, passes: usize) -> Vec<LocalPage> {
    let mut out = Vec::with_capacity(pages as usize * passes);
    for _ in 0..passes {
        out.extend(0..pages);
    }
    out
}

/// Strided access: pages `0, s, 2s, …` wrapping modulo `pages`, visiting
/// `len` references.
pub fn strided_trace(pages: u32, stride: u32, len: usize) -> Vec<LocalPage> {
    assert!(pages > 0);
    let mut out = Vec::with_capacity(len);
    let mut cur = 0u64;
    for _ in 0..len {
        out.push((cur % pages as u64) as u32);
        cur += stride as u64;
    }
    out
}

/// Random walk along a random permutation cycle of `pages` pages — every
/// page visited once per lap in an unpredictable order (the §5 pointer-
/// chasing pattern at page granularity).
pub fn permutation_walk_trace(pages: u32, laps: usize, seed: u64) -> Vec<LocalPage> {
    assert!(pages > 0);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..pages).collect();
    rng.shuffle(&mut perm);
    // next[p] = successor of p along one big cycle through `perm`.
    let mut next = vec![0u32; pages as usize];
    for i in 0..pages as usize {
        next[perm[i] as usize] = perm[(i + 1) % pages as usize];
    }
    let mut out = Vec::with_capacity(pages as usize * laps);
    let mut cur = perm[0];
    for _ in 0..pages as usize * laps {
        out.push(cur);
        cur = next[cur as usize];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_range() {
        let t = uniform_trace(10, 5000, 1);
        assert_eq!(t.len(), 5000);
        assert!(t.iter().all(|&p| p < 10));
        let mut seen = t.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10, "all pages appear in 5000 draws");
    }

    #[test]
    fn zipf_is_skewed() {
        let t = zipf_trace(100, 20_000, 1.0, 2);
        let count0 = t.iter().filter(|&&p| p == 0).count();
        let count99 = t.iter().filter(|&&p| p == 99).count();
        assert!(
            count0 > 10 * count99.max(1),
            "page 0 {count0} vs page 99 {count99}"
        );
        assert!(t.iter().all(|&p| p < 100));
    }

    #[test]
    fn zipf_alpha_zero_is_uniformish() {
        let t = zipf_trace(10, 10_000, 0.0, 3);
        let count0 = t.iter().filter(|&&p| p == 0).count();
        assert!((700..1300).contains(&count0), "count0 = {count0}");
    }

    #[test]
    fn stream_shape() {
        assert_eq!(stream_trace(3, 2), vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn strided_wraps() {
        assert_eq!(strided_trace(4, 3, 6), vec![0, 3, 2, 1, 0, 3]);
        // Stride sharing a factor with pages still wraps correctly.
        assert_eq!(strided_trace(4, 2, 4), vec![0, 2, 0, 2]);
    }

    #[test]
    fn permutation_walk_visits_every_page_each_lap() {
        let t = permutation_walk_trace(16, 3, 4);
        assert_eq!(t.len(), 48);
        for lap in 0..3 {
            let mut lap_pages: Vec<u32> = t[lap * 16..(lap + 1) * 16].to_vec();
            lap_pages.sort_unstable();
            assert_eq!(lap_pages, (0..16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn permutation_walk_order_is_seed_dependent() {
        assert_ne!(
            permutation_walk_trace(32, 1, 1),
            permutation_walk_trace(32, 1, 2)
        );
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_trace(5, 100, 9), uniform_trace(5, 100, 9));
        assert_eq!(zipf_trace(5, 100, 1.0, 9), zipf_trace(5, 100, 1.0, 9));
        assert_eq!(
            permutation_walk_trace(8, 2, 9),
            permutation_walk_trace(8, 2, 9)
        );
    }
}
