//! # hbm-traces — instrumented workload generators
//!
//! Reproduces the trace-generation pipeline of *Automatic HBM Management*
//! (SPAA 2022), §3.2. The paper instrumented real programs — GNU sort via
//! logging iterators and TACO SpGEMM via logging array objects — to capture
//! every memory access, then mapped addresses to page references. This
//! crate does the same in Rust:
//!
//! * [`memlog`] — the instrumented-memory substrate ([`memlog::LoggedVec`],
//!   address space, page mapping, collapse-at-record);
//! * [`sort`] — Dataset 1: introsort (libstdc++ `std::sort`, the paper's
//!   "GNU sort"), plus quicksort / heapsort / mergesort;
//! * [`spgemm`] — Dataset 2: Gustavson CSR×CSR with a TACO-style workspace,
//!   plus SpMV;
//! * [`dense`] — dense matmul (ijk / ikj / blocked);
//! * [`adversarial`] — Dataset 3: the FIFO-killer cyclic trace of Figure 3;
//! * [`synthetic`] — uniform / Zipf / stream / strided / permutation-walk
//!   streams for ablations;
//! * [`workload_gen`] — [`workload_gen::WorkloadSpec`]: one spec → `p`
//!   cores × "same program, different randomness", with optional work skew;
//! * [`io`] — versioned binary trace files.
//!
//! ```
//! use hbm_traces::workload_gen::{TraceOptions, WorkloadSpec};
//! use hbm_traces::sort::SortAlgo;
//!
//! // 4 cores each sorting 10k integers (a scaled-down Dataset 1).
//! let spec = WorkloadSpec::Sort { algo: SortAlgo::Introsort, n: 10_000 };
//! let workload = spec.workload(4, 42, TraceOptions::default());
//! assert_eq!(workload.cores(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod analysis;
pub mod dense;
pub mod graph;
pub mod io;
pub mod memlog;
pub mod sort;
pub mod spgemm;
pub mod synthetic;
pub mod workload_gen;

pub use memlog::{LoggedVec, Recorder, DEFAULT_PAGE_BYTES};
pub use sort::SortAlgo;
pub use spgemm::{spgemm_shared_workload, Csr};
pub use workload_gen::{TraceOptions, WorkSkew, WorkloadSpec};
