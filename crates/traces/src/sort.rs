//! Dataset 1: sorting traces (paper §3.2).
//!
//! The paper instrumented **GNU sort** — `std::sort` from libstdc++ [53] —
//! by handing it logging iterators over 500,000 random integers. libstdc++'s
//! `std::sort` is *introsort*: median-of-3 quicksort with a `2·⌊log₂ n⌋`
//! depth limit falling back to heapsort, finished by insertion sort below a
//! 16-element threshold. We implement exactly that algorithm (plus the
//! plain quicksort the paper's sweep also mentions, heapsort, and a
//! top-down mergesort) over [`LoggedVec`], so every element comparison and
//! move lands in the address trace just as the authors' logging iterators
//! captured.

use crate::memlog::{LoggedVec, Recorder};
use hbm_core::rng::Xoshiro256;
use hbm_core::LocalPage;

/// The insertion-sort threshold used by libstdc++ (`_S_threshold`).
const INSERTION_THRESHOLD: usize = 16;

/// Which sorting algorithm generates the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortAlgo {
    /// libstdc++ `std::sort`: the paper's "GNU sort".
    Introsort,
    /// Plain median-of-3 quicksort without depth limiting.
    Quicksort,
    /// Bottom-of-the-recursion heapsort (also introsort's fallback).
    Heapsort,
    /// Top-down mergesort with an auxiliary buffer (`std::stable_sort`
    /// shape).
    Mergesort,
}

impl SortAlgo {
    /// All algorithms, for sweeps.
    pub const ALL: [SortAlgo; 4] = [
        SortAlgo::Introsort,
        SortAlgo::Quicksort,
        SortAlgo::Heapsort,
        SortAlgo::Mergesort,
    ];
}

impl std::fmt::Display for SortAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SortAlgo::Introsort => "introsort",
            SortAlgo::Quicksort => "quicksort",
            SortAlgo::Heapsort => "heapsort",
            SortAlgo::Mergesort => "mergesort",
        };
        f.write_str(s)
    }
}

/// Sorts `v` in place with `algo`, logging every access.
pub fn sort_logged(v: &mut LoggedVec<i64>, algo: SortAlgo, rec: &Recorder) {
    let n = v.len();
    match algo {
        SortAlgo::Introsort => {
            let depth_limit = 2 * (usize::BITS - n.max(1).leading_zeros()) as usize;
            introsort_loop(v, 0, n, depth_limit);
            insertion_sort(v, 0, n);
        }
        SortAlgo::Quicksort => quicksort(v, 0, n),
        SortAlgo::Heapsort => heapsort(v, 0, n),
        SortAlgo::Mergesort => {
            let mut aux = LoggedVec::zeroed(n, rec);
            mergesort(v, &mut aux, 0, n);
        }
    }
    debug_assert!(v.unlogged().windows(2).all(|w| w[0] <= w[1]));
}

fn insertion_sort(v: &mut LoggedVec<i64>, lo: usize, hi: usize) {
    for i in lo + 1..hi {
        let key = v.get(i);
        let mut j = i;
        while j > lo && v.get(j - 1) > key {
            let prev = v.get(j - 1);
            v.set(j, prev);
            j -= 1;
        }
        v.set(j, key);
    }
}

/// Median-of-3: orders `a < b < c` candidates and returns the median's
/// index, exactly as `__move_median_to_first` does by value comparison.
fn median3(v: &LoggedVec<i64>, a: usize, b: usize, c: usize) -> usize {
    let (va, vb, vc) = (v.get(a), v.get(b), v.get(c));
    if (va <= vb && vb <= vc) || (vc <= vb && vb <= va) {
        b
    } else if (vb <= va && va <= vc) || (vc <= va && va <= vb) {
        a
    } else {
        c
    }
}

/// Hoare-style partition around the median-of-3 pivot; returns the split.
fn partition(v: &mut LoggedVec<i64>, lo: usize, hi: usize) -> usize {
    let mid = lo + (hi - lo) / 2;
    let m = median3(v, lo, mid, hi - 1);
    v.swap(lo, m);
    let pivot = v.get(lo);
    let mut i = lo + 1;
    let mut j = hi - 1;
    loop {
        while i <= j && v.get(i) < pivot {
            i += 1;
        }
        while i <= j && v.get(j) > pivot {
            j -= 1;
        }
        if i >= j {
            break;
        }
        v.swap(i, j);
        i += 1;
        j -= 1;
    }
    v.swap(lo, j);
    j
}

fn introsort_loop(v: &mut LoggedVec<i64>, mut lo: usize, hi: usize, mut depth: usize) {
    let mut hi = hi;
    while hi - lo > INSERTION_THRESHOLD {
        if depth == 0 {
            heapsort(v, lo, hi);
            return;
        }
        depth -= 1;
        let p = partition(v, lo, hi);
        // Recurse on the smaller side, loop on the larger (bounded stack).
        if p - lo < hi - p {
            introsort_loop(v, lo, p, depth);
            lo = p + 1;
        } else {
            introsort_loop(v, p + 1, hi, depth);
            hi = p;
        }
    }
}

fn quicksort(v: &mut LoggedVec<i64>, lo: usize, hi: usize) {
    if hi - lo <= 1 {
        return;
    }
    if hi - lo <= INSERTION_THRESHOLD {
        insertion_sort(v, lo, hi);
        return;
    }
    let p = partition(v, lo, hi);
    quicksort(v, lo, p);
    quicksort(v, p + 1, hi);
}

fn sift_down(v: &mut LoggedVec<i64>, lo: usize, start: usize, end: usize) {
    // Heap rooted at `lo`, elements lo..end, sifting index `start`.
    let mut root = start;
    loop {
        let child = lo + 2 * (root - lo) + 1;
        if child >= end {
            break;
        }
        let mut swap = root;
        if v.get(swap) < v.get(child) {
            swap = child;
        }
        if child + 1 < end && v.get(swap) < v.get(child + 1) {
            swap = child + 1;
        }
        if swap == root {
            break;
        }
        v.swap(root, swap);
        root = swap;
    }
}

fn heapsort(v: &mut LoggedVec<i64>, lo: usize, hi: usize) {
    let n = hi - lo;
    if n <= 1 {
        return;
    }
    for start in (lo..lo + n / 2).rev() {
        sift_down(v, lo, start, hi);
    }
    for end in (lo + 1..hi).rev() {
        v.swap(lo, end);
        sift_down(v, lo, lo, end);
    }
}

fn mergesort(v: &mut LoggedVec<i64>, aux: &mut LoggedVec<i64>, lo: usize, hi: usize) {
    if hi - lo <= 1 {
        return;
    }
    if hi - lo <= INSERTION_THRESHOLD {
        insertion_sort(v, lo, hi);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    mergesort(v, aux, lo, mid);
    mergesort(v, aux, mid, hi);
    // Merge v[lo..mid] and v[mid..hi] through aux.
    for i in lo..hi {
        let x = v.get(i);
        aux.set(i, x);
    }
    let (mut i, mut j) = (lo, mid);
    for k in lo..hi {
        let take_left = if i >= mid {
            false
        } else if j >= hi {
            true
        } else {
            aux.get(i) <= aux.get(j)
        };
        if take_left {
            let x = aux.get(i);
            v.set(k, x);
            i += 1;
        } else {
            let x = aux.get(j);
            v.set(k, x);
            j += 1;
        }
    }
}

/// Generates one core's sorting page trace: sort `n` random integers with
/// `algo`, pages of `page_bytes` bytes, consecutive-duplicate collapsing
/// per `collapse`. The paper's Dataset 1 is `Introsort` with `n = 500_000`.
pub fn sort_trace(
    algo: SortAlgo,
    n: usize,
    seed: u64,
    page_bytes: u64,
    collapse: bool,
) -> Vec<LocalPage> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let data: Vec<i64> = (0..n).map(|_| rng.next_u64() as i64).collect();
    let rec = Recorder::new(page_bytes, collapse);
    let mut v = LoggedVec::new(data, &rec);
    sort_logged(&mut v, algo, &rec);
    drop(v);
    rec.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sorts(algo: SortAlgo, n: usize, seed: u64) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let data: Vec<i64> = (0..n).map(|_| (rng.next_u64() % 1000) as i64).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        let rec = Recorder::new(4096, false);
        let mut v = LoggedVec::new(data, &rec);
        sort_logged(&mut v, algo, &rec);
        assert_eq!(v.unlogged(), expect.as_slice(), "{algo} n={n}");
    }

    #[test]
    fn all_algorithms_sort_correctly() {
        for algo in SortAlgo::ALL {
            for n in [0usize, 1, 2, 15, 16, 17, 100, 1000] {
                check_sorts(algo, n, 42 + n as u64);
            }
        }
    }

    #[test]
    fn sorts_already_sorted_and_reverse_inputs() {
        for algo in SortAlgo::ALL {
            let rec = Recorder::new(4096, false);
            let mut v = LoggedVec::new((0..200i64).collect(), &rec);
            sort_logged(&mut v, algo, &rec);
            assert!(v.unlogged().windows(2).all(|w| w[0] <= w[1]));

            let rec2 = Recorder::new(4096, false);
            let mut v2 = LoggedVec::new((0..200i64).rev().collect(), &rec2);
            sort_logged(&mut v2, algo, &rec2);
            assert!(v2.unlogged().windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn sorts_constant_input() {
        for algo in SortAlgo::ALL {
            let rec = Recorder::new(4096, false);
            let mut v = LoggedVec::new(vec![7i64; 100], &rec);
            sort_logged(&mut v, algo, &rec);
            assert_eq!(v.unlogged(), &[7i64; 100][..]);
        }
    }

    #[test]
    fn trace_is_nonempty_and_deterministic() {
        let a = sort_trace(SortAlgo::Introsort, 2000, 7, 4096, true);
        let b = sort_trace(SortAlgo::Introsort, 2000, 7, 4096, true);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // 2000 i64s = 16 KB = 4 pages of data; trace touches all of them.
        let mut pages = a.clone();
        pages.sort_unstable();
        pages.dedup();
        assert!(pages.len() >= 4, "touched {} pages", pages.len());
    }

    #[test]
    fn different_seeds_different_traces() {
        let a = sort_trace(SortAlgo::Introsort, 1000, 1, 4096, true);
        let b = sort_trace(SortAlgo::Introsort, 1000, 2, 4096, true);
        assert_ne!(a, b);
    }

    #[test]
    fn collapse_reduces_trace_length() {
        let raw = sort_trace(SortAlgo::Introsort, 5000, 3, 4096, false);
        let collapsed = sort_trace(SortAlgo::Introsort, 5000, 3, 4096, true);
        assert!(
            collapsed.len() < raw.len() / 2,
            "{} vs {}",
            collapsed.len(),
            raw.len()
        );
    }

    #[test]
    fn introsort_access_count_is_n_log_n_ish() {
        let n = 10_000usize;
        let mut rng = Xoshiro256::seed_from_u64(5);
        let data: Vec<i64> = (0..n).map(|_| rng.next_u64() as i64).collect();
        let rec = Recorder::new(4096, true);
        let mut v = LoggedVec::new(data, &rec);
        sort_logged(&mut v, SortAlgo::Introsort, &rec);
        drop(v);
        let accesses = rec.raw_accesses() as f64;
        let nlogn = n as f64 * (n as f64).log2();
        assert!(accesses > n as f64, "must touch every element");
        assert!(
            accesses < 12.0 * nlogn,
            "accesses {accesses} exceed 12·n·log n = {}",
            12.0 * nlogn
        );
    }

    #[test]
    fn mergesort_uses_auxiliary_pages() {
        // Mergesort's aux buffer doubles the footprint vs quicksort.
        let uniq = |algo| {
            let t = sort_trace(algo, 4096, 9, 4096, true);
            let mut p = t;
            p.sort_unstable();
            p.dedup();
            p.len()
        };
        assert!(uniq(SortAlgo::Mergesort) > uniq(SortAlgo::Quicksort));
    }
}
