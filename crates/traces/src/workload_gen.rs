//! Workload construction: from a kernel spec to a `p`-core [`Workload`].
//!
//! Per §3.2 of the paper, a workload is "1 independent run of a program per
//! processor … each trace generated from the same program with different
//! randomness". [`WorkloadSpec::workload`] does exactly that, deriving a
//! per-core seed from the master seed. [`WorkSkew`] additionally supports
//! the paper's "distribution of work across the cores" sweep axis
//! (balanced vs. asymmetric work, the case where Cycle Priority
//! "continuously places the same thread behind the most demanding
//! thread").

use crate::adversarial::{cyclic_trace, sawtooth_trace};
use crate::dense::{matmul_trace, DenseVariant};
use crate::graph::{bfs_trace, pagerank_trace};
use crate::memlog::DEFAULT_PAGE_BYTES;
use crate::sort::{sort_trace, SortAlgo};
use crate::spgemm::{spgemm_trace, spmv_run, Csr};
use crate::synthetic;
use hbm_core::rng::splitmix64;
use hbm_core::{LocalPage, Trace, Workload};
use serde::{Deserialize, Serialize};

/// Page size and trace-granularity options shared by all generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceOptions {
    /// Block/page size in bytes.
    pub page_bytes: u64,
    /// Collapse consecutive same-page references at record time.
    pub collapse: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            page_bytes: DEFAULT_PAGE_BYTES,
            collapse: true,
        }
    }
}

/// Which program generates each core's trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadSpec {
    /// Dataset 1: sort `n` random integers (paper: introsort, n = 500 000).
    Sort {
        /// Sorting algorithm.
        algo: SortAlgo,
        /// Number of integers.
        n: usize,
    },
    /// Dataset 2: `C = A·B` on random `n × n` CSR matrices with the given
    /// density (paper: n = 600, density 0.10).
    SpGemm {
        /// Matrix dimension.
        n: usize,
        /// Nonzero probability per entry.
        density: f64,
    },
    /// Sparse matrix-vector product `y = A·x`, repeated `reps` times
    /// (abstract's kernel; one pass is short, so it is iterated).
    SpMv {
        /// Matrix dimension.
        n: usize,
        /// Nonzero probability per entry.
        density: f64,
        /// SpMV passes over the same matrix.
        reps: usize,
    },
    /// Dense `n × n` matmul with the given loop structure.
    Dense {
        /// Matrix dimension.
        n: usize,
        /// Loop order.
        variant: DenseVariant,
    },
    /// Dataset 3: the FIFO-killer cycle over `pages` pages, `reps` times.
    Cyclic {
        /// Unique pages per core.
        pages: u32,
        /// Repetitions.
        reps: usize,
    },
    /// Ascending/descending sweep (LRU-friendlier adversary variant).
    Sawtooth {
        /// Unique pages per core.
        pages: u32,
        /// Repetitions.
        reps: usize,
    },
    /// Uniform random references.
    Uniform {
        /// Unique pages per core.
        pages: u32,
        /// Trace length.
        len: usize,
    },
    /// Zipf-skewed references.
    Zipf {
        /// Unique pages per core.
        pages: u32,
        /// Trace length.
        len: usize,
        /// Skew exponent.
        alpha: f64,
    },
    /// Random-permutation walk (pointer-chase shape).
    PermutationWalk {
        /// Unique pages per core.
        pages: u32,
        /// Laps around the cycle.
        laps: usize,
    },
    /// BFS over a random graph with `n` vertices and `degree` average
    /// out-degree (irregular frontier-driven access; §1.3's graph
    /// workloads).
    Bfs {
        /// Vertex count.
        n: usize,
        /// Average out-degree.
        degree: usize,
    },
    /// PageRank power iterations on a power-law graph.
    PageRank {
        /// Vertex count.
        n: usize,
        /// Average out-degree.
        degree: usize,
        /// Power iterations.
        iters: usize,
    },
}

impl WorkloadSpec {
    /// The paper's Dataset 1 at full scale.
    pub fn paper_sort() -> Self {
        WorkloadSpec::Sort {
            algo: SortAlgo::Introsort,
            n: 500_000,
        }
    }

    /// The paper's Dataset 2 at full scale.
    pub fn paper_spgemm() -> Self {
        WorkloadSpec::SpGemm {
            n: 600,
            density: 0.10,
        }
    }

    /// The paper's Dataset 3.
    pub fn paper_cyclic() -> Self {
        WorkloadSpec::Cyclic {
            pages: 256,
            reps: 100,
        }
    }

    /// Generates one core's trace with this spec and the given seed.
    pub fn generate_trace(&self, seed: u64, opts: TraceOptions) -> Vec<LocalPage> {
        match *self {
            WorkloadSpec::Sort { algo, n } => {
                sort_trace(algo, n, seed, opts.page_bytes, opts.collapse)
            }
            WorkloadSpec::SpGemm { n, density } => {
                spgemm_trace(n, density, seed, opts.page_bytes, opts.collapse)
            }
            WorkloadSpec::SpMv { n, density, reps } => {
                let a = Csr::random(n, n, density, seed);
                let mut out = Vec::new();
                for r in 0..reps.max(1) {
                    out.extend(spmv_run(&a, opts.page_bytes, opts.collapse, seed ^ r as u64).trace);
                }
                out
            }
            WorkloadSpec::Dense { n, variant } => {
                matmul_trace(n, variant, seed, opts.page_bytes, opts.collapse)
            }
            WorkloadSpec::Cyclic { pages, reps } => cyclic_trace(pages, reps),
            WorkloadSpec::Sawtooth { pages, reps } => sawtooth_trace(pages, reps),
            WorkloadSpec::Uniform { pages, len } => synthetic::uniform_trace(pages, len, seed),
            WorkloadSpec::Zipf { pages, len, alpha } => {
                synthetic::zipf_trace(pages, len, alpha, seed)
            }
            WorkloadSpec::PermutationWalk { pages, laps } => {
                synthetic::permutation_walk_trace(pages, laps, seed)
            }
            WorkloadSpec::Bfs { n, degree } => {
                bfs_trace(n, degree, seed, opts.page_bytes, opts.collapse)
            }
            WorkloadSpec::PageRank { n, degree, iters } => {
                pagerank_trace(n, degree, iters, seed, opts.page_bytes, opts.collapse)
            }
        }
    }

    /// Builds the `p`-core workload: core `i` runs this spec with seed
    /// `split(seed, i)` — same program, different randomness (§3.2).
    ///
    /// Trace generation runs in parallel across cores.
    pub fn workload(&self, p: usize, seed: u64, opts: TraceOptions) -> Workload {
        self.workload_skewed(p, seed, opts, WorkSkew::Balanced)
    }

    /// Like [`workload`](Self::workload) but with asymmetric work across
    /// cores.
    pub fn workload_skewed(
        &self,
        p: usize,
        seed: u64,
        opts: TraceOptions,
        skew: WorkSkew,
    ) -> Workload {
        let spec = *self;
        let traces = hbm_par::parallel_map_indices(p, |core| {
            let mut s = seed;
            for _ in 0..=core {
                splitmix64(&mut s);
            }
            let core_spec = skew.scale_spec(&spec, core, p);
            Trace::new(core_spec.generate_trace(s, opts))
        });
        let mut w = Workload::new();
        for t in traces {
            w.push(t);
        }
        w
    }

    /// Short stable name for reports.
    pub fn label(&self) -> String {
        match *self {
            WorkloadSpec::Sort { algo, n } => format!("sort({algo},n={n})"),
            WorkloadSpec::SpGemm { n, density } => format!("spgemm(n={n},d={density})"),
            WorkloadSpec::SpMv { n, density, reps } => {
                format!("spmv(n={n},d={density},reps={reps})")
            }
            WorkloadSpec::Dense { n, variant } => format!("dense({variant},n={n})"),
            WorkloadSpec::Cyclic { pages, reps } => format!("cyclic(pages={pages},reps={reps})"),
            WorkloadSpec::Sawtooth { pages, reps } => {
                format!("sawtooth(pages={pages},reps={reps})")
            }
            WorkloadSpec::Uniform { pages, len } => format!("uniform(pages={pages},len={len})"),
            WorkloadSpec::Zipf { pages, len, alpha } => {
                format!("zipf(pages={pages},len={len},a={alpha})")
            }
            WorkloadSpec::PermutationWalk { pages, laps } => {
                format!("permwalk(pages={pages},laps={laps})")
            }
            WorkloadSpec::Bfs { n, degree } => format!("bfs(n={n},deg={degree})"),
            WorkloadSpec::PageRank { n, degree, iters } => {
                format!("pagerank(n={n},deg={degree},iters={iters})")
            }
        }
    }
}

/// How work is distributed across cores (the paper's sweep axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkSkew {
    /// Every core runs the same-size problem.
    Balanced,
    /// Core `i` runs a problem scaled by `(i + 1) / p` — a linear ramp.
    LinearRamp,
    /// Core 0 runs a `factor×` problem; the rest are balanced.
    OneHeavy(u32),
}

impl WorkSkew {
    fn scale(self, base: usize, core: usize, p: usize) -> usize {
        match self {
            WorkSkew::Balanced => base,
            WorkSkew::LinearRamp => (base * (core + 1) / p.max(1)).max(1),
            WorkSkew::OneHeavy(f) => {
                if core == 0 {
                    base * f as usize
                } else {
                    base
                }
            }
        }
    }

    fn scale_spec(self, spec: &WorkloadSpec, core: usize, p: usize) -> WorkloadSpec {
        let mut s = *spec;
        match &mut s {
            WorkloadSpec::Sort { n, .. }
            | WorkloadSpec::SpGemm { n, .. }
            | WorkloadSpec::SpMv { n, .. }
            | WorkloadSpec::Dense { n, .. } => *n = self.scale(*n, core, p),
            WorkloadSpec::Cyclic { reps, .. } | WorkloadSpec::Sawtooth { reps, .. } => {
                *reps = self.scale(*reps, core, p)
            }
            WorkloadSpec::Uniform { len, .. } | WorkloadSpec::Zipf { len, .. } => {
                *len = self.scale(*len, core, p)
            }
            WorkloadSpec::PermutationWalk { laps, .. } => *laps = self.scale(*laps, core, p),
            WorkloadSpec::Bfs { n, .. } => *n = self.scale(*n, core, p),
            WorkloadSpec::PageRank { iters, .. } => *iters = self.scale(*iters, core, p),
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> TraceOptions {
        TraceOptions::default()
    }

    #[test]
    fn workload_has_p_cores_with_distinct_traces() {
        let w = WorkloadSpec::Sort {
            algo: SortAlgo::Introsort,
            n: 1000,
        }
        .workload(4, 7, opts());
        assert_eq!(w.cores(), 4);
        // Different randomness per core -> different traces.
        assert_ne!(w.trace(0).as_slice(), w.trace(1).as_slice());
        assert_ne!(w.trace(1).as_slice(), w.trace(2).as_slice());
    }

    #[test]
    fn workload_is_deterministic_in_master_seed() {
        let spec = WorkloadSpec::Uniform {
            pages: 50,
            len: 200,
        };
        let a = spec.workload(3, 42, opts());
        let b = spec.workload(3, 42, opts());
        for c in 0..3 {
            assert_eq!(a.trace(c).as_slice(), b.trace(c).as_slice());
        }
        let c = spec.workload(3, 43, opts());
        assert_ne!(a.trace(0).as_slice(), c.trace(0).as_slice());
    }

    #[test]
    fn cyclic_ignores_seed() {
        let spec = WorkloadSpec::Cyclic { pages: 8, reps: 2 };
        let w = spec.workload(2, 1, opts());
        assert_eq!(w.trace(0).as_slice(), w.trace(1).as_slice());
        assert_eq!(w.trace(0).len(), 16);
    }

    #[test]
    fn linear_ramp_scales_work() {
        let spec = WorkloadSpec::Uniform {
            pages: 10,
            len: 100,
        };
        let w = spec.workload_skewed(4, 1, opts(), WorkSkew::LinearRamp);
        assert_eq!(w.trace(0).len(), 25);
        assert_eq!(w.trace(3).len(), 100);
    }

    #[test]
    fn one_heavy_scales_core_zero_only() {
        let spec = WorkloadSpec::Cyclic { pages: 4, reps: 3 };
        let w = spec.workload_skewed(3, 1, opts(), WorkSkew::OneHeavy(5));
        assert_eq!(w.trace(0).len(), 4 * 15);
        assert_eq!(w.trace(1).len(), 4 * 3);
    }

    #[test]
    fn spmv_reps_extend_trace() {
        let one = WorkloadSpec::SpMv {
            n: 40,
            density: 0.2,
            reps: 1,
        }
        .generate_trace(5, opts());
        let three = WorkloadSpec::SpMv {
            n: 40,
            density: 0.2,
            reps: 3,
        }
        .generate_trace(5, opts());
        assert!(three.len() > 2 * one.len());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            WorkloadSpec::paper_cyclic().label(),
            "cyclic(pages=256,reps=100)"
        );
        assert_eq!(
            WorkloadSpec::SpGemm {
                n: 600,
                density: 0.1
            }
            .label(),
            "spgemm(n=600,d=0.1)"
        );
    }

    #[test]
    fn paper_presets() {
        assert_eq!(
            WorkloadSpec::paper_sort(),
            WorkloadSpec::Sort {
                algo: SortAlgo::Introsort,
                n: 500_000
            }
        );
        assert_eq!(
            WorkloadSpec::paper_spgemm(),
            WorkloadSpec::SpGemm {
                n: 600,
                density: 0.10
            }
        );
    }
}
