//! Dataset 2: TACO-style sparse matrix kernels (paper §3.2).
//!
//! The paper replaced the arrays in TACO-generated SpGEMM code with logging
//! array objects and multiplied two 600×600 matrices with ~10% density. A
//! TACO CSR×CSR kernel is Gustavson's algorithm with a dense workspace
//! accumulator; we implement exactly that over [`LoggedVec`]s for the
//! position (`pos`), coordinate (`crd`), and value arrays — the same
//! memory-access structure TACO emits. The abstract also mentions sparse
//! matrix-*vector* product, so [`spmv_trace`] is provided too, along with
//! dense matmul in [`crate::dense`].

use crate::memlog::{LoggedVec, Recorder};
use hbm_core::rng::Xoshiro256;
use hbm_core::LocalPage;

/// A CSR sparse matrix (unlogged; logging wraps the arrays during the
/// kernel run).
#[derive(Debug, Clone)]
pub struct Csr {
    /// Row count.
    pub nrows: usize,
    /// Column count.
    pub ncols: usize,
    /// Row pointers, `nrows + 1` entries (TACO's `pos`).
    pub row_ptr: Vec<u32>,
    /// Column indices per nonzero (TACO's `crd`).
    pub col_idx: Vec<u32>,
    /// Nonzero values.
    pub vals: Vec<f64>,
}

impl Csr {
    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// A random `nrows × ncols` CSR where each entry exists independently
    /// with probability `density` (the paper: 600×600, density 0.10).
    ///
    /// Values are uniform in [0, 1); the structure is Bernoulli per entry,
    /// matching "approximately 10% of the elements exist ... randomly
    /// generated".
    pub fn random(nrows: usize, ncols: usize, density: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&density));
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0u32);
        for _ in 0..nrows {
            for j in 0..ncols {
                if rng.gen_f64() < density {
                    col_idx.push(j as u32);
                    vals.push(rng.gen_f64());
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Dense reference of this matrix (tests only; O(nrows·ncols) memory).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for (i, row) in d.iter_mut().enumerate() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                row[self.col_idx[k as usize] as usize] = self.vals[k as usize];
            }
        }
        d
    }
}

/// Result of a logged kernel: the page trace plus the numeric output so
/// tests can verify the instrumented kernel computes the right thing.
#[derive(Debug)]
pub struct KernelRun {
    /// The page-reference trace.
    pub trace: Vec<LocalPage>,
    /// Raw (pre-collapse) access count.
    pub raw_accesses: u64,
    /// The kernel's numeric result: C's nonzeros as (row, col, value), or
    /// the output vector for SpMV.
    pub output: Vec<(u32, u32, f64)>,
}

/// Gustavson SpGEMM `C = A·B` over logged arrays, TACO workspace variant.
///
/// For each row `i` of A, scatter `a_ik · b_kj` into a dense workspace of
/// size `B.ncols` tracked by an occupancy list, then gather the row of C in
/// column order of first touch — the exact loop structure of TACO's
/// `C(i,j) = A(i,k) * B(k,j)` CSR kernel with a workspace.
pub fn spgemm_run(a: &Csr, b: &Csr, page_bytes: u64, collapse: bool) -> KernelRun {
    spgemm_run_in(a, b, Recorder::new(page_bytes, collapse), None)
}

/// Gustavson SpGEMM into a caller-supplied recorder. `private_skip` places
/// all non-B arrays at/after the given address — the layout hook behind
/// [`spgemm_shared_workload`] (B is allocated first so its pages coincide
/// across cores; everything else is per-core private). Takes the recorder
/// by value: the trace is extracted at the end.
pub fn spgemm_run_in(a: &Csr, b: &Csr, rec: Recorder, private_skip: Option<u64>) -> KernelRun {
    assert_eq!(a.ncols, b.nrows, "dimension mismatch");

    // B's arrays first: identical allocation order and sizes give identical
    // addresses in every core's recorder, which is what makes B shareable.
    let b_pos = LoggedVec::new(b.row_ptr.clone(), &rec);
    let b_crd = LoggedVec::new(b.col_idx.clone(), &rec);
    let b_val = LoggedVec::new(b.vals.clone(), &rec);
    if let Some(base) = private_skip {
        rec.skip_to(base);
    }
    // A's arrays.
    let a_pos = LoggedVec::new(a.row_ptr.clone(), &rec);
    let a_crd = LoggedVec::new(a.col_idx.clone(), &rec);
    let a_val = LoggedVec::new(a.vals.clone(), &rec);
    // Workspace: dense accumulator + occupancy flags + touched-column list.
    let mut w_val: LoggedVec<f64> = LoggedVec::zeroed(b.ncols, &rec);
    let mut w_set: LoggedVec<u8> = LoggedVec::zeroed(b.ncols, &rec);
    let mut w_lst: LoggedVec<u32> = LoggedVec::zeroed(b.ncols, &rec);
    // C in crd/val form, appended row by row. Preallocated (generous upper
    // estimate) so the address space stays stable; fill level tracked
    // manually. Overflow beyond the estimate is counted but not stored —
    // the trace, not C, is the product here.
    let cap_guess = (a.nnz().max(1)) * 8 + b.ncols;
    let mut c_crd: LoggedVec<u32> = LoggedVec::new(vec![0; cap_guess], &rec);
    let mut c_val: LoggedVec<f64> = LoggedVec::new(vec![0.0; cap_guess], &rec);
    let mut c_len = 0usize;

    let mut output = Vec::new();
    for i in 0..a.nrows {
        let mut touched = 0usize;
        let row_start = a_pos.get(i) as usize;
        let row_end = a_pos.get(i + 1) as usize;
        for ka in row_start..row_end {
            let k = a_crd.get(ka) as usize;
            let av = a_val.get(ka);
            let b_start = b_pos.get(k) as usize;
            let b_end = b_pos.get(k + 1) as usize;
            for kb in b_start..b_end {
                let j = b_crd.get(kb) as usize;
                let bv = b_val.get(kb);
                if w_set.get(j) == 0 {
                    w_set.set(j, 1);
                    w_lst.set(touched, j as u32);
                    touched += 1;
                    w_val.set(j, av * bv);
                } else {
                    let cur = w_val.get(j);
                    w_val.set(j, cur + av * bv);
                }
            }
        }
        // Gather the row of C and reset the workspace.
        for t in 0..touched {
            let j = w_lst.get(t) as usize;
            let v = w_val.get(j);
            if c_len < c_crd.len() {
                c_crd.set(c_len, j as u32);
                c_val.set(c_len, v);
            }
            c_len += 1;
            w_set.set(j, 0);
            output.push((i as u32, j as u32, v));
        }
    }

    drop((
        a_pos, a_crd, a_val, b_pos, b_crd, b_val, w_val, w_set, w_lst, c_crd, c_val,
    ));
    let raw = rec.raw_accesses();
    KernelRun {
        trace: rec.into_trace(),
        raw_accesses: raw,
        output,
    }
}

/// Sparse matrix-vector product `y = A·x` over logged arrays (the
/// kernel named in the paper's abstract).
pub fn spmv_run(a: &Csr, page_bytes: u64, collapse: bool, seed: u64) -> KernelRun {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let xv: Vec<f64> = (0..a.ncols).map(|_| rng.gen_f64()).collect();
    let rec = Recorder::new(page_bytes, collapse);
    let a_pos = LoggedVec::new(a.row_ptr.clone(), &rec);
    let a_crd = LoggedVec::new(a.col_idx.clone(), &rec);
    let a_val = LoggedVec::new(a.vals.clone(), &rec);
    let x = LoggedVec::new(xv, &rec);
    let mut y: LoggedVec<f64> = LoggedVec::zeroed(a.nrows, &rec);

    let mut output = Vec::new();
    for i in 0..a.nrows {
        let start = a_pos.get(i) as usize;
        let end = a_pos.get(i + 1) as usize;
        let mut acc = 0.0;
        for k in start..end {
            let j = a_crd.get(k) as usize;
            acc += a_val.get(k) * x.get(j);
        }
        y.set(i, acc);
        output.push((i as u32, 0, acc));
    }

    drop((a_pos, a_crd, a_val, x, y));
    let raw = rec.raw_accesses();
    KernelRun {
        trace: rec.into_trace(),
        raw_accesses: raw,
        output,
    }
}

/// A **non-disjoint** SpGEMM workload (future work, §6.1): `p` cores each
/// multiply their own random `A_i` against one *shared* B. B's pos/crd/val
/// pages carry identical global ids on every core, so the cores genuinely
/// share them in HBM (one fetch can warm B for everyone); each core's A,
/// workspace, and C live at disjoint private offsets.
pub fn spgemm_shared_workload(
    p: usize,
    n: usize,
    density: f64,
    seed: u64,
    page_bytes: u64,
    collapse: bool,
) -> hbm_core::Workload {
    use hbm_core::rng::splitmix64;

    let b = Csr::random(n, n, density, seed ^ 0xB00_5EED);
    // Generate every core's A up front so private bases can be laid out
    // by prefix sum (A sizes differ per core).
    let seeds: Vec<u64> = (0..p)
        .map(|core| {
            let mut s = seed;
            for _ in 0..=core {
                splitmix64(&mut s);
            }
            s
        })
        .collect();
    let a_mats = hbm_par::parallel_map(&seeds, |&s| Csr::random(n, n, density, s));

    // Shared span: B's three arrays, page-aligned each.
    let pages = |bytes: u64| bytes.div_ceil(page_bytes);
    let shared_span = (pages((b.row_ptr.len() * 4) as u64)
        + pages((b.col_idx.len() * 4) as u64)
        + pages((b.vals.len() * 8) as u64))
        * page_bytes;
    // Private spans: A's arrays + workspace + C (same cap formula as the
    // kernel), plus one guard page.
    let private_span = |a: &Csr| -> u64 {
        let cap = a.nnz().max(1) * 8 + b.ncols;
        (pages((a.row_ptr.len() * 4) as u64)
            + pages((a.col_idx.len() * 4) as u64)
            + pages((a.vals.len() * 8) as u64)
            + pages((b.ncols * 8) as u64)
            + pages(b.ncols as u64)
            + pages((b.ncols * 4) as u64)
            + pages((cap * 4) as u64)
            + pages((cap * 8) as u64)
            + 1)
            * page_bytes
    };
    let mut bases = Vec::with_capacity(p);
    let mut next = shared_span;
    for a in &a_mats {
        bases.push(next);
        next += private_span(a);
    }

    let jobs: Vec<(usize, u64)> = bases.into_iter().enumerate().collect();
    let traces = hbm_par::parallel_map(&jobs, |&(core, base)| {
        let rec = Recorder::new(page_bytes, collapse);
        spgemm_run_in(&a_mats[core], &b, rec, Some(base)).trace
    });
    hbm_core::Workload::shared_from_refs(traces)
}

/// Convenience: the page trace of the paper's Dataset 2 kernel, `C = A·B`
/// with independently random A and B.
pub fn spgemm_trace(
    n: usize,
    density: f64,
    seed: u64,
    page_bytes: u64,
    collapse: bool,
) -> Vec<LocalPage> {
    let a = Csr::random(n, n, density, seed);
    let b = Csr::random(n, n, density, seed.wrapping_add(0x5eed));
    spgemm_run(&a, &b, page_bytes, collapse).trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_matmul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let n = a.len();
        let m = b[0].len();
        let kk = b.len();
        let mut c = vec![vec![0.0; m]; n];
        for i in 0..n {
            for k in 0..kk {
                for j in 0..m {
                    c[i][j] += a[i][k] * b[k][j];
                }
            }
        }
        c
    }

    #[test]
    fn random_csr_has_expected_density() {
        let a = Csr::random(100, 100, 0.1, 1);
        let nnz = a.nnz();
        assert!((700..1300).contains(&nnz), "nnz {nnz} far from 1000");
        assert_eq!(a.row_ptr.len(), 101);
        assert_eq!(*a.row_ptr.last().unwrap() as usize, nnz);
        // Column indices strictly increasing within each row.
        for i in 0..100 {
            let row = &a.col_idx[a.row_ptr[i] as usize..a.row_ptr[i + 1] as usize];
            assert!(row.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn empty_and_full_density() {
        let z = Csr::random(10, 10, 0.0, 1);
        assert_eq!(z.nnz(), 0);
        let f = Csr::random(10, 10, 1.0, 1);
        assert_eq!(f.nnz(), 100);
    }

    #[test]
    fn spgemm_matches_dense_reference() {
        let a = Csr::random(30, 25, 0.2, 3);
        let b = Csr::random(25, 40, 0.2, 4);
        let run = spgemm_run(&a, &b, 4096, true);
        let want = dense_matmul(&a.to_dense(), &b.to_dense());
        let mut got = vec![vec![0.0; 40]; 30];
        for (i, j, v) in &run.output {
            got[*i as usize][*j as usize] = *v;
        }
        for i in 0..30 {
            for j in 0..40 {
                assert!(
                    (got[i][j] - want[i][j]).abs() < 1e-9,
                    "C[{i}][{j}] = {} want {}",
                    got[i][j],
                    want[i][j]
                );
            }
        }
    }

    #[test]
    fn spgemm_trace_deterministic_and_nonempty() {
        let a = spgemm_trace(60, 0.1, 5, 4096, true);
        let b = spgemm_trace(60, 0.1, 5, 4096, true);
        assert_eq!(a, b);
        assert!(a.len() > 100);
    }

    #[test]
    fn spmv_matches_dense_reference() {
        let a = Csr::random(50, 50, 0.15, 9);
        let run = spmv_run(&a, 4096, true, 10);
        let d = a.to_dense();
        // Recompute x with the same seed to check y.
        let mut rng = Xoshiro256::seed_from_u64(10);
        let x: Vec<f64> = (0..50).map(|_| rng.gen_f64()).collect();
        for (i, _, y) in &run.output {
            let want: f64 = (0..50).map(|j| d[*i as usize][j] * x[j]).sum();
            assert!((y - want).abs() < 1e-9);
        }
    }

    #[test]
    fn spgemm_touches_many_pages() {
        let t = spgemm_trace(100, 0.1, 7, 4096, true);
        let mut p = t.clone();
        p.sort_unstable();
        p.dedup();
        // pos/crd/val × 2 matrices + workspace + C: at least a dozen pages.
        assert!(p.len() >= 12, "only {} unique pages", p.len());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn spgemm_rejects_mismatched_dims() {
        let a = Csr::random(4, 5, 0.5, 1);
        let b = Csr::random(4, 5, 0.5, 2);
        spgemm_run(&a, &b, 4096, true);
    }

    #[test]
    fn shared_workload_shares_exactly_bs_pages() {
        let p = 4;
        let w = spgemm_shared_workload(p, 50, 0.15, 9, 4096, true);
        assert!(w.is_shared());
        assert_eq!(w.cores(), p);
        let uniq = |c: u32| -> std::collections::BTreeSet<u32> {
            w.trace(c).as_slice().iter().copied().collect()
        };
        // Intersection across all cores = B's pages (nonempty).
        let mut inter = uniq(0);
        for c in 1..p as u32 {
            inter = inter.intersection(&uniq(c)).copied().collect();
        }
        assert!(!inter.is_empty(), "cores must share B's pages");
        // Private pages are disjoint: pages outside the intersection never
        // appear on two cores.
        for c1 in 0..p as u32 {
            for c2 in (c1 + 1)..p as u32 {
                let both: Vec<u32> = uniq(c1)
                    .intersection(&uniq(c2))
                    .copied()
                    .filter(|pg| !inter.contains(pg))
                    .collect();
                assert!(
                    both.is_empty(),
                    "cores {c1},{c2} share private pages {both:?}"
                );
            }
        }
    }

    #[test]
    fn shared_workload_coalesces_fetches_in_simulation() {
        use hbm_core::{ArbitrationKind, SimBuilder};
        let p = 6;
        let shared = spgemm_shared_workload(p, 40, 0.15, 3, 4096, true);
        // Disjoint control: same traces, private namespaces.
        let disjoint = hbm_core::Workload::from_refs(
            shared
                .traces()
                .iter()
                .map(|t| t.as_slice().to_vec())
                .collect(),
        );
        let k = shared.total_unique_pages(); // everything fits: cold misses only
        let run = |w: &hbm_core::Workload| {
            SimBuilder::new()
                .hbm_slots(k.max(disjoint.total_unique_pages()))
                .channels(1)
                .arbitration(ArbitrationKind::Fifo)
                .run(w)
        };
        let rs = run(&shared);
        let rd = run(&disjoint);
        assert_eq!(rs.served, rd.served);
        assert!(
            rs.fetches < rd.fetches,
            "sharing B must save fetches: {} vs {}",
            rs.fetches,
            rd.fetches
        );
        assert_eq!(rd.fetches, rd.misses);
        assert_eq!(
            rs.fetches as usize,
            shared.total_unique_pages(),
            "each distinct page fetched once when everything fits"
        );
    }

    #[test]
    fn shared_workload_deterministic() {
        let a = spgemm_shared_workload(3, 30, 0.2, 5, 4096, true);
        let b = spgemm_shared_workload(3, 30, 0.2, 5, 4096, true);
        for c in 0..3 {
            assert_eq!(a.trace(c).as_slice(), b.trace(c).as_slice());
        }
    }

    #[test]
    fn raw_access_count_scales_with_flops() {
        let a = Csr::random(80, 80, 0.1, 11);
        let b = Csr::random(80, 80, 0.1, 12);
        let run = spgemm_run(&a, &b, 4096, true);
        // Each scalar multiply touches >= 4 arrays.
        let flops: usize = (0..a.nrows)
            .flat_map(|i| a.col_idx[a.row_ptr[i] as usize..a.row_ptr[i + 1] as usize].iter())
            .map(|&k| (b.row_ptr[k as usize + 1] - b.row_ptr[k as usize]) as usize)
            .sum();
        assert!(run.raw_accesses as usize >= 3 * flops);
    }
}
