//! `tracegen` — generate, inspect, and save workload trace files.
//!
//! ```text
//! tracegen <spec> [--cores P] [--seed N] [--out FILE.hbmt] [--raw]
//!
//! specs:
//!   sort:N            introsort of N ints        (e.g. sort:50000)
//!   mergesort:N       mergesort of N ints
//!   spgemm:N:D        N x N CSR x CSR at density D (e.g. spgemm:600:0.1)
//!   cyclic:PAGES:REPS the Figure 3 adversary
//!   zipf:PAGES:LEN:A  Zipf-skewed references
//!   bfs:N:DEG         BFS on a random graph
//!   pagerank:N:DEG:IT PageRank power iterations
//! ```
//!
//! Prints per-core stats (refs, unique pages, working set) and optionally
//! writes the binary trace file `repro`-compatible tools can replay.

use hbm_traces::analysis::MissRatioCurve;
use hbm_traces::{SortAlgo, TraceOptions, WorkloadSpec};
use std::path::PathBuf;

fn parse_spec(s: &str) -> Result<WorkloadSpec, String> {
    let parts: Vec<&str> = s.split(':').collect();
    let num = |i: usize| -> Result<usize, String> {
        parts
            .get(i)
            .ok_or(format!("missing field {i} in '{s}'"))?
            .parse()
            .map_err(|_| format!("bad number in '{s}'"))
    };
    let fnum = |i: usize| -> Result<f64, String> {
        parts
            .get(i)
            .ok_or(format!("missing field {i} in '{s}'"))?
            .parse()
            .map_err(|_| format!("bad float in '{s}'"))
    };
    Ok(match parts[0] {
        "sort" => WorkloadSpec::Sort {
            algo: SortAlgo::Introsort,
            n: num(1)?,
        },
        "mergesort" => WorkloadSpec::Sort {
            algo: SortAlgo::Mergesort,
            n: num(1)?,
        },
        "spgemm" => WorkloadSpec::SpGemm {
            n: num(1)?,
            density: fnum(2)?,
        },
        "cyclic" => WorkloadSpec::Cyclic {
            pages: num(1)? as u32,
            reps: num(2)?,
        },
        "zipf" => WorkloadSpec::Zipf {
            pages: num(1)? as u32,
            len: num(2)?,
            alpha: fnum(3)?,
        },
        "bfs" => WorkloadSpec::Bfs {
            n: num(1)?,
            degree: num(2)?,
        },
        "pagerank" => WorkloadSpec::PageRank {
            n: num(1)?,
            degree: num(2)?,
            iters: num(3)?,
        },
        other => return Err(format!("unknown spec kind '{other}'")),
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let usage = "usage: tracegen <spec> [--cores P] [--seed N] [--out FILE.hbmt] [--raw]";
    let Some(spec_str) = args.next() else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let spec = match parse_spec(&spec_str) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}\n{usage}");
            std::process::exit(2);
        }
    };
    let mut cores = 1usize;
    let mut seed = 42u64;
    let mut out: Option<PathBuf> = None;
    let mut collapse = true;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--cores" => cores = args.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(42),
            "--out" => out = args.next().map(PathBuf::from),
            "--raw" => collapse = false,
            other => {
                eprintln!("unknown flag '{other}'\n{usage}");
                std::process::exit(2);
            }
        }
    }

    let opts = TraceOptions {
        collapse,
        ..TraceOptions::default()
    };
    let w = spec.workload(cores, seed, opts);
    println!(
        "# {} — {cores} core(s), seed {seed}, collapse {collapse}",
        spec.label()
    );
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>16}",
        "core", "refs", "unique", "working_set", "miss@ws/2"
    );
    for c in 0..w.cores() as u32 {
        let mrc = MissRatioCurve::from_trace(w.trace(c).as_slice());
        let ws = mrc.working_set();
        println!(
            "{c:>5} {:>12} {:>12} {ws:>12} {:>15.1}%",
            w.trace(c).len(),
            w.trace(c).unique_pages(),
            100.0 * mrc.miss_ratio_at(ws / 2),
        );
    }
    println!(
        "total refs {} | total unique pages {}",
        w.total_refs(),
        w.total_unique_pages()
    );
    if let Some(path) = out {
        hbm_traces::io::save_workload(&w, &path).expect("write trace file");
        println!("wrote {}", path.display());
    }
}
