//! The machine-readable benchmark harness behind `BENCH_4.json`.
//!
//! Criterion benches (the `benches/` targets) answer "how long does one
//! artifact regeneration take, statistically?"; this module answers the CI
//! question "how many simulated ticks per second does the engine sustain on
//! pinned workloads, and did a PR regress it?". It runs a fixed grid of
//! seeded cells shaped like the paper's figures — Fig 2 (sort/SpGEMM under
//! contention), Fig 3 (the cyclic FIFO-killer sweep), Fig 6 (pointer-chase
//! style uniform-random far-latency traffic) — at two scales, and emits one
//! JSON document per run:
//!
//! ```text
//! cargo run --release -p hbm-bench --bin bench_harness -- --out BENCH_4.json
//! ```
//!
//! The JSON is hand-rolled (the workspace's `serde` is an offline no-op
//! stand-in) in a deliberately line-oriented layout: one cell object per
//! line, so the regression checker ([`parse_cells`]) can re-read its own
//! output without a full JSON parser. Schema and gating policy are
//! documented in README.md §"Benchmarking & regression gating" and
//! DESIGN.md §10.
//!
//! Cross-machine comparability: every run also measures a fixed synthetic
//! [`calibration_score`] (a pure CPU loop, independent of the engine). The
//! regression check scales the baseline's ticks/sec by the ratio of
//! calibration scores, so a faster or slower CI runner does not read as an
//! engine change.

use hbm_core::{
    first_divergence, ArbitrationKind, BatchCell, BatchEngine, BatchScratch, Engine, EngineScratch,
    NoopObserver, SimBuilder, Workload,
};
use hbm_experiments::common::{
    run_batch_flat, run_cell, run_cell_flat, CellBudget, ScratchPool, SimSettings, TracePool,
};
use hbm_traces::adversarial::{cyclic_workload, figure3_hbm_slots};
use hbm_traces::{SortAlgo, TraceOptions, WorkloadSpec};
use std::time::Instant;

/// Bench scale: `Small` is the CI smoke grid (sub-second cells), `Medium`
/// the local perf-tracking grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// CI smoke scale — the whole grid runs in a few seconds.
    Small,
    /// Local perf-tracking scale — larger traces, stabler ticks/sec.
    Medium,
}

impl BenchScale {
    /// Parses a CLI scale name.
    pub fn parse(s: &str) -> Option<BenchScale> {
        match s {
            "small" => Some(BenchScale::Small),
            "medium" => Some(BenchScale::Medium),
            _ => None,
        }
    }

    /// Stable name for JSON output.
    pub fn name(self) -> &'static str {
        match self {
            BenchScale::Small => "small",
            BenchScale::Medium => "medium",
        }
    }
}

/// One pinned benchmark cell: a seeded workload plus a full configuration.
pub struct CellSpec {
    /// Stable identifier, e.g. `fig3/FIFO/p16` — the regression-gate key.
    pub id: String,
    /// Figure-shaped group: `fig2`, `fig3` (the adversarial sweep), `fig6`.
    pub group: &'static str,
    /// The workload to replay.
    pub workload: Workload,
    /// HBM slots `k`.
    pub k: usize,
    /// Far channels `q`.
    pub q: usize,
    /// Arbitration policy.
    pub arbitration: ArbitrationKind,
    /// Far-channel latency in ticks.
    pub far_latency: u64,
    /// Simulation seed.
    pub seed: u64,
}

/// Measured outcome of one cell.
pub struct CellResult {
    /// The spec's stable id.
    pub id: String,
    /// The spec's group.
    pub group: &'static str,
    /// Cores `p`.
    pub p: usize,
    /// HBM slots `k`.
    pub k: usize,
    /// Far channels `q`.
    pub q: usize,
    /// Far latency in ticks.
    pub far_latency: u64,
    /// Total trace references replayed per run.
    pub total_refs: u64,
    /// Simulated ticks per run (the report makespan).
    pub ticks: u64,
    /// Best (minimum) wall-clock seconds over the measurement iterations
    /// (engine construction **plus** the run — the full per-cell cost).
    pub wall_seconds: f64,
    /// Best (minimum) engine-construction seconds over the iterations:
    /// everything between "workload in hand" and "ready to step" —
    /// flattening, page-index build, and buffer allocation.
    pub setup_seconds: f64,
    /// `ticks / wall_seconds` for the best iteration.
    pub ticks_per_sec: f64,
    /// `total_refs / wall_seconds` for the best iteration.
    pub refs_per_sec: f64,
    /// Current RSS (VmRSS) in bytes sampled just before the cell, after
    /// resetting the kernel's peak counter. 0 when unavailable.
    pub rss_before_bytes: u64,
    /// Peak RSS growth attributable to this cell:
    /// `VmHWM_after − rss_before_bytes`, with the peak counter reset via
    /// `/proc/self/clear_refs` before the cell ran. Unlike the raw VmHWM
    /// (which is monotone across the whole process and once made every
    /// cell after the hungriest one report the same number), this is a
    /// genuine per-cell figure. 0 when the reset is unsupported.
    pub peak_rss_delta_bytes: u64,
    /// Process peak RSS (VmHWM) in bytes observed after the cell, 0 when
    /// unavailable. Kept for continuity: a process-lifetime high-water
    /// mark, monotone across cells by nature — use
    /// [`peak_rss_delta_bytes`](Self::peak_rss_delta_bytes) for per-cell
    /// attribution.
    pub peak_rss_bytes: u64,
    /// Hit count, pinned by the seed (a cheap trajectory checksum).
    pub hits: u64,
}

/// Builds the pinned cell grid for one scale. Seeds, shapes and parameters
/// are frozen: changing them invalidates `results/bench_baseline.json`.
pub fn cells(scale: BenchScale) -> Vec<CellSpec> {
    let mut out = Vec::new();
    let (fig3_ps, fig3_pages, fig3_reps) = match scale {
        BenchScale::Small => (vec![8usize, 16, 32], 64u32, 10usize),
        BenchScale::Medium => (vec![16, 32, 64], 256, 30),
    };

    // Fig 3: the Dataset-3 cyclic FIFO-killer sweep (the adversarial
    // sweep the tentpole's ticks/sec target is quoted on). far_latency 1
    // is the paper's model; the far=4 and far=16 variants model the
    // HBM↔DRAM latency gap of a real far link (§5's KNL measurements put
    // queued far accesses at an order of magnitude over an HBM hit) and
    // exercise the engine's idle-tick fast-forward path.
    for &p in &fig3_ps {
        let k = figure3_hbm_slots(p, fig3_pages, 4);
        for arb in [
            ArbitrationKind::Fifo,
            ArbitrationKind::Priority,
            ArbitrationKind::DynamicPriority {
                period: 10 * k as u64,
            },
        ] {
            out.push(CellSpec {
                id: format!("fig3/{}/p{p}", short_label(arb)),
                group: "fig3",
                workload: cyclic_workload(p, fig3_pages, fig3_reps),
                k,
                q: 1,
                arbitration: arb,
                far_latency: 1,
                seed: 42,
            });
        }
        for far in [4u64, 16] {
            for arb in [ArbitrationKind::Fifo, ArbitrationKind::Priority] {
                out.push(CellSpec {
                    id: format!("fig3/{}/p{p}/far{far}", short_label(arb)),
                    group: "fig3",
                    workload: cyclic_workload(p, fig3_pages, fig3_reps),
                    k,
                    q: 1,
                    arbitration: arb,
                    far_latency: far,
                    seed: 42,
                });
            }
        }
    }

    // Fig 2: program-shaped traces (SpGEMM and mergesort) under
    // contention — the regime where policies diverge.
    let (spgemm_n, sort_n, fig2_p) = match scale {
        BenchScale::Small => (80usize, 4_000usize, 16usize),
        BenchScale::Medium => (150, 10_000, 32),
    };
    for (name, spec) in [
        (
            "spgemm",
            WorkloadSpec::SpGemm {
                n: spgemm_n,
                density: 0.10,
            },
        ),
        (
            "sort",
            WorkloadSpec::Sort {
                algo: SortAlgo::Mergesort,
                n: sort_n,
            },
        ),
    ] {
        let w = spec.workload(fig2_p, 42, TraceOptions::default());
        let k = (2 * w.trace(0).unique_pages()).max(16);
        for arb in [ArbitrationKind::Fifo, ArbitrationKind::Priority] {
            out.push(CellSpec {
                id: format!("fig2/{name}/{}/p{fig2_p}", short_label(arb)),
                group: "fig2",
                workload: w.clone(),
                k,
                q: 1,
                arbitration: arb,
                far_latency: 1,
                seed: 42,
            });
        }
    }

    // Fig 6 shape: pointer-chase style uniform-random references over a
    // working set far beyond HBM, on a slow (far_latency 4) link with two
    // channels — latency-bound traffic like the §5 KNL microbenchmarks.
    let (chase_pages, chase_len, chase_p) = match scale {
        BenchScale::Small => (4_096u32, 20_000usize, 16usize),
        BenchScale::Medium => (8_192, 60_000, 32),
    };
    let chase = WorkloadSpec::Uniform {
        pages: chase_pages,
        len: chase_len,
    }
    .workload(chase_p, 42, TraceOptions::default());
    for arb in [ArbitrationKind::Fifo, ArbitrationKind::Priority] {
        out.push(CellSpec {
            id: format!("fig6/chase/{}/p{chase_p}", short_label(arb)),
            group: "fig6",
            workload: chase.clone(),
            k: 1_024,
            q: 2,
            arbitration: arb,
            far_latency: 4,
            seed: 42,
        });
    }

    out
}

fn short_label(arb: ArbitrationKind) -> &'static str {
    match arb {
        ArbitrationKind::Fifo => "FIFO",
        ArbitrationKind::Priority => "Priority",
        ArbitrationKind::DynamicPriority { .. } => "Dynamic",
        _ => "other",
    }
}

fn build_engine(spec: &CellSpec) -> Engine {
    SimBuilder::new()
        .hbm_slots(spec.k)
        .channels(spec.q)
        .arbitration(spec.arbitration)
        .far_latency(spec.far_latency)
        .seed(spec.seed)
        .try_build(&spec.workload)
        .expect("pinned bench cell config is valid")
}

/// Times one cell: repeats the run until at least `min_wall` seconds and
/// two iterations have elapsed (capped at 12 iterations), keeping the best
/// iteration — the standard defence against scheduler noise on short
/// cells. Construction and run are timed separately so `setup_seconds`
/// isolates the per-cell flatten/index/allocate cost; `wall_seconds` is
/// their sum (the historical definition, keeping ticks/sec baselines
/// comparable). The kernel's peak-RSS counter is reset before the cell, so
/// `peak_rss_delta_bytes` attributes growth to this cell alone.
pub fn measure(spec: &CellSpec, min_wall: f64) -> CellResult {
    reset_peak_rss();
    let rss_before = current_rss_bytes();
    let mut best = f64::INFINITY;
    let mut best_setup = f64::INFINITY;
    let mut report = build_engine(spec).run(&mut NoopObserver); // warm-up
    let mut spent = 0.0;
    let mut iters = 0u32;
    while (spent < min_wall || iters < 2) && iters < 12 {
        let t0 = Instant::now();
        let engine = build_engine(spec);
        let setup = t0.elapsed().as_secs_f64().max(1e-9);
        report = engine.run(&mut NoopObserver);
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        spent += dt;
        best = best.min(dt);
        best_setup = best_setup.min(setup);
        iters += 1;
    }
    let ticks = report.makespan;
    let total_refs = spec.workload.total_refs() as u64;
    let peak = peak_rss_bytes();
    CellResult {
        id: spec.id.clone(),
        group: spec.group,
        p: spec.workload.cores(),
        k: spec.k,
        q: spec.q,
        far_latency: spec.far_latency,
        total_refs,
        ticks,
        wall_seconds: best,
        setup_seconds: best_setup,
        ticks_per_sec: ticks as f64 / best,
        refs_per_sec: total_refs as f64 / best,
        rss_before_bytes: rss_before,
        peak_rss_delta_bytes: peak.saturating_sub(rss_before),
        peak_rss_bytes: peak,
        hits: report.hits,
    }
}

/// Reads one `kB` field from `/proc/self/status`, in bytes; 0 when the
/// file or field is unavailable (non-Linux).
fn status_bytes(field: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kb: u64 = rest
                .trim_start_matches(':')
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Process peak RSS in bytes from `/proc/self/status` (`VmHWM`); 0 when
/// unavailable (non-Linux).
pub fn peak_rss_bytes() -> u64 {
    status_bytes("VmHWM")
}

/// Current RSS in bytes from `/proc/self/status` (`VmRSS`); 0 when
/// unavailable.
pub fn current_rss_bytes() -> u64 {
    status_bytes("VmRSS")
}

/// Resets the kernel's peak-RSS counter (`VmHWM`) to the current RSS by
/// writing `5` to `/proc/self/clear_refs`, so the next `VmHWM` read is a
/// per-interval peak rather than a process-lifetime one. Returns false
/// when unsupported (non-Linux, restricted procfs) — peak deltas then
/// degrade to the old monotone semantics rather than erroring.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Outcome of one owned-vs-shared sweep-grid comparison (the tentpole's
/// headline measurement): the same fig2-shaped (p, k, policy) grid run
/// twice through the same `hbm_par` fan-out the real sweeps use — once
/// per-cell-owned (every worker re-flattens its cell's workload and
/// allocates fresh engine state, the pre-optimization per-cell cost
/// model, with the redundant flattens racing each other for memory
/// bandwidth and stacking concurrently in RSS) and once shared (one
/// memoized [`FlatWorkload`] per p via the [`TracePool`], scratches
/// recycled through a pool). The wall-clock ratio is therefore an
/// end-to-end sweep-throughput figure, not a microbenchmark of flatten
/// alone, and both passes must produce bit-identical trajectories
/// (`checksum_match`).
pub struct SweepGridComparison {
    /// Scale name the grid was built for.
    pub scale: &'static str,
    /// Number of (p, k, policy) cells in the grid.
    pub cells: usize,
    /// Wall seconds for the per-cell-owned pass.
    pub owned_wall_seconds: f64,
    /// Wall seconds for the shared-flat + recycled-scratch pass.
    pub shared_wall_seconds: f64,
    /// `owned_wall_seconds / shared_wall_seconds`.
    pub speedup: f64,
    /// Peak-RSS growth (bytes) during the owned pass, peak counter reset
    /// before the pass. 0 when the reset is unsupported.
    pub owned_peak_rss_delta_bytes: u64,
    /// Peak-RSS growth (bytes) during the shared pass.
    pub shared_peak_rss_delta_bytes: u64,
    /// Whether both passes produced identical (makespan, hits) checksums —
    /// false would mean sharing changed simulation results, a correctness
    /// bug that invalidates the timing comparison.
    pub checksum_match: bool,
}

/// Runs the owned-vs-shared sweep-grid comparison for one scale. The grid
/// shape is frozen (like [`cells`]): SpGEMM under contention across a
/// thread sweep × HBM-size multipliers × both policies, seed 42.
pub fn sweep_grid_comparison(scale: BenchScale) -> SweepGridComparison {
    let (n, ps, mults) = match scale {
        BenchScale::Small => (80usize, vec![1usize, 2, 4, 8, 16], vec![1usize, 2, 5]),
        BenchScale::Medium => (150, vec![4usize, 8, 16, 32, 64], vec![1usize, 2, 3, 5]),
    };
    let seed = 42u64;
    let spec = WorkloadSpec::SpGemm { n, density: 0.10 };
    let max_p = *ps.iter().max().expect("non-empty thread sweep");
    let pool = TracePool::generate(spec, max_p, seed, TraceOptions::default());
    let ws = pool.working_set().max(1);
    let grid: Vec<(usize, usize, ArbitrationKind)> = ps
        .iter()
        .flat_map(|&p| {
            mults.iter().flat_map(move |&m| {
                [ArbitrationKind::Fifo, ArbitrationKind::Priority]
                    .into_iter()
                    .map(move |arb| (p, (m * ws).max(16), arb))
            })
        })
        .collect();
    // `parallel_map` preserves input order, so folding the per-cell
    // signatures in grid order is deterministic despite the fan-out.
    let checksum = |sigs: &[u64]| {
        sigs.iter()
            .fold(0u64, |sum, &sig| sum.wrapping_mul(31).wrapping_add(sig))
    };

    // Warm caches, worker threads and the allocator before timing.
    let (wp, wk, warb) = grid[0];
    std::hint::black_box(run_cell(&pool.workload(wp), wk, 1, warb, seed));

    // Owned pass: every cell pays flatten + index + allocation on its
    // worker, exactly what each sweep cell cost before the sharing work.
    reset_peak_rss();
    let owned_before = current_rss_bytes();
    let t0 = Instant::now();
    let owned_sigs = hbm_par::parallel_map(&grid, |&(p, k, arb)| {
        let r = run_cell(&pool.workload(p), k, 1, arb, seed);
        r.makespan ^ r.hits
    });
    let owned_wall = t0.elapsed().as_secs_f64().max(1e-9);
    let owned_delta = peak_rss_bytes().saturating_sub(owned_before);
    let owned_sum = checksum(&owned_sigs);

    // Shared pass: one memoized flatten per p, scratches recycled across
    // workers through the pool — the sweep code path after the sharing
    // work.
    reset_peak_rss();
    let shared_before = current_rss_bytes();
    let scratches = ScratchPool::new();
    let t1 = Instant::now();
    let shared_sigs = hbm_par::parallel_map(&grid, |&(p, k, arb)| {
        let flat = pool.flat(p);
        let r = scratches.with(|scratch| run_cell_flat(&flat, k, 1, arb, seed, scratch));
        r.makespan ^ r.hits
    });
    let shared_wall = t1.elapsed().as_secs_f64().max(1e-9);
    let shared_delta = peak_rss_bytes().saturating_sub(shared_before);
    let shared_sum = checksum(&shared_sigs);

    SweepGridComparison {
        scale: scale.name(),
        cells: grid.len(),
        owned_wall_seconds: owned_wall,
        shared_wall_seconds: shared_wall,
        speedup: owned_wall / shared_wall,
        owned_peak_rss_delta_bytes: owned_delta,
        shared_peak_rss_delta_bytes: shared_delta,
        checksum_match: owned_sum == shared_sum,
    }
}

/// Outcome of one scalar-vs-batched lockstep comparison (the phase-major
/// tentpole's headline measurement): the same frozen grid as
/// [`sweep_grid_comparison`] run three ways. Every pass is sequential and
/// single-threaded so the ratios isolate per-cell executor throughput:
/// through the `hbm_par` fan-out the scalar side would split into `cells`
/// tasks but the batched side only `batches`, and on a multi-core host
/// that packing asymmetry biases the ratio against batching.
///
/// 1. **scalar** — one [`Engine`] per cell over shared flats with one
///    recycled scratch (the PR 4 sweep path batching replaces);
/// 2. **cell-major** — each thread count's cells columnized into one
///    lockstep [`BatchEngine`] batch (FIFO and Priority per HBM size,
///    `2 × |mults|` cells wide), driven by the chunked cell-major
///    reference executor (the PR 6 executor);
/// 3. **phase-major** — the same batches through the production
///    phase-major executor (`BatchEngine::run`, what `run_batch_flat`
///    and the serve path dispatch to).
///
/// All three must produce bit-identical trajectories (`checksum_match`) —
/// the differential suite proves it per cell; this records it on the
/// pinned perf grid. On a mismatch, [`first_divergence`] localizes the
/// first divergent (cell, tick, phase) into `divergence` so the failure
/// is actionable rather than a bare exit code.
pub struct LockstepGridComparison {
    /// Scale name the grid was built for.
    pub scale: &'static str,
    /// Number of (p, k, policy) simulation cells in the grid.
    pub cells: usize,
    /// Number of lockstep batches each batched pass ran (one per p).
    pub batches: usize,
    /// `std::thread::available_parallelism()` at measurement time.
    /// Recorded for transparency; the passes themselves are sequential,
    /// so core count cancels in the same-machine ratios.
    pub host_cores: usize,
    /// Wall seconds for the sequential scalar pass.
    pub scalar_wall_seconds: f64,
    /// Wall seconds for the cell-major reference-executor pass.
    pub cell_major_wall_seconds: f64,
    /// Wall seconds for the phase-major production-executor pass.
    pub phase_major_wall_seconds: f64,
    /// `scalar_wall_seconds / cell_major_wall_seconds`.
    pub cell_major_speedup: f64,
    /// `scalar_wall_seconds / phase_major_wall_seconds` — the headline
    /// batched-vs-scalar ratio [`check_lockstep_speedup`] judges.
    pub phase_major_speedup: f64,
    /// Whether all three passes produced identical (makespan ^ hits)
    /// checksums in grid order — false means a batched executor changed
    /// simulation results, a correctness bug that invalidates the timing.
    pub checksum_match: bool,
    /// On checksum mismatch: the [`first_divergence`] triage report for
    /// the first divergent batch (first divergent cell, tick, phase, and
    /// both engines' state dumps), or a note that the observer event
    /// streams matched and only derived metrics differ.
    pub divergence: Option<String>,
}

/// Runs the three-way scalar / cell-major / phase-major lockstep
/// comparison for one scale. The grid shape is frozen and identical to
/// [`sweep_grid_comparison`]'s: SpGEMM under contention across a thread
/// sweep × HBM-size multipliers × both policies, seed 42. Flats are
/// pre-memoized and both code paths warmed before any pass, so the
/// ratios measure engine execution, not flattening or first-touch
/// allocation.
pub fn lockstep_grid_comparison(scale: BenchScale) -> LockstepGridComparison {
    let (n, ps, mults) = match scale {
        BenchScale::Small => (80usize, vec![1usize, 2, 4, 8, 16], vec![1usize, 2, 5]),
        BenchScale::Medium => (150, vec![4usize, 8, 16, 32, 64], vec![1usize, 2, 3, 5]),
    };
    let seed = 42u64;
    let spec = WorkloadSpec::SpGemm { n, density: 0.10 };
    let max_p = *ps.iter().max().expect("non-empty thread sweep");
    let pool = TracePool::generate(spec, max_p, seed, TraceOptions::default());
    let ws = pool.working_set().max(1);
    let grid: Vec<(usize, usize, ArbitrationKind)> = ps
        .iter()
        .flat_map(|&p| {
            mults.iter().flat_map(move |&m| {
                [ArbitrationKind::Fifo, ArbitrationKind::Priority]
                    .into_iter()
                    .map(move |arb| (p, (m * ws).max(16), arb))
            })
        })
        .collect();
    // Per-batch settings: independent of p (every batch sweeps the same
    // HBM sizes and policies), in the same order the grid enumerates its
    // cells within one p — so pass signatures compare positionally.
    let settings: Vec<SimSettings> = mults
        .iter()
        .flat_map(|&m| {
            let k = (m * ws).max(16);
            [
                SimSettings::new(k, 1, ArbitrationKind::Fifo, seed),
                SimSettings::new(k, 1, ArbitrationKind::Priority, seed),
            ]
        })
        .collect();
    let width = settings.len();
    let checksum = |sigs: &[u64]| {
        sigs.iter()
            .fold(0u64, |sum, &sig| sum.wrapping_mul(31).wrapping_add(sig))
    };

    // Pre-memoize every flat and warm both code paths (scalar and batch
    // construction), so no pass pays flattening or cold-allocator cost.
    for &p in &ps {
        let _ = pool.flat(p);
    }
    let (wp, wk, warb) = grid[0];
    std::hint::black_box(run_cell_flat(
        &pool.flat(wp),
        wk,
        1,
        warb,
        seed,
        &mut Default::default(),
    ));
    std::hint::black_box(run_batch_flat(
        &pool.flat(wp),
        &settings[..2.min(width)],
        &mut BatchScratch::default(),
    ));

    // Scalar pass: one engine per cell over the shared flats.
    let mut scratch = EngineScratch::default();
    let t0 = Instant::now();
    let scalar_sigs: Vec<u64> = grid
        .iter()
        .map(|&(p, k, arb)| {
            let r = run_cell_flat(&pool.flat(p), k, 1, arb, seed, &mut scratch);
            r.makespan ^ r.hits
        })
        .collect();
    let scalar_wall = t0.elapsed().as_secs_f64().max(1e-9);

    // Cell-major pass: each p's cells columnized into one lockstep batch,
    // run by the chunked reference executor.
    let cells_for_batch: Vec<BatchCell> = settings
        .iter()
        .map(|s| s.to_batch_cell(CellBudget::UNLIMITED))
        .collect();
    let mut batch_scratch = BatchScratch::default();
    let t1 = Instant::now();
    let cell_major_sigs: Vec<u64> = ps
        .iter()
        .flat_map(|&p| {
            let reports =
                BatchEngine::try_with_scratch(pool.flat(p), &cells_for_batch, &mut batch_scratch)
                    .expect("bench grid configs are valid")
                    .run_quiet_cell_major_reusing(&mut batch_scratch);
            reports
                .iter()
                .map(|r| r.makespan ^ r.hits)
                .collect::<Vec<u64>>()
        })
        .collect();
    let cell_major_wall = t1.elapsed().as_secs_f64().max(1e-9);

    // Phase-major pass: the same batches through the production executor.
    let t2 = Instant::now();
    let phase_major_sigs: Vec<u64> = ps
        .iter()
        .flat_map(|&p| {
            run_batch_flat(&pool.flat(p), &settings, &mut batch_scratch)
                .iter()
                .map(|r| r.makespan ^ r.hits)
                .collect::<Vec<u64>>()
        })
        .collect();
    let phase_major_wall = t2.elapsed().as_secs_f64().max(1e-9);

    let scalar_sum = checksum(&scalar_sigs);
    let checksum_match =
        scalar_sum == checksum(&cell_major_sigs) && scalar_sum == checksum(&phase_major_sigs);
    let mut divergence = None;
    if !checksum_match {
        // Triage: find the first batch whose per-cell signatures differ
        // from the scalar pass and localize the first divergent
        // (cell, tick, phase) with full state dumps.
        for (pi, &p) in ps.iter().enumerate() {
            let s = &scalar_sigs[pi * width..(pi + 1) * width];
            if s != &cell_major_sigs[pi * width..(pi + 1) * width]
                || s != &phase_major_sigs[pi * width..(pi + 1) * width]
            {
                divergence = Some(
                    first_divergence(&pool.flat(p), &cells_for_batch)
                        .map(|r| r.to_string())
                        .unwrap_or_else(|| {
                            format!(
                                "batch p={p}: signatures diverge but observer event streams \
                                 match — derived metrics only"
                            )
                        }),
                );
                break;
            }
        }
    }

    LockstepGridComparison {
        scale: scale.name(),
        cells: grid.len(),
        batches: ps.len(),
        host_cores: std::thread::available_parallelism().map_or(1, |c| c.get()),
        scalar_wall_seconds: scalar_wall,
        cell_major_wall_seconds: cell_major_wall,
        phase_major_wall_seconds: phase_major_wall,
        cell_major_speedup: scalar_wall / cell_major_wall,
        phase_major_speedup: scalar_wall / phase_major_wall,
        checksum_match,
        divergence,
    }
}

/// Speedup floor for [`check_lockstep_speedup`]: the production batched
/// executor must beat the scalar sweep path by more than this ratio on
/// the judged grid.
pub const LOCKSTEP_MIN_SPEEDUP: f64 = 1.5;

/// Noise floor for the lockstep gate: a scalar pass under 50 ms is
/// timer/turbo-noise-dominated and judging a ratio on it would flake.
const LOCKSTEP_NOISE_FLOOR_SECONDS: f64 = 0.05;

/// Outcome of the self-relative lockstep-speedup gate.
#[derive(Debug, Clone, PartialEq)]
pub enum LockstepVerdict {
    /// The phase-major executor cleared the required ratio on the judged
    /// grid.
    Pass {
        /// Scale name of the judged grid.
        scale: String,
        /// Measured `scalar_wall / phase_major_wall`.
        speedup: f64,
        /// The judged grid's scalar wall seconds (the timing signal the
        /// ratio rests on).
        scalar_wall_seconds: f64,
    },
    /// The ratio (or trajectory identity) failed; carries the
    /// human-readable failure line.
    Fail(String),
    /// The measurement cannot support an honest judgement; carries the
    /// reason. Two conditions trigger this: batches averaging fewer than
    /// two cells (single-cell batches take the scalar fallback, so there
    /// is no lockstep execution to measure) and a scalar pass below the
    /// noise floor. `host_cores` is recorded in the document and echoed
    /// in verdict lines but does **not** trigger a skip: unlike
    /// `check_scaling`'s parallel shard measurement, both lockstep
    /// passes are sequential and single-threaded, so core count cancels
    /// in the ratio.
    Skipped(String),
}

/// The self-relative lockstep-speedup gate over one run's grids: on the
/// longest-running grid measured (the one with the most timing signal),
/// the phase-major batched pass must beat the scalar pass by more than
/// `min_ratio`. Both passes come from the same sequential run on the
/// same machine, so no baseline or calibration is involved. Divergent
/// checksums on *any* grid fail outright — a wrong-answer executor has
/// no valid timing to judge.
pub fn check_lockstep_speedup(grids: &[LockstepGridComparison], min_ratio: f64) -> LockstepVerdict {
    if grids.is_empty() {
        return LockstepVerdict::Skipped("no lockstep grids were measured".into());
    }
    if let Some(bad) = grids.iter().find(|g| !g.checksum_match) {
        return LockstepVerdict::Fail(format!(
            "LOCKSTEP DIVERGENCE {}: batched trajectories differ from scalar; timing is invalid",
            bad.scale
        ));
    }
    let judged = grids
        .iter()
        .max_by(|a, b| a.scalar_wall_seconds.total_cmp(&b.scalar_wall_seconds))
        .expect("grids is non-empty");
    let width = judged.cells as f64 / judged.batches.max(1) as f64;
    if width < 2.0 {
        return LockstepVerdict::Skipped(format!(
            "'{}' batches average {width:.1} cells; single-cell batches take the scalar \
             fallback, so there is no lockstep execution to judge",
            judged.scale
        ));
    }
    if judged.scalar_wall_seconds < LOCKSTEP_NOISE_FLOOR_SECONDS {
        return LockstepVerdict::Skipped(format!(
            "'{}' scalar pass finished in {:.1} ms, under the {:.0} ms noise floor; the ratio \
             would be timer noise",
            judged.scale,
            judged.scalar_wall_seconds * 1e3,
            LOCKSTEP_NOISE_FLOOR_SECONDS * 1e3
        ));
    }
    if judged.phase_major_speedup > min_ratio {
        LockstepVerdict::Pass {
            scale: judged.scale.to_string(),
            speedup: judged.phase_major_speedup,
            scalar_wall_seconds: judged.scalar_wall_seconds,
        }
    } else {
        LockstepVerdict::Fail(format!(
            "LOCKSTEP SPEEDUP {}: phase-major sustained {:.2}x vs scalar (required > \
             {:.2}x; {} cells over {} batches, {} host core(s))",
            judged.scale,
            judged.phase_major_speedup,
            min_ratio,
            judged.cells,
            judged.batches,
            judged.host_cores
        ))
    }
}

/// A fixed synthetic CPU score (iterations/second of a pure integer loop),
/// engine-independent, used to normalize ticks/sec across machines. The
/// loop body is frozen: changing it invalidates checked-in baselines.
pub fn calibration_score() -> f64 {
    // xorshift + data-dependent adds over a small table: exercises ALU and
    // L1 like the simulator's hot loop, finishes in ~50 ms.
    let mut table = [0u64; 1024];
    let mut x = 0x9e3779b97f4a7c15u64;
    for slot in table.iter_mut() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *slot = x;
    }
    const ITERS: u64 = 20_000_000;
    let t0 = Instant::now();
    let mut acc = 0u64;
    let mut idx = 0usize;
    for _ in 0..ITERS {
        let v = table[idx];
        acc = acc.wrapping_add(v ^ (acc >> 3));
        idx = (v.wrapping_add(acc) & 1023) as usize;
    }
    let dt = t0.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(acc);
    ITERS as f64 / dt
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "0.0".into()
    }
}

/// Aggregate ticks/sec of a group: total ticks over total best-wall time.
pub fn group_ticks_per_sec(results: &[CellResult], group: &str) -> f64 {
    let (ticks, wall) = results
        .iter()
        .filter(|r| r.group == group)
        .fold((0u64, 0.0f64), |(t, w), r| {
            (t + r.ticks, w + r.wall_seconds)
        });
    if wall > 0.0 {
        ticks as f64 / wall
    } else {
        0.0
    }
}

fn json_f6(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0.0".into()
    }
}

/// Escapes a string for embedding in a JSON string literal. Triage dumps
/// carry newlines and quotes; the line-oriented cell parser stays safe
/// because escaped quotes (`\"`) never match its `"key": ` patterns.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full benchmark document (schema 5). `pre_pr` optionally
/// carries the pre-optimization `(fig3_ticks_per_sec, calibration_score)`
/// pair measured on the same machine, so the emitted JSON records the
/// speedup the PR delivered on the adversarial sweep; `sweep_grids`
/// carries the owned-vs-shared comparisons and `lockstep_grids` the
/// three-way scalar / cell-major / phase-major lockstep comparisons (one
/// per scale each).
///
/// Schema 5 re-shapes `lockstep_grid` into the three-way comparison
/// (`cell_major_*` and `phase_major_*` columns, `host_cores`, an optional
/// `divergence` triage report), switches per-cell `wall_seconds` to
/// microsecond precision (sub-millisecond cells used to flatten to
/// `0.000`), and adds the `lockstep_gate` verdict object computed by
/// [`check_lockstep_speedup`] at [`LOCKSTEP_MIN_SPEEDUP`]. Schema 4 added
/// the top-level `lockstep_grid` section; schema 3 added per-cell
/// `setup_seconds`, `rss_before_bytes` and `peak_rss_delta_bytes` plus
/// the top-level `sweep_grid` section. Older documents still parse — the
/// gates simply skip data their baselines lack.
pub fn render_json(
    scale_names: &str,
    calibration: f64,
    results: &[CellResult],
    pre_pr: Option<(f64, f64)>,
    sweep_grids: &[SweepGridComparison],
    lockstep_grids: &[LockstepGridComparison],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 5,\n");
    out.push_str(
        "  \"command\": \"cargo run --release -p hbm-bench --bin bench_harness -- --out BENCH_9.json\",\n",
    );
    out.push_str(&format!("  \"scales\": \"{scale_names}\",\n"));
    out.push_str(&format!(
        "  \"calibration_score\": {},\n",
        json_f(calibration)
    ));
    out.push_str("  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"group\": \"{}\", \"p\": {}, \"k\": {}, \"q\": {}, \"far_latency\": {}, \"total_refs\": {}, \"ticks\": {}, \"wall_seconds\": {}, \"setup_seconds\": {}, \"ticks_per_sec\": {}, \"refs_per_sec\": {}, \"rss_before_bytes\": {}, \"peak_rss_delta_bytes\": {}, \"peak_rss_bytes\": {}, \"hits\": {}}}{comma}\n",
            r.id,
            r.group,
            r.p,
            r.k,
            r.q,
            r.far_latency,
            r.total_refs,
            r.ticks,
            json_f6(r.wall_seconds),
            json_f6(r.setup_seconds),
            json_f(r.ticks_per_sec),
            json_f(r.refs_per_sec),
            r.rss_before_bytes,
            r.peak_rss_delta_bytes,
            r.peak_rss_bytes,
            r.hits,
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"sweep_grid\": [\n");
    for (i, g) in sweep_grids.iter().enumerate() {
        let comma = if i + 1 == sweep_grids.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"scale\": \"{}\", \"cells\": {}, \"owned_wall_seconds\": {}, \"shared_wall_seconds\": {}, \"shared_vs_owned_speedup\": {}, \"owned_peak_rss_delta_bytes\": {}, \"shared_peak_rss_delta_bytes\": {}, \"checksum_match\": {}}}{comma}\n",
            g.scale,
            g.cells,
            json_f6(g.owned_wall_seconds),
            json_f6(g.shared_wall_seconds),
            json_f(g.speedup),
            g.owned_peak_rss_delta_bytes,
            g.shared_peak_rss_delta_bytes,
            g.checksum_match,
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"lockstep_grid\": [\n");
    for (i, g) in lockstep_grids.iter().enumerate() {
        let comma = if i + 1 == lockstep_grids.len() {
            ""
        } else {
            ","
        };
        let divergence = g.divergence.as_ref().map_or(String::new(), |d| {
            format!(", \"divergence\": \"{}\"", json_escape(d))
        });
        out.push_str(&format!(
            "    {{\"scale\": \"{}\", \"cells\": {}, \"batches\": {}, \"host_cores\": {}, \"scalar_wall_seconds\": {}, \"cell_major_wall_seconds\": {}, \"phase_major_wall_seconds\": {}, \"cell_major_vs_scalar_speedup\": {}, \"phase_major_vs_scalar_speedup\": {}, \"checksum_match\": {}{divergence}}}{comma}\n",
            g.scale,
            g.cells,
            g.batches,
            g.host_cores,
            json_f6(g.scalar_wall_seconds),
            json_f6(g.cell_major_wall_seconds),
            json_f6(g.phase_major_wall_seconds),
            json_f(g.cell_major_speedup),
            json_f(g.phase_major_speedup),
            g.checksum_match,
        ));
    }
    out.push_str("  ],\n");
    let verdict = check_lockstep_speedup(lockstep_grids, LOCKSTEP_MIN_SPEEDUP);
    let (verdict_name, detail) = match &verdict {
        LockstepVerdict::Pass {
            scale,
            speedup,
            scalar_wall_seconds,
        } => (
            "pass",
            format!("{scale}: phase-major {speedup:.2}x vs scalar over {scalar_wall_seconds:.3}s"),
        ),
        LockstepVerdict::Fail(m) => ("fail", m.clone()),
        LockstepVerdict::Skipped(m) => ("skipped", m.clone()),
    };
    out.push_str(&format!(
        "  \"lockstep_gate\": {{\"min_speedup\": {}, \"verdict\": \"{verdict_name}\", \"detail\": \"{}\"}},\n",
        json_f(LOCKSTEP_MIN_SPEEDUP),
        json_escape(&detail),
    ));
    let fig3 = group_ticks_per_sec(results, "fig3");
    out.push_str("  \"summary\": {\n");
    out.push_str(&format!("    \"fig3_ticks_per_sec\": {},\n", json_f(fig3)));
    out.push_str(&format!(
        "    \"fig2_ticks_per_sec\": {},\n",
        json_f(group_ticks_per_sec(results, "fig2"))
    ));
    out.push_str(&format!(
        "    \"fig6_ticks_per_sec\": {},\n",
        json_f(group_ticks_per_sec(results, "fig6"))
    ));
    out.push_str(&format!(
        "    \"total_wall_seconds\": {}\n",
        json_f(results.iter().map(|r| r.wall_seconds).sum())
    ));
    out.push_str("  }");
    if let Some((pre_fig3, pre_calib)) = pre_pr {
        let adj = if calibration > 0.0 && pre_calib > 0.0 {
            pre_fig3 * (calibration / pre_calib)
        } else {
            pre_fig3
        };
        let speedup = if adj > 0.0 { fig3 / adj } else { 0.0 };
        out.push_str(",\n  \"pre_pr_baseline\": {\n");
        out.push_str(&format!(
            "    \"fig3_ticks_per_sec\": {},\n",
            json_f(pre_fig3)
        ));
        out.push_str(&format!(
            "    \"calibration_score\": {},\n",
            json_f(pre_calib)
        ));
        out.push_str(&format!(
            "    \"fig3_speedup_vs_pre_pr\": {}\n",
            json_f(speedup)
        ));
        out.push_str("  }");
    }
    out.push_str("\n}\n");
    out
}

/// One parsed cell from a harness JSON document.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCell {
    /// The cell's stable id.
    pub id: String,
    /// Its measured ticks/sec.
    pub ticks_per_sec: f64,
    /// Its best engine-setup seconds; `None` for schema-2 documents, which
    /// predate the field.
    pub setup_seconds: Option<f64>,
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..]
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .map_or(line.len(), |i| i + start);
    line[start..end].parse().ok()
}

/// Re-reads the cells of a harness-emitted JSON document. Relies on the
/// line-oriented layout [`render_json`] produces (one cell per line); this
/// is the regression checker's parser, not a general JSON parser.
pub fn parse_cells(json: &str) -> Vec<ParsedCell> {
    json.lines()
        .filter_map(|line| {
            let id = extract_str(line, "id")?;
            let tps = extract_num(line, "ticks_per_sec")?;
            Some(ParsedCell {
                id,
                ticks_per_sec: tps,
                setup_seconds: extract_num(line, "setup_seconds"),
            })
        })
        .collect()
}

/// The calibration score recorded in a harness JSON document.
pub fn parse_calibration(json: &str) -> Option<f64> {
    json.lines()
        .find_map(|l| extract_num(l, "calibration_score"))
}

/// Compares a current run against a baseline document. A cell regresses
/// when its calibration-normalized ticks/sec falls more than `tolerance`
/// (e.g. 0.25) below the baseline's. Cells present on only one side are
/// reported as informational, not failures (grids may grow across PRs).
/// Returns human-readable failure lines; empty means the gate passes.
pub fn check_regression(current_json: &str, baseline_json: &str, tolerance: f64) -> Vec<String> {
    let current = parse_cells(current_json);
    let baseline = parse_cells(baseline_json);
    let cur_calib = parse_calibration(current_json).unwrap_or(0.0);
    let base_calib = parse_calibration(baseline_json).unwrap_or(0.0);
    let scale = if cur_calib > 0.0 && base_calib > 0.0 {
        cur_calib / base_calib
    } else {
        1.0
    };
    let mut failures = Vec::new();
    for b in &baseline {
        let Some(c) = current.iter().find(|c| c.id == b.id) else {
            continue;
        };
        let expected = b.ticks_per_sec * scale;
        if expected > 0.0 && c.ticks_per_sec < expected * (1.0 - tolerance) {
            failures.push(format!(
                "REGRESSION {}: {:.0} ticks/s vs baseline {:.0} (machine-normalized {:.0}, tolerance {:.0}%)",
                b.id,
                c.ticks_per_sec,
                b.ticks_per_sec,
                expected,
                tolerance * 100.0
            ));
        }
    }
    failures
}

/// Setup-time floor below which the gate does not fire: cells whose
/// baseline setup is under 50 µs are timer-noise-dominated and gating them
/// would flake.
const SETUP_NOISE_FLOOR_SECONDS: f64 = 50e-6;

/// Compares per-cell `setup_seconds` against a baseline document. A cell
/// fails when its calibration-normalized setup time grew more than
/// `tolerance` (e.g. 0.30) over the baseline's — the gate behind the
/// tentpole's O(1)-allocation claim: re-introducing per-cell flatten or
/// allocation cost shows up here even when run time hides it. Cells
/// missing from either side, cells whose baseline predates `setup_seconds`
/// (schema 2), and cells below the 50 µs noise floor are skipped.
/// Returns human-readable failure lines; empty means the gate passes.
pub fn check_setup_regression(
    current_json: &str,
    baseline_json: &str,
    tolerance: f64,
) -> Vec<String> {
    let current = parse_cells(current_json);
    let baseline = parse_cells(baseline_json);
    let cur_calib = parse_calibration(current_json).unwrap_or(0.0);
    let base_calib = parse_calibration(baseline_json).unwrap_or(0.0);
    // Setup *time* scales inversely with machine speed: a machine twice as
    // fast (calibration 2x) should finish setup in half the time.
    let scale = if cur_calib > 0.0 && base_calib > 0.0 {
        base_calib / cur_calib
    } else {
        1.0
    };
    let mut failures = Vec::new();
    for b in &baseline {
        let Some(base_setup) = b.setup_seconds else {
            continue;
        };
        if base_setup < SETUP_NOISE_FLOOR_SECONDS {
            continue;
        }
        let Some(cur_setup) = current
            .iter()
            .find(|c| c.id == b.id)
            .and_then(|c| c.setup_seconds)
        else {
            continue;
        };
        let expected = base_setup * scale;
        if cur_setup > expected * (1.0 + tolerance) {
            failures.push(format!(
                "SETUP REGRESSION {}: {:.1} us vs baseline {:.1} us (machine-normalized {:.1} us, tolerance {:.0}%)",
                b.id,
                cur_setup * 1e6,
                base_setup * 1e6,
                expected * 1e6,
                tolerance * 100.0
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_result(id: &str, group: &'static str, ticks: u64, wall: f64) -> CellResult {
        fake_result_setup(id, group, ticks, wall, 0.001)
    }

    fn fake_result_setup(
        id: &str,
        group: &'static str,
        ticks: u64,
        wall: f64,
        setup: f64,
    ) -> CellResult {
        CellResult {
            id: id.into(),
            group,
            p: 4,
            k: 8,
            q: 1,
            far_latency: 1,
            total_refs: 100,
            ticks,
            wall_seconds: wall,
            setup_seconds: setup,
            ticks_per_sec: ticks as f64 / wall,
            refs_per_sec: 100.0 / wall,
            rss_before_bytes: 1 << 19,
            peak_rss_delta_bytes: 1 << 18,
            peak_rss_bytes: 1 << 20,
            hits: 7,
        }
    }

    fn fake_grid() -> SweepGridComparison {
        SweepGridComparison {
            scale: "small",
            cells: 30,
            owned_wall_seconds: 2.0,
            shared_wall_seconds: 1.0,
            speedup: 2.0,
            owned_peak_rss_delta_bytes: 4 << 20,
            shared_peak_rss_delta_bytes: 1 << 20,
            checksum_match: true,
        }
    }

    fn fake_lockstep_grid() -> LockstepGridComparison {
        LockstepGridComparison {
            scale: "small",
            cells: 30,
            batches: 5,
            host_cores: 4,
            scalar_wall_seconds: 3.0,
            cell_major_wall_seconds: 1.5,
            phase_major_wall_seconds: 1.0,
            cell_major_speedup: 2.0,
            phase_major_speedup: 3.0,
            checksum_match: true,
            divergence: None,
        }
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let results = vec![
            fake_result("fig3/FIFO/p8", "fig3", 10_000, 0.5),
            fake_result("fig2/sort/Priority/p16", "fig2", 4_000, 0.25),
        ];
        let json = render_json(
            "small",
            1e8,
            &results,
            Some((123.0, 1e8)),
            &[fake_grid()],
            &[fake_lockstep_grid()],
        );
        let cells = parse_cells(&json);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].id, "fig3/FIFO/p8");
        assert!((cells[0].ticks_per_sec - 20_000.0).abs() < 1.0);
        assert_eq!(cells[0].setup_seconds, Some(0.001));
        assert_eq!(parse_calibration(&json), Some(1e8));
        assert!(json.contains("\"schema_version\": 5"));
        assert!(json.contains("\"fig3_speedup_vs_pre_pr\""));
        assert!(json.contains("\"rss_before_bytes\": 524288"));
        assert!(json.contains("\"peak_rss_delta_bytes\": 262144"));
        assert!(json.contains("\"shared_vs_owned_speedup\": 2.000"));
        assert!(json.contains("\"cell_major_vs_scalar_speedup\": 2.000"));
        assert!(json.contains("\"phase_major_vs_scalar_speedup\": 3.000"));
        assert!(json.contains("\"batches\": 5"));
        assert!(json.contains("\"host_cores\": 4"));
        assert!(json.contains("\"checksum_match\": true"));
        assert!(!json.contains("\"divergence\""));
        assert!(json.contains("\"lockstep_gate\": {\"min_speedup\": 1.500, \"verdict\": \"pass\""));
    }

    /// Satellite regression: sub-millisecond cells used to flatten to
    /// `"wall_seconds": 0.000` under the 3-digit formatter; the document
    /// must keep microsecond precision.
    #[test]
    fn fast_cell_wall_seconds_keep_microsecond_precision() {
        let json = render_json(
            "small",
            1e8,
            &[fake_result("fast", "fig3", 500, 0.000417)],
            None,
            &[],
            &[],
        );
        assert!(
            json.contains("\"wall_seconds\": 0.000417"),
            "microseconds lost: {json}"
        );
    }

    #[test]
    fn divergence_is_embedded_escaped() {
        let mut g = fake_lockstep_grid();
        g.checksum_match = false;
        g.divergence = Some("cell 3 tick 7\nphase \"serve\"".into());
        let json = render_json("small", 1e8, &[], None, &[], &[g]);
        assert!(json.contains("\"divergence\": \"cell 3 tick 7\\nphase \\\"serve\\\"\""));
        assert!(json.contains("\"verdict\": \"fail\""));
        // The escaped dump must not confuse the line-oriented cell parser.
        assert!(parse_cells(&json).is_empty());
    }

    #[test]
    fn lockstep_gate_passes_fails_and_skips() {
        // Pass: 3.0x on a 3 s scalar pass, width 6.
        match check_lockstep_speedup(&[fake_lockstep_grid()], 1.5) {
            LockstepVerdict::Pass { scale, speedup, .. } => {
                assert_eq!(scale, "small");
                assert!((speedup - 3.0).abs() < 1e-9);
            }
            v => panic!("expected Pass, got {v:?}"),
        }
        // Fail: ratio under the floor.
        let mut slow = fake_lockstep_grid();
        slow.phase_major_speedup = 1.2;
        match check_lockstep_speedup(&[slow], 1.5) {
            LockstepVerdict::Fail(line) => assert!(line.contains("LOCKSTEP SPEEDUP")),
            v => panic!("expected Fail, got {v:?}"),
        }
        // Fail: divergent checksums trump everything.
        let mut diverged = fake_lockstep_grid();
        diverged.checksum_match = false;
        match check_lockstep_speedup(&[diverged], 1.5) {
            LockstepVerdict::Fail(line) => assert!(line.contains("LOCKSTEP DIVERGENCE")),
            v => panic!("expected Fail, got {v:?}"),
        }
        // Skip: single-cell batches take the scalar fallback.
        let mut narrow = fake_lockstep_grid();
        narrow.cells = 5;
        narrow.batches = 5;
        assert!(matches!(
            check_lockstep_speedup(&[narrow], 1.5),
            LockstepVerdict::Skipped(_)
        ));
        // Skip: scalar pass under the noise floor.
        let mut noisy = fake_lockstep_grid();
        noisy.scalar_wall_seconds = 0.004;
        assert!(matches!(
            check_lockstep_speedup(&[noisy], 1.5),
            LockstepVerdict::Skipped(_)
        ));
        // Skip: nothing measured.
        assert!(matches!(
            check_lockstep_speedup(&[], 1.5),
            LockstepVerdict::Skipped(_)
        ));
        // The longest-running grid is the one judged.
        let mut small = fake_lockstep_grid();
        small.phase_major_speedup = 0.9;
        small.scalar_wall_seconds = 0.2;
        let mut medium = fake_lockstep_grid();
        medium.scale = "medium";
        medium.scalar_wall_seconds = 10.0;
        match check_lockstep_speedup(&[small, medium], 1.5) {
            LockstepVerdict::Pass { scale, .. } => assert_eq!(scale, "medium"),
            v => panic!("expected Pass on medium, got {v:?}"),
        }
    }

    #[test]
    fn regression_gate_fires_only_past_tolerance() {
        let base = render_json(
            "small",
            1e8,
            &[fake_result("a", "fig3", 1000, 1.0)],
            None,
            &[],
            &[],
        );
        let ok = render_json(
            "small",
            1e8,
            &[fake_result("a", "fig3", 800, 1.0)],
            None,
            &[],
            &[],
        );
        let bad = render_json(
            "small",
            1e8,
            &[fake_result("a", "fig3", 700, 1.0)],
            None,
            &[],
            &[],
        );
        assert!(check_regression(&ok, &base, 0.25).is_empty());
        assert_eq!(check_regression(&bad, &base, 0.25).len(), 1);
    }

    #[test]
    fn regression_gate_normalizes_by_calibration() {
        // Baseline measured on a machine 2x faster (calibration 2e8): raw
        // ticks/sec halves on the current machine, but the gate must pass.
        let base = render_json(
            "small",
            2e8,
            &[fake_result("a", "fig3", 1000, 1.0)],
            None,
            &[],
            &[],
        );
        let cur = render_json(
            "small",
            1e8,
            &[fake_result("a", "fig3", 550, 1.0)],
            None,
            &[],
            &[],
        );
        assert!(check_regression(&cur, &base, 0.25).is_empty());
        let cur_bad = render_json(
            "small",
            1e8,
            &[fake_result("a", "fig3", 300, 1.0)],
            None,
            &[],
            &[],
        );
        assert_eq!(check_regression(&cur_bad, &base, 0.25).len(), 1);
    }

    #[test]
    fn unknown_cells_are_not_failures() {
        let base = render_json(
            "small",
            1e8,
            &[fake_result("gone", "fig3", 1000, 1.0)],
            None,
            &[],
            &[],
        );
        let cur = render_json(
            "small",
            1e8,
            &[fake_result("new", "fig3", 10, 1.0)],
            None,
            &[],
            &[],
        );
        assert!(check_regression(&cur, &base, 0.25).is_empty());
    }

    #[test]
    fn setup_gate_fires_only_past_tolerance() {
        let base = render_json(
            "small",
            1e8,
            &[fake_result_setup("a", "fig3", 1000, 1.0, 0.001)],
            None,
            &[],
            &[],
        );
        let ok = render_json(
            "small",
            1e8,
            &[fake_result_setup("a", "fig3", 1000, 1.0, 0.00125)],
            None,
            &[],
            &[],
        );
        let bad = render_json(
            "small",
            1e8,
            &[fake_result_setup("a", "fig3", 1000, 1.0, 0.0015)],
            None,
            &[],
            &[],
        );
        assert!(check_setup_regression(&ok, &base, 0.30).is_empty());
        let failures = check_setup_regression(&bad, &base, 0.30);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("SETUP REGRESSION a"));
    }

    #[test]
    fn setup_gate_normalizes_by_calibration_inversely() {
        // Baseline from a machine 2x faster: our setup times are allowed
        // to be ~2x the baseline's before the gate fires.
        let base = render_json(
            "small",
            2e8,
            &[fake_result_setup("a", "fig3", 1000, 1.0, 0.001)],
            None,
            &[],
            &[],
        );
        let cur = render_json(
            "small",
            1e8,
            &[fake_result_setup("a", "fig3", 1000, 1.0, 0.0024)],
            None,
            &[],
            &[],
        );
        assert!(check_setup_regression(&cur, &base, 0.30).is_empty());
        let cur_bad = render_json(
            "small",
            1e8,
            &[fake_result_setup("a", "fig3", 1000, 1.0, 0.003)],
            None,
            &[],
            &[],
        );
        assert_eq!(check_setup_regression(&cur_bad, &base, 0.30).len(), 1);
    }

    #[test]
    fn setup_gate_skips_pre_schema3_baselines_and_noise_floor() {
        // A schema-2 baseline line has no setup_seconds field: skipped.
        let base_v2 = "    {\"id\": \"a\", \"group\": \"fig3\", \"ticks_per_sec\": 1000.0}\n  \"calibration_score\": 100000000.0\n";
        let cur = render_json(
            "small",
            1e8,
            &[fake_result_setup("a", "fig3", 1000, 1.0, 10.0)],
            None,
            &[],
            &[],
        );
        assert!(check_setup_regression(&cur, base_v2, 0.30).is_empty());
        // A baseline below the 50 us noise floor is skipped too.
        let base_tiny = render_json(
            "small",
            1e8,
            &[fake_result_setup("a", "fig3", 1000, 1.0, 10e-6)],
            None,
            &[],
            &[],
        );
        assert!(check_setup_regression(&cur, &base_tiny, 0.30).is_empty());
    }

    #[test]
    fn sweep_grid_comparison_is_bit_identical_and_positive() {
        let g = sweep_grid_comparison(BenchScale::Small);
        assert_eq!(g.scale, "small");
        assert_eq!(g.cells, 5 * 3 * 2);
        assert!(g.checksum_match, "shared path must be bit-identical");
        assert!(g.owned_wall_seconds > 0.0);
        assert!(g.shared_wall_seconds > 0.0);
        assert!(g.speedup > 0.0);
    }

    #[test]
    fn lockstep_grid_comparison_is_bit_identical_and_positive() {
        let g = lockstep_grid_comparison(BenchScale::Small);
        assert_eq!(g.scale, "small");
        assert_eq!(g.cells, 5 * 3 * 2);
        assert_eq!(g.batches, 5);
        assert!(
            g.checksum_match,
            "batched paths must be bit-identical: {:?}",
            g.divergence
        );
        assert!(g.divergence.is_none());
        assert!(g.host_cores >= 1);
        assert!(g.scalar_wall_seconds > 0.0);
        assert!(g.cell_major_wall_seconds > 0.0);
        assert!(g.phase_major_wall_seconds > 0.0);
        assert!(g.cell_major_speedup > 0.0);
        assert!(g.phase_major_speedup > 0.0);
    }

    #[test]
    fn rss_helpers_are_consistent_on_linux() {
        // On Linux both reads succeed and peak >= current; elsewhere both
        // return 0 and the reset reports unsupported.
        let cur = current_rss_bytes();
        let peak = peak_rss_bytes();
        if cur > 0 {
            assert!(peak >= cur, "VmHWM {peak} below VmRSS {cur}");
        } else {
            assert_eq!(peak, 0);
        }
    }

    #[test]
    fn small_grid_is_pinned() {
        let grid = cells(BenchScale::Small);
        assert!(grid.len() >= 15, "grid has {} cells", grid.len());
        assert!(grid.iter().any(|c| c.group == "fig3" && c.far_latency == 1));
        assert!(grid.iter().any(|c| c.group == "fig3" && c.far_latency == 4));
        assert!(grid
            .iter()
            .any(|c| c.group == "fig3" && c.far_latency == 16));
        assert!(grid.iter().any(|c| c.group == "fig2"));
        assert!(grid.iter().any(|c| c.group == "fig6"));
        // Ids are unique: they key the regression gate.
        let mut ids: Vec<&String> = grid.iter().map(|c| &c.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), grid.len());
    }

    #[test]
    fn measure_produces_consistent_rates() {
        let spec = &cells(BenchScale::Small)[0];
        let r = measure(spec, 0.01);
        assert!(r.ticks > 0);
        assert!(r.wall_seconds > 0.0);
        assert!((r.ticks_per_sec - r.ticks as f64 / r.wall_seconds).abs() < 1e-6);
        assert_eq!(r.total_refs, spec.workload.total_refs() as u64);
        // Setup is a strict part of the best full iteration, so the best
        // setup can never exceed the best wall time.
        assert!(r.setup_seconds > 0.0);
        assert!(r.setup_seconds <= r.wall_seconds);
    }

    #[test]
    fn group_aggregate_pools_ticks_and_wall() {
        let results = vec![
            fake_result("a", "fig3", 1000, 1.0),
            fake_result("b", "fig3", 3000, 1.0),
            fake_result("c", "fig2", 99, 1.0),
        ];
        assert!((group_ticks_per_sec(&results, "fig3") - 2000.0).abs() < 1e-9);
    }
}
