//! # hbm-bench — criterion benches regenerating each paper artifact
//!
//! One bench target per table/figure (plus component and ablation
//! benches). Criterion measures the *wall-clock cost of regenerating* each
//! artifact at bench scale; the artifact's *content* (who wins, by what
//! factor) is asserted by each bench's `verify_*` helper here, so a bench
//! run doubles as a shape check of the reproduction.
//!
//! Bench-scale parameters live here so all targets agree.

use hbm_core::{ArbitrationKind, Report, SimBuilder, Workload};
use hbm_traces::adversarial::{cyclic_workload, figure3_hbm_slots};
use hbm_traces::{TraceOptions, WorkloadSpec};

pub mod harness;
pub mod serve_doc;

/// Bench-scale SpGEMM spec (working set ≈ 23 pages/core).
pub fn spgemm_spec() -> WorkloadSpec {
    WorkloadSpec::SpGemm {
        n: 80,
        density: 0.10,
    }
}

/// Bench-scale sort spec.
pub fn sort_spec() -> WorkloadSpec {
    WorkloadSpec::Sort {
        algo: hbm_traces::SortAlgo::Introsort,
        n: 8_000,
    }
}

/// Builds a bench workload of `p` cores.
pub fn workload(spec: WorkloadSpec, p: usize) -> Workload {
    spec.workload(p, 42, TraceOptions::default())
}

/// A contended (workload, k) pair for the given spec: HBM holds roughly
/// two per-core working sets for 16 cores.
pub fn contended(spec: WorkloadSpec) -> (Workload, usize) {
    let w = workload(spec, 16);
    let k = (2 * w.trace(0).unique_pages()).max(16);
    (w, k)
}

/// Runs one policy on a workload (q = 1, fixed seed).
pub fn run(w: &Workload, k: usize, arb: ArbitrationKind) -> Report {
    SimBuilder::new()
        .hbm_slots(k)
        .channels(1)
        .arbitration(arb)
        .seed(42)
        .run(w)
}

/// The bench-scale Figure 3 configuration.
pub fn fig3_config(p: usize) -> (Workload, usize) {
    let pages = 64;
    let reps = 10;
    (
        cyclic_workload(p, pages, reps),
        figure3_hbm_slots(p, pages, 4),
    )
}

/// Asserts the Figure 2/3 shape: Priority beats FIFO under contention.
pub fn verify_priority_wins(fifo: &Report, prio: &Report, factor: f64) {
    assert!(
        fifo.makespan as f64 > factor * prio.makespan as f64,
        "expected FIFO {} > {factor} x Priority {}",
        fifo.makespan,
        prio.makespan
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_configs_are_contended() {
        let (w, k) = contended(spgemm_spec());
        let fifo = run(&w, k, ArbitrationKind::Fifo);
        let prio = run(&w, k, ArbitrationKind::Priority);
        verify_priority_wins(&fifo, &prio, 1.5);
    }

    #[test]
    fn fig3_config_is_the_fifo_killer() {
        let (w, k) = fig3_config(16);
        let fifo = run(&w, k, ArbitrationKind::Fifo);
        assert_eq!(fifo.hits, 0);
    }
}
