//! The machine-readable serving-throughput document behind `BENCH_7.json`.
//!
//! [`harness`](crate::harness) answers "how many simulated ticks per
//! second does the *engine* sustain?"; this module answers the layer-up
//! question "how many *requests* per second does the `hbm-serve` service
//! sustain over real TCP, and at what tail latency?". The measurements are
//! produced by the `serve_bench` load-generator binary:
//!
//! ```text
//! cargo run --release -p hbm-bench --bin serve_bench -- --out BENCH_7.json
//! ```
//!
//! Schema 5 (after schema 4's `BENCH_5.json`) makes *shard count* a first
//! class axis: every load point records the `(shards, clients)` cell it
//! measured, plus the per-shard request distribution pulled from
//! `/healthz` deltas, so one hot listener shows up as imbalance instead of
//! being averaged away. The document also records `host_cores` (the
//! machine's available parallelism at measurement time) because shard
//! scaling is physically impossible past the core count — the scaling
//! gate refuses to produce false alarms on starved machines.
//!
//! Two gates read this document:
//!
//! * [`check_throughput_floor`] — the schema-4 calibration-normalized
//!   floor, matching points on `(shards, clients)`.
//! * [`check_scaling`] — schema 5's addition: a *self-relative* assertion
//!   that multi-shard throughput exceeds single-shard throughput by a
//!   required ratio at the highest common client count. Self-relative
//!   means no baseline file and no cross-machine normalization — both
//!   cells come from the same run on the same machine.
//!
//! Unlike the harness document this one is rendered *and* re-read through
//! the real JSON codec ([`hbm_serve::json`]) — the regression gate
//! dogfoods the parser the server itself uses. Cross-machine
//! comparability reuses the harness's [`calibration_score`]: the floor
//! gate scales the baseline's requests/sec by the calibration ratio, so
//! a slower CI runner does not read as a serving regression.
//!
//! [`calibration_score`]: crate::harness::calibration_score

use hbm_serve::json::{fmt_f64, Json, Number};

/// One measured load point: `clients` concurrent connections driving a
/// `shards`-shard server flat-out for a fixed duration.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Listener shards the target server ran with.
    pub shards: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Completed (200) requests over the window.
    pub requests: u64,
    /// Failed requests (non-200, transport errors). Honest runs keep this
    /// at 0; the gate refuses documents where errors outnumber successes.
    pub errors: u64,
    /// Wall-clock seconds of the measurement window.
    pub wall_seconds: f64,
    /// `requests / wall_seconds` — the sustained throughput figure.
    pub requests_per_sec: f64,
    /// Median request latency in seconds.
    pub p50_seconds: f64,
    /// 90th-percentile request latency in seconds.
    pub p90_seconds: f64,
    /// 99th-percentile request latency in seconds — the tail the ISSUE's
    /// acceptance criteria quote.
    pub p99_seconds: f64,
    /// Worst observed request latency in seconds.
    pub max_seconds: f64,
    /// Requests routed to each shard over the window (`/healthz` delta),
    /// indexed by shard id. Empty when the target exposes no per-shard
    /// counters (pre-schema-5 servers).
    pub per_shard_requests: Vec<u64>,
}

/// The cold-versus-warm setup delta: the first request against a fresh
/// server pays trace generation + flatten (cold [`TracePool`]); repeats
/// ride the memoized pool and recycled scratch.
///
/// [`TracePool`]: hbm_serve::pool::TracePool
#[derive(Debug, Clone, Copy)]
pub struct WarmVsCold {
    /// Latency of the very first request (cold pool), seconds.
    pub cold_first_seconds: f64,
    /// Median latency of the following warm repeats, seconds.
    pub warm_median_seconds: f64,
    /// `cold_first_seconds / warm_median_seconds`.
    pub cold_over_warm: f64,
}

/// Latency percentile over an *unsorted* sample (sorts a copy). `p` in
/// [0, 1]; nearest-rank on the sorted sample. Returns 0 for an empty one.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Summarizes a latency sample (seconds) into a [`LoadPoint`].
pub fn summarize(
    shards: usize,
    clients: usize,
    latencies: &[f64],
    errors: u64,
    wall_seconds: f64,
) -> LoadPoint {
    let wall = wall_seconds.max(1e-9);
    LoadPoint {
        shards,
        clients,
        requests: latencies.len() as u64,
        errors,
        wall_seconds: wall,
        requests_per_sec: latencies.len() as f64 / wall,
        p50_seconds: percentile(latencies, 0.50),
        p90_seconds: percentile(latencies, 0.90),
        p99_seconds: percentile(latencies, 0.99),
        max_seconds: latencies.iter().cloned().fold(0.0, f64::max),
        per_shard_requests: Vec::new(),
    }
}

fn num(x: f64) -> Json {
    Json::Num(Number::F(if x.is_finite() { x } else { 0.0 }))
}

/// Renders the full `BENCH_7.json` document (schema 5). Layout mirrors the
/// harness document — line-oriented, one load point per line — but every
/// value goes through [`fmt_f64`], so the file is an exact fixed point of
/// the server's own codec.
pub fn render_json(
    calibration: f64,
    host_cores: usize,
    points: &[LoadPoint],
    warm_vs_cold: WarmVsCold,
    golden_match: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 5,\n");
    out.push_str(
        "  \"command\": \"cargo run --release -p hbm-bench --bin serve_bench -- --out BENCH_7.json\",\n",
    );
    out.push_str(&format!(
        "  \"calibration_score\": {},\n",
        fmt_f64(calibration)
    ));
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str("  \"serve\": [\n");
    for (i, pt) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let line = Json::obj(vec![
            ("shards", Json::from(pt.shards as u64)),
            ("clients", Json::from(pt.clients as u64)),
            ("requests", Json::from(pt.requests)),
            ("errors", Json::from(pt.errors)),
            ("wall_seconds", num(pt.wall_seconds)),
            ("requests_per_sec", num(pt.requests_per_sec)),
            ("p50_seconds", num(pt.p50_seconds)),
            ("p90_seconds", num(pt.p90_seconds)),
            ("p99_seconds", num(pt.p99_seconds)),
            ("max_seconds", num(pt.max_seconds)),
            (
                "per_shard_requests",
                Json::Arr(
                    pt.per_shard_requests
                        .iter()
                        .map(|&n| Json::from(n))
                        .collect(),
                ),
            ),
        ]);
        out.push_str(&format!("    {line}{comma}\n"));
    }
    out.push_str("  ],\n");
    let wc = Json::obj(vec![
        ("cold_first_seconds", num(warm_vs_cold.cold_first_seconds)),
        ("warm_median_seconds", num(warm_vs_cold.warm_median_seconds)),
        ("cold_over_warm", num(warm_vs_cold.cold_over_warm)),
    ]);
    out.push_str(&format!("  \"warm_vs_cold\": {wc},\n"));
    out.push_str(&format!("  \"golden_match\": {golden_match},\n"));
    let best = points
        .iter()
        .map(|p| p.requests_per_sec)
        .fold(0.0, f64::max);
    let worst_p99 = points.iter().map(|p| p.p99_seconds).fold(0.0, f64::max);
    out.push_str("  \"summary\": {\n");
    out.push_str(&format!(
        "    \"best_requests_per_sec\": {},\n",
        fmt_f64(best)
    ));
    out.push_str(&format!(
        "    \"worst_p99_seconds\": {}\n",
        fmt_f64(worst_p99)
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// A parsed serve-bench document — the fields the gates need.
#[derive(Debug, Clone)]
pub struct ParsedDoc {
    /// Machine calibration score recorded at measurement time.
    pub calibration: f64,
    /// Host core count recorded at measurement time (1 when the document
    /// predates schema 5).
    pub host_cores: usize,
    /// The load points, in document order.
    pub points: Vec<LoadPoint>,
    /// Whether the served bytes matched a direct `SimBuilder` run.
    pub golden_match: bool,
}

/// Re-reads a document produced by [`render_json`], through the real JSON
/// parser. `None` on anything malformed. Schema-4 documents (no `shards`
/// axis) parse with `shards = 1` and an empty per-shard distribution, so
/// old baselines keep working as `--check` inputs.
pub fn parse_doc(text: &str) -> Option<ParsedDoc> {
    let v = Json::parse(text).ok()?;
    let calibration = v.get("calibration_score")?.as_f64()?;
    let host_cores = v.get("host_cores").and_then(Json::as_usize).unwrap_or(1);
    let golden_match = v.get("golden_match")?.as_bool()?;
    let Json::Arr(serve) = v.get("serve")? else {
        return None;
    };
    let mut points = Vec::with_capacity(serve.len());
    for pt in serve {
        points.push(LoadPoint {
            shards: pt.get("shards").and_then(Json::as_usize).unwrap_or(1),
            clients: pt.get("clients")?.as_usize()?,
            requests: pt.get("requests")?.as_u64()?,
            errors: pt.get("errors")?.as_u64()?,
            wall_seconds: pt.get("wall_seconds")?.as_f64()?,
            requests_per_sec: pt.get("requests_per_sec")?.as_f64()?,
            p50_seconds: pt.get("p50_seconds")?.as_f64()?,
            p90_seconds: pt.get("p90_seconds")?.as_f64()?,
            p99_seconds: pt.get("p99_seconds")?.as_f64()?,
            max_seconds: pt.get("max_seconds")?.as_f64()?,
            per_shard_requests: pt
                .get("per_shard_requests")
                .and_then(Json::as_array)
                .map(|arr| arr.iter().filter_map(Json::as_u64).collect())
                .unwrap_or_default(),
        });
    }
    Some(ParsedDoc {
        calibration,
        host_cores,
        points,
        golden_match,
    })
}

/// Compares a current document against a baseline. A load point fails the
/// floor when its requests/sec drops more than `tolerance` below the
/// baseline's calibration-normalized figure (matching on shard + client
/// count); the whole document fails when golden_match is false or errors
/// outnumber successes at any point. Cells present on only one side are
/// informational, not failures. Returns human-readable failure lines;
/// empty means the gate passes.
pub fn check_throughput_floor(
    current_json: &str,
    baseline_json: &str,
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    let Some(current) = parse_doc(current_json) else {
        return vec!["current serve-bench document is malformed".into()];
    };
    let Some(baseline) = parse_doc(baseline_json) else {
        return vec!["baseline serve-bench document is malformed".into()];
    };
    if !current.golden_match {
        failures.push("GOLDEN MISMATCH: served bytes diverged from direct SimBuilder run".into());
    }
    for pt in &current.points {
        if pt.errors > pt.requests {
            failures.push(format!(
                "UNHEALTHY LOAD POINT shards={} clients={}: {} errors vs {} successes",
                pt.shards, pt.clients, pt.errors, pt.requests
            ));
        }
    }
    let scale = if current.calibration > 0.0 && baseline.calibration > 0.0 {
        current.calibration / baseline.calibration
    } else {
        1.0
    };
    for b in &baseline.points {
        let Some(c) = current
            .points
            .iter()
            .find(|c| c.clients == b.clients && c.shards == b.shards)
        else {
            continue;
        };
        let floor = b.requests_per_sec * scale * (1.0 - tolerance);
        if floor > 0.0 && c.requests_per_sec < floor {
            failures.push(format!(
                "THROUGHPUT REGRESSION shards={} clients={}: {:.0} req/s vs baseline {:.0} \
                 (machine-normalized floor {:.0}, tolerance {:.0}%)",
                b.shards,
                b.clients,
                c.requests_per_sec,
                b.requests_per_sec,
                floor,
                tolerance * 100.0
            ));
        }
    }
    failures
}

/// Outcome of the self-relative shard-scaling gate.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalingVerdict {
    /// Multi-shard throughput cleared the required ratio; carries the
    /// measured `(shards, clients, ratio)` of the judged cell.
    Pass {
        /// Shard count of the multi-shard cell.
        shards: usize,
        /// Client count the ratio was measured at.
        clients: usize,
        /// `multi_shard_rps / single_shard_rps`.
        ratio: f64,
    },
    /// Multi-shard throughput failed to clear the ratio; carries the
    /// human-readable failure line.
    Fail(String),
    /// The document cannot support a scaling judgement (no multi-shard
    /// points, no common client count, or the host had fewer cores than
    /// shards — scaling past the core count is physically impossible and
    /// gating on it would only produce false alarms). Carries the reason.
    Skipped(String),
}

/// The self-relative scaling gate over one document: at the highest client
/// count measured under both 1 shard and the document's maximum shard
/// count, the multi-shard cell must sustain more than `min_ratio` times
/// the single-shard throughput. Both cells come from the same run on the
/// same machine, so no baseline or calibration is involved.
pub fn check_scaling(current_json: &str, min_ratio: f64) -> ScalingVerdict {
    let Some(doc) = parse_doc(current_json) else {
        return ScalingVerdict::Fail("serve-bench document is malformed".into());
    };
    if !doc.golden_match {
        return ScalingVerdict::Fail(
            "GOLDEN MISMATCH: served bytes diverged from direct SimBuilder run".into(),
        );
    }
    let max_shards = doc.points.iter().map(|p| p.shards).max().unwrap_or(0);
    if max_shards < 2 {
        return ScalingVerdict::Skipped("document has no multi-shard load points".into());
    }
    if doc.host_cores < max_shards {
        return ScalingVerdict::Skipped(format!(
            "host had {} core(s) for {} shards; shard scaling cannot manifest",
            doc.host_cores, max_shards
        ));
    }
    // Judge at the highest client count present in both shard columns: a
    // single client rides one connection pinned to one shard, so low
    // client counts cannot exhibit shard scaling by construction.
    let common = doc
        .points
        .iter()
        .filter(|p| p.shards == max_shards)
        .filter_map(|p| {
            doc.points
                .iter()
                .find(|q| q.shards == 1 && q.clients == p.clients)
                .map(|q| (p, q))
        })
        .max_by_key(|(p, _)| p.clients);
    let Some((multi, single)) = common else {
        return ScalingVerdict::Skipped(
            "no client count was measured under both 1 shard and the maximum shard count".into(),
        );
    };
    if single.requests_per_sec <= 0.0 {
        return ScalingVerdict::Fail(format!(
            "single-shard cell clients={} sustained no throughput",
            single.clients
        ));
    }
    let ratio = multi.requests_per_sec / single.requests_per_sec;
    if ratio > min_ratio {
        ScalingVerdict::Pass {
            shards: max_shards,
            clients: multi.clients,
            ratio,
        }
    } else {
        ScalingVerdict::Fail(format!(
            "SCALING REGRESSION clients={}: {} shards sustained {:.0} req/s vs {:.0} \
             single-shard ({:.2}x, required > {:.2}x)",
            multi.clients,
            max_shards,
            multi.requests_per_sec,
            single.requests_per_sec,
            ratio,
            min_ratio
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(shards: usize, clients: usize, rps: f64) -> LoadPoint {
        LoadPoint {
            shards,
            clients,
            requests: (rps * 2.0) as u64,
            errors: 0,
            wall_seconds: 2.0,
            requests_per_sec: rps,
            p50_seconds: 0.001,
            p90_seconds: 0.002,
            p99_seconds: 0.004,
            max_seconds: 0.010,
            per_shard_requests: vec![(rps * 2.0) as u64 / shards.max(1) as u64; shards],
        }
    }

    fn wc() -> WarmVsCold {
        WarmVsCold {
            cold_first_seconds: 0.020,
            warm_median_seconds: 0.002,
            cold_over_warm: 10.0,
        }
    }

    fn doc(calib: f64, cores: usize, points: &[LoadPoint], golden: bool) -> String {
        render_json(calib, cores, points, wc(), golden)
    }

    #[test]
    fn document_round_trips_through_the_real_parser() {
        let json = doc(1e8, 4, &[point(1, 4, 400.0), point(4, 4, 1200.0)], true);
        assert!(json.contains("\"schema_version\": 5"));
        let parsed = parse_doc(&json).expect("own output must parse");
        assert_eq!(parsed.calibration, 1e8);
        assert_eq!(parsed.host_cores, 4);
        assert!(parsed.golden_match);
        assert_eq!(parsed.points.len(), 2);
        assert_eq!(parsed.points[1].shards, 4);
        assert_eq!(parsed.points[1].clients, 4);
        assert_eq!(parsed.points[1].requests_per_sec, 1200.0);
        assert_eq!(parsed.points[1].p99_seconds, 0.004);
        assert_eq!(parsed.points[1].per_shard_requests.len(), 4);
        // The whole document is valid JSON for any consumer, not just ours.
        assert!(Json::parse(&json).is_ok());
    }

    #[test]
    fn schema_4_documents_parse_with_shard_defaults() {
        // A pre-shards document (no shards / per_shard_requests / host_cores
        // keys) must still parse so old baselines keep working.
        let legacy = r#"{
            "calibration_score": 1e8,
            "golden_match": true,
            "serve": [
                {"clients": 4, "requests": 800, "errors": 0,
                 "wall_seconds": 2.0, "requests_per_sec": 400.0,
                 "p50_seconds": 0.001, "p90_seconds": 0.002,
                 "p99_seconds": 0.004, "max_seconds": 0.010}
            ]
        }"#;
        let parsed = parse_doc(legacy).expect("legacy doc must parse");
        assert_eq!(parsed.host_cores, 1);
        assert_eq!(parsed.points[0].shards, 1);
        assert!(parsed.points[0].per_shard_requests.is_empty());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sample = [0.004, 0.001, 0.002, 0.003];
        assert_eq!(percentile(&sample, 0.50), 0.002);
        assert_eq!(percentile(&sample, 0.99), 0.004);
        assert_eq!(percentile(&sample, 0.0), 0.001);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    #[test]
    fn summarize_computes_consistent_rates() {
        let lat = vec![0.001; 100];
        let pt = summarize(2, 4, &lat, 0, 2.0);
        assert_eq!(pt.shards, 2);
        assert_eq!(pt.requests, 100);
        assert!((pt.requests_per_sec - 50.0).abs() < 1e-9);
        assert_eq!(pt.p99_seconds, 0.001);
        assert_eq!(pt.max_seconds, 0.001);
    }

    #[test]
    fn floor_gate_fires_only_past_tolerance() {
        let base = doc(1e8, 4, &[point(1, 4, 1000.0)], true);
        let ok = doc(1e8, 4, &[point(1, 4, 800.0)], true);
        let bad = doc(1e8, 4, &[point(1, 4, 700.0)], true);
        assert!(check_throughput_floor(&ok, &base, 0.25).is_empty());
        let failures = check_throughput_floor(&bad, &base, 0.25);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("THROUGHPUT REGRESSION shards=1 clients=4"));
    }

    #[test]
    fn floor_gate_matches_on_shard_count() {
        // The same client count at a different shard count is a different
        // cell — no cross-comparison.
        let base = doc(1e8, 4, &[point(4, 8, 4000.0)], true);
        let cur = doc(1e8, 4, &[point(1, 8, 100.0)], true);
        assert!(check_throughput_floor(&cur, &base, 0.25).is_empty());
    }

    #[test]
    fn floor_gate_normalizes_by_calibration() {
        // Baseline from a machine 2x faster: our floor halves.
        let base = doc(2e8, 4, &[point(1, 4, 1000.0)], true);
        let cur = doc(1e8, 4, &[point(1, 4, 450.0)], true);
        assert!(check_throughput_floor(&cur, &base, 0.25).is_empty());
        let cur_bad = doc(1e8, 4, &[point(1, 4, 300.0)], true);
        assert_eq!(check_throughput_floor(&cur_bad, &base, 0.25).len(), 1);
    }

    #[test]
    fn golden_mismatch_and_unknown_clients_behave() {
        let base = doc(1e8, 4, &[point(1, 8, 1000.0)], true);
        // Unknown client counts are not failures...
        let cur = doc(1e8, 4, &[point(1, 4, 10.0)], true);
        assert!(check_throughput_floor(&cur, &base, 0.25).is_empty());
        // ...but a golden mismatch always is.
        let cur_bad = doc(1e8, 4, &[point(1, 4, 10.0)], false);
        let failures = check_throughput_floor(&cur_bad, &base, 0.25);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("GOLDEN MISMATCH"));
    }

    #[test]
    fn malformed_documents_fail_closed() {
        let good = doc(1e8, 4, &[point(1, 4, 100.0)], true);
        assert!(!check_throughput_floor("{}", &good, 0.25).is_empty());
        assert!(!check_throughput_floor(&good, "not json", 0.25).is_empty());
        assert!(matches!(check_scaling("{}", 1.5), ScalingVerdict::Fail(_)));
    }

    #[test]
    fn scaling_gate_passes_and_fails_on_the_highest_common_client_count() {
        // clients=1 cannot scale (one connection, one shard) and must not
        // be the judged cell; clients=8 is.
        let good = doc(
            1e8,
            4,
            &[
                point(1, 1, 1000.0),
                point(1, 8, 1000.0),
                point(4, 1, 1000.0),
                point(4, 8, 2000.0),
            ],
            true,
        );
        match check_scaling(&good, 1.5) {
            ScalingVerdict::Pass {
                shards,
                clients,
                ratio,
            } => {
                assert_eq!(shards, 4);
                assert_eq!(clients, 8);
                assert!((ratio - 2.0).abs() < 1e-9);
            }
            other => panic!("expected Pass, got {other:?}"),
        }
        let flat = doc(1e8, 4, &[point(1, 8, 1000.0), point(4, 8, 1200.0)], true);
        match check_scaling(&flat, 1.5) {
            ScalingVerdict::Fail(line) => assert!(line.contains("SCALING REGRESSION")),
            other => panic!("expected Fail, got {other:?}"),
        }
    }

    #[test]
    fn scaling_gate_skips_when_it_cannot_judge() {
        // No multi-shard points.
        let single = doc(1e8, 4, &[point(1, 8, 1000.0)], true);
        assert!(matches!(
            check_scaling(&single, 1.5),
            ScalingVerdict::Skipped(_)
        ));
        // Fewer cores than shards: physically cannot scale.
        let starved = doc(1e8, 1, &[point(1, 8, 1000.0), point(4, 8, 1000.0)], true);
        match check_scaling(&starved, 1.5) {
            ScalingVerdict::Skipped(reason) => assert!(reason.contains("core")),
            other => panic!("expected Skipped, got {other:?}"),
        }
        // No common client count across shard columns.
        let disjoint = doc(1e8, 4, &[point(1, 2, 1000.0), point(4, 8, 4000.0)], true);
        assert!(matches!(
            check_scaling(&disjoint, 1.5),
            ScalingVerdict::Skipped(_)
        ));
        // A golden mismatch fails even where scaling would be skipped.
        let mismatch = doc(1e8, 4, &[point(1, 8, 1000.0)], false);
        assert!(matches!(
            check_scaling(&mismatch, 1.5),
            ScalingVerdict::Fail(_)
        ));
    }
}
