//! The machine-readable serving-throughput document behind `BENCH_5.json`.
//!
//! [`harness`](crate::harness) answers "how many simulated ticks per
//! second does the *engine* sustain?"; this module answers the layer-up
//! question "how many *requests* per second does the `hbm-serve` service
//! sustain over real TCP, and at what tail latency?". The measurements are
//! produced by the `serve_bench` load-generator binary:
//!
//! ```text
//! cargo run --release -p hbm-bench --bin serve_bench -- --out BENCH_5.json
//! ```
//!
//! Schema 4 (the bench-document family's next revision after the
//! harness's schema 3) adds the `serve` section: one object per load
//! point (client count × duration) carrying sustained requests/sec and
//! the latency distribution, plus a `warm_vs_cold` object recording the
//! first-request (cold trace pool) versus steady-state (memoized pool +
//! recycled scratch) setup delta, and a `golden_match` flag asserting the
//! served bytes equalled a direct `SimBuilder` run during the load.
//!
//! Unlike the harness document this one is rendered *and* re-read through
//! the real JSON codec ([`hbm_serve::json`]) — the regression gate
//! dogfoods the parser the server itself uses. Cross-machine
//! comparability reuses the harness's [`calibration_score`]: the floor
//! gate scales the baseline's requests/sec by the calibration ratio, so
//! a slower CI runner does not read as a serving regression.
//!
//! [`calibration_score`]: crate::harness::calibration_score

use hbm_serve::json::{fmt_f64, Json, Number};

/// One measured load point: `clients` concurrent connections driving the
/// server flat-out for a fixed duration.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Concurrent client connections.
    pub clients: usize,
    /// Completed (200) requests over the window.
    pub requests: u64,
    /// Failed requests (non-200, transport errors). Honest runs keep this
    /// at 0; the gate refuses documents where errors outnumber successes.
    pub errors: u64,
    /// Wall-clock seconds of the measurement window.
    pub wall_seconds: f64,
    /// `requests / wall_seconds` — the sustained throughput figure.
    pub requests_per_sec: f64,
    /// Median request latency in seconds.
    pub p50_seconds: f64,
    /// 90th-percentile request latency in seconds.
    pub p90_seconds: f64,
    /// 99th-percentile request latency in seconds — the tail the ISSUE's
    /// acceptance criteria quote.
    pub p99_seconds: f64,
    /// Worst observed request latency in seconds.
    pub max_seconds: f64,
}

/// The cold-versus-warm setup delta: the first request against a fresh
/// server pays trace generation + flatten (cold [`TracePool`]); repeats
/// ride the memoized pool and recycled scratch.
///
/// [`TracePool`]: hbm_serve::pool::TracePool
#[derive(Debug, Clone, Copy)]
pub struct WarmVsCold {
    /// Latency of the very first request (cold pool), seconds.
    pub cold_first_seconds: f64,
    /// Median latency of the following warm repeats, seconds.
    pub warm_median_seconds: f64,
    /// `cold_first_seconds / warm_median_seconds`.
    pub cold_over_warm: f64,
}

/// Latency percentile over an *unsorted* sample (sorts a copy). `p` in
/// [0, 1]; nearest-rank on the sorted sample. Returns 0 for an empty one.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Summarizes a latency sample (seconds) into a [`LoadPoint`].
pub fn summarize(clients: usize, latencies: &[f64], errors: u64, wall_seconds: f64) -> LoadPoint {
    let wall = wall_seconds.max(1e-9);
    LoadPoint {
        clients,
        requests: latencies.len() as u64,
        errors,
        wall_seconds: wall,
        requests_per_sec: latencies.len() as f64 / wall,
        p50_seconds: percentile(latencies, 0.50),
        p90_seconds: percentile(latencies, 0.90),
        p99_seconds: percentile(latencies, 0.99),
        max_seconds: latencies.iter().cloned().fold(0.0, f64::max),
    }
}

fn num(x: f64) -> Json {
    Json::Num(Number::F(if x.is_finite() { x } else { 0.0 }))
}

/// Renders the full `BENCH_5.json` document (schema 4). Layout mirrors the
/// harness document — line-oriented, one load point per line — but every
/// value goes through [`fmt_f64`], so the file is an exact fixed point of
/// the server's own codec.
pub fn render_json(
    calibration: f64,
    points: &[LoadPoint],
    warm_vs_cold: WarmVsCold,
    golden_match: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 4,\n");
    out.push_str(
        "  \"command\": \"cargo run --release -p hbm-bench --bin serve_bench -- --out BENCH_5.json\",\n",
    );
    out.push_str(&format!(
        "  \"calibration_score\": {},\n",
        fmt_f64(calibration)
    ));
    out.push_str("  \"serve\": [\n");
    for (i, pt) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let line = Json::obj(vec![
            ("clients", Json::from(pt.clients as u64)),
            ("requests", Json::from(pt.requests)),
            ("errors", Json::from(pt.errors)),
            ("wall_seconds", num(pt.wall_seconds)),
            ("requests_per_sec", num(pt.requests_per_sec)),
            ("p50_seconds", num(pt.p50_seconds)),
            ("p90_seconds", num(pt.p90_seconds)),
            ("p99_seconds", num(pt.p99_seconds)),
            ("max_seconds", num(pt.max_seconds)),
        ]);
        out.push_str(&format!("    {line}{comma}\n"));
    }
    out.push_str("  ],\n");
    let wc = Json::obj(vec![
        ("cold_first_seconds", num(warm_vs_cold.cold_first_seconds)),
        ("warm_median_seconds", num(warm_vs_cold.warm_median_seconds)),
        ("cold_over_warm", num(warm_vs_cold.cold_over_warm)),
    ]);
    out.push_str(&format!("  \"warm_vs_cold\": {wc},\n"));
    out.push_str(&format!("  \"golden_match\": {golden_match},\n"));
    let best = points
        .iter()
        .map(|p| p.requests_per_sec)
        .fold(0.0, f64::max);
    let worst_p99 = points.iter().map(|p| p.p99_seconds).fold(0.0, f64::max);
    out.push_str("  \"summary\": {\n");
    out.push_str(&format!(
        "    \"best_requests_per_sec\": {},\n",
        fmt_f64(best)
    ));
    out.push_str(&format!(
        "    \"worst_p99_seconds\": {}\n",
        fmt_f64(worst_p99)
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// A parsed `BENCH_5.json` document — the fields the floor gate needs.
#[derive(Debug, Clone)]
pub struct ParsedDoc {
    /// Machine calibration score recorded at measurement time.
    pub calibration: f64,
    /// The load points, in document order.
    pub points: Vec<LoadPoint>,
    /// Whether the served bytes matched a direct `SimBuilder` run.
    pub golden_match: bool,
}

/// Re-reads a document produced by [`render_json`], through the real JSON
/// parser. `None` on anything malformed or missing the schema-4 fields.
pub fn parse_doc(text: &str) -> Option<ParsedDoc> {
    let v = Json::parse(text).ok()?;
    let calibration = v.get("calibration_score")?.as_f64()?;
    let golden_match = v.get("golden_match")?.as_bool()?;
    let Json::Arr(serve) = v.get("serve")? else {
        return None;
    };
    let mut points = Vec::with_capacity(serve.len());
    for pt in serve {
        points.push(LoadPoint {
            clients: pt.get("clients")?.as_usize()?,
            requests: pt.get("requests")?.as_u64()?,
            errors: pt.get("errors")?.as_u64()?,
            wall_seconds: pt.get("wall_seconds")?.as_f64()?,
            requests_per_sec: pt.get("requests_per_sec")?.as_f64()?,
            p50_seconds: pt.get("p50_seconds")?.as_f64()?,
            p90_seconds: pt.get("p90_seconds")?.as_f64()?,
            p99_seconds: pt.get("p99_seconds")?.as_f64()?,
            max_seconds: pt.get("max_seconds")?.as_f64()?,
        });
    }
    Some(ParsedDoc {
        calibration,
        points,
        golden_match,
    })
}

/// Compares a current document against a baseline. A load point fails the
/// floor when its requests/sec drops more than `tolerance` below the
/// baseline's calibration-normalized figure (matching on client count);
/// the whole document fails when golden_match is false or errors outnumber
/// successes at any point. Client counts present on only one side are
/// informational, not failures. Returns human-readable failure lines;
/// empty means the gate passes.
pub fn check_throughput_floor(
    current_json: &str,
    baseline_json: &str,
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    let Some(current) = parse_doc(current_json) else {
        return vec!["current BENCH_5 document is malformed".into()];
    };
    let Some(baseline) = parse_doc(baseline_json) else {
        return vec!["baseline BENCH_5 document is malformed".into()];
    };
    if !current.golden_match {
        failures.push("GOLDEN MISMATCH: served bytes diverged from direct SimBuilder run".into());
    }
    for pt in &current.points {
        if pt.errors > pt.requests {
            failures.push(format!(
                "UNHEALTHY LOAD POINT clients={}: {} errors vs {} successes",
                pt.clients, pt.errors, pt.requests
            ));
        }
    }
    let scale = if current.calibration > 0.0 && baseline.calibration > 0.0 {
        current.calibration / baseline.calibration
    } else {
        1.0
    };
    for b in &baseline.points {
        let Some(c) = current.points.iter().find(|c| c.clients == b.clients) else {
            continue;
        };
        let floor = b.requests_per_sec * scale * (1.0 - tolerance);
        if floor > 0.0 && c.requests_per_sec < floor {
            failures.push(format!(
                "THROUGHPUT REGRESSION clients={}: {:.0} req/s vs baseline {:.0} \
                 (machine-normalized floor {:.0}, tolerance {:.0}%)",
                b.clients,
                c.requests_per_sec,
                b.requests_per_sec,
                floor,
                tolerance * 100.0
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(clients: usize, rps: f64) -> LoadPoint {
        LoadPoint {
            clients,
            requests: (rps * 2.0) as u64,
            errors: 0,
            wall_seconds: 2.0,
            requests_per_sec: rps,
            p50_seconds: 0.001,
            p90_seconds: 0.002,
            p99_seconds: 0.004,
            max_seconds: 0.010,
        }
    }

    fn wc() -> WarmVsCold {
        WarmVsCold {
            cold_first_seconds: 0.020,
            warm_median_seconds: 0.002,
            cold_over_warm: 10.0,
        }
    }

    fn doc(calib: f64, points: &[LoadPoint], golden: bool) -> String {
        render_json(calib, points, wc(), golden)
    }

    #[test]
    fn document_round_trips_through_the_real_parser() {
        let json = doc(1e8, &[point(1, 400.0), point(4, 1200.0)], true);
        assert!(json.contains("\"schema_version\": 4"));
        let parsed = parse_doc(&json).expect("own output must parse");
        assert_eq!(parsed.calibration, 1e8);
        assert!(parsed.golden_match);
        assert_eq!(parsed.points.len(), 2);
        assert_eq!(parsed.points[1].clients, 4);
        assert_eq!(parsed.points[1].requests_per_sec, 1200.0);
        assert_eq!(parsed.points[1].p99_seconds, 0.004);
        // The whole document is valid JSON for any consumer, not just ours.
        assert!(Json::parse(&json).is_ok());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sample = [0.004, 0.001, 0.002, 0.003];
        assert_eq!(percentile(&sample, 0.50), 0.002);
        assert_eq!(percentile(&sample, 0.99), 0.004);
        assert_eq!(percentile(&sample, 0.0), 0.001);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    #[test]
    fn summarize_computes_consistent_rates() {
        let lat = vec![0.001; 100];
        let pt = summarize(4, &lat, 0, 2.0);
        assert_eq!(pt.requests, 100);
        assert!((pt.requests_per_sec - 50.0).abs() < 1e-9);
        assert_eq!(pt.p99_seconds, 0.001);
        assert_eq!(pt.max_seconds, 0.001);
    }

    #[test]
    fn floor_gate_fires_only_past_tolerance() {
        let base = doc(1e8, &[point(4, 1000.0)], true);
        let ok = doc(1e8, &[point(4, 800.0)], true);
        let bad = doc(1e8, &[point(4, 700.0)], true);
        assert!(check_throughput_floor(&ok, &base, 0.25).is_empty());
        let failures = check_throughput_floor(&bad, &base, 0.25);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("THROUGHPUT REGRESSION clients=4"));
    }

    #[test]
    fn floor_gate_normalizes_by_calibration() {
        // Baseline from a machine 2x faster: our floor halves.
        let base = doc(2e8, &[point(4, 1000.0)], true);
        let cur = doc(1e8, &[point(4, 450.0)], true);
        assert!(check_throughput_floor(&cur, &base, 0.25).is_empty());
        let cur_bad = doc(1e8, &[point(4, 300.0)], true);
        assert_eq!(check_throughput_floor(&cur_bad, &base, 0.25).len(), 1);
    }

    #[test]
    fn golden_mismatch_and_unknown_clients_behave() {
        let base = doc(1e8, &[point(8, 1000.0)], true);
        // Unknown client counts are not failures...
        let cur = doc(1e8, &[point(4, 10.0)], true);
        assert!(check_throughput_floor(&cur, &base, 0.25).is_empty());
        // ...but a golden mismatch always is.
        let cur_bad = doc(1e8, &[point(4, 10.0)], false);
        let failures = check_throughput_floor(&cur_bad, &base, 0.25);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("GOLDEN MISMATCH"));
    }

    #[test]
    fn malformed_documents_fail_closed() {
        let good = doc(1e8, &[point(4, 100.0)], true);
        assert!(!check_throughput_floor("{}", &good, 0.25).is_empty());
        assert!(!check_throughput_floor(&good, "not json", 0.25).is_empty());
    }
}
