//! `serve_bench` — the load generator behind `BENCH_7.json`.
//!
//! Drives an `hbm-serve` instance over real TCP with concurrent clients
//! across a (shards × clients) grid and records sustained requests/sec,
//! the latency distribution, and the per-shard request distribution (see
//! `hbm_bench::serve_doc` for the document schema):
//!
//! ```text
//! cargo run --release -p hbm-bench --bin serve_bench -- --out BENCH_7.json
//! ```
//!
//! Flags:
//! - `--addr HOST:PORT`: target an already-running server (the CI smoke
//!   jobs start the real `hbm-serve` binary and point this flag at it).
//!   Without it, an in-process [`Server`] is spun up on an ephemeral port
//!   *per shard count* and torn down afterwards — same code path as the
//!   binary, no process management needed. `--addr` pins the shard axis
//!   to a single value (the external server's topology is fixed).
//! - `--shards LIST`: comma-separated shard counts, one server topology
//!   each (default `1,4` — the ISSUE's pinned scaling grid). Each shard
//!   runs `--workers` worker threads, so the shard count is the only
//!   scaled variable.
//! - `--clients LIST`: comma-separated concurrent-client counts, one load
//!   point per (shards, clients) cell (default `1,8`).
//! - `--duration SECS`: measurement window per load point (default 2.0)
//! - `--workers N`: worker threads **per shard** (default 1, so the grid
//!   holds per-shard capacity fixed while scaling shard count)
//! - `--coalesce-us US`: enable request coalescing with this window on
//!   the in-process servers
//! - `--out FILE`: write the JSON document (default `BENCH_7.json`)
//! - `--check BASELINE.json`: gate against a baseline via
//!   `serve_doc::check_throughput_floor` (calibration-normalized)
//! - `--tolerance FRAC`: allowed req/s drop for `--check` (default 0.25)
//! - `--check-scaling RATIO`: self-relative gate via
//!   `serve_doc::check_scaling` — multi-shard throughput must exceed
//!   RATIO × single-shard at the highest common client count. Skipped
//!   (informationally) when the host has fewer cores than shards.
//!
//! Session mode (`--sessions N`) switches the binary from load generation
//! to streaming-session verification: N concurrent `POST /session`
//! streams are opened and read to completion as chunked JSONL, with
//! optional assertions for the CI session-smoke job:
//! - `--assert-snapshots M`: every session must stream ≥ M snapshots
//! - `--assert-fault`: every session must stream ≥ 1 fault event
//! - `--session-pace-ms MS`: ask the server to pace snapshots (long-lived
//!   sessions for drain testing)
//! - `--expect-drain`: expect the terminal reason `draining` (for the
//!   SIGTERM-mid-session CI step) instead of `completed`
//!
//! Hostile mode (`--hostile`) turns the binary into a chaos harness: for
//! `--hostile-secs` seconds it runs slow-writers (request heads trickled a
//! few bytes at a time, then abandoned), mid-body disconnectors (complete
//! head, half a body, hard close), and never-read clients (a paced
//! streaming session opened and never read, so the server's chunk writes
//! back up until the write-stall reap) — alongside well-behaved probes.
//! Afterwards it asserts the server still answers `GET /healthz` and a
//! real `/simulate`, that the healthy probes got answers *during* the
//! abuse, and — given `--server-pid PID` (or implicitly, against an
//! in-process server) — that the server's OS thread and FD counts settle
//! back to their pre-abuse baseline: hostile clients must cost bounded,
//! reclaimed resources, never leaked threads or sockets.
//!
//! Every load-generation run also: (a) byte-compares one served report
//! against a direct `SimBuilder` run (`golden_match` in the document — a
//! correctness gate, not a speed one); (b) measures the warm-vs-cold
//! setup delta by timing a first request on a never-seen workload seed
//! against the median of warm repeats.
//!
//! Exit status: 0 on success, 1 on a golden mismatch, a failed gate, or a
//! failed session assertion, so CI can gate directly on this binary.

use hbm_bench::harness::calibration_score;
use hbm_bench::serve_doc::{
    check_scaling, check_throughput_floor, percentile, render_json, summarize, LoadPoint,
    ScalingVerdict, WarmVsCold,
};
use hbm_core::{ArbitrationKind, SimBuilder};
use hbm_serve::http::{read_response, read_response_head, write_request, ChunkedLines};
use hbm_serve::json::Json;
use hbm_serve::proto::report_to_json;
use hbm_serve::server::{Server, ServerConfig};
use hbm_serve::shutdown::ShutdownFlag;
use hbm_traces::{TraceOptions, WorkloadSpec};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant, SystemTime};

/// The steady-state request every client loops on: a real (if small)
/// simulation, so a "request" costs an actual engine run, not a parse.
const LOAD_BODY: &str = r#"{"workload": {"kind": "cyclic", "pages": 64, "reps": 8, "seed": 3}, "p": 8, "k": 48, "q": 2, "arbitration": "priority", "seed": 11}"#;

fn usage() -> ! {
    eprintln!(
        "usage: serve_bench [--addr HOST:PORT] [--shards LIST] [--clients LIST]\n\
         \x20                 [--duration SECS] [--workers N] [--coalesce-us US]\n\
         \x20                 [--out FILE] [--check BASELINE.json] [--tolerance FRAC]\n\
         \x20                 [--check-scaling RATIO]\n\
         \x20      serve_bench --sessions N [--addr HOST:PORT] [--assert-snapshots M]\n\
         \x20                 [--assert-fault] [--session-pace-ms MS] [--expect-drain]\n\
         \x20      serve_bench --hostile [--addr HOST:PORT] [--hostile-secs S]\n\
         \x20                 [--server-pid PID]"
    );
    std::process::exit(1);
}

/// One client connection that knows how to re-dial: the server closes
/// keep-alive sockets on drain and idle timeouts, and a load generator
/// must ride through that rather than die.
struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
}

impl Client {
    fn new(addr: SocketAddr) -> Client {
        Client { addr, stream: None }
    }

    /// One request/response exchange; reconnects on any transport error
    /// and reports it as `Err` so the caller can count it.
    fn roundtrip(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, Vec<u8>), String> {
        if self.stream.is_none() {
            let stream =
                TcpStream::connect(self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
            let _ = stream.set_nodelay(true);
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().expect("just connected");
        let deadline = Instant::now() + Duration::from_secs(30);
        let result = write_request(stream, method, path, body)
            .map_err(|e| format!("write: {e}"))
            .and_then(|()| read_response(stream, deadline).map_err(|e| format!("read: {e}")));
        if result.is_err() {
            // Drop the broken socket; the next roundtrip re-dials.
            self.stream = None;
        }
        result
    }
}

/// The exact bytes the server must serve for the golden request, computed
/// through the plain `SimBuilder` path — same oracle as the integration
/// tests, re-checked here under load conditions.
fn golden_expected() -> (String, String) {
    let body = r#"{"workload": {"kind": "cyclic", "pages": 32, "reps": 4, "seed": 9}, "p": 4, "k": 24, "q": 2, "arbitration": "priority", "seed": 7}"#;
    let spec = WorkloadSpec::Cyclic { pages: 32, reps: 4 };
    let workload = spec.workload(4, 9, TraceOptions::default());
    let report = SimBuilder::new()
        .hbm_slots(24)
        .channels(2)
        .arbitration(ArbitrationKind::Priority)
        .seed(7)
        .run(&workload);
    (body.to_string(), report_to_json(&report))
}

/// Times the first request on a never-before-seen workload seed (cold
/// pool: trace generation + flatten on the request path) against the
/// median of warm repeats of the same request.
fn measure_warm_vs_cold(addr: SocketAddr) -> Result<WarmVsCold, String> {
    // A seed no other run has used, so the pool is cold even against a
    // long-running external server.
    let unique = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
        ^ (u64::from(std::process::id()) << 32);
    let body = format!(
        r#"{{"workload": {{"kind": "cyclic", "pages": 64, "reps": 8, "seed": {unique}}}, "p": 8, "k": 48, "q": 2, "arbitration": "priority", "seed": 11}}"#
    );
    let mut client = Client::new(addr);
    let t0 = Instant::now();
    let (status, _) = client.roundtrip("POST", "/simulate", body.as_bytes())?;
    let cold = t0.elapsed().as_secs_f64();
    if status != 200 {
        return Err(format!("cold probe got {status}"));
    }
    let mut warm = Vec::with_capacity(20);
    for _ in 0..20 {
        let t0 = Instant::now();
        let (status, _) = client.roundtrip("POST", "/simulate", body.as_bytes())?;
        if status != 200 {
            return Err(format!("warm probe got {status}"));
        }
        warm.push(t0.elapsed().as_secs_f64());
    }
    let warm_median = percentile(&warm, 0.50).max(1e-9);
    Ok(WarmVsCold {
        cold_first_seconds: cold,
        warm_median_seconds: warm_median,
        cold_over_warm: cold / warm_median,
    })
}

/// Pulls the per-shard cumulative `requests` counters from `/healthz`.
/// `None` when the endpoint or the `shards` array is unavailable (old
/// servers), in which case the distribution is simply not recorded.
fn per_shard_requests(addr: SocketAddr) -> Option<Vec<u64>> {
    let (status, body) = Client::new(addr).roundtrip("GET", "/healthz", b"").ok()?;
    if status != 200 {
        return None;
    }
    let health = Json::parse(std::str::from_utf8(&body).ok()?).ok()?;
    let shards = health.get("shards")?.as_array()?;
    shards
        .iter()
        .map(|s| s.get("requests").and_then(Json::as_u64))
        .collect()
}

/// Runs one load point: `clients` connections hammering `/simulate` for
/// `duration`, all released together by a barrier so the window measures
/// steady-state concurrency, not ramp-up. The per-shard distribution is
/// the `/healthz` counter delta across the window.
fn run_load_point(
    addr: SocketAddr,
    shards: usize,
    clients: usize,
    duration: Duration,
) -> LoadPoint {
    let before = per_shard_requests(addr);
    let barrier = Arc::new(Barrier::new(clients + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                let mut latencies = Vec::new();
                let mut errors = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    match client.roundtrip("POST", "/simulate", LOAD_BODY.as_bytes()) {
                        Ok((200, _)) => latencies.push(t0.elapsed().as_secs_f64()),
                        Ok(_) | Err(_) => errors += 1,
                    }
                }
                (latencies, errors)
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    for h in handles {
        let (lat, err) = h.join().expect("client thread");
        latencies.extend(lat);
        errors += err;
    }
    // Wall time includes the stragglers' final in-flight requests — the
    // honest denominator for the completed-request count.
    let mut point = summarize(
        shards,
        clients,
        &latencies,
        errors,
        t0.elapsed().as_secs_f64(),
    );
    if let (Some(before), Some(after)) = (before, per_shard_requests(addr)) {
        if before.len() == after.len() {
            point.per_shard_requests = after
                .iter()
                .zip(&before)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect();
        }
    }
    point
}

/// A running in-process server and the handles to drain it.
struct LocalServer {
    addr: SocketAddr,
    flag: ShutdownFlag,
    handle: std::thread::JoinHandle<std::io::Result<hbm_serve::server::ServerStats>>,
}

fn start_local(shards: usize, workers: usize, coalesce: Option<Duration>) -> LocalServer {
    let config = ServerConfig {
        shards,
        workers,
        coalesce_window: coalesce,
        ..ServerConfig::default()
    };
    let flag = ShutdownFlag::new();
    let server = Server::bind("127.0.0.1:0", config).unwrap_or_else(|e| {
        eprintln!("error: bind: {e}");
        std::process::exit(1)
    });
    let addr = server.local_addr().expect("ephemeral local addr");
    let run_flag = flag.clone();
    let handle = std::thread::spawn(move || server.run(&run_flag));
    LocalServer { addr, flag, handle }
}

impl LocalServer {
    fn stop(self) {
        self.flag.trip();
        match self.handle.join() {
            Ok(Ok(stats)) => eprintln!(
                "in-process server drained: {} requests ({} ok, {} batches)",
                stats.requests, stats.ok, stats.batches
            ),
            Ok(Err(e)) => eprintln!("in-process server error: {e}"),
            Err(_) => eprintln!("in-process server panicked"),
        }
    }
}

/// The streaming session the verification mode opens: a fault-injected
/// workload long enough for several snapshot periods.
fn session_body(pace_ms: Option<u64>) -> String {
    let pace = pace_ms.map_or(String::new(), |ms| format!(", \"pace_ms\": {ms}"));
    format!(
        r#"{{"workload": {{"kind": "cyclic", "pages": 64, "reps": 50, "seed": 1}},
            "p": 8, "k": 16, "arbitration": "fifo",
            "faults": {{"outages": [{{"start": 10, "end": 20, "channels": 1}}]}},
            "snapshot_period_ticks": 64{pace}}}"#
    )
}

/// Tallies from one streamed session.
struct SessionOutcome {
    lines: usize,
    snapshots: usize,
    faults: usize,
    reason: String,
}

/// Opens one session and reads the JSONL stream to its terminal line.
fn run_one_session(addr: SocketAddr, body: &str) -> Result<SessionOutcome, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    write_request(&mut stream, "POST", "/session", body.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(60);
    let (head, leftover) =
        read_response_head(&mut stream, deadline).map_err(|e| format!("head: {e}"))?;
    if head.status != 200 {
        return Err(format!("session open got {}", head.status));
    }
    if !head.chunked {
        return Err("session response was not chunked".into());
    }
    let mut lines = ChunkedLines::new(leftover);
    let mut outcome = SessionOutcome {
        lines: 0,
        snapshots: 0,
        faults: 0,
        reason: String::new(),
    };
    while let Some(line) = lines
        .next_line(&mut stream, deadline)
        .map_err(|e| format!("stream: {e}"))?
    {
        if line.is_empty() {
            continue;
        }
        let text = std::str::from_utf8(&line).map_err(|_| "non-utf8 stream line".to_string())?;
        let v = Json::parse(text).map_err(|e| format!("invalid JSONL line: {e} in {text}"))?;
        outcome.lines += 1;
        match v.get("event").and_then(Json::as_str) {
            // Alert-rule firings ride along with snapshots when the body
            // configures rules; the verifier tolerates them either way.
            Some("open") | Some("alert") => {}
            Some("snapshot") => outcome.snapshots += 1,
            Some("fault") => outcome.faults += 1,
            Some("done") => {
                outcome.reason = v
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
            }
            other => return Err(format!("unknown event {other:?} in {text}")),
        }
    }
    if outcome.reason.is_empty() {
        return Err("stream ended without a terminal done line".into());
    }
    Ok(outcome)
}

/// Session-verification mode: N concurrent streams, assertions, exit code.
fn run_sessions(
    addr: SocketAddr,
    sessions: usize,
    assert_snapshots: Option<usize>,
    assert_fault: bool,
    pace_ms: Option<u64>,
    expect_drain: bool,
) -> bool {
    let body = session_body(pace_ms);
    let handles: Vec<_> = (0..sessions)
        .map(|i| {
            let body = body.clone();
            std::thread::spawn(move || (i, run_one_session(addr, &body)))
        })
        .collect();
    let expected_reason = if expect_drain {
        "draining"
    } else {
        "completed"
    };
    let mut ok = true;
    for h in handles {
        let (i, outcome) = h.join().expect("session thread");
        match outcome {
            Ok(o) => {
                eprintln!(
                    "session {i}: {} lines ({} snapshots, {} faults), reason={}",
                    o.lines, o.snapshots, o.faults, o.reason
                );
                if let Some(min) = assert_snapshots {
                    if o.snapshots < min {
                        eprintln!("session {i}: FAIL expected >= {min} snapshots");
                        ok = false;
                    }
                }
                if assert_fault && o.faults == 0 {
                    eprintln!("session {i}: FAIL expected at least one fault event");
                    ok = false;
                }
                if o.reason != expected_reason {
                    eprintln!("session {i}: FAIL expected reason {expected_reason}");
                    ok = false;
                }
            }
            Err(e) => {
                eprintln!("session {i}: FAIL {e}");
                ok = false;
            }
        }
    }
    ok
}

// ---------------------------------------------------------------------------
// Hostile-client chaos mode (`--hostile`)
// ---------------------------------------------------------------------------

/// OS thread count of `pid` from `/proc` (`None` off Linux, or when the
/// process is gone — leak checks are then skipped, not failed).
fn proc_threads(pid: u32) -> Option<usize> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Open file-descriptor count of `pid` from `/proc`.
fn proc_fds(pid: u32) -> Option<usize> {
    std::fs::read_dir(format!("/proc/{pid}/fd"))
        .ok()
        .map(|d| d.count())
}

/// Slowloris: trickles a request head a few bytes at a time, then abandons
/// the connection mid-head and dials again. The server must either time
/// the read out (408) or notice the close — and reclaim the connection
/// either way. Returns the number of abandoned connections.
fn slow_writer(addr: SocketAddr, deadline: Instant) -> u64 {
    use std::io::Write;
    let head: &[u8] =
        b"POST /simulate HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: 512\r\n";
    let mut cycles = 0u64;
    while Instant::now() < deadline {
        let Ok(mut s) = TcpStream::connect(addr) else {
            break;
        };
        for chunk in head.chunks(7) {
            if Instant::now() >= deadline || s.write_all(chunk).is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        cycles += 1; // socket dropped mid-head
    }
    cycles
}

/// Sends a complete head promising a JSON body, half of the body, then
/// hard-closes — over and over. The server's reader must see the EOF
/// inside the body immediately (no request-timeout wait) and free the
/// connection slot. Returns the number of torn requests.
fn mid_body_disconnector(addr: SocketAddr, deadline: Instant) -> u64 {
    use std::io::Write;
    let body = LOAD_BODY.as_bytes();
    let head = format!(
        "POST /simulate HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let mut cycles = 0u64;
    while Instant::now() < deadline {
        let Ok(mut s) = TcpStream::connect(addr) else {
            break;
        };
        let _ = s
            .write_all(head.as_bytes())
            .and_then(|()| s.write_all(&body[..body.len() / 2]));
        drop(s); // EOF mid-body
        cycles += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    cycles
}

/// Opens a long-lived paced streaming session and never reads a byte of
/// it: the server's chunk writes back up in the socket buffers (or hit
/// the write-stall bound), and the drop at the end of the window forces a
/// reap. The mux workers must keep serving everyone else throughout.
fn never_reader(addr: SocketAddr, deadline: Instant) -> bool {
    let Ok(mut s) = TcpStream::connect(addr) else {
        return false;
    };
    let body = r#"{"workload": {"kind": "cyclic", "pages": 64, "reps": 2000, "seed": 5},
        "p": 8, "k": 16, "arbitration": "fifo",
        "snapshot_period_ticks": 64, "pace_ms": 100}"#;
    if write_request(&mut s, "POST", "/session", body.as_bytes()).is_err() {
        return false;
    }
    std::thread::sleep(deadline.saturating_duration_since(Instant::now()));
    true // dropping the unread socket now forces the reap
}

/// A well-behaved client running alongside the abuse — the service level
/// the hostile mix must not destroy. Returns `(ok, other)` counts.
fn healthy_prober(addr: SocketAddr, deadline: Instant) -> (u64, u64) {
    let mut client = Client::new(addr);
    let (mut ok, mut other) = (0u64, 0u64);
    while Instant::now() < deadline {
        match client.roundtrip("POST", "/simulate", LOAD_BODY.as_bytes()) {
            Ok((200, _)) => ok += 1,
            Ok(_) | Err(_) => other += 1,
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    (ok, other)
}

/// Polls `read` until the count settles back to `baseline + slack`, or
/// fails after 15s. The settle window covers write-stall reaps (5s
/// default) and connection-thread teardown.
fn settles_back(
    what: &str,
    baseline: usize,
    slack: usize,
    read: impl Fn() -> Option<usize>,
) -> bool {
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut last;
    loop {
        last = read();
        match last {
            Some(now) if now <= baseline + slack => {
                eprintln!("hostile: {what} settled at {now} (baseline {baseline})");
                return true;
            }
            None => {
                eprintln!("hostile: {what} unreadable (no /proc?), leak check skipped");
                return true;
            }
            _ if Instant::now() >= deadline => break,
            _ => std::thread::sleep(Duration::from_millis(200)),
        }
    }
    eprintln!(
        "hostile: FAIL {what} leak: baseline {baseline} (+{slack} slack), still {last:?} after 15s"
    );
    false
}

/// Hostile mode: run the chaos mix for `secs`, then require the server to
/// still be fully serviceable with no thread/FD leak.
fn run_hostile(addr: SocketAddr, secs: f64, server_pid: Option<u32>) -> bool {
    const SLOW: usize = 6;
    const DISCONNECT: usize = 6;
    const NEVER_READ: usize = 4;
    const HEALTHY: usize = 2;

    let baseline_threads = server_pid.and_then(proc_threads);
    let baseline_fds = server_pid.and_then(proc_fds);
    eprintln!(
        "hostile: {SLOW} slow-writers + {DISCONNECT} disconnectors + {NEVER_READ} never-readers \
         + {HEALTHY} healthy probes for {secs:.1}s against {addr} \
         (baseline threads {baseline_threads:?}, fds {baseline_fds:?})"
    );
    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    let slow: Vec<_> = (0..SLOW)
        .map(|_| std::thread::spawn(move || slow_writer(addr, deadline)))
        .collect();
    let disc: Vec<_> = (0..DISCONNECT)
        .map(|_| std::thread::spawn(move || mid_body_disconnector(addr, deadline)))
        .collect();
    let never: Vec<_> = (0..NEVER_READ)
        .map(|_| std::thread::spawn(move || never_reader(addr, deadline)))
        .collect();
    let healthy: Vec<_> = (0..HEALTHY)
        .map(|_| std::thread::spawn(move || healthy_prober(addr, deadline)))
        .collect();

    let slow_cycles: u64 = slow.into_iter().map(|h| h.join().unwrap_or(0)).sum();
    let torn: u64 = disc.into_iter().map(|h| h.join().unwrap_or(0)).sum();
    let opened: usize = never
        .into_iter()
        .map(|h| matches!(h.join(), Ok(true)))
        .filter(|&opened| opened)
        .count();
    let (mut probe_ok, mut probe_other) = (0u64, 0u64);
    for h in healthy {
        let (ok, other) = h.join().unwrap_or((0, 0));
        probe_ok += ok;
        probe_other += other;
    }
    eprintln!(
        "hostile: mix done ({slow_cycles} slowloris heads, {torn} torn bodies, \
         {opened}/{NEVER_READ} never-read sessions, probes {probe_ok} ok / {probe_other} other)"
    );

    let mut ok = true;
    if probe_ok == 0 {
        eprintln!("hostile: FAIL healthy probes got zero 200s during the abuse");
        ok = false;
    }

    // The server must still answer health checks and do real work.
    match Client::new(addr).roundtrip("GET", "/healthz", b"") {
        Ok((200, body)) => {
            let text = String::from_utf8_lossy(&body).into_owned();
            match Json::parse(&text) {
                Ok(health) => {
                    let field = |k: &str| health.get(k).and_then(Json::as_u64).unwrap_or(0);
                    eprintln!(
                        "hostile: healthz ok (sessions {} opened / {} closed / {} reaped; \
                         {} client errors, active_sessions {})",
                        field("sessions_opened"),
                        field("sessions_closed"),
                        field("sessions_reaped"),
                        field("client_errors"),
                        field("active_sessions"),
                    );
                }
                Err(e) => {
                    eprintln!("hostile: FAIL healthz body unparseable: {e}");
                    ok = false;
                }
            }
        }
        Ok((status, _)) => {
            eprintln!("hostile: FAIL healthz got {status} after the mix");
            ok = false;
        }
        Err(e) => {
            eprintln!("hostile: FAIL healthz unreachable after the mix: {e}");
            ok = false;
        }
    }
    match Client::new(addr).roundtrip("POST", "/simulate", LOAD_BODY.as_bytes()) {
        Ok((200, _)) => eprintln!("hostile: post-abuse /simulate ok"),
        Ok((status, _)) => {
            eprintln!("hostile: FAIL post-abuse /simulate got {status}");
            ok = false;
        }
        Err(e) => {
            eprintln!("hostile: FAIL post-abuse /simulate: {e}");
            ok = false;
        }
    }

    // No leaked threads or sockets: counts must settle back to baseline.
    // Thread slack 2 covers a transient keep-alive of our own probes;
    // FD slack 8 covers /proc readdir raciness and late socket teardown.
    if let (Some(pid), Some(threads)) = (server_pid, baseline_threads) {
        ok &= settles_back("server threads", threads, 2, || proc_threads(pid));
    }
    if let (Some(pid), Some(fds)) = (server_pid, baseline_fds) {
        ok &= settles_back("server fds", fds, 8, || proc_fds(pid));
    }
    ok
}

fn main() {
    let mut addr_arg: Option<String> = None;
    let mut shards_arg = String::from("1,4");
    let mut clients_arg = String::from("1,8");
    let mut duration = 2.0f64;
    let mut workers = 1usize;
    let mut coalesce: Option<Duration> = None;
    let mut out_path = String::from("BENCH_7.json");
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.25f64;
    let mut scaling_ratio: Option<f64> = None;
    let mut sessions: Option<usize> = None;
    let mut assert_snapshots: Option<usize> = None;
    let mut assert_fault = false;
    let mut session_pace_ms: Option<u64> = None;
    let mut expect_drain = false;
    let mut hostile = false;
    let mut hostile_secs = 8.0f64;
    let mut server_pid: Option<u32> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--addr" => addr_arg = Some(val(&mut args)),
            "--shards" => shards_arg = val(&mut args),
            "--clients" => clients_arg = val(&mut args),
            "--duration" => duration = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--coalesce-us" => {
                coalesce = Some(Duration::from_micros(
                    val(&mut args).parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--out" => out_path = val(&mut args),
            "--check" => check_path = Some(val(&mut args)),
            "--tolerance" => tolerance = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--check-scaling" => {
                scaling_ratio = Some(val(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--sessions" => sessions = Some(val(&mut args).parse().unwrap_or_else(|_| usage())),
            "--assert-snapshots" => {
                assert_snapshots = Some(val(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--assert-fault" => assert_fault = true,
            "--session-pace-ms" => {
                session_pace_ms = Some(val(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--expect-drain" => expect_drain = true,
            "--hostile" => hostile = true,
            "--hostile-secs" => hostile_secs = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--server-pid" => server_pid = Some(val(&mut args).parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
    }

    let parse_addr = |a: &str| -> SocketAddr {
        a.parse().unwrap_or_else(|e| {
            eprintln!("error: bad --addr {a}: {e}");
            std::process::exit(1)
        })
    };

    // Hostile (chaos) mode short-circuits everything else. Against an
    // in-process server the leak check reads our own /proc entry; against
    // --addr it needs --server-pid (and is skipped without one).
    if hostile {
        if hostile_secs <= 0.0 {
            usage();
        }
        let (addr, local) = match &addr_arg {
            Some(a) => (parse_addr(a), None),
            None => {
                let local = start_local(1, workers, None);
                eprintln!("in-process server on {}", local.addr);
                (local.addr, Some(local))
            }
        };
        let pid = server_pid.or_else(|| local.as_ref().map(|_| std::process::id()));
        let ok = run_hostile(addr, hostile_secs, pid);
        if let Some(local) = local {
            local.stop();
        }
        std::process::exit(if ok { 0 } else { 1 });
    }

    // Session-verification mode short-circuits load generation entirely.
    if let Some(n) = sessions {
        let (addr, local) = match &addr_arg {
            Some(a) => (parse_addr(a), None),
            None => {
                let local = start_local(1, workers, None);
                eprintln!("in-process server on {}", local.addr);
                (local.addr, Some(local))
            }
        };
        let ok = run_sessions(
            addr,
            n,
            assert_snapshots,
            assert_fault,
            session_pace_ms,
            expect_drain,
        );
        if let Some(local) = local {
            local.stop();
        }
        std::process::exit(if ok { 0 } else { 1 });
    }

    let shard_counts: Vec<usize> = shards_arg
        .split(',')
        .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
        .collect();
    let client_counts: Vec<usize> = clients_arg
        .split(',')
        .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
        .collect();
    if shard_counts.is_empty()
        || shard_counts.contains(&0)
        || client_counts.is_empty()
        || duration <= 0.0
    {
        usage();
    }
    if addr_arg.is_some() && shard_counts.len() > 1 {
        eprintln!("error: --addr targets a fixed topology; pass a single --shards value");
        std::process::exit(1);
    }

    eprintln!("calibrating machine speed...");
    let calibration = calibration_score();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("calibration_score: {calibration:.0} iters/sec ({host_cores} cores)");

    let mut golden_match = true;
    let mut warm_vs_cold: Option<WarmVsCold> = None;
    let mut points = Vec::with_capacity(shard_counts.len() * client_counts.len());
    for &shards in &shard_counts {
        // Target server for this shard count: external (--addr) or
        // in-process on an ephemeral port.
        let (addr, local) = match &addr_arg {
            Some(a) => (parse_addr(a), None),
            None => {
                let local = start_local(shards, workers, coalesce);
                eprintln!(
                    "in-process server on {} ({shards} shard(s) x {workers} worker(s))",
                    local.addr
                );
                (local.addr, Some(local))
            }
        };

        // Golden gate first: throughput numbers from a server computing
        // wrong answers are worthless. Re-checked per topology.
        let (golden_body, expected) = golden_expected();
        let this_match =
            match Client::new(addr).roundtrip("POST", "/simulate", golden_body.as_bytes()) {
                Ok((200, body)) => String::from_utf8_lossy(&body) == expected,
                Ok((status, body)) => {
                    eprintln!(
                        "golden request got {status}: {}",
                        String::from_utf8_lossy(&body)
                    );
                    false
                }
                Err(e) => {
                    eprintln!("golden request failed: {e}");
                    false
                }
            };
        eprintln!(
            "golden byte-compare vs direct SimBuilder ({shards} shard(s)): {}",
            if this_match { "MATCH" } else { "MISMATCH" }
        );
        golden_match &= this_match;

        if warm_vs_cold.is_none() {
            let wc = measure_warm_vs_cold(addr).unwrap_or_else(|e| {
                eprintln!("warm/cold probe failed: {e}");
                WarmVsCold {
                    cold_first_seconds: 0.0,
                    warm_median_seconds: 0.0,
                    cold_over_warm: 0.0,
                }
            });
            eprintln!(
                "warm-vs-cold: first request {:.3} ms, warm median {:.3} ms ({:.1}x)",
                wc.cold_first_seconds * 1e3,
                wc.warm_median_seconds * 1e3,
                wc.cold_over_warm
            );
            warm_vs_cold = Some(wc);
        }

        for &clients in &client_counts {
            let pt = run_load_point(addr, shards, clients, Duration::from_secs_f64(duration));
            let dist = if pt.per_shard_requests.is_empty() {
                String::from("n/a")
            } else {
                format!("{:?}", pt.per_shard_requests)
            };
            eprintln!(
                "shards={shards} clients={:3}  {:8.0} req/s  ({} ok, {} errors; \
                 p50 {:.3} ms, p99 {:.3} ms; per-shard {dist})",
                pt.clients,
                pt.requests_per_sec,
                pt.requests,
                pt.errors,
                pt.p50_seconds * 1e3,
                pt.p99_seconds * 1e3,
            );
            points.push(pt);
        }

        // Tear down this topology's server before the next (or before
        // gating), so a gate failure still exits with listeners closed.
        if let Some(local) = local {
            local.stop();
        }
    }

    let warm_vs_cold = warm_vs_cold.expect("at least one shard count ran");
    let json = render_json(calibration, host_cores, &points, warm_vs_cold, golden_match);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1)
    });
    let best = points
        .iter()
        .map(|p| p.requests_per_sec)
        .fold(0.0, f64::max);
    eprintln!("wrote {out_path}  (best {best:.0} req/s)");

    let mut failed = !golden_match;
    if let Some(base_path) = check_path {
        let baseline = std::fs::read_to_string(&base_path).unwrap_or_else(|e| {
            eprintln!("error: cannot read --check baseline {base_path}: {e}");
            std::process::exit(1)
        });
        let failures = check_throughput_floor(&json, &baseline, tolerance);
        if failures.is_empty() {
            eprintln!(
                "throughput floor PASS (tolerance {:.0}%)",
                tolerance * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("{f}");
            }
            eprintln!("throughput floor FAIL: {} failure(s)", failures.len());
            failed = true;
        }
    }
    if let Some(ratio) = scaling_ratio {
        match check_scaling(&json, ratio) {
            ScalingVerdict::Pass {
                shards,
                clients,
                ratio: measured,
            } => eprintln!(
                "scaling gate PASS: {shards} shards sustained {measured:.2}x single-shard \
                 at {clients} clients (required > {ratio:.2}x)"
            ),
            ScalingVerdict::Skipped(reason) => {
                eprintln!("scaling gate SKIPPED: {reason}")
            }
            ScalingVerdict::Fail(line) => {
                eprintln!("{line}");
                eprintln!("scaling gate FAIL");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
