//! `serve_bench` — the load generator behind `BENCH_5.json`.
//!
//! Drives an `hbm-serve` instance over real TCP with concurrent clients
//! and records sustained requests/sec plus the latency distribution (see
//! `hbm_bench::serve_doc` for the document schema):
//!
//! ```text
//! cargo run --release -p hbm-bench --bin serve_bench -- --out BENCH_5.json
//! ```
//!
//! Flags:
//! - `--addr HOST:PORT`: target an already-running server (the CI smoke
//!   job starts the real `hbm-serve` binary and points this flag at it).
//!   Without it, an in-process [`Server`] is spun up on an ephemeral port
//!   and torn down afterwards — same code path as the binary, no process
//!   management needed.
//! - `--clients LIST`: comma-separated concurrent-client counts, one load
//!   point each (default `1,4` — the ISSUE's acceptance floor is ≥4).
//! - `--duration SECS`: measurement window per load point (default 2.0)
//! - `--workers N`: worker threads for the in-process server (default:
//!   available parallelism)
//! - `--out FILE`: write the JSON document (default `BENCH_5.json`)
//! - `--check BASELINE.json`: gate against a baseline via
//!   `serve_doc::check_throughput_floor` (calibration-normalized)
//! - `--tolerance FRAC`: allowed req/s drop for `--check` (default 0.25)
//!
//! Every run also: (a) byte-compares one served report against a direct
//! `SimBuilder` run (`golden_match` in the document — a correctness gate,
//! not a speed one); (b) measures the warm-vs-cold setup delta by timing
//! a first request on a never-seen workload seed against the median of
//! warm repeats.
//!
//! Exit status: 0 on success, 1 on a golden mismatch or a `--check`
//! failure, so CI can gate directly on this binary.

use hbm_bench::harness::calibration_score;
use hbm_bench::serve_doc::{
    check_throughput_floor, percentile, render_json, summarize, LoadPoint, WarmVsCold,
};
use hbm_core::{ArbitrationKind, SimBuilder};
use hbm_serve::http::{read_response, write_request};
use hbm_serve::proto::report_to_json;
use hbm_serve::server::{Server, ServerConfig};
use hbm_serve::shutdown::ShutdownFlag;
use hbm_traces::{TraceOptions, WorkloadSpec};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant, SystemTime};

/// The steady-state request every client loops on: a real (if small)
/// simulation, so a "request" costs an actual engine run, not a parse.
const LOAD_BODY: &str = r#"{"workload": {"kind": "cyclic", "pages": 64, "reps": 8, "seed": 3}, "p": 8, "k": 48, "q": 2, "arbitration": "priority", "seed": 11}"#;

fn usage() -> ! {
    eprintln!(
        "usage: serve_bench [--addr HOST:PORT] [--clients LIST] [--duration SECS]\n\
         \x20                 [--workers N] [--out FILE] [--check BASELINE.json]\n\
         \x20                 [--tolerance FRAC]"
    );
    std::process::exit(1);
}

/// One client connection that knows how to re-dial: the server closes
/// keep-alive sockets on drain and idle timeouts, and a load generator
/// must ride through that rather than die.
struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
}

impl Client {
    fn new(addr: SocketAddr) -> Client {
        Client { addr, stream: None }
    }

    /// One request/response exchange; reconnects on any transport error
    /// and reports it as `Err` so the caller can count it.
    fn roundtrip(&mut self, path: &str, body: &[u8]) -> Result<(u16, Vec<u8>), String> {
        if self.stream.is_none() {
            let stream =
                TcpStream::connect(self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
            let _ = stream.set_nodelay(true);
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().expect("just connected");
        let deadline = Instant::now() + Duration::from_secs(30);
        let result = write_request(stream, "POST", path, body)
            .map_err(|e| format!("write: {e}"))
            .and_then(|()| read_response(stream, deadline).map_err(|e| format!("read: {e}")));
        if result.is_err() {
            // Drop the broken socket; the next roundtrip re-dials.
            self.stream = None;
        }
        result
    }
}

/// The exact bytes the server must serve for the golden request, computed
/// through the plain `SimBuilder` path — same oracle as the integration
/// tests, re-checked here under load conditions.
fn golden_expected() -> (String, String) {
    let body = r#"{"workload": {"kind": "cyclic", "pages": 32, "reps": 4, "seed": 9}, "p": 4, "k": 24, "q": 2, "arbitration": "priority", "seed": 7}"#;
    let spec = WorkloadSpec::Cyclic { pages: 32, reps: 4 };
    let workload = spec.workload(4, 9, TraceOptions::default());
    let report = SimBuilder::new()
        .hbm_slots(24)
        .channels(2)
        .arbitration(ArbitrationKind::Priority)
        .seed(7)
        .run(&workload);
    (body.to_string(), report_to_json(&report))
}

/// Times the first request on a never-before-seen workload seed (cold
/// pool: trace generation + flatten on the request path) against the
/// median of warm repeats of the same request.
fn measure_warm_vs_cold(addr: SocketAddr) -> Result<WarmVsCold, String> {
    // A seed no other run has used, so the pool is cold even against a
    // long-running external server.
    let unique = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
        ^ (u64::from(std::process::id()) << 32);
    let body = format!(
        r#"{{"workload": {{"kind": "cyclic", "pages": 64, "reps": 8, "seed": {unique}}}, "p": 8, "k": 48, "q": 2, "arbitration": "priority", "seed": 11}}"#
    );
    let mut client = Client::new(addr);
    let t0 = Instant::now();
    let (status, _) = client.roundtrip("/simulate", body.as_bytes())?;
    let cold = t0.elapsed().as_secs_f64();
    if status != 200 {
        return Err(format!("cold probe got {status}"));
    }
    let mut warm = Vec::with_capacity(20);
    for _ in 0..20 {
        let t0 = Instant::now();
        let (status, _) = client.roundtrip("/simulate", body.as_bytes())?;
        if status != 200 {
            return Err(format!("warm probe got {status}"));
        }
        warm.push(t0.elapsed().as_secs_f64());
    }
    let warm_median = percentile(&warm, 0.50).max(1e-9);
    Ok(WarmVsCold {
        cold_first_seconds: cold,
        warm_median_seconds: warm_median,
        cold_over_warm: cold / warm_median,
    })
}

/// Runs one load point: `clients` connections hammering `/simulate` for
/// `duration`, all released together by a barrier so the window measures
/// steady-state concurrency, not ramp-up.
fn run_load_point(addr: SocketAddr, clients: usize, duration: Duration) -> LoadPoint {
    let barrier = Arc::new(Barrier::new(clients + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                let mut latencies = Vec::new();
                let mut errors = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    match client.roundtrip("/simulate", LOAD_BODY.as_bytes()) {
                        Ok((200, _)) => latencies.push(t0.elapsed().as_secs_f64()),
                        Ok(_) | Err(_) => errors += 1,
                    }
                }
                (latencies, errors)
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    for h in handles {
        let (lat, err) = h.join().expect("client thread");
        latencies.extend(lat);
        errors += err;
    }
    // Wall time includes the stragglers' final in-flight requests — the
    // honest denominator for the completed-request count.
    summarize(clients, &latencies, errors, t0.elapsed().as_secs_f64())
}

fn main() {
    let mut addr_arg: Option<String> = None;
    let mut clients_arg = String::from("1,4");
    let mut duration = 2.0f64;
    let mut workers: Option<usize> = None;
    let mut out_path = String::from("BENCH_5.json");
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.25f64;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--addr" => addr_arg = Some(val(&mut args)),
            "--clients" => clients_arg = val(&mut args),
            "--duration" => duration = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = Some(val(&mut args).parse().unwrap_or_else(|_| usage())),
            "--out" => out_path = val(&mut args),
            "--check" => check_path = Some(val(&mut args)),
            "--tolerance" => tolerance = val(&mut args).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let client_counts: Vec<usize> = clients_arg
        .split(',')
        .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
        .collect();
    if client_counts.is_empty() || duration <= 0.0 {
        usage();
    }

    eprintln!("calibrating machine speed...");
    let calibration = calibration_score();
    eprintln!("calibration_score: {calibration:.0} iters/sec");

    // Target server: external (--addr) or in-process on an ephemeral port.
    let (addr, local) = match addr_arg {
        Some(a) => {
            let addr: SocketAddr = a.parse().unwrap_or_else(|e| {
                eprintln!("error: bad --addr {a}: {e}");
                std::process::exit(1)
            });
            (addr, None)
        }
        None => {
            let config = ServerConfig {
                workers: workers
                    .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
                    .unwrap_or(4),
                ..ServerConfig::default()
            };
            let flag = ShutdownFlag::new();
            let server = Server::bind("127.0.0.1:0", config).unwrap_or_else(|e| {
                eprintln!("error: bind: {e}");
                std::process::exit(1)
            });
            let addr = server.local_addr().expect("ephemeral local addr");
            let run_flag = flag.clone();
            let handle = std::thread::spawn(move || server.run(&run_flag));
            eprintln!("in-process server on {addr}");
            (addr, Some((flag, handle)))
        }
    };

    // Golden gate first: throughput numbers from a server computing wrong
    // answers are worthless.
    let (golden_body, expected) = golden_expected();
    let golden_match = match Client::new(addr).roundtrip("/simulate", golden_body.as_bytes()) {
        Ok((200, body)) => String::from_utf8_lossy(&body) == expected,
        Ok((status, body)) => {
            eprintln!(
                "golden request got {status}: {}",
                String::from_utf8_lossy(&body)
            );
            false
        }
        Err(e) => {
            eprintln!("golden request failed: {e}");
            false
        }
    };
    eprintln!(
        "golden byte-compare vs direct SimBuilder: {}",
        if golden_match { "MATCH" } else { "MISMATCH" }
    );

    let warm_vs_cold = measure_warm_vs_cold(addr).unwrap_or_else(|e| {
        eprintln!("warm/cold probe failed: {e}");
        WarmVsCold {
            cold_first_seconds: 0.0,
            warm_median_seconds: 0.0,
            cold_over_warm: 0.0,
        }
    });
    eprintln!(
        "warm-vs-cold: first request {:.3} ms, warm median {:.3} ms ({:.1}x)",
        warm_vs_cold.cold_first_seconds * 1e3,
        warm_vs_cold.warm_median_seconds * 1e3,
        warm_vs_cold.cold_over_warm
    );

    let mut points = Vec::with_capacity(client_counts.len());
    for &clients in &client_counts {
        let pt = run_load_point(addr, clients, Duration::from_secs_f64(duration));
        eprintln!(
            "clients={:3}  {:8.0} req/s  ({} ok, {} errors; p50 {:.3} ms, p99 {:.3} ms)",
            pt.clients,
            pt.requests_per_sec,
            pt.requests,
            pt.errors,
            pt.p50_seconds * 1e3,
            pt.p99_seconds * 1e3,
        );
        points.push(pt);
    }

    // Tear down the in-process server before gating, so a gate failure
    // still exits with the listener closed and stats drained.
    if let Some((flag, handle)) = local {
        flag.trip();
        match handle.join() {
            Ok(Ok(stats)) => eprintln!(
                "in-process server drained: {} requests ({} ok)",
                stats.requests, stats.ok
            ),
            Ok(Err(e)) => eprintln!("in-process server error: {e}"),
            Err(_) => eprintln!("in-process server panicked"),
        }
    }

    let json = render_json(calibration, &points, warm_vs_cold, golden_match);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1)
    });
    let best = points
        .iter()
        .map(|p| p.requests_per_sec)
        .fold(0.0, f64::max);
    eprintln!("wrote {out_path}  (best {best:.0} req/s)");

    let mut failed = !golden_match;
    if let Some(base_path) = check_path {
        let baseline = std::fs::read_to_string(&base_path).unwrap_or_else(|e| {
            eprintln!("error: cannot read --check baseline {base_path}: {e}");
            std::process::exit(1)
        });
        let failures = check_throughput_floor(&json, &baseline, tolerance);
        if failures.is_empty() {
            eprintln!(
                "throughput floor PASS (tolerance {:.0}%)",
                tolerance * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("{f}");
            }
            eprintln!("throughput floor FAIL: {} failure(s)", failures.len());
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
